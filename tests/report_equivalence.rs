//! Pure-speed equivalence suite: every hot-path optimisation must leave
//! `PerfReport`s byte-identical.
//!
//! The file `tests/golden/perf_reports.txt` was captured from the pre-
//! optimisation simulation core (the tree as of PR 3) by running this test
//! with `REGENERATE_GOLDEN=1`. The test re-runs the same diverse matrix of
//! configurations × workloads and compares the `Debug` rendering of every
//! report — including all floating-point digits — character for character.
//! Any change to a simulated instant, a statistic or a report field anywhere
//! in the pipeline fails this suite, which is what licenses the flat-memory
//! FTL, the event-arena scheduler and the component-model fast paths to call
//! themselves *pure* speed work.

use ssdx_core::configs::{fig5_config, table2_configs, table3_configs};
use ssdx_core::{
    explorer, CachePolicy, CompressorConfig, FtlMode, HostInterfaceConfig, Ssd, SsdConfig,
};
use ssdx_ecc::EccScheme;
use ssdx_hostif::{AccessPattern, TracePlayer, Workload};
use ssdx_nand::OnfiSpeed;
use std::fmt::Write as _;

const GOLDEN_PATH: &str = "tests/golden/perf_reports.txt";

fn workload(pattern: AccessPattern, commands: u64, footprint: u64) -> Workload {
    Workload::builder(pattern)
        .command_count(commands)
        .footprint_bytes(footprint)
        .build()
}

fn base(name: &str) -> ssdx_core::SsdConfigBuilder {
    SsdConfig::builder(name)
        .topology(4, 2, 2)
        .dram_buffers(4)
        .dram_buffer_capacity(256 * 1024)
}

/// One labelled report per interesting corner of the configuration space.
/// Every simulated subsystem (WAF and page-mapped FTL, both compressor
/// placements, both cache policies, both ECC schemes, aged NAND, SATA and
/// NVMe, DDR2-533, slow ONFI, multi-core firmware, trims) appears at least
/// once, so a timing regression anywhere in the pipeline shows up here.
fn golden_matrix() -> String {
    let mut out = String::new();
    fn emit(out: &mut String, label: &str, cfg: SsdConfig, w: &Workload) {
        let report = Ssd::new(cfg).simulate(w);
        writeln!(out, "=== {label}\n{report:?}").unwrap();
    }

    let seq_w = workload(AccessPattern::SequentialWrite, 256, 16 << 20);
    let seq_r = workload(AccessPattern::SequentialRead, 256, 16 << 20);
    let rnd_w = workload(AccessPattern::RandomWrite, 256, 16 << 20);
    let rnd_r = workload(AccessPattern::RandomRead, 256, 16 << 20);

    emit(&mut out, "default-seq-write", SsdConfig::default(), &seq_w);
    emit(
        &mut out,
        "base-seq-write",
        base("base").build().unwrap(),
        &seq_w,
    );
    emit(
        &mut out,
        "base-seq-read",
        base("base").build().unwrap(),
        &seq_r,
    );
    emit(
        &mut out,
        "base-rand-write",
        base("base").build().unwrap(),
        &rnd_w,
    );
    emit(
        &mut out,
        "base-rand-read",
        base("base").build().unwrap(),
        &rnd_r,
    );
    emit(
        &mut out,
        "no-cache",
        base("nocache")
            .cache_policy(CachePolicy::NoCache)
            .build()
            .unwrap(),
        &seq_w,
    );
    emit(
        &mut out,
        "nvme",
        base("nvme")
            .host_interface(HostInterfaceConfig::nvme_gen2_x8())
            .build()
            .unwrap(),
        &seq_w,
    );
    emit(
        &mut out,
        "queue-depth-1",
        base("qd1").queue_depth(1).build().unwrap(),
        &seq_w,
    );
    emit(
        &mut out,
        "compressor-channel",
        base("comp-ch")
            .compressor(CompressorConfig::ChannelSide)
            .build()
            .unwrap(),
        &seq_w,
    );
    emit(
        &mut out,
        "compressor-host",
        base("comp-host")
            .compressor(CompressorConfig::HostSide)
            .build()
            .unwrap(),
        &seq_w,
    );
    emit(
        &mut out,
        "compressor-read",
        base("comp-read")
            .compressor(CompressorConfig::ChannelSide)
            .build()
            .unwrap(),
        &seq_r,
    );
    emit(
        &mut out,
        "ddr2-533",
        base("ddr533")
            .dram_timings(ssdx_dram::DdrTimings::ddr2_533())
            .build()
            .unwrap(),
        &seq_w,
    );
    emit(
        &mut out,
        "onfi-ddr166",
        base("onfi166")
            .onfi_speed(OnfiSpeed::Ddr166)
            .build()
            .unwrap(),
        &seq_w,
    );
    emit(
        &mut out,
        "adaptive-ecc-read",
        base("adaptive")
            .ecc(EccScheme::adaptive_bch(40))
            .build()
            .unwrap(),
        &seq_r,
    );
    emit(
        &mut out,
        "dual-core",
        base("dual").cpu_cores(2).build().unwrap(),
        &rnd_w,
    );
    emit(
        &mut out,
        "seed-variation",
        base("seeded").seed(777).build().unwrap(),
        &rnd_w,
    );

    // Page-mapped FTL: sequential (WAF ~1), random with garbage collection,
    // and a trim-heavy trace.
    let pm = |name: &str| {
        base(name)
            .ftl_mode(FtlMode::PageMapped)
            .over_provisioning(0.25)
    };
    emit(
        &mut out,
        "pm-seq-write",
        pm("pm-seq").build().unwrap(),
        &seq_w,
    );
    emit(
        &mut out,
        "pm-rand-gc",
        pm("pm-gc").build().unwrap(),
        &workload(AccessPattern::RandomWrite, 1_200, 2 << 20),
    );
    emit(
        &mut out,
        "pm-read-back",
        pm("pm-read").build().unwrap(),
        &seq_r,
    );
    {
        let mut text = String::new();
        for i in 0..96u64 {
            let off = (i % 24) * 4096;
            match i % 3 {
                0 => writeln!(text, "{} write {} 4096", i * 10, off).unwrap(),
                1 => writeln!(text, "{} read {} 4096", i * 10, off).unwrap(),
                _ => writeln!(text, "{} trim {} 4096", i * 10, off).unwrap(),
            }
        }
        let trace = TracePlayer::parse(&text).unwrap();
        let report = Ssd::new(pm("pm-trace").build().unwrap()).simulate(&trace);
        writeln!(out, "=== pm-trim-trace\n{report:?}").unwrap();
    }

    // Aged platforms (the wear-dependent timing and RBER paths).
    for (label, ecc, endurance) in [
        ("aged-fixed-half", EccScheme::fixed_bch(40), 0.5),
        ("aged-adaptive-eol", EccScheme::adaptive_bch(40), 1.0),
    ] {
        let mut ssd = Ssd::new(base(label).ecc(ecc).build().unwrap());
        ssd.age_to_normalized(endurance);
        let report = ssd.simulate(&seq_r);
        writeln!(out, "=== {label}\n{report:?}").unwrap();
    }

    // A slice of the paper's configuration tables (bigger arrays, more
    // DRAM buffers, the 1-die minimal platform).
    for cfg in table2_configs().into_iter().take(3) {
        let label = format!("table2-{}", cfg.name);
        emit(&mut out, &label, cfg, &seq_w);
    }
    for cfg in table3_configs().into_iter().take(2) {
        let label = format!("table3-{}", cfg.name);
        emit(&mut out, &label, cfg, &seq_w);
    }

    // The Explorer studies exercise run_parallel, the component-path
    // reference series and the endurance preparation hooks.
    {
        let configs: Vec<SsdConfig> = table2_configs().into_iter().take(2).collect();
        let sweep = explorer::host_interface_study(
            HostInterfaceConfig::Sata2,
            &configs,
            &workload(AccessPattern::SequentialWrite, 192, 16 << 20),
        )
        .unwrap();
        writeln!(out, "=== host-interface-study\n{sweep:?}").unwrap();
    }
    {
        let cfg = fig5_config(EccScheme::fixed_bch(40));
        let points =
            explorer::wearout_study(&cfg, EccScheme::adaptive_bch(40), &[0.0, 0.6], 96).unwrap();
        writeln!(out, "=== wearout-study\n{points:?}").unwrap();
    }

    out
}

#[test]
fn perf_reports_match_pre_optimisation_golden() {
    let actual = golden_matrix();
    if std::env::var_os("REGENERATE_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_PATH, &actual).unwrap();
        eprintln!("regenerated {GOLDEN_PATH} ({} bytes)", actual.len());
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run with REGENERATE_GOLDEN=1 on a known-good tree");
    if actual != golden {
        // Locate the first diverging block to keep the failure readable.
        let a_blocks: Vec<&str> = actual.split("=== ").collect();
        let g_blocks: Vec<&str> = golden.split("=== ").collect();
        for (a, g) in a_blocks.iter().zip(&g_blocks) {
            assert_eq!(
                a.lines().next(),
                g.lines().next(),
                "golden block ordering diverged"
            );
            assert_eq!(a, g, "report diverged from the pre-optimisation golden");
        }
        assert_eq!(
            a_blocks.len(),
            g_blocks.len(),
            "golden block count diverged"
        );
        unreachable!("outputs differ but no block diff found");
    }
}
