//! Integration tests that wire substrate crates together *below* the full
//! SSD model: channel controller + NAND + ECC, DRAM + interconnect, firmware
//! CPU + AHB. These catch interface drift between crates that the top-level
//! pipeline might mask.

use ssdexplorer::channel::{ChannelConfig, ChannelController, GangMode};
use ssdexplorer::cpu::{CpuModel, FirmwareProfile};
use ssdexplorer::dram::{AccessKind, DdrTimings, DramBuffer};
use ssdexplorer::ecc::EccScheme;
use ssdexplorer::ftl::{PageMappedFtl, WafModel, WorkloadMix};
use ssdexplorer::interconnect::{AhbBus, AhbConfig};
use ssdexplorer::nand::{NandConfig, NandOp, OnfiBus, OnfiSpeed, PageAddr};
use ssdexplorer::sim::{Resource, SimTime};

#[test]
fn channel_plus_ecc_read_pipeline_orders_stages_correctly() {
    let mut channel = ChannelController::new(
        0,
        ChannelConfig::new(2, 2).with_onfi(OnfiBus::new(OnfiSpeed::Sdr20)),
        NandConfig::default(),
        99,
    );
    let ecc = EccScheme::fixed_bch(40);
    let mut decoder = Resource::new("decoder");
    let addr = PageAddr {
        plane: 0,
        block: 1,
        page: 3,
    };

    let read = channel.execute(SimTime::ZERO, 0, 1, NandOp::Read, addr, 4096 + 224);
    let pe = channel.die(0, 1).unwrap().block_pe_cycles(addr);
    let decode = decoder.reserve(
        read.complete_at,
        ecc.decode_latency_for(4096, pe, read.expected_raw_errors),
    );

    assert!(
        read.complete_at > SimTime::from_us(60),
        "array read plus bus transfer"
    );
    assert!(decode.start >= read.complete_at);
    assert!(
        decode.end > decode.start + SimTime::from_us(50),
        "a 40-bit decode is expensive"
    );
}

#[test]
fn channel_aging_increases_required_correction_and_latency() {
    let mut channel = ChannelController::new(0, ChannelConfig::new(1, 1), NandConfig::default(), 7);
    let ecc = EccScheme::adaptive_bch(40);
    let addr = PageAddr {
        plane: 0,
        block: 0,
        page: 0,
    };

    let fresh_pe = channel.die(0, 0).unwrap().block_pe_cycles(addr);
    let fresh_latency = ecc.decode_latency_for(2048, fresh_pe, 0.5);

    channel.age_all(3_000);
    let worn_pe = channel.die(0, 0).unwrap().block_pe_cycles(addr);
    let worn_errors = channel.die(0, 0).unwrap().expected_raw_errors(addr);
    let worn_latency = ecc.decode_latency_for(2048, worn_pe, worn_errors);

    assert_eq!(worn_pe, 3_000);
    assert!(ecc.t_for(worn_pe) > ecc.t_for(fresh_pe));
    assert!(worn_latency > fresh_latency * 2);
}

#[test]
fn waf_abstraction_and_real_ftl_agree_on_traffic_direction() {
    // The analytic model and the actual page-mapped FTL must agree that
    // random traffic amplifies and sequential traffic does not.
    let analytic = WafModel::new(0.25);
    let mut real = PageMappedFtl::new(64, 32, 0.25);
    for lpn in 0..real.logical_pages() {
        real.write(lpn).expect("priming write fits");
    }
    let mut rng = ssdexplorer::sim::rng::SimRng::new(3);
    for _ in 0..20_000 {
        let lpn = rng.uniform_u64(0, real.logical_pages() - 1);
        real.write(lpn).expect("random write fits");
    }
    let measured = real.stats().waf();
    let predicted = analytic.waf(WorkloadMix::random());
    assert!(measured > 1.2, "measured WAF {measured}");
    assert!(predicted > 1.2, "predicted WAF {predicted}");
    // The greedy analytic bound and the measured greedy collector should sit
    // in the same ballpark (well within 2x of each other).
    let ratio = measured / predicted;
    assert!(
        (0.4..2.5).contains(&ratio),
        "measured {measured} vs predicted {predicted}"
    );

    // Sequential overwrites: both say (close to) no amplification.
    let mut seq = PageMappedFtl::new(64, 32, 0.25);
    for _ in 0..3 {
        for lpn in 0..seq.logical_pages() {
            seq.write(lpn).expect("sequential write fits");
        }
    }
    assert!(seq.stats().waf() < 1.2);
    assert!((analytic.waf(WorkloadMix::sequential()) - 1.0).abs() < 1e-12);
}

#[test]
fn firmware_descriptor_traffic_fits_between_dram_accesses() {
    // One command's control flow: firmware runs on the CPU, descriptors move
    // over the AHB, data lands in the DRAM buffer — all with consistent
    // timestamps.
    let mut cpu = CpuModel::new(FirmwareProfile::waf_abstracted());
    let mut ahb = AhbBus::new(AhbConfig::paper_default());
    let mut dram = DramBuffer::new(0, DdrTimings::ddr2_800());

    let firmware = cpu.execute_command_overhead(SimTime::ZERO);
    let descriptors = ahb.transfer(firmware.start, 0, 0, 128);
    let data = dram.access(
        firmware.end.max(descriptors.end),
        0,
        4096,
        AccessKind::Write,
    );

    assert!(firmware.end > firmware.start);
    assert!(descriptors.end > firmware.start);
    assert!(data.start >= firmware.end);
    assert!(data.end > data.start);
    assert!(cpu.stats().cycles > 0);
    assert_eq!(ahb.master_stats(0).unwrap().transfers, 1);
    assert_eq!(dram.stats().accesses, 1);
}

#[test]
fn shared_control_gang_finishes_a_multi_way_burst_sooner() {
    let run = |gang: GangMode| {
        let mut channel = ChannelController::new(
            0,
            ChannelConfig::new(4, 1)
                .with_gang(gang)
                .with_onfi(OnfiBus::new(OnfiSpeed::Sdr20)),
            NandConfig::default(),
            11,
        );
        let addr = PageAddr {
            plane: 0,
            block: 0,
            page: 0,
        };
        let mut last_bus = SimTime::ZERO;
        for way in 0..4 {
            let out = channel.execute(SimTime::ZERO, way, 0, NandOp::Program, addr, 2048 + 64);
            last_bus = last_bus.max(out.bus_done);
        }
        last_bus
    };
    let shared_bus = run(GangMode::SharedBus);
    let shared_control = run(GangMode::SharedControl);
    assert!(
        shared_control < shared_bus,
        "shared-control {shared_control} should beat shared-bus {shared_bus}"
    );
}

#[test]
fn dram_refresh_and_bus_contention_are_visible_at_scale() {
    let mut buffer = DramBuffer::new(0, DdrTimings::ddr2_800());
    // Hammer the buffer for a simulated millisecond.
    let mut at = SimTime::ZERO;
    for i in 0..1_000u64 {
        let outcome = buffer.access(at, i * 4096, 4096, AccessKind::Write);
        at = outcome.end + SimTime::from_ns(500);
    }
    let stats = buffer.stats();
    assert_eq!(stats.accesses, 1_000);
    assert!(
        stats.refreshes > 50,
        "refresh must fire during a ~ms-long burst"
    );
    assert!(stats.bus_busy > SimTime::from_us(500));
}
