//! Shape checks for the paper's experiments, at test-sized workloads.
//!
//! These tests assert the *qualitative* results the paper reports — who
//! wins, in which direction a curve moves, where saturation happens — so the
//! experiment harness cannot silently drift away from the publication while
//! refactoring. The absolute numbers live in EXPERIMENTS.md and are produced
//! by the `experiments` binary with larger workloads. The sweeps run through
//! the Explorer-based studies (`host_interface_study` / `wearout_study`).

use ssdexplorer::core::configs::{fig5_config, ocz_vertex_like, table2_configs, table3_configs};
use ssdexplorer::core::{explorer, speed, HostInterfaceConfig, Ssd, SsdConfig};
use ssdexplorer::ecc::EccScheme;
use ssdexplorer::hostif::{AccessPattern, Workload};

fn steady_state(mut cfg: SsdConfig) -> SsdConfig {
    cfg.dram_buffer_capacity = 64 * 1024;
    cfg
}

fn sw_workload(commands: u64) -> Workload {
    Workload::builder(AccessPattern::SequentialWrite)
        .command_count(commands)
        .build()
}

/// A reduced Table II that still spans the interesting corners: the smallest
/// configuration, one mid-size non-saturating point, the paper's optimum C6
/// and the largest configuration C10.
fn reduced_table2() -> Vec<SsdConfig> {
    table2_configs()
        .into_iter()
        .filter(|c| matches!(c.name.as_str(), "C1" | "C4" | "C6" | "C10"))
        .map(steady_state)
        .collect()
}

#[test]
fn fig2_shape_sequential_beats_random_and_reads_beat_writes() {
    // Shrink the drive's 64 MB write cache so the test-sized workload
    // reaches the flash-limited steady state the full experiment measures.
    let mut config = ocz_vertex_like();
    config.dram_buffer_capacity = 256 * 1024;
    let mut ssd = Ssd::try_new(config).expect("ocz-vertex-like validates");
    let mut run = |pattern| {
        let w = Workload::builder(pattern)
            .command_count(4_096)
            .footprint_bytes(4 << 30)
            .build();
        ssd.simulate(&w).throughput_mbps
    };
    let sw = run(AccessPattern::SequentialWrite);
    let sr = run(AccessPattern::SequentialRead);
    let rw = run(AccessPattern::RandomWrite);
    let rr = run(AccessPattern::RandomRead);

    // The qualitative picture of Fig. 2: sequential read is the fastest
    // pattern, random write by far the slowest, reads outrun writes.
    assert!(sr >= sw * 0.95, "SR {sr} vs SW {sw}");
    assert!(sw > rw, "SW {sw} vs RW {rw}");
    assert!(rr > rw, "RR {rr} vs RW {rw}");
    assert!(rw < 0.5 * sw, "random writes must pay the WAF penalty");
}

#[test]
fn fig3_shape_sata_window_flattens_no_cache_and_c6_saturates() {
    let sweep = explorer::host_interface_study(
        HostInterfaceConfig::Sata2,
        &reduced_table2(),
        &sw_workload(3_072),
    )
    .expect("table configurations validate");
    let by_name = |name: &str| {
        sweep
            .points
            .iter()
            .find(|p| p.config_name == name)
            .unwrap_or_else(|| panic!("config {name} missing from sweep"))
    };

    // No-cache throughput is pinned by the 32-command NCQ window: growing the
    // back end from C4 to C10 must not meaningfully move it.
    let c4 = by_name("C4");
    let c10 = by_name("C10");
    assert!(
        (c10.ssd_no_cache_mbps - c4.ssd_no_cache_mbps).abs() < 0.2 * c4.ssd_no_cache_mbps,
        "no-cache should flatten: C4 {} vs C10 {}",
        c4.ssd_no_cache_mbps,
        c10.ssd_no_cache_mbps
    );

    // With the cache, C6 and C10 saturate the interface, C1 and C4 do not.
    let c6 = by_name("C6");
    let c1 = by_name("C1");
    let target = 0.95 * sweep.interface_plus_dram_mbps;
    assert!(
        c6.ssd_cache_mbps >= target,
        "C6 {} vs target {target}",
        c6.ssd_cache_mbps
    );
    assert!(c10.ssd_cache_mbps >= target);
    assert!(c1.ssd_cache_mbps < target);
    assert!(c4.ssd_cache_mbps < target);

    // And among the saturating points, C6 is the cheaper controller.
    let best = sweep
        .optimal_design_point(0.95)
        .expect("sweep is non-empty");
    assert_eq!(best.config_name, "C6");
}

#[test]
fn fig4_shape_nvme_removes_the_host_bottleneck() {
    let sweep = explorer::host_interface_study(
        HostInterfaceConfig::nvme_gen2_x8(),
        &reduced_table2(),
        &sw_workload(3_072),
    )
    .expect("table configurations validate");
    // Nothing saturates a PCIe Gen2 x8 link with this NAND generation.
    assert!(sweep.saturating_points(0.95).is_empty());
    for p in &sweep.points {
        // Without the SATA window, the no-cache column tracks the cached one.
        let ratio = p.ssd_no_cache_mbps / p.ssd_cache_mbps;
        assert!(
            (0.85..=1.05).contains(&ratio),
            "{}: no-cache {} vs cache {}",
            p.config_name,
            p.ssd_no_cache_mbps,
            p.ssd_cache_mbps
        );
    }
    // Internal parallelism is now visible end to end.
    let c1 = sweep.points.iter().find(|p| p.config_name == "C1").unwrap();
    let c10 = sweep
        .points
        .iter()
        .find(|p| p.config_name == "C10")
        .unwrap();
    assert!(c10.ssd_no_cache_mbps > 5.0 * c1.ssd_no_cache_mbps);
}

#[test]
fn fig5_shape_adaptive_bch_wins_reads_until_end_of_life() {
    let base = fig5_config(EccScheme::fixed_bch(40));
    let endurance = [0.0, 0.5, 1.0];
    let fixed = explorer::wearout_study(&base, EccScheme::fixed_bch(40), &endurance, 512)
        .expect("fig5 configuration validates");
    let adaptive = explorer::wearout_study(&base, EccScheme::adaptive_bch(40), &endurance, 512)
        .expect("fig5 configuration validates");

    // Early and mid life: adaptive BCH reads faster.
    assert!(adaptive[0].read_mbps > 1.2 * fixed[0].read_mbps);
    assert!(adaptive[1].read_mbps > 1.1 * fixed[1].read_mbps);
    // End of life: both run the worst-case 40-bit code.
    let eol_ratio = adaptive[2].read_mbps / fixed[2].read_mbps;
    assert!((0.9..1.1).contains(&eol_ratio), "eol ratio = {eol_ratio}");
    // Writes are insensitive to the ECC choice at every point.
    for (f, a) in fixed.iter().zip(&adaptive) {
        let gap = (f.write_mbps - a.write_mbps).abs() / f.write_mbps.max(1e-9);
        assert!(
            gap < 0.1,
            "write gap {gap} at endurance {}",
            f.normalized_endurance
        );
    }
    // Wear slows writes down.
    assert!(fixed[2].write_mbps < fixed[0].write_mbps);
}

#[test]
fn fig6_shape_simulation_speed_scales_inversely_with_resources() {
    let configs: Vec<SsdConfig> = table3_configs()
        .into_iter()
        .filter(|c| matches!(c.name.as_str(), "C1" | "C4" | "C8"))
        .map(steady_state)
        .collect();
    let workload = sw_workload(1_024);
    let points = speed::measure_kcps_sweep(&configs, &workload);
    assert_eq!(points.len(), 3);
    // More instantiated resources -> fewer simulated kilocycles per second.
    assert!(
        points[0].kcps > points[1].kcps && points[1].kcps > points[2].kcps,
        "kcps must decrease: {:?}",
        points.iter().map(|p| p.kcps).collect::<Vec<_>>()
    );
}

#[test]
fn table_configurations_match_the_paper_listing() {
    let t2 = table2_configs();
    assert_eq!(t2.len(), 10);
    assert_eq!(t2[5].architecture_label(), "16-DDR-buf;16-CHN;8-WAY;4-DIE");
    let t3 = table3_configs();
    assert_eq!(t3.len(), 8);
    assert_eq!(
        t3[7].architecture_label(),
        "32-DDR-buf;32-CHN;16-WAY;16-DIE"
    );
}
