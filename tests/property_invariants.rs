//! Property-based tests over the core data structures and models.
//!
//! Each property states an invariant the paper's methodology relies on:
//! simulated time never runs backwards, resources never double-book, the WAF
//! abstraction never deflates traffic, the page-mapped FTL never aliases two
//! logical pages onto one physical page, ECC latency grows with correction
//! strength, and the assembled SSD never reports more throughput than its
//! own host interface could deliver.

use proptest::prelude::*;
use ssdexplorer::core::{PageAllocator, Ssd, SsdConfig};
use ssdexplorer::ecc::{BchCodec, EccScheme};
use ssdexplorer::ftl::{PageMappedFtl, WafModel, WorkloadMix};
use ssdexplorer::hostif::{AccessPattern, HostInterface, SataInterface, Workload};
use ssdexplorer::nand::{MlcTimingProfile, PageKind, WearModel};
use ssdexplorer::sim::{Resource, RoundRobinArbiter, Scheduler, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn simtime_addition_is_commutative_and_monotone(a in 0u64..1_000_000_000, b in 0u64..1_000_000_000) {
        let ta = SimTime::from_ns(a);
        let tb = SimTime::from_ns(b);
        prop_assert_eq!(ta + tb, tb + ta);
        prop_assert!(ta + tb >= ta);
        prop_assert_eq!((ta + tb).saturating_sub(tb), ta);
    }

    #[test]
    fn scheduler_always_delivers_in_time_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut scheduler = Scheduler::new();
        for (i, t) in times.iter().enumerate() {
            scheduler.schedule(SimTime::from_ns(*t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some(event) = scheduler.pop() {
            prop_assert!(event.at >= last, "events must come out in time order");
            last = event.at;
        }
        prop_assert_eq!(scheduler.processed(), times.len() as u64);
    }

    #[test]
    fn resource_reservations_never_overlap(requests in prop::collection::vec((0u64..10_000, 1u64..500), 1..100)) {
        let mut resource = Resource::new("prop");
        let mut windows: Vec<(SimTime, SimTime)> = Vec::new();
        for (at, dur) in requests {
            let grant = resource.reserve(SimTime::from_ns(at), SimTime::from_ns(dur));
            prop_assert!(grant.start >= SimTime::from_ns(at));
            prop_assert_eq!(grant.end - grant.start, SimTime::from_ns(dur));
            for (start, end) in &windows {
                prop_assert!(grant.end <= *start || grant.start >= *end, "service windows must not overlap");
            }
            windows.push((grant.start, grant.end));
        }
    }

    #[test]
    fn arbiter_grants_only_requesting_ports(
        ports in 1usize..16,
        rounds in prop::collection::vec(prop::collection::vec(any::<bool>(), 1..16), 1..50)
    ) {
        let mut arbiter = RoundRobinArbiter::new(ports);
        for round in rounds {
            let mut requests = vec![false; ports];
            for (i, r) in round.iter().enumerate() {
                requests[i % ports] |= *r;
            }
            match arbiter.grant(&requests) {
                Some(winner) => prop_assert!(requests[winner]),
                None => prop_assert!(requests.iter().all(|r| !r)),
            }
        }
    }

    #[test]
    fn waf_is_at_least_one_and_monotone_in_randomness(
        op in 0.01f64..0.6,
        r1 in 0.0f64..1.0,
        r2 in 0.0f64..1.0
    ) {
        let model = WafModel::new(op);
        let (low, high) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let waf_low = model.waf(WorkloadMix::mixed(low));
        let waf_high = model.waf(WorkloadMix::mixed(high));
        prop_assert!(waf_low >= 1.0);
        prop_assert!(waf_high + 1e-12 >= waf_low);
    }

    #[test]
    fn ftl_mapping_stays_injective_under_random_traffic(
        ops in prop::collection::vec((0u64..1_000, any::<bool>()), 1..400)
    ) {
        let mut ftl = PageMappedFtl::new(32, 16, 0.25);
        let logical = ftl.logical_pages();
        for (lpn, is_trim) in ops {
            let lpn = lpn % logical;
            if is_trim {
                ftl.trim(lpn).expect("lpn is in range");
            } else {
                ftl.write(lpn).expect("lpn is in range");
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for lpn in 0..logical {
            if let Some(location) = ftl.lookup(lpn) {
                prop_assert!(seen.insert(location), "physical page mapped twice");
            }
        }
        prop_assert!(ftl.stats().waf() >= 1.0);
    }

    #[test]
    fn bch_decode_latency_grows_with_correction_strength(t1 in 1u32..60, t2 in 1u32..60) {
        let (low, high) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let weak = BchCodec::with_t(low);
        let strong = BchCodec::with_t(high);
        prop_assert!(strong.decode_latency(0.0) >= weak.decode_latency(0.0));
        prop_assert!(strong.parity_bytes() >= weak.parity_bytes());
    }

    #[test]
    fn adaptive_ecc_never_corrects_less_than_wear_requires(pe1 in 0u64..6_000, pe2 in 0u64..6_000) {
        let scheme = EccScheme::adaptive_bch(40);
        let (fresh, worn) = if pe1 <= pe2 { (pe1, pe2) } else { (pe2, pe1) };
        prop_assert!(scheme.t_for(worn) >= scheme.t_for(fresh));
        prop_assert!(scheme.t_for(worn) <= 40);
        prop_assert!(scheme.decode_latency(worn) >= scheme.decode_latency(fresh));
    }

    #[test]
    fn rber_is_monotone_in_pe_cycles(pe1 in 0u64..10_000, pe2 in 0u64..10_000) {
        let wear = WearModel::paper_mlc();
        let (low, high) = if pe1 <= pe2 { (pe1, pe2) } else { (pe2, pe1) };
        prop_assert!(wear.rber(high) + 1e-15 >= wear.rber(low));
    }

    #[test]
    fn program_time_stays_within_datasheet_range(page in 0u32..128, wear in 0.0f64..1.0) {
        let timing = MlcTimingProfile::paper_mlc();
        let kind = timing.page_kind(page);
        let t = timing.t_prog(kind, wear);
        prop_assert!(t >= SimTime::from_us(900));
        // Worst case: slowest page with full wear slowdown.
        prop_assert!(t <= SimTime::from_us(3_000).scale(1.0 + timing.wear_slowdown));
        prop_assert!(matches!(kind, PageKind::Lsb | PageKind::Msb));
    }

    #[test]
    fn workload_commands_stay_inside_the_footprint(
        count in 1u64..500,
        footprint_blocks in 1u64..10_000,
        seed in any::<u64>()
    ) {
        let footprint = footprint_blocks * 4096;
        for pattern in [AccessPattern::RandomWrite, AccessPattern::SequentialWrite] {
            let workload = Workload::builder(pattern)
                .command_count(count)
                .footprint_bytes(footprint)
                .seed(seed)
                .build();
            for cmd in workload.commands() {
                prop_assert!(cmd.offset + cmd.bytes as u64 <= footprint);
                prop_assert_eq!(cmd.offset % 4096, 0);
            }
        }
    }

    #[test]
    fn allocator_targets_always_fit_the_topology(
        channels in 1u32..8,
        ways in 1u32..8,
        dies in 1u32..4,
        writes in 1usize..500
    ) {
        let config = SsdConfig::builder("prop-alloc")
            .topology(channels, ways, dies)
            .dram_buffers(channels)
            .build()
            .expect("topology is valid");
        let mut allocator = PageAllocator::new(&config);
        for _ in 0..writes {
            let target = allocator.next_write();
            prop_assert!(target.channel < channels);
            prop_assert!(target.way < ways);
            prop_assert!(target.die < dies);
            prop_assert!(target.addr.validate(&config.nand.geometry).is_ok());
        }
    }

    #[test]
    fn sata_transfer_time_is_inverse_to_payload_bandwidth(bytes in 512u32..262_144) {
        let sata = SataInterface::sata2();
        let t = sata.data_transfer_time(bytes);
        let implied_bw = bytes as f64 / t.as_secs_f64();
        prop_assert!(implied_bw <= sata.ideal_bandwidth() as f64 * 1.001);
        prop_assert!(implied_bw >= sata.ideal_bandwidth() as f64 * 0.95);
    }
}

proptest! {
    // The full-pipeline property is more expensive, so fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ssd_throughput_never_exceeds_the_host_interface(
        channels in 1u32..6,
        ways in 1u32..4,
        dies in 1u32..3,
        commands in 64u64..256
    ) {
        let config = SsdConfig::builder("prop-ssd")
            .topology(channels, ways, dies)
            .dram_buffers(channels)
            .dram_buffer_capacity(64 * 1024)
            .build()
            .expect("topology is valid");
        let mut ssd = Ssd::new(config);
        let ideal = ssd.interface_ideal_mbps();
        for pattern in [AccessPattern::SequentialWrite, AccessPattern::SequentialRead] {
            let workload = Workload::builder(pattern).command_count(commands).build();
            let report = ssd.simulate(&workload);
            prop_assert!(report.throughput_mbps <= ideal * 1.01,
                "{pattern:?}: {} MB/s exceeds the interface ideal {} MB/s",
                report.throughput_mbps, ideal);
            prop_assert!(report.throughput_mbps > 0.0);
        }
    }
}
