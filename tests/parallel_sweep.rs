//! Integration tests for the parallel sweep executor: a parallel `Sweep`
//! must be byte-identical to the sequential one at every thread count, the
//! paper studies re-expressed on top of it must keep their legacy-shim
//! fidelity, and the speedup meter must report self-consistent numbers.

use proptest::prelude::*;
use ssdexplorer::core::{
    explorer, measure_sweep_speedup, Axis, CachePolicy, Explorer, HostInterfaceConfig,
    ParallelExecutor, SsdConfig, Sweep,
};
use ssdexplorer::ecc::EccScheme;
use ssdexplorer::hostif::{source_fn, AccessPattern, HostCommand, HostOp, Workload};
use ssdexplorer::sim::SimTime;

fn base_config() -> SsdConfig {
    SsdConfig::builder("parallel-base")
        .topology(2, 2, 1)
        .dram_buffers(2)
        .dram_buffer_capacity(128 * 1024)
        .build()
        .expect("valid test configuration")
}

fn workload(count: u64) -> Workload {
    Workload::builder(AccessPattern::SequentialWrite)
        .command_count(count)
        .build()
}

fn fingerprint(sweep: &Sweep) -> String {
    format!("{sweep:?}")
}

/// An 8-point sweep (2 channel counts × 2 cache policies × 2 seeds) that
/// exercises config mutation, whole-platform behaviour differences and
/// per-point RNG seeding at once.
fn eight_point_explorer() -> Explorer {
    Explorer::new(base_config())
        .over(Axis::over("channels", [2u32, 4], |cfg, &c| {
            cfg.channels = c;
            cfg.dram_buffers = c;
        }))
        .over(
            Axis::new("cache")
                .point("cache", |cfg| cfg.cache_policy = CachePolicy::WriteCache)
                .point("no cache", |cfg| cfg.cache_policy = CachePolicy::NoCache),
        )
        .over(Axis::over("seed", [7u64, 13], |cfg, &s| cfg.seed = s))
}

#[test]
fn parallel_sweep_is_byte_identical_at_every_thread_count() {
    let explorer = eight_point_explorer();
    let w = workload(128);
    let sequential = explorer.run(&w).expect("sweep points are valid");
    assert_eq!(sequential.len(), 8);
    for threads in [1, 2, 4, 8] {
        let parallel = ParallelExecutor::with_threads(threads)
            .run(&explorer, &w)
            .expect("sweep points are valid");
        assert_eq!(
            fingerprint(&sequential),
            fingerprint(&parallel),
            "parallel sweep diverged from sequential at {threads} threads"
        );
    }
}

#[test]
fn run_parallel_matches_run_on_the_machine_default() {
    let explorer = eight_point_explorer();
    let w = workload(96);
    let sequential = explorer.run(&w).unwrap();
    let parallel = explorer.run_parallel(&w).unwrap();
    assert_eq!(fingerprint(&sequential), fingerprint(&parallel));
}

#[test]
fn parallel_execution_works_with_setup_hooks_and_custom_sources() {
    // Endurance axes carry platform-preparation hooks (artificial aging)
    // that must also fan out deterministically; the source is a closure
    // generator shared by reference across the workers.
    let explorer =
        Explorer::new(base_config()).over(explorer::endurance_axis(&[0.0, 0.25, 0.5, 0.75, 1.0]));
    let source = source_fn("gen", 64, |i| HostCommand {
        id: i,
        op: HostOp::Read,
        offset: i * 4096,
        bytes: 4096,
        issue_at: SimTime::ZERO,
    });
    let sequential = explorer.run(&source).unwrap();
    let parallel = ParallelExecutor::with_threads(4)
        .run(&explorer, &source)
        .unwrap();
    assert_eq!(fingerprint(&sequential), fingerprint(&parallel));
    // Aging must actually bite: the end-of-life read point is slower than
    // the fresh one in both runs.
    let fresh = &sequential.points[0].report;
    let eol = &sequential.points[4].report;
    assert!(eol.throughput_mbps < fresh.throughput_mbps);
}

#[test]
fn paper_studies_stay_consistent_on_the_parallel_path() {
    // host_interface_study and wearout_study now run their Explorer product
    // through the ParallelExecutor; their deprecated shims must therefore
    // still be byte-identical, which pins parallel == sequential end to end.
    let configs = vec![
        SsdConfig::builder("small")
            .topology(2, 2, 1)
            .dram_buffers(2)
            .dram_buffer_capacity(128 * 1024)
            .build()
            .unwrap(),
        SsdConfig::builder("large")
            .topology(4, 4, 2)
            .dram_buffers(4)
            .dram_buffer_capacity(128 * 1024)
            .build()
            .unwrap(),
    ];
    let w = workload(128);
    let study = explorer::host_interface_study(HostInterfaceConfig::Sata2, &configs, &w).unwrap();
    #[allow(deprecated)]
    let legacy = explorer::sweep_host_interface(HostInterfaceConfig::Sata2, &configs, &w);
    assert_eq!(legacy, study);

    let base = configs[0].clone();
    let points = [0.0, 0.5, 1.0];
    let wear = explorer::wearout_study(&base, EccScheme::adaptive_bch(40), &points, 48).unwrap();
    #[allow(deprecated)]
    let wear_legacy = explorer::wearout_sweep(&base, EccScheme::adaptive_bch(40), &points, 48);
    assert_eq!(wear_legacy, wear);
}

#[test]
fn speedup_meter_reports_identity_and_positive_times() {
    let explorer = eight_point_explorer();
    let w = workload(64);
    let speedup = measure_sweep_speedup(&explorer, &w, 4).unwrap();
    assert!(
        speedup.identical,
        "parallel sweep must match sequential byte for byte"
    );
    assert_eq!(speedup.points, 8);
    assert_eq!(speedup.threads, 4);
    assert!(speedup.sequential_seconds > 0.0);
    assert!(speedup.parallel_seconds > 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The core determinism property, randomised: any channel/seed product,
    /// any workload size, any thread count in 1..=8 — parallel equals
    /// sequential byte for byte.
    #[test]
    fn parallel_equals_sequential_for_arbitrary_sweeps(
        channel_counts in prop::collection::vec(1u32..5, 1..=3),
        seeds in prop::collection::vec(0u64..1_000, 1..=3),
        commands in 16u64..96,
        threads in 1usize..=8,
    ) {
        let explorer = Explorer::new(base_config())
            .over(Axis::over("channels", channel_counts, |cfg, &c| {
                cfg.channels = c;
                cfg.dram_buffers = c;
            }))
            .over(Axis::over("seed", seeds, |cfg, &s| cfg.seed = s));
        let w = workload(commands);
        let sequential = explorer.run(&w).expect("valid sweep");
        let parallel = ParallelExecutor::with_threads(threads)
            .run(&explorer, &w)
            .expect("valid sweep");
        prop_assert_eq!(fingerprint(&sequential), fingerprint(&parallel));
    }
}
