//! Facade smoke test: every re-exported module must resolve, and a small
//! simulation must be bit-identical across two independent runs (the
//! deterministic `SimRng` contract the paper's experiments rely on).

use ssdexplorer::core::{Ssd, SsdConfig};
use ssdexplorer::hostif::{AccessPattern, Workload};

/// Touch one load-bearing item behind each of the eleven re-exports so a
/// dropped or renamed facade path fails this test rather than a downstream
/// consumer.
#[test]
fn every_reexport_resolves() {
    // sim: the picosecond time base and deterministic RNG.
    let t = ssdexplorer::sim::SimTime::from_ns(5);
    assert_eq!(t.as_ps(), 5_000);
    let mut rng = ssdexplorer::sim::rng::SimRng::new(7);
    let draw = rng.uniform_u64(0, 100);
    assert!(draw <= 100);

    // nand: geometry of the default MLC die.
    let geometry = ssdexplorer::nand::NandGeometry::default();
    assert!(geometry.validate().is_ok());

    // dram: DDR2 timing profile.
    let timings = ssdexplorer::dram::DdrTimings::default();
    assert!(timings.peak_bandwidth() > 0);

    // interconnect: AHB bus configuration.
    let ahb = ssdexplorer::interconnect::AhbConfig::default();
    assert!(ahb.masters > 0);

    // cpu: firmware cost profile.
    let firmware = ssdexplorer::cpu::FirmwareProfile::default();
    assert!(firmware.command_decode_cycles > 0);

    // channel: gang-mode configuration.
    let channel = ssdexplorer::channel::ChannelConfig::default();
    assert!(channel.ways > 0);

    // ecc: a BCH codec latency model.
    let codec = ssdexplorer::ecc::BchCodec::with_t(40);
    assert!(codec.decode_latency(0.0) > codec.encode_latency());

    // compress: the parametric compressor model.
    let compressor = ssdexplorer::compress::CompressorModel::hardware_gzip(
        ssdexplorer::compress::CompressorPlacement::HostSide,
    );
    assert!(compressor.output_bytes(4096) <= 4096);

    // hostif: SATA-2 protocol limits.
    let sata = ssdexplorer::hostif::SataInterface::sata2();
    assert!(ssdexplorer::hostif::HostInterface::queue_depth(&sata) <= 32);

    // ftl: the analytic WAF model.
    let waf = ssdexplorer::ftl::WafModel::new(0.25);
    assert!(waf.waf(ssdexplorer::ftl::WorkloadMix::random()) >= 1.0);

    // core: configuration builder round-trip.
    let config = SsdConfig::builder("smoke")
        .topology(2, 2, 1)
        .build()
        .unwrap();
    assert_eq!(config.total_dies(), 4);
}

/// Two identical `Ssd::simulate` invocations must produce identical reports
/// — byte-for-byte, including latency percentiles and utilization figures.
#[test]
fn run_round_trip_is_deterministic() {
    let run_once = || {
        let config = SsdConfig::builder("determinism")
            .topology(4, 4, 2)
            .dram_buffers(4)
            .build()
            .unwrap();
        let mut ssd = Ssd::try_new(config).expect("configuration validates");
        let workload = Workload::builder(AccessPattern::RandomWrite)
            .command_count(256)
            .build();
        ssd.simulate(&workload)
    };
    let first = run_once();
    let second = run_once();
    assert!(first.throughput_mbps > 0.0);
    assert_eq!(format!("{first:?}"), format!("{second:?}"));
}
