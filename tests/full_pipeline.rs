//! End-to-end integration tests exercising the public API of the facade
//! crate: configuration, the assembled SSD pipeline, trace replay and the
//! component-level performance breakdown.

use ssdexplorer::core::{CachePolicy, HostInterfaceConfig, Ssd, SsdConfig};
use ssdexplorer::hostif::{AccessPattern, TracePlayer, Workload};
use ssdexplorer::sim::SimTime;

fn small_config(name: &str) -> SsdConfig {
    SsdConfig::builder(name)
        .topology(4, 2, 2)
        .dram_buffers(4)
        .dram_buffer_capacity(128 * 1024)
        .build()
        .expect("valid test configuration")
}

fn workload(pattern: AccessPattern, count: u64) -> Workload {
    Workload::builder(pattern)
        .command_count(count)
        .footprint_bytes(1 << 30)
        .build()
}

#[test]
fn sequential_write_report_is_internally_consistent() {
    let mut ssd = Ssd::new(small_config("consistency"));
    let w = workload(AccessPattern::SequentialWrite, 512);
    let report = ssd.simulate(&w);

    assert_eq!(report.commands, 512);
    assert_eq!(report.bytes, 512 * 4096);
    assert!(report.elapsed > SimTime::ZERO);
    // Throughput must equal bytes / elapsed (MB/s).
    let recomputed = report.bytes as f64 / 1e6 / report.elapsed.as_secs_f64();
    assert!((recomputed - report.throughput_mbps).abs() < 1e-6);
    // Latency statistics cover every command.
    assert_eq!(report.latency.count(), 512);
    assert!(report.mean_latency() <= report.p99_latency());
    // Utilizations are fractions.
    let u = report.utilization;
    for value in [u.host_link, u.dram, u.cpu, u.ahb, u.channel_bus, u.die] {
        assert!(
            (0.0..=1.0 + 1e-9).contains(&value),
            "utilization {value} out of range"
        );
    }
}

#[test]
fn write_cache_improves_latency_but_not_steady_state_throughput() {
    let w = workload(AccessPattern::SequentialWrite, 1024);
    let mut cached_cfg = small_config("cached");
    cached_cfg.cache_policy = CachePolicy::WriteCache;
    let mut no_cache_cfg = small_config("no-cache");
    no_cache_cfg.cache_policy = CachePolicy::NoCache;

    let cached = Ssd::new(cached_cfg).simulate(&w);
    let no_cache = Ssd::new(no_cache_cfg).simulate(&w);

    // Completing at DRAM is always faster than completing at the NAND.
    assert!(cached.mean_latency() < no_cache.mean_latency());
    // But the flash back end bounds both in steady state on this small,
    // flash-limited configuration.
    assert!(cached.throughput_mbps >= no_cache.throughput_mbps * 0.95);
}

#[test]
fn queue_depth_limits_no_cache_throughput() {
    let w = workload(AccessPattern::SequentialWrite, 768);
    // A back end parallel enough that the NCQ window, not the flash, is the
    // bottleneck without a cache.
    let build = |qd: u32| {
        SsdConfig::builder(format!("qd-{qd}"))
            .topology(8, 8, 2)
            .dram_buffers(8)
            .dram_buffer_capacity(128 * 1024)
            .cache_policy(CachePolicy::NoCache)
            .queue_depth(qd)
            .build()
            .expect("valid test configuration")
    };
    let shallow = Ssd::new(build(1)).simulate(&w);
    let deep = Ssd::new(build(32)).simulate(&w);
    assert!(
        deep.throughput_mbps > 4.0 * shallow.throughput_mbps,
        "deep {} vs shallow {}",
        deep.throughput_mbps,
        shallow.throughput_mbps
    );
}

#[test]
fn nvme_and_sata_share_the_same_back_end_behaviour_when_cached() {
    let w = workload(AccessPattern::SequentialWrite, 512);
    let mut sata = small_config("sata");
    sata.host_interface = HostInterfaceConfig::Sata2;
    let mut nvme = small_config("nvme");
    nvme.host_interface = HostInterfaceConfig::nvme_gen2_x8();

    let r_sata = Ssd::new(sata).simulate(&w);
    let r_nvme = Ssd::new(nvme).simulate(&w);
    // This configuration is flash-limited: the host interface choice should
    // barely matter once the write cache absorbs the protocol differences.
    let ratio = r_nvme.throughput_mbps / r_sata.throughput_mbps;
    assert!((0.8..1.6).contains(&ratio), "ratio = {ratio}");
}

#[test]
fn random_write_amplification_shows_up_in_nand_traffic() {
    let seq =
        Ssd::new(small_config("seq")).simulate(&workload(AccessPattern::SequentialWrite, 512));
    let rnd = Ssd::new(small_config("rnd")).simulate(&workload(AccessPattern::RandomWrite, 512));
    assert!(
        rnd.waf > 2.0,
        "random WAF should be well above 1, got {}",
        rnd.waf
    );
    assert!((seq.waf - 1.0).abs() < 1e-9);
    // Amplification is physical: more NAND programs for the same host bytes.
    assert!(rnd.nand_page_programs as f64 > 1.8 * seq.nand_page_programs as f64);
}

#[test]
fn read_only_workloads_never_program_the_array() {
    for pattern in [AccessPattern::SequentialRead, AccessPattern::RandomRead] {
        let report = Ssd::new(small_config("reads")).simulate(&workload(pattern, 256));
        assert_eq!(
            report.nand_page_programs, 0,
            "{pattern:?} must not program pages"
        );
        assert!(report.nand_page_reads > 0);
    }
}

#[test]
fn trace_replay_matches_equivalent_synthetic_workload() {
    // Build a purely sequential write trace equivalent to the synthetic
    // generator's output and check both paths agree.
    let mut text = String::new();
    for i in 0..256u64 {
        text.push_str(&format!("0 write {} 4096\n", i * 4096));
    }
    let trace = TracePlayer::parse(&text).expect("trace parses");

    let synthetic = Ssd::new(small_config("synthetic")).simulate(
        &Workload::builder(AccessPattern::SequentialWrite)
            .command_count(256)
            .build(),
    );
    let replayed = Ssd::new(small_config("replayed")).simulate(&trace);

    assert_eq!(synthetic.commands, replayed.commands);
    assert_eq!(synthetic.bytes, replayed.bytes);
    let ratio = replayed.throughput_mbps / synthetic.throughput_mbps;
    assert!((0.95..1.05).contains(&ratio), "ratio = {ratio}");
}

#[test]
fn config_text_round_trip_drives_the_same_platform() {
    let original = SsdConfig::builder("round-trip")
        .topology(4, 4, 2)
        .dram_buffers(4)
        .dram_buffer_capacity(128 * 1024)
        .cache_policy(CachePolicy::NoCache)
        .build()
        .expect("valid test configuration");
    let parsed = SsdConfig::from_text(&original.to_text()).expect("round trip parses");

    let w = workload(AccessPattern::SequentialWrite, 256);
    let a = Ssd::new(original).simulate(&w);
    let b = Ssd::new(parsed).simulate(&w);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.nand_page_programs, b.nand_page_programs);
}

#[test]
fn simulation_is_deterministic_across_runs() {
    let w = workload(AccessPattern::RandomWrite, 384);
    let first = Ssd::new(small_config("det")).simulate(&w);
    let second = Ssd::new(small_config("det")).simulate(&w);
    assert_eq!(first.elapsed, second.elapsed);
    assert_eq!(first.nand_page_programs, second.nand_page_programs);
    assert_eq!(first.latency.count(), second.latency.count());
}

#[test]
fn reusing_one_platform_for_many_runs_resets_cleanly() {
    let mut ssd = Ssd::new(small_config("reuse"));
    let w = workload(AccessPattern::SequentialWrite, 256);
    let first = ssd.simulate(&w);
    let second = ssd.simulate(&w);
    assert_eq!(first.elapsed, second.elapsed);
    assert!((first.throughput_mbps - second.throughput_mbps).abs() < 1e-9);
}

#[test]
fn component_breakdown_brackets_the_full_pipeline() {
    let mut ssd = Ssd::new(small_config("brackets"));
    let w = workload(AccessPattern::SequentialWrite, 768);
    let ideal = ssd.interface_ideal_mbps();
    let host_dram = ssd.host_dram_only_mbps(&w);
    let flash = ssd.flash_path_mbps(&w);
    let full = ssd.simulate(&w).throughput_mbps;
    assert!(host_dram <= ideal * 1.01);
    assert!(full <= host_dram * 1.05);
    assert!(full <= flash * 1.2);
    assert!(full > 0.0);
}
