//! Tier-1 gate: the workspace is `ssdx-lint` clean.
//!
//! This runs the full invariant audit — every rule in the registry over
//! every workspace source — inside `cargo test -q`, so a violation of the
//! determinism / purity / confinement contracts fails the build locally,
//! not just in CI. See ARCHITECTURE.md § "Invariants & enforcement" for
//! what the rules guard and how to suppress one legitimately.

use std::path::Path;

use ssdx_lint::{lint_workspace, registry, render_text, RULES};

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root).expect("workspace sources readable");
    assert!(
        report.diagnostics.is_empty(),
        "ssdx-lint found contract violations:\n\n{}",
        render_text(&report.diagnostics, report.files_scanned)
    );
    // Guard against the audit silently going blind: if the walker ever
    // stops finding sources (renamed dirs, broken skip list), a "clean"
    // result would be vacuous. The workspace has ~100 .rs files today.
    assert!(
        report.files_scanned >= 80,
        "only {} files scanned — the source walker looks broken",
        report.files_scanned
    );
}

#[test]
fn a_fresh_violation_fails_the_audit() {
    // Prove the gate has teeth: an in-memory file with a std HashMap at a
    // library path must produce a finding. If this stops failing-the-bad-
    // case, the clean test above proves nothing.
    let rules = registry();
    let source = "use std::collections::HashMap;\n";
    let diags = ssdx_lint::lint_source("crates/core/src/fresh_violation.rs", source, &rules);
    assert_eq!(diags.len(), 1, "expected exactly one finding: {diags:?}");
    assert_eq!(diags[0].rule, "no-default-hasher");
    assert_eq!((diags[0].line, diags[0].col), (1, 23));
}

#[test]
fn registry_matches_the_declarative_table() {
    let rules = registry();
    assert_eq!(rules.len(), RULES.len());
    assert!(rules.len() >= 6, "the contract set must not shrink");
    for (rule, spec) in rules.iter().zip(RULES) {
        assert_eq!(rule.name(), spec.name);
    }
}
