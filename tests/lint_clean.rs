//! Tier-1 gate: the workspace is `ssdx-lint` clean.
//!
//! This runs the full invariant audit — every rule in the registry over
//! every workspace source — inside `cargo test -q`, so a violation of the
//! determinism / purity / confinement contracts fails the build locally,
//! not just in CI. See ARCHITECTURE.md § "Invariants & enforcement" for
//! what the rules guard and how to suppress one legitimately.

use std::fs;
use std::path::Path;

use ssdx_lint::{
    api_snapshots, collect_sources, lint_workspace, registry, render_text, ANALYSES, API_CRATES,
    API_DIR, LAYERS, RULES,
};

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = lint_workspace(root).expect("workspace sources readable");
    assert!(
        report.diagnostics.is_empty(),
        "ssdx-lint found contract violations:\n\n{}",
        render_text(&report.diagnostics, report.files_scanned)
    );
    // Guard against the audit silently going blind: if the walker ever
    // stops finding sources (renamed dirs, broken skip list), a "clean"
    // result would be vacuous. The workspace has ~100 .rs files today,
    // and the cross-file analyses must have seen every crate in their
    // tables — a skipped manifest or source tree makes "clean" a lie.
    assert!(
        report.files_scanned >= 80,
        "only {} files scanned — the source walker looks broken",
        report.files_scanned
    );
    assert_eq!(
        report.layer_crates_checked,
        LAYERS.len(),
        "the layering analysis skipped a crate from its table"
    );
    assert_eq!(
        report.api_crates_checked,
        API_CRATES.len(),
        "the api-drift analysis skipped a tracked crate"
    );
}

/// Regenerating the committed API snapshots must be a no-op: a drifted
/// snapshot fails the lint pass above, but a *stale-on-disk* snapshot
/// that happens to match an old surface would too — this pins the exact
/// rendered bytes, same as CI's `--update-api && git diff` step.
#[test]
fn api_snapshots_are_fresh() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = collect_sources(root).expect("workspace sources readable");
    let rendered = api_snapshots(&files);
    assert_eq!(
        rendered.len(),
        API_CRATES.len(),
        "every API-tracked crate renders a snapshot"
    );
    for (name, contents) in rendered {
        let path = root.join(API_DIR).join(format!("{name}.api"));
        let committed = fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("snapshot {} unreadable: {e}", path.display()));
        assert_eq!(
            committed, contents,
            "{name}.api is stale; run `cargo run -p ssdx-lint -- --update-api`"
        );
    }
}

/// Every `crates/` workspace member sits in the layer table (and the
/// table names only real members), so a new crate cannot dodge the
/// layering analysis by simply not being listed.
#[test]
fn layer_table_covers_all_members() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let manifest = fs::read_to_string(root.join("Cargo.toml")).expect("root manifest");
    let mut members: Vec<&str> = manifest
        .lines()
        .map(str::trim)
        .filter_map(|l| l.strip_prefix('"').and_then(|l| l.strip_suffix("\",")))
        .filter(|m| m.starts_with("crates/"))
        .collect();
    members.sort_unstable();
    members.dedup();
    assert!(
        members.len() >= 13,
        "member parse looks broken: {members:?}"
    );
    for member in &members {
        assert!(
            LAYERS.iter().any(|c| c.dir == *member),
            "workspace member `{member}` is missing from the LAYERS table \
             (crates/lint/src/analysis.rs)"
        );
    }
    for layer in LAYERS {
        assert!(
            layer.dir.is_empty() || members.contains(&layer.dir),
            "LAYERS names `{}`, which is not a workspace member",
            layer.dir
        );
    }
    for analysis in ANALYSES {
        assert!(!analysis.name.is_empty());
    }
}

#[test]
fn a_fresh_violation_fails_the_audit() {
    // Prove the gate has teeth: an in-memory file with a std HashMap at a
    // library path must produce a finding. If this stops failing-the-bad-
    // case, the clean test above proves nothing.
    let rules = registry();
    let source = "use std::collections::HashMap;\n";
    let diags = ssdx_lint::lint_source("crates/core/src/fresh_violation.rs", source, &rules);
    assert_eq!(diags.len(), 1, "expected exactly one finding: {diags:?}");
    assert_eq!(diags[0].rule, "no-default-hasher");
    assert_eq!((diags[0].line, diags[0].col), (1, 23));
}

#[test]
fn registry_matches_the_declarative_table() {
    let rules = registry();
    assert_eq!(rules.len(), RULES.len());
    assert!(rules.len() >= 6, "the contract set must not shrink");
    for (rule, spec) in rules.iter().zip(RULES) {
        assert_eq!(rule.name(), spec.name);
    }
}
