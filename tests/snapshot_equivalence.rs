//! Snapshot, fork and warm-start equivalence suite.
//!
//! The snapshot codec's correctness claim is behavioural, not structural:
//! a run forked from a captured image must be indistinguishable — byte for
//! byte — from the continuous run that never stopped. Every test here pins
//! some face of that claim:
//!
//! * **Fork ≡ continuous** (property): across arbitrary topologies, FTL
//!   modes, workloads and split points, splitting a session at command *k*
//!   via [`SimSession::capture`]/[`SimSession::fork`] reproduces the
//!   continuous run's `PerfReport` `Debug` rendering and its complete
//!   [`CompletionLog`] record stream exactly.
//! * **Codec robustness** (property): an image round-trips
//!   state-identically (capture → fork → capture yields the same bytes),
//!   and truncated, bit-flipped or arbitrary byte strings decode to `Err`
//!   without ever panicking.
//! * **Golden format pin**: `tests/golden/snapshot_v1.bin` is a committed
//!   version-1 image; any change to the wire format fails the comparison
//!   until `SNAPSHOT_VERSION` is bumped and the fixture regenerated.
//! * **Warm-start ≡ cold** : an [`Explorer`] sweep with
//!   [`warm_start`](Explorer::warm_start) forks every point of a group
//!   from one shared warmup image and still produces byte-identical
//!   sweeps — sequentially and through the [`ParallelExecutor`] at 1, 2,
//!   4 and 8 threads — while provably running the warmup once per group.
//! * **Inventory blindness guard**: every crate in the ssdx-lint layering
//!   table appears in [`STATE_INVENTORY`], so a new crate with mutable
//!   state cannot be silently forgotten by the snapshot.

use proptest::prelude::*;
use ssdx_core::{
    Axis, CompletionLog, Explorer, FtlMode, ParallelExecutor, SimSession, Snapshot, Ssd, SsdConfig,
    SteadyStateCutoff, SNAPSHOT_VERSION, STATE_INVENTORY,
};
use ssdx_hostif::{AccessPattern, Workload};
use ssdx_sim::codec::DecodeError;

fn config(channels: u32, ways: u32, seed: u64, ftl: FtlMode) -> SsdConfig {
    SsdConfig::builder("snap")
        .topology(channels, ways, 1)
        .dram_buffers(channels)
        .dram_buffer_capacity(128 * 1024)
        .ftl_mode(ftl)
        .seed(seed)
        .build()
        .expect("the swept snapshot topologies validate")
}

fn workload(pattern: AccessPattern, commands: u64, seed: u64) -> Workload {
    Workload::builder(pattern)
        .command_count(commands)
        .footprint_bytes(4 << 20)
        .seed(seed)
        .build()
}

/// Runs the full stream in one session, returning the report rendering and
/// every completion record.
fn continuous(cfg: &SsdConfig, w: &Workload, cutoff: SteadyStateCutoff) -> (String, CompletionLog) {
    let mut log = CompletionLog::new();
    let mut ssd = Ssd::try_new(cfg.clone()).unwrap();
    let mut session = ssd.session(w);
    session.steady_state(cutoff);
    session.attach(&mut log);
    let report = session.finish();
    (format!("{report:?}"), log)
}

/// Runs `split` commands, captures, then forks a fresh platform from the
/// image and finishes there. Returns the forked run's report rendering,
/// the concatenated completion records of both halves, and the image.
fn split_run(
    cfg: &SsdConfig,
    w: &Workload,
    cutoff: SteadyStateCutoff,
    split: u64,
) -> (String, Vec<ssdx_core::CommandRecord>, Snapshot) {
    let mut head = CompletionLog::new();
    let mut ssd = Ssd::try_new(cfg.clone()).unwrap();
    let image = {
        let mut session = ssd.session(w);
        session.steady_state(cutoff);
        session.attach(&mut head);
        for _ in 0..split {
            if session.step().is_none() {
                break;
            }
        }
        session.capture()
    };

    let mut tail = CompletionLog::new();
    let mut forked = Ssd::try_new(cfg.clone()).unwrap();
    let mut session = SimSession::fork(&mut forked, w, &image)
        .expect("a freshly captured image forks onto an identical platform");
    session.attach(&mut tail);
    let report = session.finish();

    let mut records = head.records().to_vec();
    records.extend_from_slice(tail.records());
    (format!("{report:?}"), records, image)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The heart of the suite: fork-at-k equals never-stopping, for
    /// arbitrary platforms, workloads and split points — including split
    /// at 0 (fork before the first command) and past the end (fork of a
    /// finished session).
    #[test]
    fn fork_is_byte_identical_to_the_continuous_run(
        channels in prop::sample::select(vec![1u32, 2, 4]),
        ways in prop::sample::select(vec![1u32, 2]),
        seed in 1u64..1_000,
        ftl_mode in prop::sample::select(vec![FtlMode::WafAbstraction, FtlMode::PageMapped]),
        pattern in prop::sample::select(vec![
            AccessPattern::SequentialWrite,
            AccessPattern::RandomWrite,
            AccessPattern::RandomRead,
            AccessPattern::SequentialRead,
        ]),
        commands in 24u64..72,
        split_num in 0u64..=10,
    ) {
        let cfg = config(channels, ways, seed, ftl_mode);
        let w = workload(pattern, commands, seed ^ 0x5eed);
        let cutoff = SteadyStateCutoff::Commands(commands / 4);
        // split ranges over 0..=commands+epsilon: 10/10 maps past the end.
        let split = commands * split_num / 9;

        let (cold_report, cold_log) = continuous(&cfg, &w, cutoff);
        let (fork_report, fork_records, _) = split_run(&cfg, &w, cutoff, split);

        prop_assert_eq!(&fork_report, &cold_report, "PerfReport diverged at split {}", split);
        prop_assert_eq!(fork_records.as_slice(), cold_log.records(), "completion records diverged");
    }

    /// Capture → fork → capture is a fixed point: the re-captured image is
    /// byte-identical, so every snapshot field round-trips exactly.
    #[test]
    fn capture_round_trips_to_identical_bytes(
        seed in 1u64..1_000,
        ftl_mode in prop::sample::select(vec![FtlMode::WafAbstraction, FtlMode::PageMapped]),
        split in 1u64..48,
    ) {
        let cfg = config(2, 2, seed, ftl_mode);
        let w = workload(AccessPattern::RandomWrite, 48, seed);
        let mut ssd = Ssd::try_new(cfg.clone()).unwrap();
        let image = {
            let mut session = ssd.session(&w);
            for _ in 0..split {
                session.step();
            }
            session.capture()
        };
        let mut forked = Ssd::try_new(cfg).unwrap();
        let session = SimSession::fork(&mut forked, &w, &image).unwrap();
        let again = session.capture();
        prop_assert_eq!(image.to_bytes(), again.to_bytes());
    }

    /// Truncating an image anywhere strictly before its end yields `Err`
    /// from header validation or from the fork — never a panic, never a
    /// silently resumed session.
    #[test]
    fn truncated_images_error_and_never_panic(
        seed in 1u64..500,
        cut_num in 0u64..=100,
    ) {
        let cfg = config(2, 1, seed, FtlMode::WafAbstraction);
        let w = workload(AccessPattern::SequentialWrite, 24, seed);
        let (_, _, image) = split_run(&cfg, &w, SteadyStateCutoff::None, 12);
        let full = image.to_bytes();
        let cut = (full.len() as u64 - 1) * cut_num / 100;
        let truncated = full[..cut as usize].to_vec();

        let failed = match Snapshot::from_bytes(&truncated) {
            Err(_) => true,
            Ok(snap) => {
                let mut ssd = Ssd::try_new(cfg).unwrap();
                SimSession::fork(&mut ssd, &w, &snap).is_err()
            }
        };
        prop_assert!(failed, "a truncated image must not restore");
    }

    /// Bit flips decode to `Err` or to a state the decoder's semantic
    /// validation accepted — either way, no panic and no corruption of the
    /// decode machinery. (A flip inside a plain counter payload can be
    /// indistinguishable from a legitimately different run; the contract
    /// is *never panic*, not *detect every flip* — the format carries no
    /// checksum by design, see ARCHITECTURE.md.)
    #[test]
    fn bit_flipped_images_never_panic(
        seed in 1u64..500,
        flip_num in 0u64..=997,
    ) {
        let cfg = config(2, 1, seed, FtlMode::PageMapped);
        let w = workload(AccessPattern::RandomWrite, 24, seed);
        let (_, _, image) = split_run(&cfg, &w, SteadyStateCutoff::None, 12);
        let mut bytes = image.to_bytes().to_vec();
        let bit = flip_num % (bytes.len() as u64 * 8);
        bytes[(bit / 8) as usize] ^= 1 << (bit % 8);

        if let Ok(snap) = Snapshot::from_bytes(&bytes) {
            let mut ssd = Ssd::try_new(cfg).unwrap();
            let _ = SimSession::fork(&mut ssd, &w, &snap);
        }
    }

    /// Arbitrary byte strings never decode: without the magic/version
    /// header they fail [`Snapshot::from_bytes`]; with a forged header the
    /// fork's signature and semantic validation reject them. No input
    /// panics.
    #[test]
    fn arbitrary_bytes_error_and_never_panic(
        body in prop::collection::vec(any::<u8>(), 0..256),
        forge_header in any::<bool>(),
    ) {
        let bytes = if forge_header {
            let mut forged = b"SSDX".to_vec();
            forged.push(SNAPSHOT_VERSION);
            forged.extend_from_slice(&body);
            forged
        } else {
            body
        };
        let cfg = config(2, 1, 7, FtlMode::WafAbstraction);
        let w = workload(AccessPattern::SequentialWrite, 8, 7);
        let failed = match Snapshot::from_bytes(&bytes) {
            Err(_) => true,
            Ok(snap) => {
                let mut ssd = Ssd::try_new(cfg).unwrap();
                SimSession::fork(&mut ssd, &w, &snap).is_err()
            }
        };
        prop_assert!(failed, "random bytes must never restore a session");
    }
}

/// A platform-only image ([`Ssd::capture`]) restores through
/// [`Ssd::restore`] and the restored platform replays the remainder of a
/// simulation identically; the session-carrying image is rejected by
/// `restore` and the platform-only image by `fork`, so the two entry
/// points cannot be crossed.
#[test]
fn platform_images_and_session_images_do_not_cross() {
    let cfg = config(2, 2, 11, FtlMode::WafAbstraction);
    let w = workload(AccessPattern::RandomWrite, 32, 11);

    let mut ssd = Ssd::try_new(cfg.clone()).unwrap();
    let platform_image = ssd.capture();
    let session_image = {
        let mut session = ssd.session(&w);
        for _ in 0..16 {
            session.step();
        }
        session.capture()
    };

    let mut other = Ssd::try_new(cfg).unwrap();
    assert!(matches!(
        other.restore(&session_image),
        Err(DecodeError::Invalid { .. })
    ));
    assert!(matches!(
        SimSession::fork(&mut other, &w, &platform_image),
        Err(DecodeError::Invalid { .. })
    ));
    other
        .restore(&platform_image)
        .expect("a platform image restores");
}

/// The replica explorer used by the warm-start legs: `replicas` identical
/// points (distinct labels, no-op mutators) over one platform, so all jobs
/// fall into a single warm-start group.
fn replica_explorer(replicas: usize, commands: u64, warm: bool) -> Explorer {
    let cfg = config(2, 2, 23, FtlMode::WafAbstraction);
    let mut axis = Axis::new("replica");
    for i in 0..replicas {
        axis = axis.point(format!("r{i}"), |_| {});
    }
    let warmup = SteadyStateCutoff::Commands(commands / 8 * 7);
    let mut explorer = Explorer::new(cfg)
        .over(axis)
        .steady_state(SteadyStateCutoff::Commands(commands / 8));
    if warm {
        explorer = explorer.warm_start(warmup);
    }
    explorer
}

/// Warm-start forks every replica from one shared image and the sweep —
/// sequential and parallel at 1, 2, 4 and 8 threads — stays byte-identical
/// to the cold run.
#[test]
fn warm_start_sweeps_are_byte_identical_at_every_thread_count() {
    const COMMANDS: u64 = 256;
    let w = workload(AccessPattern::RandomWrite, COMMANDS, 23);
    let cold = replica_explorer(4, COMMANDS, false).run(&w).unwrap();
    let warm_explorer = replica_explorer(4, COMMANDS, true);
    let warm = warm_explorer.run(&w).unwrap();
    assert_eq!(
        format!("{cold:?}"),
        format!("{warm:?}"),
        "sequential warm-start diverged"
    );
    for threads in [1, 2, 4, 8] {
        let parallel = ParallelExecutor::with_threads(threads)
            .run(&warm_explorer, &w)
            .unwrap();
        assert_eq!(
            format!("{cold:?}"),
            format!("{parallel:?}"),
            "warm-start diverged at {threads} threads"
        );
    }
}

/// Warmup runs once per group: every replica's job holds the *same* `Arc`
/// to the warmup image, while a point with a different configuration gets
/// its own.
#[test]
fn warm_start_shares_one_image_per_configuration_group() {
    const COMMANDS: u64 = 64;
    let w = workload(AccessPattern::RandomWrite, COMMANDS, 23);
    let jobs = replica_explorer(3, COMMANDS, true).warmed_jobs(&w).unwrap();
    assert_eq!(jobs.len(), 3);
    let first = jobs[0].warm_image().expect("warm-start attaches an image");
    for job in &jobs[1..] {
        let image = job.warm_image().expect("every replica is warmed");
        assert!(
            std::sync::Arc::ptr_eq(first, image),
            "replicas of one configuration must share one warmup image"
        );
    }

    // A second axis that *does* mutate the configuration splits the groups.
    let cfg = config(2, 2, 23, FtlMode::WafAbstraction);
    let explorer = Explorer::new(cfg)
        .over(Axis::over("seed", [1u64, 2], |c, &s| c.seed = s))
        .warm_start(SteadyStateCutoff::Commands(8));
    let jobs = explorer.warmed_jobs(&w).unwrap();
    assert_eq!(jobs.len(), 2);
    assert!(
        !std::sync::Arc::ptr_eq(jobs[0].warm_image().unwrap(), jobs[1].warm_image().unwrap()),
        "different configurations must not share a warmup image"
    );
}

/// Wall-clock sanity: with the warmup at 7/8 of the stream and 6 replicas,
/// the warm sweep simulates ~1.75 stream-lengths against the cold sweep's
/// 6, so it must be measurably faster. Generous margin: warm merely has to
/// beat cold, not hit the theoretical ratio. The wall clock is the
/// observable under test here — it never feeds a simulated outcome — so
/// the two `Instant` reads below carry `no-wall-clock` allows.
#[test]
fn warm_start_runs_the_warmup_once() {
    const COMMANDS: u64 = 4096;
    let w = workload(AccessPattern::RandomWrite, COMMANDS, 23);
    let cold_explorer = replica_explorer(6, COMMANDS, false);
    let warm_explorer = replica_explorer(6, COMMANDS, true);

    // Untimed passes first, so neither leg pays one-time warmup costs
    // (lazy wear maps, allocator pools) inside its measurement window.
    let cold_sweep = cold_explorer.run(&w).unwrap();
    let warm_sweep = warm_explorer.run(&w).unwrap();
    assert_eq!(format!("{cold_sweep:?}"), format!("{warm_sweep:?}"));

    // ssdx-lint::allow(no-wall-clock): the elapsed time IS the assertion —
    // warm-start exists to cut wall-clock cost, nothing simulated reads it.
    let started = std::time::Instant::now();
    let _ = cold_explorer.run(&w).unwrap();
    let cold_elapsed = started.elapsed();

    // ssdx-lint::allow(no-wall-clock): second leg of the same measurement.
    let started = std::time::Instant::now();
    let _ = warm_explorer.run(&w).unwrap();
    let warm_elapsed = started.elapsed();

    assert!(
        warm_elapsed < cold_elapsed,
        "warm-start re-ran the warmup: warm {warm_elapsed:?} vs cold {cold_elapsed:?}"
    );
}

/// Format pin: the canonical run below must keep producing the committed
/// version-1 image byte for byte. Any wire-format change — field order,
/// width, a new field — fails this comparison and therefore **must** bump
/// [`SNAPSHOT_VERSION`], regenerate the fixture (`REGENERATE_GOLDEN=1`,
/// renaming it to match the new version), and keep the old version's
/// rejection explicit in [`Snapshot::from_bytes`].
#[test]
fn golden_v1_image_still_decodes_and_still_matches() {
    const GOLDEN_PATH: &str = "tests/golden/snapshot_v1.bin";
    let cfg = config(2, 2, 42, FtlMode::PageMapped);
    let w = workload(AccessPattern::RandomWrite, 64, 42);
    let (_, _, image) = split_run(&cfg, &w, SteadyStateCutoff::Commands(8), 32);

    if std::env::var_os("REGENERATE_GOLDEN").is_some() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_PATH, image.to_bytes()).unwrap();
        eprintln!(
            "regenerated {GOLDEN_PATH} ({} bytes)",
            image.to_bytes().len()
        );
        return;
    }

    let golden = std::fs::read(GOLDEN_PATH)
        .expect("golden image missing — run with REGENERATE_GOLDEN=1 on a known-good tree");
    let golden = Snapshot::from_bytes(&golden).expect("the committed golden image decodes");
    assert_eq!(golden.version(), SNAPSHOT_VERSION);
    assert_eq!(
        golden.to_bytes(),
        image.to_bytes(),
        "the snapshot wire format changed: bump SNAPSHOT_VERSION and \
         regenerate the fixture under the new version's file name"
    );

    // The committed bytes are not just equal, they still *work*: forking
    // from the golden image finishes identically to the continuous run.
    let (cold_report, _) = continuous(&cfg, &w, SteadyStateCutoff::Commands(8));
    let mut ssd = Ssd::try_new(cfg).unwrap();
    let session = SimSession::fork(&mut ssd, &w, &golden).unwrap();
    let report = session.finish();
    assert_eq!(format!("{report:?}"), cold_report);
}

/// Blindness guard: the snapshot's state inventory and the ssdx-lint
/// layering table must list exactly the same crates, so adding a crate to
/// the workspace forces an explicit snapshot-coverage decision (a carrier
/// type, or an audited "stateless" entry).
#[test]
fn state_inventory_covers_every_layered_crate() {
    let mut inventory: Vec<&str> = STATE_INVENTORY.iter().map(|e| e.crate_name).collect();
    let mut layered: Vec<&str> = ssdx_lint::LAYERS.iter().map(|c| c.name).collect();
    inventory.sort_unstable();
    layered.sort_unstable();
    assert_eq!(
        inventory, layered,
        "crates/core/src/snapshot.rs STATE_INVENTORY must cover exactly the \
         ssdx-lint LAYERS table: audit the new crate's mutable state and add \
         an entry (or prune the stale one)"
    );
}
