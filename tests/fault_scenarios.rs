//! Fault-scenario equivalence suite.
//!
//! The fault campaign's correctness claim extends the platform's
//! determinism contract to degraded devices: injecting faults adds **no**
//! entropy source, so a faulty run is exactly as reproducible as a healthy
//! one. Every test here pins some face of that claim:
//!
//! * **Schedule determinism** (property): any fault schedule — read-disturb
//!   growth, retention scaling, block retirement, mid-GC power loss, on an
//!   optionally aged platform — crossed with arbitrary topologies and
//!   workloads produces byte-identical `PerfReport` renderings and
//!   completion records across repeated runs.
//! * **Fork ≡ continuous under faults** (property): splitting a faulty
//!   session at an arbitrary command via
//!   [`SimSession::capture`]/[`SimSession::fork`] reproduces the
//!   continuous run exactly — including split points before, at and after
//!   the power-loss trigger, whose command-index key is snapshot state.
//! * **Trigger pinning**: the power-loss recovery replay fires exactly once
//!   even when the session is captured and forked at the trigger itself.

use proptest::prelude::*;
use ssdx_core::{
    CommandRecord, CompletionLog, FaultConfig, FtlMode, SimSession, Ssd, SsdConfig,
    SteadyStateCutoff,
};
use ssdx_hostif::{AccessPattern, Workload};

fn config(channels: u32, ways: u32, seed: u64, faults: FaultConfig) -> SsdConfig {
    SsdConfig::builder("faulty")
        .topology(channels, ways, 1)
        .dram_buffers(channels)
        .dram_buffer_capacity(128 * 1024)
        .ftl_mode(FtlMode::PageMapped)
        .seed(seed)
        .faults(faults)
        .build()
        .expect("the swept fault topologies validate")
}

/// A small footprint so garbage collection — and with it retirement and
/// mid-GC power loss — actually happens within the short swept streams.
fn workload(pattern: AccessPattern, commands: u64, seed: u64) -> Workload {
    Workload::builder(pattern)
        .command_count(commands)
        .footprint_bytes(1 << 20)
        .seed(seed)
        .build()
}

/// Runs the full stream in one session on a platform aged to `endurance`,
/// returning the report rendering and every completion record.
fn continuous(
    cfg: &SsdConfig,
    w: &Workload,
    endurance: f64,
    cutoff: SteadyStateCutoff,
) -> (String, CompletionLog) {
    let mut log = CompletionLog::new();
    let mut ssd = Ssd::try_new(cfg.clone()).unwrap();
    ssd.age_to_normalized(endurance);
    let mut session = ssd.session(w);
    session.steady_state(cutoff);
    session.attach(&mut log);
    let report = session.finish();
    (format!("{report:?}"), log)
}

/// Runs `split` commands on an aged platform, captures, then forks a fresh
/// **un-aged** platform from the image and finishes there: the wear state
/// injected by aging (and everything the fault schedule did to it) must
/// travel inside the image.
fn split_run(
    cfg: &SsdConfig,
    w: &Workload,
    endurance: f64,
    cutoff: SteadyStateCutoff,
    split: u64,
) -> (String, Vec<CommandRecord>) {
    let mut head = CompletionLog::new();
    let mut ssd = Ssd::try_new(cfg.clone()).unwrap();
    ssd.age_to_normalized(endurance);
    let image = {
        let mut session = ssd.session(w);
        session.steady_state(cutoff);
        session.attach(&mut head);
        for _ in 0..split {
            if session.step().is_none() {
                break;
            }
        }
        session.capture()
    };

    let mut tail = CompletionLog::new();
    let mut forked = Ssd::try_new(cfg.clone()).unwrap();
    let mut session = SimSession::fork(&mut forked, w, &image)
        .expect("a freshly captured faulty image forks onto an identical platform");
    session.attach(&mut tail);
    let report = session.finish();

    let mut records = head.records().to_vec();
    records.extend_from_slice(tail.records());
    (format!("{report:?}"), records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any fault schedule × topology × workload is byte-deterministic
    /// across repeated runs and across an arbitrary capture→fork split
    /// point — the campaign's determinism contract, stated as a property.
    #[test]
    fn fault_schedules_are_byte_deterministic_across_runs_and_forks(
        channels in prop::sample::select(vec![1u32, 2]),
        ways in prop::sample::select(vec![1u32, 2]),
        seed in 1u64..1_000,
        read_disturb in prop::sample::select(vec![0.0f64, 0.02, 0.25]),
        retention in prop::sample::select(vec![1.0f64, 2.0, 4.0]),
        retire_limit in prop::sample::select(vec![u64::MAX, 1, 3]),
        endurance in prop::sample::select(vec![0.0f64, 0.8]),
        pattern in prop::sample::select(vec![
            AccessPattern::SequentialWrite,
            AccessPattern::RandomWrite,
            AccessPattern::RandomRead,
        ]),
        commands in 24u64..72,
        power_loss_num in 0u64..=10,
        split_num in 0u64..=10,
    ) {
        // power_loss_num 0 disables the fault; 1..=10 spreads the trigger
        // across the stream (including past the end, where it never fires).
        let power_loss_at = match power_loss_num {
            0 => u64::MAX,
            n => commands * (n - 1) / 9 + 1,
        };
        let faults = FaultConfig {
            read_disturb_per_read: read_disturb,
            retention_scale: retention,
            retire_pe_limit: retire_limit,
            power_loss_at,
        };
        let cfg = config(channels, ways, seed, faults);
        let w = workload(pattern, commands, seed ^ 0xfa17);
        let cutoff = SteadyStateCutoff::Commands(commands / 4);
        // split ranges over 0..=commands+epsilon: 10/10 maps past the end.
        let split = commands * split_num / 9;

        let (first_report, first_log) = continuous(&cfg, &w, endurance, cutoff);
        let (second_report, second_log) = continuous(&cfg, &w, endurance, cutoff);
        prop_assert_eq!(&second_report, &first_report, "repeated runs diverged");
        prop_assert_eq!(second_log.records(), first_log.records());

        let (fork_report, fork_records) = split_run(&cfg, &w, endurance, cutoff, split);
        prop_assert_eq!(
            &fork_report, &first_report,
            "fork diverged at split {} with power loss at {}", split, power_loss_at
        );
        prop_assert_eq!(fork_records.as_slice(), first_log.records());
    }
}

/// The power-loss trigger keys on the snapshot-encoded command cursor, so
/// capturing and forking immediately before, at, or after the trigger
/// replays the outage exactly once — never twice, never zero times.
#[test]
fn forking_around_the_power_loss_trigger_is_equivalent() {
    let faults = FaultConfig {
        power_loss_at: 16,
        ..FaultConfig::healthy()
    };
    let cfg = config(2, 2, 77, faults);
    let w = workload(AccessPattern::RandomWrite, 48, 77);
    let cutoff = SteadyStateCutoff::Commands(8);
    let (cold_report, cold_log) = continuous(&cfg, &w, 0.0, cutoff);
    for split in [15, 16, 17] {
        let (report, records) = split_run(&cfg, &w, 0.0, cutoff, split);
        assert_eq!(
            report, cold_report,
            "power-loss replay diverged when forked at command {split}"
        );
        assert_eq!(records.as_slice(), cold_log.records());
    }
}

/// A degraded device is still a *different* device: the same platform with
/// and without an aggressive fault schedule must not produce identical
/// reports (otherwise the injection is silently wired to nothing).
#[test]
fn fault_schedules_actually_change_the_simulation() {
    let healthy = config(2, 2, 9, FaultConfig::healthy());
    let degraded = config(
        2,
        2,
        9,
        FaultConfig {
            read_disturb_per_read: 0.5,
            retention_scale: 4.0,
            retire_pe_limit: 1,
            power_loss_at: 24,
        },
    );
    let w = workload(AccessPattern::RandomWrite, 96, 9);
    let cutoff = SteadyStateCutoff::None;
    let (healthy_report, _) = continuous(&healthy, &w, 0.8, cutoff);
    let (degraded_report, _) = continuous(&degraded, &w, 0.8, cutoff);
    assert_ne!(
        healthy_report, degraded_report,
        "an aggressive fault schedule must be observable in the report"
    );
}
