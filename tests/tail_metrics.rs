//! Property and integration tests for the tail-latency metrics subsystem.
//!
//! The log-bucketed [`LatencyHistogram`] trades exactness for fixed memory
//! and zero allocations; these properties pin the trade precisely: every
//! quantile it reports is within one bucket's relative error
//! (`LatencyHistogram::RELATIVE_ERROR`) above the exact sorted-vector
//! quantile, and `merge` is exact — associative, commutative and
//! indistinguishable from having recorded every sample into one histogram.
//! The integration half asserts the end-to-end flow: the tail-latency
//! study is deterministic byte for byte and its per-class counts match the
//! workload mixes that produced them.

use proptest::prelude::*;
use ssdexplorer::core::{
    metrics, ClassHistograms, CommandClass, LatencyHistogram, SsdConfig, SteadyStateCutoff,
};
use ssdexplorer::hostif::{CommandSource, HostOp, RmwWorkload, ZipfianWorkload};
use ssdexplorer::sim::SimTime;

/// Exact quantile of a sorted sample vector, using the same rank convention
/// as the histogram (`ceil(q * n)`, clamped to at least rank 1).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil().max(1.0)) as usize;
    sorted[rank - 1]
}

/// Samples spanning every histogram regime: exact sub-32 ns values,
/// microsecond-scale latencies and multi-second outliers. Bounded below
/// `u64::MAX / 1000` so `SimTime::from_ns` cannot overflow.
fn sample_strategy() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            0u64..64,
            64u64..100_000,
            100_000u64..10_000_000_000,
            10_000_000_000u64..1_000_000_000_000_000,
        ],
        1..300,
    )
}

fn histogram_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &ns in samples {
        h.record(SimTime::from_ns(ns));
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantiles_match_exact_quantiles_within_one_bucket(samples in sample_strategy()) {
        let h = histogram_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let approx = h.quantile(q).as_ns();
            // The histogram resolves to the upper bound of the bucket
            // holding the rank, clamped to the observed maximum: never
            // below the exact value, and above it by at most one bucket's
            // relative error (1/32 of the value, +1 for integer rounding).
            prop_assert!(approx >= exact, "q={q}: approx {approx} < exact {exact}");
            let bound = exact + exact / 32 + 1;
            prop_assert!(
                approx <= bound,
                "q={q}: approx {approx} > error bound {bound} (exact {exact})"
            );
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.min().as_ns(), sorted[0]);
        prop_assert_eq!(h.max().as_ns(), sorted[sorted.len() - 1]);
    }

    #[test]
    fn merge_is_associative_and_order_independent(
        a in sample_strategy(),
        b in sample_strategy(),
        c in sample_strategy(),
    ) {
        let (ha, hb, hc) = (histogram_of(&a), histogram_of(&b), histogram_of(&c));

        // (a ∪ b) ∪ c == a ∪ (b ∪ c), comparing full histogram state.
        let mut left = ha;
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb;
        bc.merge(&hc);
        let mut right = ha;
        right.merge(&bc);
        prop_assert_eq!(left, right);

        // a ∪ b == b ∪ a.
        let mut ab = ha;
        ab.merge(&hb);
        let mut ba = hb;
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);

        // Merging shards is indistinguishable from one big recording pass.
        let mut all: Vec<u64> = a.clone();
        all.extend(&b);
        let one_pass = histogram_of(&all);
        prop_assert_eq!(ab, one_pass);

        // The empty histogram is the merge identity.
        let mut with_empty = one_pass;
        with_empty.merge(&LatencyHistogram::new());
        prop_assert_eq!(with_empty, one_pass);
    }
}

#[test]
fn tail_latency_study_is_deterministic_byte_for_byte() {
    let base = SsdConfig::builder("tails-det")
        .topology(4, 2, 2)
        .dram_buffers(4)
        .dram_buffer_capacity(128 * 1024)
        .build()
        .unwrap();
    let run = || {
        metrics::tail_latency_study(&base, 1_024, SteadyStateCutoff::Commands(128))
            .expect("the study configuration validates")
    };
    let (a, b) = (run(), run());
    assert_eq!(a.to_table(), b.to_table());
    assert_eq!(a.to_json(), b.to_json());
    assert_eq!(format!("{:?}", a.sweep), format!("{:?}", b.sweep));

    // Four workloads, in suite order, led by the workload axis.
    assert_eq!(a.sweep.axes, vec!["workload".to_string()]);
    let labels: Vec<_> = a
        .sweep
        .points
        .iter()
        .map(|p| p.value("workload").unwrap().to_string())
        .collect();
    assert_eq!(labels, vec!["zipf-0.99", "bursty", "mixed", "rmw"]);
    // Every workload reports all four headline percentiles for each class
    // it actually exercises, monotonically ordered.
    for point in &a.sweep.points {
        let tails = point.report.tails();
        assert!(tails.iter().any(|t| t.count > 0));
        for tail in tails.into_iter().filter(|t| t.count > 0) {
            assert!(tail.p50 <= tail.p95);
            assert!(tail.p95 <= tail.p99);
            assert!(tail.p99 <= tail.p999);
            assert!(tail.p999 <= tail.max);
        }
    }
}

#[test]
fn study_class_counts_match_the_workload_mixes() {
    let base = SsdConfig::builder("tails-counts")
        .topology(4, 2, 2)
        .dram_buffers(4)
        .build()
        .unwrap();
    let commands = 1_024;
    let warmup = 128;
    let study =
        metrics::tail_latency_study(&base, commands, SteadyStateCutoff::Commands(warmup)).unwrap();
    for point in &study.sweep.points {
        let read = point.report.tail(CommandClass::Read).count;
        let write = point.report.tail(CommandClass::Write).count;
        let trim = point.report.tail(CommandClass::Trim).count;
        assert_eq!(
            read + write + trim,
            commands - warmup,
            "{}: every post-warmup completion lands in exactly one class",
            point.label()
        );
        assert_eq!(trim, 0, "the generative suite issues no trims");
    }
    // The rmw point must split exactly half-and-half: one read + one write
    // per update, and the warmup trims matching halves of each.
    let rmw = study
        .sweep
        .points
        .iter()
        .find(|p| p.value("workload") == Some("rmw"))
        .unwrap();
    assert_eq!(
        rmw.report.tail(CommandClass::Read).count,
        rmw.report.tail(CommandClass::Write).count
    );
}

#[test]
fn session_tails_agree_with_an_exact_reference() {
    // Drive one zipfian session and recompute every percentile from the
    // raw per-command records: the histogram answer must sit within its
    // documented error bound of the exact answer.
    let zipf = ZipfianWorkload::new(0.9, 7)
        .command_count(1_500)
        .footprint_bytes(64 << 20)
        .read_fraction(0.6);
    let mut ssd = ssdexplorer::core::Ssd::try_new(
        SsdConfig::builder("tails-exact")
            .topology(4, 2, 2)
            .dram_buffers(4)
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut log = ssdexplorer::core::CompletionLog::new();
    let mut session = ssd.session(&zipf);
    session.attach(&mut log);
    let report = session.finish();

    for class in [CommandClass::Read, CommandClass::Write] {
        let mut exact: Vec<u64> = log
            .records()
            .iter()
            .filter(|r| CommandClass::from(r.command.op) == class)
            .map(|r| r.latency().as_ns())
            .collect();
        exact.sort_unstable();
        let tail = report.tail(class);
        assert_eq!(tail.count, exact.len() as u64);
        for (q, approx) in [(0.5, tail.p50), (0.99, tail.p99), (0.999, tail.p999)] {
            let reference = exact_quantile(&exact, q);
            let approx = approx.as_ns();
            assert!(approx >= reference);
            assert!(
                approx <= reference + reference / 32 + 1,
                "{class:?} q={q}: {approx} vs exact {reference}"
            );
        }
    }
}

#[test]
fn generative_sources_feed_any_simulation_entry_point() {
    // The suite's sources are ordinary CommandSources: one-shot simulate,
    // stepped sessions and sweeps all accept them.
    let rmw = RmwWorkload::new(3).updates(64).footprint_bytes(8 << 20);
    let mut ssd = ssdexplorer::core::Ssd::try_new(SsdConfig::default()).unwrap();
    let one_shot = ssd.simulate(&rmw);
    assert_eq!(one_shot.commands, 128);
    assert_eq!(one_shot.workload, "rmw");

    let mut classes = ClassHistograms::new();
    for op in [HostOp::Read, HostOp::Write] {
        classes.record(op, SimTime::from_us(10));
    }
    assert_eq!(classes.count(), 2);

    // Stepping reproduces the one-shot run byte for byte (the session
    // contract), generative sources included.
    let mut ssd2 = ssdexplorer::core::Ssd::try_new(SsdConfig::default()).unwrap();
    let mut session = ssd2.session(&rmw);
    while session.step().is_some() {}
    let stepped = session.finish();
    assert_eq!(format!("{one_shot:?}"), format!("{stepped:?}"));
    assert_eq!(one_shot.class_latency, stepped.class_latency);
    assert_eq!(CommandSource::commands(&rmw).len(), 128);
}
