//! Integration tests for the session-based execution API: `CommandSource`
//! genericity, `SimSession` step/finish equivalence, probe ordering, and
//! the deprecated shims' fidelity to the new generic path.

use proptest::prelude::*;
use ssdexplorer::core::{
    CommandRecord, CompletionLog, PerfReport, Probe, SessionSnapshot, Ssd, SsdConfig,
};
use ssdexplorer::ftl::WorkloadMix;
use ssdexplorer::hostif::{
    source_fn, AccessPattern, CommandSource, CommandStream, HostCommand, HostOp, TracePlayer,
    Workload,
};
use ssdexplorer::sim::SimTime;

fn small_config(name: &str) -> SsdConfig {
    SsdConfig::builder(name)
        .topology(4, 2, 2)
        .dram_buffers(4)
        .dram_buffer_capacity(128 * 1024)
        .build()
        .expect("valid test configuration")
}

fn fingerprint(report: &PerfReport) -> String {
    format!("{report:?}")
}

#[test]
fn session_probe_callbacks_arrive_in_order() {
    /// A probe that asserts the documented ordering contract while the run
    /// is still in flight.
    #[derive(Default)]
    struct OrderingProbe {
        next_index: u64,
        snapshots_seen: usize,
        finished: bool,
    }
    impl Probe for OrderingProbe {
        fn on_command(&mut self, record: &CommandRecord) {
            assert!(!self.finished, "no command may follow on_finish");
            assert_eq!(
                record.index, self.next_index,
                "records arrive in stream order"
            );
            assert!(record.completed_at >= record.admitted_at);
            self.next_index += 1;
        }
        fn on_snapshot(&mut self, snapshot: &SessionSnapshot) {
            assert!(!self.finished, "no snapshot may follow on_finish");
            assert_eq!(
                snapshot.commands_completed, self.next_index,
                "snapshots reflect the commands already delivered"
            );
            self.snapshots_seen += 1;
        }
        fn on_finish(&mut self, report: &PerfReport) {
            assert_eq!(
                report.commands, self.next_index,
                "finish fires after every command"
            );
            self.finished = true;
        }
    }

    let w = Workload::builder(AccessPattern::SequentialWrite)
        .command_count(160)
        .build();
    let mut ssd = Ssd::new(small_config("ordering"));
    let mut probe = OrderingProbe::default();
    let mut session = ssd.session(&w);
    session.attach(&mut probe);
    session.sample_every(50);
    let report = session.finish();

    assert!(probe.finished);
    assert_eq!(probe.next_index, 160);
    assert_eq!(probe.snapshots_seen, 3);
    assert_eq!(report.commands, 160);
}

#[test]
fn multiple_probes_all_observe_the_run() {
    let w = Workload::builder(AccessPattern::SequentialWrite)
        .command_count(64)
        .build();
    let mut ssd = Ssd::new(small_config("multi-probe"));
    let mut a = CompletionLog::new();
    let mut b = CompletionLog::new();
    let mut session = ssd.session(&w);
    session.attach(&mut a);
    session.attach(&mut b);
    let _ = session.finish();
    assert_eq!(a.records().len(), 64);
    assert_eq!(b.records().len(), 64);
    assert!(a.is_finished() && b.is_finished());
}

#[test]
#[allow(deprecated)]
fn deprecated_run_shim_matches_simulate() {
    for pattern in AccessPattern::all() {
        let w = Workload::builder(pattern)
            .command_count(256)
            .footprint_bytes(64 << 20)
            .build();
        let legacy = Ssd::new(small_config("legacy")).run(&w);
        let generic = Ssd::new(small_config("legacy")).simulate(&w);
        assert_eq!(
            fingerprint(&legacy),
            fingerprint(&generic),
            "{pattern:?}: run() must be a faithful shim"
        );
    }
}

#[test]
#[allow(deprecated)]
fn deprecated_run_trace_shim_matches_simulate() {
    let mut text = String::new();
    for i in 0..128u64 {
        // A mixed trace with a non-contiguous write every fourth command.
        let offset = if i % 4 == 0 { i * 1_048_576 } else { i * 4096 };
        let op = if i % 8 == 0 { "read" } else { "write" };
        text.push_str(&format!("{} {} {} 4096\n", i, op, offset));
    }
    let trace = TracePlayer::parse(&text).expect("trace parses");
    let legacy = Ssd::new(small_config("trace")).run_trace(&trace);
    let generic = Ssd::new(small_config("trace")).simulate(&trace);
    assert_eq!(fingerprint(&legacy), fingerprint(&generic));
}

#[test]
#[allow(deprecated)]
fn deprecated_run_commands_shim_matches_a_pinned_command_stream() {
    let commands: Vec<HostCommand> = (0..96)
        .map(|i| HostCommand {
            id: i,
            op: HostOp::Write,
            offset: i * 4096,
            bytes: 4096,
            issue_at: SimTime::ZERO,
        })
        .collect();
    let mix = WorkloadMix::mixed(0.4);
    let legacy = Ssd::new(small_config("cmds")).run_commands("mine", &commands, mix);
    let stream = CommandStream::new("mine", commands).with_random_write_fraction(0.4);
    let generic = Ssd::new(small_config("cmds")).simulate(&stream);
    assert_eq!(fingerprint(&legacy), fingerprint(&generic));
    assert_eq!(legacy.workload, "mine");
}

#[test]
fn closure_sources_run_through_the_same_pipeline_as_explicit_streams() {
    let generator = source_fn("gen", 128, |i| HostCommand {
        id: i,
        op: HostOp::Write,
        offset: i * 4096,
        bytes: 4096,
        issue_at: SimTime::ZERO,
    });
    let explicit = CommandStream::new("gen", generator.commands().into_owned());
    let a = Ssd::new(small_config("closure")).simulate(&generator);
    let b = Ssd::new(small_config("closure")).simulate(&explicit);
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn boxed_dyn_sources_are_accepted() {
    let sources: Vec<Box<dyn CommandSource>> = vec![
        Box::new(
            Workload::builder(AccessPattern::SequentialWrite)
                .command_count(32)
                .build(),
        ),
        Box::new(TracePlayer::parse("0 write 0 4096\n1 read 0 4096\n").unwrap()),
    ];
    let mut ssd = Ssd::new(small_config("dyn"));
    for source in &sources {
        let report = ssd.simulate(source.as_ref());
        assert!(report.commands > 0);
    }
}

proptest! {
    // Full-pipeline properties are expensive; keep the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole equivalence: stepping a session to completion is
    /// byte-identical to the one-shot path, for every pattern, topology and
    /// seed, including an interleaving of step() and run_until().
    #[test]
    fn stepped_sessions_are_byte_identical_to_one_shot_runs(
        channels in 1u32..5,
        ways in 1u32..4,
        pattern_idx in 0usize..4,
        commands in 32u64..160,
        seed in any::<u64>(),
    ) {
        let pattern = AccessPattern::all()[pattern_idx];
        let config = || {
            SsdConfig::builder("prop-session")
                .topology(channels, ways, 2)
                .dram_buffers(channels)
                .dram_buffer_capacity(64 * 1024)
                .build()
                .expect("topology is valid")
        };
        let w = Workload::builder(pattern)
            .command_count(commands)
            .footprint_bytes(32 << 20)
            .seed(seed)
            .build();

        let one_shot = Ssd::new(config()).simulate(&w);

        let mut ssd = Ssd::new(config());
        let mut session = ssd.session(&w);
        // Interleave the driving styles: a few manual steps, a deadline
        // chunk, then drain via finish().
        for _ in 0..commands / 4 {
            prop_assert!(session.step().is_some());
        }
        session.run_until(session.now() + SimTime::from_us(200));
        let stepped = session.finish();

        prop_assert_eq!(fingerprint(&one_shot), fingerprint(&stepped));
    }

    /// Session accounting stays consistent at every step.
    #[test]
    fn session_progress_counters_always_add_up(
        commands in 16u64..96,
        pattern_idx in 0usize..4,
    ) {
        let pattern = AccessPattern::all()[pattern_idx];
        let w = Workload::builder(pattern)
            .command_count(commands)
            .footprint_bytes(16 << 20)
            .build();
        let mut ssd = Ssd::new(small_config("prop-counters"));
        let mut session = ssd.session(&w);
        let mut last_now = SimTime::ZERO;
        let mut seen = 0u64;
        while let Some(record) = session.step() {
            prop_assert_eq!(record.index, seen);
            seen += 1;
            prop_assert_eq!(session.completed(), seen);
            prop_assert_eq!(session.completed() + session.remaining(), commands);
            // The session clock never runs backwards.
            prop_assert!(session.now() >= last_now);
            last_now = session.now();
        }
        prop_assert!(session.is_done());
        let report = session.finish();
        prop_assert_eq!(report.commands, commands);
        prop_assert_eq!(report.elapsed, last_now);
    }
}
