//! Resource-reservation primitives used to model shared hardware blocks.
//!
//! A [`Resource`] models a single-ported hardware unit (a bus, a DMA engine,
//! a NAND die, …): requests are served first-come-first-served and a request
//! arriving while the unit is busy waits until it frees up. A
//! [`MultiResource`] models a pool of identical servers (e.g. the per-channel
//! ECC decoder pipelines).
//!
//! Reservations return a [`Grant`] describing when service actually starts
//! and ends, so callers can chain stages of a pipeline by feeding one grant's
//! `end` into the next stage's earliest start.

use crate::codec::{DecodeError, Decoder, Encoder};
use crate::stats::Utilization;
use crate::time::SimTime;

/// The outcome of reserving a resource: when service started and ended, and
/// how long the request waited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Instant at which service began (>= requested time).
    pub start: SimTime,
    /// Instant at which service completed.
    pub end: SimTime,
    /// Queueing delay suffered before service began.
    pub wait: SimTime,
}

impl Grant {
    /// Total time from the request instant to completion.
    pub fn latency(&self) -> SimTime {
        self.wait + (self.end - self.start)
    }
}

/// A single-ported, first-come-first-served resource.
///
/// # Example
///
/// ```
/// use ssdx_sim::{Resource, SimTime};
/// let mut dma = Resource::new("pp-dma");
/// let g1 = dma.reserve(SimTime::ZERO, SimTime::from_us(10));
/// let g2 = dma.reserve(SimTime::from_us(3), SimTime::from_us(10));
/// assert_eq!(g2.start, g1.end);
/// assert_eq!(g2.wait, SimTime::from_us(7));
/// ```
#[derive(Debug, Clone)]
pub struct Resource {
    name: String,
    free_at: SimTime,
    util: Utilization,
    served: u64,
}

impl Resource {
    /// Creates an idle resource with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Resource {
            name: name.into(),
            free_at: SimTime::ZERO,
            util: Utilization::new(),
            served: 0,
        }
    }

    /// Diagnostic name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The earliest instant at which the resource is idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Number of requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Reserves the resource for `duration`, starting no earlier than `at`.
    ///
    /// Returns the grant describing the actual service window.
    pub fn reserve(&mut self, at: SimTime, duration: SimTime) -> Grant {
        let start = at.max(self.free_at);
        let end = start + duration;
        self.free_at = end;
        self.util.add_busy(duration);
        self.served += 1;
        Grant {
            start,
            end,
            wait: start - at,
        }
    }

    /// Reserves the resource only if it is idle at `at`; otherwise returns
    /// `None` and leaves the resource untouched.
    pub fn try_reserve(&mut self, at: SimTime, duration: SimTime) -> Option<Grant> {
        if self.free_at > at {
            return None;
        }
        Some(self.reserve(at, duration))
    }

    /// Fraction of time the resource was busy up to `horizon`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.util.ratio(horizon)
    }

    /// Total busy time accumulated so far.
    pub fn busy_time(&self) -> SimTime {
        self.util.busy()
    }

    /// Resets the resource to idle at time zero, clearing statistics.
    pub fn reset(&mut self) {
        self.free_at = SimTime::ZERO;
        self.util = Utilization::new();
        self.served = 0;
    }

    /// Encodes the mutable state, in stable field order:
    /// `free_at`, `util`, `served`. The diagnostic name is
    /// construction-derived and deliberately not part of the snapshot.
    pub fn encode_state(&self, enc: &mut Encoder) {
        enc.put_time(self.free_at);
        self.util.encode_state(enc);
        enc.put_u64(self.served);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state) onto
    /// this (already constructed) resource.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input.
    pub fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        self.free_at = dec.get_time()?;
        self.util.decode_state(dec)?;
        self.served = dec.get_u64()?;
        Ok(())
    }
}

/// A pool of `n` identical single-ported servers; each request is assigned to
/// the server that frees up earliest.
///
/// # Example
///
/// ```
/// use ssdx_sim::{MultiResource, SimTime};
/// let mut decoders = MultiResource::new("bch-decoders", 2);
/// let a = decoders.reserve(SimTime::ZERO, SimTime::from_us(5));
/// let b = decoders.reserve(SimTime::ZERO, SimTime::from_us(5));
/// let c = decoders.reserve(SimTime::ZERO, SimTime::from_us(5));
/// assert_eq!(a.start, SimTime::ZERO);
/// assert_eq!(b.start, SimTime::ZERO);
/// assert_eq!(c.start, SimTime::from_us(5)); // both servers busy
/// ```
#[derive(Debug, Clone)]
pub struct MultiResource {
    name: String,
    servers: Vec<SimTime>,
    util: Utilization,
    served: u64,
}

impl MultiResource {
    /// Creates a pool of `servers` idle servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(name: impl Into<String>, servers: usize) -> Self {
        assert!(servers > 0, "a resource pool needs at least one server");
        MultiResource {
            name: name.into(),
            servers: vec![SimTime::ZERO; servers],
            util: Utilization::new(),
            served: 0,
        }
    }

    /// Diagnostic name given at construction.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of servers in the pool.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Number of requests served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Earliest instant at which at least one server is idle.
    pub fn earliest_free(&self) -> SimTime {
        self.servers.iter().copied().min().unwrap_or(SimTime::ZERO)
    }

    /// Reserves one server for `duration`, starting no earlier than `at`.
    pub fn reserve(&mut self, at: SimTime, duration: SimTime) -> Grant {
        let (idx, _) = self
            .servers
            .iter()
            .enumerate()
            .min_by_key(|(_, free)| **free)
            .expect("pool is non-empty");
        let start = at.max(self.servers[idx]);
        let end = start + duration;
        self.servers[idx] = end;
        self.util.add_busy(duration);
        self.served += 1;
        Grant {
            start,
            end,
            wait: start - at,
        }
    }

    /// Average per-server utilization up to `horizon`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        self.util.ratio(horizon) / self.servers.len() as f64
    }

    /// Resets every server to idle at time zero, clearing statistics.
    pub fn reset(&mut self) {
        for s in &mut self.servers {
            *s = SimTime::ZERO;
        }
        self.util = Utilization::new();
        self.served = 0;
    }

    /// Encodes the mutable state, in stable field order: server count,
    /// per-server `free_at`, `util`, `served`. The name is
    /// construction-derived and not snapshot state.
    pub fn encode_state(&self, enc: &mut Encoder) {
        enc.put_len(self.servers.len());
        for &s in &self.servers {
            enc.put_time(s);
        }
        self.util.encode_state(enc);
        enc.put_u64(self.served);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input or if the encoded server
    /// count differs from this pool's (the pool size is a configuration
    /// parameter, so a mismatch means the snapshot belongs to a different
    /// platform).
    pub fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        dec.get_exact_len(self.servers.len())?;
        for s in &mut self.servers {
            *s = dec.get_time()?;
        }
        self.util.decode_state(dec)?;
        self.served = dec.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_resource_serializes_overlapping_requests() {
        let mut r = Resource::new("bus");
        let g1 = r.reserve(SimTime::from_ns(0), SimTime::from_ns(100));
        let g2 = r.reserve(SimTime::from_ns(10), SimTime::from_ns(100));
        let g3 = r.reserve(SimTime::from_ns(500), SimTime::from_ns(100));
        assert_eq!(g1.end, SimTime::from_ns(100));
        assert_eq!(g2.start, SimTime::from_ns(100));
        assert_eq!(g2.wait, SimTime::from_ns(90));
        // A request arriving after the backlog drains starts immediately.
        assert_eq!(g3.start, SimTime::from_ns(500));
        assert_eq!(g3.wait, SimTime::ZERO);
        assert_eq!(r.served(), 3);
    }

    #[test]
    fn grant_latency_includes_wait() {
        let mut r = Resource::new("x");
        r.reserve(SimTime::ZERO, SimTime::from_ns(50));
        let g = r.reserve(SimTime::ZERO, SimTime::from_ns(30));
        assert_eq!(g.latency(), SimTime::from_ns(80));
    }

    #[test]
    fn try_reserve_fails_when_busy() {
        let mut r = Resource::new("x");
        r.reserve(SimTime::ZERO, SimTime::from_ns(100));
        assert!(r
            .try_reserve(SimTime::from_ns(50), SimTime::from_ns(10))
            .is_none());
        assert!(r
            .try_reserve(SimTime::from_ns(100), SimTime::from_ns(10))
            .is_some());
    }

    #[test]
    fn utilization_is_busy_over_horizon() {
        let mut r = Resource::new("x");
        r.reserve(SimTime::ZERO, SimTime::from_ns(250));
        let u = r.utilization(SimTime::from_ns(1000));
        assert!((u - 0.25).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_state() {
        let mut r = Resource::new("x");
        r.reserve(SimTime::ZERO, SimTime::from_ns(250));
        r.reset();
        assert_eq!(r.free_at(), SimTime::ZERO);
        assert_eq!(r.served(), 0);
        assert_eq!(r.busy_time(), SimTime::ZERO);
    }

    #[test]
    fn multi_resource_uses_all_servers() {
        let mut m = MultiResource::new("pool", 4);
        let dur = SimTime::from_us(10);
        let grants: Vec<Grant> = (0..8).map(|_| m.reserve(SimTime::ZERO, dur)).collect();
        let immediate = grants.iter().filter(|g| g.start == SimTime::ZERO).count();
        assert_eq!(immediate, 4);
        let queued = grants.iter().filter(|g| g.start == dur).count();
        assert_eq!(queued, 4);
        assert_eq!(m.server_count(), 4);
        assert_eq!(m.served(), 8);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_server_pool_is_rejected() {
        let _ = MultiResource::new("bad", 0);
    }

    #[test]
    fn multi_resource_earliest_free_tracks_min() {
        let mut m = MultiResource::new("pool", 2);
        m.reserve(SimTime::ZERO, SimTime::from_ns(100));
        assert_eq!(m.earliest_free(), SimTime::ZERO);
        m.reserve(SimTime::ZERO, SimTime::from_ns(40));
        assert_eq!(m.earliest_free(), SimTime::from_ns(40));
    }
}
