//! Performance-statistics collection: counters, throughput meters, latency
//! histograms and utilization trackers.
//!
//! These are the building blocks of the per-component performance breakdown
//! the virtual platform reports (the paper's `DDR+FLASH`, `SATA+DDR`, `SSD`
//! columns are all derived from throughput meters attached to different
//! pipeline stages).

use crate::codec::{DecodeError, Decoder, Encoder};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// A simple monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.count += 1;
    }

    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.count
    }
}

/// Accumulates bytes moved and converts them into MB/s over a horizon.
///
/// Throughput is reported in decimal megabytes per second (10^6 bytes), the
/// unit used throughout the paper's figures.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThroughputMeter {
    bytes: u64,
    ops: u64,
}

impl ThroughputMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        ThroughputMeter::default()
    }

    /// Records `bytes` moved by one operation.
    pub fn record(&mut self, bytes: u64) {
        self.bytes += bytes;
        self.ops += 1;
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total operations recorded.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Mean throughput in MB/s over `elapsed` simulated time.
    ///
    /// Returns 0 when no time has elapsed.
    pub fn mbps(&self, elapsed: SimTime) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.bytes as f64 / 1e6 / elapsed.as_secs_f64()
    }

    /// Mean I/O operations per second over `elapsed` simulated time.
    pub fn iops(&self, elapsed: SimTime) -> f64 {
        if elapsed.is_zero() {
            return 0.0;
        }
        self.ops as f64 / elapsed.as_secs_f64()
    }
}

/// Online latency statistics with logarithmic histogram buckets.
///
/// Buckets are powers of two of nanoseconds, which is plenty of resolution to
/// distinguish microsecond-scale interface latencies from millisecond-scale
/// NAND program times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

const BUCKETS: usize = 48;

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    fn bucket_for(ns: u64) -> usize {
        if ns == 0 {
            0
        } else {
            (64 - ns.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimTime) {
        let ns = latency.as_ns();
        self.buckets[Self::bucket_for(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, or zero if no samples were recorded.
    pub fn mean(&self) -> SimTime {
        if self.count == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_ns((self.sum_ns / self.count as u128) as u64)
    }

    /// Smallest recorded latency, or zero if no samples were recorded.
    pub fn min(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_ns(self.min_ns)
        }
    }

    /// Largest recorded latency.
    pub fn max(&self) -> SimTime {
        SimTime::from_ns(self.max_ns)
    }

    /// Approximate latency at percentile `p` (0–100), resolved to the upper
    /// bound of the histogram bucket containing that rank.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> SimTime {
        assert!((0.0..=100.0).contains(&p), "percentile must be in 0..=100");
        if self.count == 0 {
            return SimTime::ZERO;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper_ns = if i == 0 { 1 } else { 1u64 << i };
                return SimTime::from_ns(upper_ns.min(self.max_ns.max(1)));
            }
        }
        self.max()
    }

    /// Encodes the histogram, in stable field order: bucket array (length
    /// prefix + counts), `count`, `sum_ns`, `min_ns`, `max_ns`.
    pub fn encode_state(&self, enc: &mut Encoder) {
        enc.put_len(self.buckets.len());
        for &b in &self.buckets {
            enc.put_u64(b);
        }
        enc.put_u64(self.count);
        enc.put_u128(self.sum_ns);
        enc.put_u64(self.min_ns);
        enc.put_u64(self.max_ns);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input or a bucket count other
    /// than this histogram's fixed layout.
    pub fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        dec.get_exact_len(self.buckets.len())?;
        for b in &mut self.buckets {
            *b = dec.get_u64()?;
        }
        self.count = dec.get_u64()?;
        self.sum_ns = dec.get_u128()?;
        self.min_ns = dec.get_u64()?;
        self.max_ns = dec.get_u64()?;
        Ok(())
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Tracks how much of the simulated horizon a component spent busy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Utilization {
    busy: SimTime,
}

impl Utilization {
    /// Creates a tracker with no busy time.
    pub fn new() -> Self {
        Utilization::default()
    }

    /// Adds a busy interval.
    pub fn add_busy(&mut self, duration: SimTime) {
        self.busy += duration;
    }

    /// Accumulated busy time.
    pub fn busy(&self) -> SimTime {
        self.busy
    }

    /// Busy fraction of `horizon` (clamped to 1.0 for multi-server owners).
    pub fn ratio(&self, horizon: SimTime) -> f64 {
        if horizon.is_zero() {
            return 0.0;
        }
        self.busy.as_ps() as f64 / horizon.as_ps() as f64
    }

    /// Encodes the accumulated busy time (the tracker's only state).
    pub fn encode_state(&self, enc: &mut Encoder) {
        enc.put_time(self.busy);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated input.
    pub fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        self.busy = dec.get_time()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_increments() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn throughput_in_mbps() {
        let mut t = ThroughputMeter::new();
        // 100 MB over 0.5 s -> 200 MB/s.
        for _ in 0..100 {
            t.record(1_000_000);
        }
        assert!((t.mbps(SimTime::from_ms(500)) - 200.0).abs() < 1e-9);
        assert!((t.iops(SimTime::from_ms(500)) - 200.0).abs() < 1e-9);
        assert_eq!(t.bytes(), 100_000_000);
        assert_eq!(t.ops(), 100);
    }

    #[test]
    fn throughput_zero_elapsed_is_zero() {
        let mut t = ThroughputMeter::new();
        t.record(4096);
        assert_eq!(t.mbps(SimTime::ZERO), 0.0);
        assert_eq!(t.iops(SimTime::ZERO), 0.0);
    }

    #[test]
    fn histogram_mean_min_max() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::from_us(10));
        h.record(SimTime::from_us(20));
        h.record(SimTime::from_us(30));
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean().as_us(), 20);
        assert_eq!(h.min().as_us(), 10);
        assert_eq!(h.max().as_us(), 30);
    }

    #[test]
    fn histogram_percentile_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000u64 {
            h.record(SimTime::from_ns(i * 100));
        }
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p99);
        assert!(p99 <= h.max());
    }

    #[test]
    fn histogram_empty_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), SimTime::ZERO);
        assert_eq!(h.min(), SimTime::ZERO);
        assert_eq!(h.percentile(99.0), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn histogram_rejects_bad_percentile() {
        let h = LatencyHistogram::new();
        let _ = h.percentile(150.0);
    }

    #[test]
    fn utilization_ratio() {
        let mut u = Utilization::new();
        u.add_busy(SimTime::from_ms(1));
        assert!((u.ratio(SimTime::from_ms(4)) - 0.25).abs() < 1e-12);
        assert_eq!(u.ratio(SimTime::ZERO), 0.0);
    }
}
