//! Fast, deterministic hashing for simulation-internal maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3 seeded from process
//! entropy: robust against adversarial keys, but an order of magnitude
//! slower than needed for the trusted integer keys the simulator's hot paths
//! use (block indices, page numbers), and — worse for a simulator —
//! differently seeded on every run. The hasher here is a fixed-key
//! multiply-xor finisher (the same construction as rustc's `FxHasher`):
//! two multiplies per `u64` key, identical iteration-independent behaviour
//! across runs and machines.
//!
//! Determinism note: nothing in the platform may observe a map's *iteration
//! order*; maps hashed with [`FastHasher`] are only ever keyed lookups and
//! order-independent folds. The hasher being fixed-key (rather than
//! entropy-seeded) removes the one way the standard hasher could have leaked
//! nondeterminism into a simulation.

use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by trusted simulation-internal integers, using
/// [`FastHasher`].
// ssdx-lint::allow(no-default-hasher): the definition site — the std map is
// rebased onto the fixed-key hasher here, which is what makes it legal
// everywhere else.
pub type FastHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;

const SEED: u64 = 0x51_7C_C1_B7_27_22_0A_95;

/// Fixed-key multiply-xor hasher for trusted integer keys.
///
/// # Example
///
/// ```
/// use ssdx_sim::hash::FastHashMap;
///
/// let mut wear: FastHashMap<u64, u32> = FastHashMap::default();
/// wear.insert(42, 7);
/// assert_eq!(wear.get(&42), Some(&7));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    state: u64,
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Byte-slice fallback (string keys etc.); the hot paths hit the
        // fixed-width methods below.
        for &b in bytes {
            self.state = (self.state.rotate_left(5) ^ b as u64).wrapping_mul(SEED);
        }
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.state = (self.state.rotate_left(5) ^ value).wrapping_mul(SEED);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.write_u64(value as u64);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, BuildHasherDefault};

    #[test]
    fn hashing_is_deterministic_across_builders() {
        let a = BuildHasherDefault::<FastHasher>::default();
        let b = BuildHasherDefault::<FastHasher>::default();
        for key in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
            assert_eq!(a.hash_one(key), b.hash_one(key));
        }
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        let build = BuildHasherDefault::<FastHasher>::default();
        let mut seen = std::collections::BTreeSet::new();
        for key in 0u64..10_000 {
            seen.insert(build.hash_one(key));
        }
        assert_eq!(seen.len(), 10_000, "sequential keys must not collide");
    }

    #[test]
    fn map_behaves_like_std() {
        let mut fast: FastHashMap<u64, u64> = FastHashMap::default();
        // ssdx-lint::allow(no-default-hasher): differential test — agreeing
        // with the entropy-seeded std map is the property under test.
        let mut std_map = std::collections::HashMap::new();
        for i in 0..1_000u64 {
            let k = i.wrapping_mul(0x9E37_79B9);
            fast.insert(k, i);
            std_map.insert(k, i);
        }
        assert_eq!(fast.len(), std_map.len());
        for (k, v) in &std_map {
            assert_eq!(fast.get(k), Some(v));
        }
    }

    #[test]
    fn byte_slice_keys_hash_consistently() {
        let build = BuildHasherDefault::<FastHasher>::default();
        assert_eq!(build.hash_one("abc"), build.hash_one("abc"));
        assert_ne!(build.hash_one("abc"), build.hash_one("abd"));
    }
}
