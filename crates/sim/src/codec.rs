//! Compact binary encoding primitives for simulation-state snapshots.
//!
//! The platform's snapshot format (`ssdx-core::snapshot`) is a hand-rolled
//! byte codec, in the same spirit as the hand-rolled JSON writers elsewhere
//! in the workspace: the vendored serde is a derive marker, not a framework.
//! This module provides the byte-level primitives every layer shares:
//!
//! * [`Encoder`] appends LEB128 varints (`u32`/`u64`/`u128`), raw IEEE-754
//!   bit patterns (`f64`), [`SimTime`] picosecond counts and
//!   length-prefixed sequences to a growable buffer.
//! * [`Decoder`] reads them back with **every access bounds-checked**:
//!   decoding arbitrary, truncated or bit-flipped input returns
//!   [`DecodeError`] and never panics. Sequence lengths are validated
//!   against the remaining input before any allocation, so hostile length
//!   prefixes cannot trigger huge reservations.
//!
//! Integers are varint-encoded because snapshot state is dominated by small
//! counters and sparse histogram buckets; `f64` is stored as its exact bit
//! pattern so encode → decode round-trips are bit-identical (a determinism
//! requirement: a forked run must continue from *exactly* the state the
//! continuous run had).

use crate::time::SimTime;
use std::error::Error;
use std::fmt;

/// Error produced when decoding snapshot bytes.
///
/// Carries the buffer offset at which decoding failed, so corrupted images
/// are diagnosable. Decoding never panics; every malformed input maps to
/// one of these variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEnd {
        /// Buffer offset at which more bytes were needed.
        offset: usize,
    },
    /// The bytes at `offset` are not a valid encoding of the expected value.
    Invalid {
        /// Buffer offset of the offending value.
        offset: usize,
        /// What was being decoded.
        what: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd { offset } => {
                write!(f, "input ended unexpectedly at byte {offset}")
            }
            DecodeError::Invalid { offset, what } => {
                write!(f, "invalid {what} at byte {offset}")
            }
        }
    }
}

impl Error for DecodeError {}

/// Append-only binary encoder. See the [module docs](self) for the format.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Creates an encoder with `capacity` bytes pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Encoder {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u64` as an LEB128 varint (1–10 bytes).
    pub fn put_u64(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a `u32` (varint, same wire format as `u64`).
    pub fn put_u32(&mut self, v: u32) {
        self.put_u64(v as u64);
    }

    /// Appends a `u128` as an LEB128 varint (1–19 bytes).
    pub fn put_u128(&mut self, mut v: u128) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern (8 bytes LE).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a boolean (one byte, `0` or `1`).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a [`SimTime`] as its picosecond count (varint).
    pub fn put_time(&mut self, t: SimTime) {
        self.put_u64(t.as_ps());
    }

    /// Appends a sequence length prefix (varint).
    pub fn put_len(&mut self, len: usize) {
        self.put_u64(len as u64);
    }

    /// Appends a UTF-8 string (length prefix + bytes).
    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked binary decoder over a byte slice.
///
/// Every read returns [`DecodeError`] instead of panicking when the input
/// is truncated or malformed, which is what licenses feeding snapshot
/// decoding arbitrary bytes (see the codec-robustness proptests).
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Current read offset (for error reporting).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Builds a [`DecodeError::Invalid`] at the current offset — the idiom
    /// for semantic validation failures (out-of-range index, unknown tag)
    /// detected after the raw bytes were read.
    pub fn invalid(&self, what: &'static str) -> DecodeError {
        DecodeError::Invalid {
            offset: self.pos,
            what,
        }
    }

    /// `true` once every byte has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Asserts the input is fully consumed (a complete snapshot has no
    /// trailing bytes).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Invalid`] if bytes remain.
    pub fn expect_end(&self) -> Result<(), DecodeError> {
        if self.is_at_end() {
            Ok(())
        } else {
            Err(DecodeError::Invalid {
                offset: self.pos,
                what: "trailing bytes after value",
            })
        }
    }

    fn need(&self, n: usize) -> Result<(), DecodeError> {
        if self.remaining() < n {
            Err(DecodeError::UnexpectedEnd { offset: self.pos })
        } else {
            Ok(())
        }
    }

    /// Reads one raw byte.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] at end of input.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        self.need(1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] if fewer than `n` remain.
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        self.need(n)?;
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads an LEB128 varint `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or a varint wider than 64 bits.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        let start = self.pos;
        let mut value = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            let payload = (byte & 0x7F) as u64;
            if shift >= 64 || (shift == 63 && payload > 1) {
                return Err(DecodeError::Invalid {
                    offset: start,
                    what: "varint wider than u64",
                });
            }
            value |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads a varint `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or a value wider than 32 bits.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        let start = self.pos;
        let v = self.get_u64()?;
        u32::try_from(v).map_err(|_| DecodeError::Invalid {
            offset: start,
            what: "varint wider than u32",
        })
    }

    /// Reads an LEB128 varint `u128`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or a varint wider than 128 bits.
    pub fn get_u128(&mut self) -> Result<u128, DecodeError> {
        let start = self.pos;
        let mut value = 0u128;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            let payload = (byte & 0x7F) as u128;
            if shift >= 128 || (shift == 126 && payload > 3) {
                return Err(DecodeError::Invalid {
                    offset: start,
                    what: "varint wider than u128",
                });
            }
            value |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    }

    /// Reads an `f64` bit pattern (8 bytes LE).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] on truncation.
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        let bytes = self.get_raw(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(bytes);
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    /// Reads a boolean.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or a byte other than 0/1.
    pub fn get_bool(&mut self) -> Result<bool, DecodeError> {
        let start = self.pos;
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::Invalid {
                offset: start,
                what: "boolean",
            }),
        }
    }

    /// Reads a [`SimTime`] (varint picoseconds).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or varint overflow.
    pub fn get_time(&mut self) -> Result<SimTime, DecodeError> {
        Ok(SimTime::from_ps(self.get_u64()?))
    }

    /// Reads a sequence length prefix and validates it against the
    /// remaining input: every element of a well-formed sequence occupies at
    /// least one byte, so `len > remaining` proves corruption. This check
    /// is what keeps decoding of hostile input alloc-bounded — a forged
    /// multi-gigabyte length fails here before any `Vec` reservation.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or an impossible length.
    pub fn get_len(&mut self) -> Result<usize, DecodeError> {
        let start = self.pos;
        let len = self.get_u64()?;
        if len > self.remaining() as u64 {
            return Err(DecodeError::Invalid {
                offset: start,
                what: "sequence length beyond input",
            });
        }
        Ok(len as usize)
    }

    /// Reads a sequence length prefix that must equal `expected` — used
    /// when the container's size is construction-derived (server pools,
    /// fixed histogram bucket arrays) and the snapshot merely confirms it.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or a mismatched length.
    pub fn get_exact_len(&mut self, expected: usize) -> Result<(), DecodeError> {
        let start = self.pos;
        let len = self.get_u64()?;
        if len != expected as u64 {
            return Err(DecodeError::Invalid {
                offset: start,
                what: "sequence length mismatch",
            });
        }
        Ok(())
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation or invalid UTF-8.
    pub fn get_str(&mut self) -> Result<String, DecodeError> {
        let len = self.get_len()?;
        let start = self.pos;
        let bytes = self.get_raw(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| DecodeError::Invalid {
                offset: start,
                what: "UTF-8 string",
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_u64(values: &[u64]) {
        let mut enc = Encoder::new();
        for &v in values {
            enc.put_u64(v);
        }
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        for &v in values {
            assert_eq!(dec.get_u64().unwrap(), v);
        }
        assert!(dec.expect_end().is_ok());
    }

    #[test]
    fn varint_u64_round_trips_boundary_values() {
        round_trip_u64(&[
            0,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ]);
    }

    #[test]
    fn varint_u128_round_trips_boundary_values() {
        let values = [
            0u128,
            1,
            127,
            128,
            u64::MAX as u128,
            u128::MAX - 1,
            u128::MAX,
        ];
        let mut enc = Encoder::new();
        for &v in &values {
            enc.put_u128(v);
        }
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        for &v in &values {
            assert_eq!(dec.get_u128().unwrap(), v);
        }
    }

    #[test]
    fn small_values_encode_compactly() {
        let mut enc = Encoder::new();
        enc.put_u64(0);
        enc.put_u64(127);
        assert_eq!(enc.len(), 2, "sub-128 values are single bytes");
        enc.put_u64(u64::MAX);
        assert_eq!(enc.len(), 12, "u64::MAX is the 10-byte worst case");
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        for v in [0.0, -0.0, 1.5, f64::MIN_POSITIVE, f64::MAX, 0.1 + 0.2] {
            let mut enc = Encoder::new();
            enc.put_f64(v);
            let bytes = enc.finish();
            let got = Decoder::new(&bytes).get_f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn strings_times_and_bools_round_trip() {
        let mut enc = Encoder::new();
        enc.put_str("chan0-onfi");
        enc.put_str("");
        enc.put_time(SimTime::from_ns(1234));
        enc.put_bool(true);
        enc.put_bool(false);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_str().unwrap(), "chan0-onfi");
        assert_eq!(dec.get_str().unwrap(), "");
        assert_eq!(dec.get_time().unwrap(), SimTime::from_ns(1234));
        assert!(dec.get_bool().unwrap());
        assert!(!dec.get_bool().unwrap());
        assert!(dec.expect_end().is_ok());
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut enc = Encoder::new();
        enc.put_u64(1 << 40);
        enc.put_f64(2.5);
        enc.put_str("hello");
        let bytes = enc.finish();
        // Every prefix of a valid encoding must decode to Err, not panic.
        for cut in 0..bytes.len() {
            let mut dec = Decoder::new(&bytes[..cut]);
            let mut ok = true;
            ok = ok && dec.get_u64().is_ok();
            ok = ok && dec.get_f64().is_ok();
            ok = ok && dec.get_str().is_ok();
            assert!(!ok, "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn overlong_varints_are_rejected() {
        // 11 continuation bytes: wider than any u64.
        let bytes = [0xFFu8; 11];
        assert_eq!(
            Decoder::new(&bytes).get_u64(),
            Err(DecodeError::Invalid {
                offset: 0,
                what: "varint wider than u64",
            })
        );
        // A 10-byte varint whose final byte carries bits above bit 63.
        let mut high = [0x80u8; 10];
        high[9] = 0x02;
        assert!(Decoder::new(&high).get_u64().is_err());
        // u32 read rejects values that only fit u64.
        let mut enc = Encoder::new();
        enc.put_u64(u64::from(u32::MAX) + 1);
        let bytes = enc.finish();
        assert!(Decoder::new(&bytes).get_u32().is_err());
    }

    #[test]
    fn hostile_length_prefixes_fail_before_allocating() {
        // A length prefix claiming 2^50 elements with 3 bytes of input.
        let mut enc = Encoder::new();
        enc.put_u64(1 << 50);
        let bytes = enc.finish();
        let err = Decoder::new(&bytes).get_len().unwrap_err();
        assert!(matches!(err, DecodeError::Invalid { .. }));
        // get_str goes through the same guard.
        assert!(Decoder::new(&bytes).get_str().is_err());
    }

    #[test]
    fn exact_len_enforces_construction_derived_sizes() {
        let mut enc = Encoder::new();
        enc.put_len(4);
        let bytes = enc.finish();
        assert!(Decoder::new(&bytes).get_exact_len(4).is_ok());
        assert!(Decoder::new(&bytes).get_exact_len(5).is_err());
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let mut enc = Encoder::new();
        enc.put_u64(7);
        enc.put_u8(0);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.get_u64().unwrap(), 7);
        assert!(dec.expect_end().is_err());
        assert_eq!(dec.get_u8().unwrap(), 0);
        assert!(dec.expect_end().is_ok());
    }

    #[test]
    fn invalid_bool_and_utf8_are_rejected() {
        assert!(Decoder::new(&[2]).get_bool().is_err());
        let mut enc = Encoder::new();
        enc.put_len(2);
        enc.put_raw(&[0xFF, 0xFE]);
        let bytes = enc.finish();
        assert!(Decoder::new(&bytes).get_str().is_err());
    }

    #[test]
    fn decode_errors_render_offsets() {
        let e = DecodeError::UnexpectedEnd { offset: 12 };
        assert_eq!(e.to_string(), "input ended unexpectedly at byte 12");
        let e = DecodeError::Invalid {
            offset: 3,
            what: "boolean",
        };
        assert_eq!(e.to_string(), "invalid boolean at byte 3");
    }
}
