//! Round-robin arbitration, as used by the AMBA AHB bus arbiter.

use crate::codec::{DecodeError, Decoder, Encoder};
use serde::{Deserialize, Serialize};

/// A round-robin arbiter over a fixed set of requesters.
///
/// The arbiter remembers which requester was granted last and, when several
/// requesters compete, grants the next one in cyclic order. This is the
/// arbitration policy the paper configures for the AMBA AHB interconnect.
///
/// # Example
///
/// ```
/// use ssdx_sim::RoundRobinArbiter;
/// let mut arb = RoundRobinArbiter::new(4);
/// assert_eq!(arb.grant(&[true, true, false, true]), Some(0));
/// assert_eq!(arb.grant(&[true, true, false, true]), Some(1));
/// assert_eq!(arb.grant(&[true, true, false, true]), Some(3));
/// assert_eq!(arb.grant(&[true, true, false, true]), Some(0));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundRobinArbiter {
    ports: usize,
    last_granted: Option<usize>,
    grants: u64,
}

impl RoundRobinArbiter {
    /// Creates an arbiter for `ports` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0, "an arbiter needs at least one port");
        RoundRobinArbiter {
            ports,
            last_granted: None,
            grants: 0,
        }
    }

    /// Number of requester ports.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Total number of grants issued.
    pub fn grants(&self) -> u64 {
        self.grants
    }

    /// The port granted most recently, if any.
    pub fn last_granted(&self) -> Option<usize> {
        self.last_granted
    }

    /// Grants the bus to one of the requesting ports (`requests[i] == true`),
    /// starting the search just after the previously granted port.
    ///
    /// Returns `None` if nobody is requesting.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` differs from the number of ports.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(
            requests.len(),
            self.ports,
            "request vector length must match port count"
        );
        let start = match self.last_granted {
            Some(p) => (p + 1) % self.ports,
            None => 0,
        };
        for offset in 0..self.ports {
            let port = (start + offset) % self.ports;
            if requests[port] {
                self.last_granted = Some(port);
                self.grants += 1;
                return Some(port);
            }
        }
        None
    }

    /// Grants among a list of requesting port indices (convenience wrapper
    /// around [`grant`](Self::grant)).
    ///
    /// The empty and single-requester cases — the latter is what a bus model
    /// issues once per transfer on the simulation hot path — are resolved
    /// without materialising a request vector, so they perform no heap
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn grant_among(&mut self, requesting: &[usize]) -> Option<usize> {
        for &p in requesting {
            assert!(p < self.ports, "port index {p} out of range");
        }
        match *requesting {
            [] => None,
            // A sole requester always wins, whatever the rotation state —
            // identical outcome to running the full search.
            [port] => {
                self.last_granted = Some(port);
                self.grants += 1;
                Some(port)
            }
            _ => {
                let mut requests = vec![false; self.ports];
                for &p in requesting {
                    requests[p] = true;
                }
                self.grant(&requests)
            }
        }
    }

    /// Clears arbitration history.
    pub fn reset(&mut self) {
        self.last_granted = None;
        self.grants = 0;
    }

    /// Encodes the mutable state, in stable field order: `last_granted`
    /// (presence flag + port), `grants`. The port count is a construction
    /// parameter and not snapshot state.
    pub fn encode_state(&self, enc: &mut Encoder) {
        match self.last_granted {
            Some(port) => {
                enc.put_bool(true);
                enc.put_u64(port as u64);
            }
            None => enc.put_bool(false),
        }
        enc.put_u64(self.grants);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on malformed input or a port index outside
    /// this arbiter's range.
    pub fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        self.last_granted = if dec.get_bool()? {
            let offset = dec.position();
            let port = dec.get_u64()? as usize;
            if port >= self.ports {
                return Err(DecodeError::Invalid {
                    offset,
                    what: "arbiter port index",
                });
            }
            Some(port)
        } else {
            None
        };
        self.grants = dec.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_requester_always_wins() {
        let mut arb = RoundRobinArbiter::new(3);
        for _ in 0..10 {
            assert_eq!(arb.grant(&[false, true, false]), Some(1));
        }
        assert_eq!(arb.grants(), 10);
    }

    #[test]
    fn no_request_yields_none() {
        let mut arb = RoundRobinArbiter::new(2);
        assert_eq!(arb.grant(&[false, false]), None);
        assert_eq!(arb.grants(), 0);
    }

    #[test]
    fn grants_rotate_fairly_under_full_load() {
        let mut arb = RoundRobinArbiter::new(4);
        let mut counts = [0u32; 4];
        for _ in 0..400 {
            let g = arb.grant(&[true; 4]).unwrap();
            counts[g] += 1;
        }
        assert_eq!(counts, [100, 100, 100, 100]);
    }

    #[test]
    fn grant_among_matches_grant() {
        let mut a = RoundRobinArbiter::new(4);
        let mut b = RoundRobinArbiter::new(4);
        assert_eq!(a.grant(&[true, false, true, false]), b.grant_among(&[0, 2]));
        assert_eq!(a.grant(&[true, false, true, false]), b.grant_among(&[0, 2]));
    }

    #[test]
    fn reset_restores_initial_priority() {
        let mut arb = RoundRobinArbiter::new(2);
        arb.grant(&[true, true]);
        arb.reset();
        assert_eq!(arb.last_granted(), None);
        assert_eq!(arb.grant(&[true, true]), Some(0));
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_rejected() {
        let _ = RoundRobinArbiter::new(0);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn mismatched_request_vector_rejected() {
        let mut arb = RoundRobinArbiter::new(2);
        let _ = arb.grant(&[true]);
    }
}
