//! The event calendar driving a simulation.
//!
//! # Index-arena layout
//!
//! The calendar is a hand-rolled binary min-heap of small, `Copy` keys
//! (`time`, `seq`, `slot`) over an **arena** of payload slots. Payloads are
//! written into a slot once at [`schedule`](Scheduler::schedule) time and
//! never move while the heap sifts — only 24-byte keys do — and freed slots
//! are recycled through a free list, so a scheduler that has reached its
//! steady-state capacity performs **zero heap allocations** per event, no
//! matter how long the simulation runs. This is the property the platform's
//! hot loops (and the `SimSession` allocation suite one crate up) rely on.
//!
//! # Batching
//!
//! Discrete-event simulations of synchronous hardware deliver many events at
//! the same instant (every die completing on a clock edge, every queued
//! completion at a barrier). [`pop_batch_into`](Scheduler::pop_batch_into)
//! drains *all* events sharing the earliest pending timestamp into a
//! caller-owned reusable buffer in one call — one time comparison per event
//! instead of a full pop/peek round-trip, and no intermediate `Vec` per
//! batch. [`run_batched`](Scheduler::run_batched) wraps this into a driver
//! loop that hands the handler whole simultaneous groups.

use crate::codec::{DecodeError, Decoder, Encoder};
use crate::event::{Event, EventId};
use crate::time::SimTime;

/// A deterministic event calendar (priority queue ordered by time).
///
/// Events scheduled for the same instant are delivered in scheduling order
/// (FIFO), which keeps simulations reproducible regardless of payload type.
///
/// # Example
///
/// ```
/// use ssdx_sim::{Scheduler, SimTime};
///
/// let mut sched = Scheduler::new();
/// sched.schedule(SimTime::from_ns(30), "late");
/// sched.schedule(SimTime::from_ns(10), "early");
/// let ev = sched.pop().expect("an event is pending");
/// assert_eq!(ev.payload, "early");
/// assert_eq!(sched.now(), SimTime::from_ns(10));
/// ```
#[derive(Debug)]
pub struct Scheduler<T> {
    /// Binary min-heap of (time, seq) keys pointing into `slots`.
    heap: Vec<HeapKey>,
    /// Payload arena; `None` entries are recyclable.
    slots: Vec<Option<T>>,
    /// Indices of free arena slots.
    free: Vec<u32>,
    now: SimTime,
    next_id: u64,
    processed: u64,
}

/// One heap entry: the ordering key plus the arena slot of the payload.
/// Kept small and `Copy` so sift operations move 24 bytes, never a payload.
#[derive(Debug, Clone, Copy)]
struct HeapKey {
    at: SimTime,
    seq: u64,
    slot: u32,
}

impl HeapKey {
    #[inline]
    fn precedes(&self, other: &HeapKey) -> bool {
        (self.at, self.seq) < (other.at, other.seq)
    }
}

impl<T> Scheduler<T> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            now: SimTime::ZERO,
            next_id: 0,
            processed: 0,
        }
    }

    /// Creates an empty scheduler with room for `capacity` pending events
    /// before any allocation happens.
    pub fn with_capacity(capacity: usize) -> Self {
        Scheduler {
            heap: Vec::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            now: SimTime::ZERO,
            next_id: 0,
            processed: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Number of events already delivered.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of arena slots currently allocated (pending + recyclable).
    /// Once the calendar has seen its high-water mark, this stops growing —
    /// the zero-allocation steady state.
    pub fn arena_capacity(&self) -> usize {
        self.slots.len()
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulated time (causality
    /// violation).
    pub fn schedule(&mut self, at: SimTime, payload: T) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past ({} < {})",
            at,
            self.now
        );
        let seq = self.next_id;
        self.next_id += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.slots[slot as usize].is_none());
                self.slots[slot as usize] = Some(payload);
                slot
            }
            None => {
                self.slots.push(Some(payload));
                (self.slots.len() - 1) as u32
            }
        };
        self.heap.push(HeapKey { at, seq, slot });
        self.sift_up(self.heap.len() - 1);
        EventId(seq)
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, payload: T) -> EventId {
        self.schedule(self.now + delay, payload)
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|k| k.at)
    }

    /// Removes and returns the next event, advancing simulated time to it.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let key = *self.heap.first()?;
        self.remove_root();
        let payload = self.release_slot(key.slot);
        self.now = key.at;
        self.processed += 1;
        Some(Event {
            id: EventId(key.seq),
            at: key.at,
            payload,
        })
    }

    /// Drains every event sharing the earliest pending timestamp into `out`
    /// (cleared first), advancing simulated time to that instant. Returns
    /// the number of events delivered; zero when the calendar is empty.
    ///
    /// Events within the batch arrive in scheduling order (the same FIFO
    /// tie-break [`pop`](Self::pop) applies), and the buffer is caller-owned
    /// so a driver loop can reuse one allocation for every batch.
    ///
    /// # Example
    ///
    /// ```
    /// use ssdx_sim::{Scheduler, SimTime};
    ///
    /// let mut sched = Scheduler::new();
    /// let t = SimTime::from_ns(5);
    /// sched.schedule(t, 'a');
    /// sched.schedule(t, 'b');
    /// sched.schedule(SimTime::from_ns(9), 'z');
    /// let mut batch = Vec::new();
    /// assert_eq!(sched.pop_batch_into(&mut batch), 2);
    /// let payloads: Vec<char> = batch.iter().map(|e| e.payload).collect();
    /// assert_eq!(payloads, vec!['a', 'b']);
    /// assert_eq!(sched.pending(), 1);
    /// ```
    pub fn pop_batch_into(&mut self, out: &mut Vec<Event<T>>) -> usize {
        out.clear();
        let Some(first) = self.heap.first() else {
            return 0;
        };
        let at = first.at;
        while let Some(key) = self.heap.first().copied() {
            if key.at != at {
                break;
            }
            self.remove_root();
            let payload = self.release_slot(key.slot);
            out.push(Event {
                id: EventId(key.seq),
                at,
                payload,
            });
        }
        self.now = at;
        self.processed += out.len() as u64;
        out.len()
    }

    /// Runs the simulation to completion, invoking `handler` for every event.
    ///
    /// The handler may schedule further events through the `&mut Scheduler`
    /// it receives.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Scheduler<T>, Event<T>),
    {
        while let Some(ev) = self.pop() {
            handler(self, ev);
        }
    }

    /// Runs the simulation to completion, delivering events coalesced into
    /// simultaneous batches. The batch buffer is reused across iterations,
    /// so the driver loop itself allocates only once (for the largest
    /// batch). The handler may schedule further events — including more at
    /// the batch's own timestamp, which then form the next batch.
    pub fn run_batched<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Scheduler<T>, &[Event<T>]),
    {
        let mut batch = Vec::new();
        while self.pop_batch_into(&mut batch) > 0 {
            handler(self, &batch);
        }
    }

    /// Runs the simulation until simulated time exceeds `deadline` or the
    /// calendar drains, whichever comes first. Events strictly after the
    /// deadline remain queued.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F)
    where
        F: FnMut(&mut Scheduler<T>, Event<T>),
    {
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            let Some(ev) = self.pop() else { break };
            handler(self, ev);
        }
    }

    /// Encodes the calendar state, in stable field order: `now`, `next_id`,
    /// `processed`, then every pending event sorted by `(time, seq)` — the
    /// exact delivery order — each as `(time, seq, payload)` with the
    /// payload written by `encode_payload`.
    ///
    /// The arena layout (slot indices, free list) is an allocation detail
    /// and deliberately **not** part of the snapshot; see
    /// [`decode_state`](Self::decode_state).
    pub fn encode_state<F>(&self, enc: &mut Encoder, mut encode_payload: F)
    where
        F: FnMut(&T, &mut Encoder),
    {
        enc.put_time(self.now);
        enc.put_u64(self.next_id);
        enc.put_u64(self.processed);
        let mut keys: Vec<HeapKey> = self.heap.clone();
        keys.sort_by_key(|k| (k.at, k.seq));
        enc.put_len(keys.len());
        for key in keys {
            enc.put_time(key.at);
            enc.put_u64(key.seq);
            let payload = self.slots[key.slot as usize]
                .as_ref()
                // ssdx-lint::allow(no-panic-in-hot-path): encode_state runs
                // off the step loop, and a heap key without a slot is a
                // broken arena invariant — corrupt state must never be
                // serialised silently.
                .expect("heap keys always point at occupied slots");
            encode_payload(payload, enc);
        }
    }

    /// Restores state captured by [`encode_state`](Self::encode_state),
    /// replacing this calendar's contents. Payloads are read back with
    /// `decode_payload`.
    ///
    /// The arena is rebuilt **canonically**: events land in delivery order
    /// in fresh slots with an empty free list. A restored calendar is
    /// therefore behaviorally identical to the captured one — same `now`,
    /// same event identifiers, same pop sequence — even when the original's
    /// slot recycling had scrambled its internal layout.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input, including
    /// events out of delivery order, in the past, or with sequence numbers
    /// the captured calendar could not have issued.
    pub fn decode_state<F>(
        &mut self,
        dec: &mut Decoder<'_>,
        mut decode_payload: F,
    ) -> Result<(), DecodeError>
    where
        F: FnMut(&mut Decoder<'_>) -> Result<T, DecodeError>,
    {
        let now = dec.get_time()?;
        let next_id = dec.get_u64()?;
        let processed = dec.get_u64()?;
        let len = dec.get_len()?;
        if len > u32::MAX as usize {
            return Err(DecodeError::Invalid {
                offset: dec.position(),
                what: "pending event count",
            });
        }
        self.heap.clear();
        self.slots.clear();
        self.free.clear();
        self.heap.reserve(len);
        self.slots.reserve(len);
        let mut prev: Option<(SimTime, u64)> = None;
        for slot in 0..len {
            let offset = dec.position();
            let at = dec.get_time()?;
            let seq = dec.get_u64()?;
            let ordered = !prev.is_some_and(|p| p >= (at, seq));
            if at < now || seq >= next_id || !ordered {
                return Err(DecodeError::Invalid {
                    offset,
                    what: "pending event key",
                });
            }
            prev = Some((at, seq));
            let payload = decode_payload(dec)?;
            self.slots.push(Some(payload));
            // Keys arrive sorted ascending, and a sorted array satisfies
            // the min-heap property, so no sifting is needed.
            self.heap.push(HeapKey {
                at,
                seq,
                slot: slot as u32,
            });
        }
        self.now = now;
        self.next_id = next_id;
        self.processed = processed;
        Ok(())
    }

    /// Takes the payload out of an arena slot and recycles the slot.
    #[inline]
    fn release_slot(&mut self, slot: u32) -> T {
        let payload = self.slots[slot as usize]
            .take()
            // ssdx-lint::allow(no-panic-in-hot-path): heap keys are
            // created only by push() against an occupied slot and die
            // with the entry; a miss means the arena itself is corrupt,
            // and continuing would silently drop events.
            .expect("heap keys always point at occupied slots");
        self.free.push(slot);
        payload
    }

    /// Removes the heap root, restoring the heap property.
    #[inline]
    fn remove_root(&mut self) {
        let last = self.heap.len() - 1;
        self.heap.swap(0, last);
        self.heap.pop();
        if !self.heap.is_empty() {
            self.sift_down(0);
        }
    }

    fn sift_up(&mut self, mut child: usize) {
        while child > 0 {
            let parent = (child - 1) / 2;
            if self.heap[child].precedes(&self.heap[parent]) {
                self.heap.swap(child, parent);
                child = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut parent: usize) {
        let len = self.heap.len();
        loop {
            let left = 2 * parent + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let mut smallest = left;
            if right < len && self.heap[right].precedes(&self.heap[left]) {
                smallest = right;
            }
            if self.heap[smallest].precedes(&self.heap[parent]) {
                self.heap.swap(parent, smallest);
                parent = smallest;
            } else {
                break;
            }
        }
    }
}

impl<T> Default for Scheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ns(50), 'c');
        s.schedule(SimTime::from_ns(10), 'a');
        s.schedule(SimTime::from_ns(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| s.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut s = Scheduler::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            s.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_popped_event() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ns(42), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_ns(42));
    }

    #[test]
    #[should_panic(expected = "cannot schedule an event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ns(10), ());
        s.pop();
        s.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn run_drains_and_allows_rescheduling() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ns(1), 3u32);
        let mut fired = Vec::new();
        s.run(|sched, ev| {
            fired.push((ev.at, ev.payload));
            if ev.payload > 0 {
                sched.schedule_after(SimTime::from_ns(1), ev.payload - 1);
            }
        });
        assert_eq!(fired.len(), 4);
        assert_eq!(fired.last().unwrap().0, SimTime::from_ns(4));
        assert!(s.is_empty());
        assert_eq!(s.processed(), 4);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut s = Scheduler::new();
        for i in 1..=10u64 {
            s.schedule(SimTime::from_ns(i * 10), i);
        }
        let mut fired = 0;
        s.run_until(SimTime::from_ns(50), |_, _| fired += 1);
        assert_eq!(fired, 5);
        assert_eq!(s.pending(), 5);
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ns(100), ());
        s.pop();
        s.schedule_after(SimTime::from_ns(20), ());
        assert_eq!(s.peek_time(), Some(SimTime::from_ns(120)));
    }

    #[test]
    fn batch_pop_coalesces_simultaneous_events() {
        let mut s = Scheduler::new();
        let t1 = SimTime::from_ns(10);
        let t2 = SimTime::from_ns(20);
        s.schedule(t2, 'x');
        s.schedule(t1, 'a');
        s.schedule(t1, 'b');
        s.schedule(t1, 'c');
        let mut batch = Vec::new();
        assert_eq!(s.pop_batch_into(&mut batch), 3);
        assert_eq!(s.now(), t1);
        let payloads: Vec<char> = batch.iter().map(|e| e.payload).collect();
        assert_eq!(payloads, vec!['a', 'b', 'c'], "FIFO inside the batch");
        assert_eq!(s.pop_batch_into(&mut batch), 1);
        assert_eq!(batch[0].payload, 'x');
        assert_eq!(s.pop_batch_into(&mut batch), 0);
        assert!(batch.is_empty(), "empty calendar clears the buffer");
        assert_eq!(s.processed(), 4);
    }

    #[test]
    fn run_batched_delivers_whole_instants() {
        let mut s = Scheduler::new();
        for i in 0..6u64 {
            s.schedule(SimTime::from_ns(i / 2), i); // pairs share instants
        }
        let mut batches = Vec::new();
        s.run_batched(|_, batch| {
            batches.push(batch.iter().map(|e| e.payload).collect::<Vec<_>>());
        });
        assert_eq!(batches, vec![vec![0, 1], vec![2, 3], vec![4, 5]]);
    }

    #[test]
    fn run_batched_handler_can_extend_the_current_instant() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ns(5), 0u32);
        let mut seen = Vec::new();
        s.run_batched(|sched, batch| {
            for ev in batch {
                seen.push(ev.payload);
                if ev.payload < 3 {
                    // Same-instant reschedule: forms the next batch.
                    sched.schedule(ev.at, ev.payload + 1);
                }
            }
        });
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(s.now(), SimTime::from_ns(5));
    }

    #[test]
    fn arena_slots_are_recycled_in_steady_state() {
        let mut s = Scheduler::with_capacity(4);
        // Keep at most 3 events pending while streaming 10_000 through.
        for i in 0..3u64 {
            s.schedule(SimTime::from_ns(i), i);
        }
        for i in 3..10_000u64 {
            let ev = s.pop().expect("calendar is non-empty");
            assert_eq!(ev.payload + 3, i);
            s.schedule(SimTime::from_ns(i), i);
        }
        assert!(
            s.arena_capacity() <= 4,
            "arena grew past the high-water mark: {}",
            s.arena_capacity()
        );
        assert_eq!(s.pending(), 3);
    }

    #[test]
    fn event_ids_stay_monotonic_across_recycling() {
        let mut s = Scheduler::new();
        let a = s.schedule(SimTime::from_ns(1), ());
        s.pop();
        let b = s.schedule(SimTime::from_ns(2), ());
        assert!(b > a, "slot recycling must not recycle identifiers");
    }

    fn encode_scheduler(s: &Scheduler<u64>) -> Vec<u8> {
        let mut enc = Encoder::new();
        s.encode_state(&mut enc, |p, e| e.put_u64(*p));
        enc.finish()
    }

    fn decode_scheduler(bytes: &[u8]) -> Result<Scheduler<u64>, DecodeError> {
        let mut s = Scheduler::new();
        let mut dec = Decoder::new(bytes);
        s.decode_state(&mut dec, |d| d.get_u64())?;
        dec.expect_end()?;
        Ok(s)
    }

    /// Drains a scheduler, recording the full observable pop sequence.
    fn drain(mut s: Scheduler<u64>) -> Vec<(EventId, SimTime, u64)> {
        std::iter::from_fn(|| s.pop().map(|e| (e.id, e.at, e.payload))).collect()
    }

    #[test]
    fn snapshot_round_trip_is_behaviorally_identical() {
        // Scramble the arena first: interleaved schedule/pop so slots are
        // recycled out of order before the snapshot is taken.
        let mut s = Scheduler::new();
        let mut rng = crate::rng::SimRng::new(0xDECADE);
        for i in 0..500u64 {
            let t = s.now().as_ns() + rng.uniform_u64(0, 30);
            s.schedule(SimTime::from_ns(t), i);
            if i % 2 == 0 {
                s.pop();
            }
        }
        let restored = decode_scheduler(&encode_scheduler(&s)).unwrap();
        assert_eq!(restored.now(), s.now());
        assert_eq!(restored.pending(), s.pending());
        assert_eq!(restored.processed(), s.processed());
        // The pop sequence — ids, times, payloads — is the behavioral
        // identity of a calendar; the arena layout is allowed to differ.
        assert_eq!(drain(restored), drain(s));
    }

    #[test]
    fn restored_scheduler_issues_fresh_ids_correctly() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ns(10), 1u64);
        let last_before = s.schedule(SimTime::from_ns(20), 2u64);
        let mut restored = decode_scheduler(&encode_scheduler(&s)).unwrap();
        let fresh = restored.schedule(SimTime::from_ns(30), 3u64);
        assert!(
            fresh > last_before,
            "restored calendars must not reuse event identifiers"
        );
    }

    #[test]
    fn corrupted_scheduler_bytes_error_instead_of_panicking() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ns(10), 7u64);
        s.schedule(SimTime::from_ns(10), 8u64);
        let bytes = encode_scheduler(&s);
        // Truncations at every length.
        for cut in 0..bytes.len() {
            assert!(decode_scheduler(&bytes[..cut]).is_err());
        }
        // Single-byte corruption either decodes (the flip hit a payload or
        // a count that still validates) or errors — it must never panic.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x41;
            let _ = decode_scheduler(&bad);
        }
    }

    #[test]
    fn decoder_rejects_impossible_event_keys() {
        let mut s: Scheduler<u64> = Scheduler::new();
        s.schedule(SimTime::from_ns(5), 0u64);
        s.pop(); // now = 5 ns
        let mut enc = Encoder::new();
        enc.put_time(s.now());
        enc.put_u64(1); // next_id
        enc.put_u64(1); // processed
        enc.put_len(1);
        enc.put_time(SimTime::from_ns(2)); // before `now`: impossible
        enc.put_u64(0);
        enc.put_u64(9);
        let bytes = enc.finish();
        let mut fresh: Scheduler<u64> = Scheduler::new();
        let err = fresh
            .decode_state(&mut Decoder::new(&bytes), |d| d.get_u64())
            .unwrap_err();
        assert!(matches!(err, DecodeError::Invalid { .. }));
    }

    #[test]
    fn interleaved_schedule_pop_keeps_global_order() {
        // A deterministic stress of the manual heap: pseudo-random times,
        // interleaved pushes and pops, verified against a sorted reference.
        let mut s = Scheduler::new();
        let mut rng = crate::rng::SimRng::new(0xC0FFEE);
        let mut popped: Vec<(u64, u64)> = Vec::new();
        for round in 0..2_000u64 {
            let t = s.now().as_ns() + rng.uniform_u64(0, 50);
            s.schedule(SimTime::from_ns(t), round);
            if round % 3 == 0 {
                let ev = s.pop().unwrap();
                popped.push((ev.at.as_ns(), ev.payload));
            }
        }
        while let Some(ev) = s.pop() {
            popped.push((ev.at.as_ns(), ev.payload));
        }
        // Every event comes out exactly once, and pop times never decrease
        // (pops interleave with later schedules, so a global sorted
        // reference does not apply — the monotonicity invariant does).
        let mut seen: Vec<u64> = popped.iter().map(|&(_, p)| p).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..2_000).collect::<Vec<_>>());
        for w in popped.windows(2) {
            assert!(w[0].0 <= w[1].0, "pop times must be non-decreasing");
        }
    }
}
