//! The event calendar driving a simulation.

use crate::event::{Event, EventId};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic event calendar (priority queue ordered by time).
///
/// Events scheduled for the same instant are delivered in scheduling order
/// (FIFO), which keeps simulations reproducible regardless of payload type.
///
/// # Example
///
/// ```
/// use ssdx_sim::{Scheduler, SimTime};
///
/// let mut sched = Scheduler::new();
/// sched.schedule(SimTime::from_ns(30), "late");
/// sched.schedule(SimTime::from_ns(10), "early");
/// let ev = sched.pop().expect("an event is pending");
/// assert_eq!(ev.payload, "early");
/// assert_eq!(sched.now(), SimTime::from_ns(10));
/// ```
#[derive(Debug)]
pub struct Scheduler<T> {
    queue: BinaryHeap<Reverse<Entry<T>>>,
    now: SimTime,
    next_id: u64,
    processed: u64,
}

#[derive(Debug)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<T> Scheduler<T> {
    /// Creates an empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_id: 0,
            processed: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Number of events already delivered.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current simulated time (causality
    /// violation).
    pub fn schedule(&mut self, at: SimTime, payload: T) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past ({} < {})",
            at,
            self.now
        );
        let id = EventId(self.next_id);
        self.queue.push(Reverse(Entry {
            at,
            seq: self.next_id,
            payload,
        }));
        self.next_id += 1;
        id
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, payload: T) -> EventId {
        self.schedule(self.now + delay, payload)
    }

    /// Timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(e)| e.at)
    }

    /// Removes and returns the next event, advancing simulated time to it.
    pub fn pop(&mut self) -> Option<Event<T>> {
        let Reverse(entry) = self.queue.pop()?;
        self.now = entry.at;
        self.processed += 1;
        Some(Event {
            id: EventId(entry.seq),
            at: entry.at,
            payload: entry.payload,
        })
    }

    /// Runs the simulation to completion, invoking `handler` for every event.
    ///
    /// The handler may schedule further events through the `&mut Scheduler`
    /// it receives.
    pub fn run<F>(&mut self, mut handler: F)
    where
        F: FnMut(&mut Scheduler<T>, Event<T>),
    {
        while let Some(ev) = self.pop() {
            handler(self, ev);
        }
    }

    /// Runs the simulation until simulated time exceeds `deadline` or the
    /// calendar drains, whichever comes first. Events strictly after the
    /// deadline remain queued.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F)
    where
        F: FnMut(&mut Scheduler<T>, Event<T>),
    {
        while let Some(t) = self.peek_time() {
            if t > deadline {
                break;
            }
            let ev = self.pop().expect("peeked event must exist");
            handler(self, ev);
        }
    }
}

impl<T> Default for Scheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ns(50), 'c');
        s.schedule(SimTime::from_ns(10), 'a');
        s.schedule(SimTime::from_ns(20), 'b');
        let order: Vec<char> = std::iter::from_fn(|| s.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut s = Scheduler::new();
        let t = SimTime::from_ns(5);
        for i in 0..100 {
            s.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_last_popped_event() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ns(42), ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop();
        assert_eq!(s.now(), SimTime::from_ns(42));
    }

    #[test]
    #[should_panic(expected = "cannot schedule an event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ns(10), ());
        s.pop();
        s.schedule(SimTime::from_ns(5), ());
    }

    #[test]
    fn run_drains_and_allows_rescheduling() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ns(1), 3u32);
        let mut fired = Vec::new();
        s.run(|sched, ev| {
            fired.push((ev.at, ev.payload));
            if ev.payload > 0 {
                sched.schedule_after(SimTime::from_ns(1), ev.payload - 1);
            }
        });
        assert_eq!(fired.len(), 4);
        assert_eq!(fired.last().unwrap().0, SimTime::from_ns(4));
        assert!(s.is_empty());
        assert_eq!(s.processed(), 4);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut s = Scheduler::new();
        for i in 1..=10u64 {
            s.schedule(SimTime::from_ns(i * 10), i);
        }
        let mut fired = 0;
        s.run_until(SimTime::from_ns(50), |_, _| fired += 1);
        assert_eq!(fired, 5);
        assert_eq!(s.pending(), 5);
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_ns(100), ());
        s.pop();
        s.schedule_after(SimTime::from_ns(20), ());
        assert_eq!(s.peek_time(), Some(SimTime::from_ns(120)));
    }
}
