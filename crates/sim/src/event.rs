//! Events exchanged through the simulation calendar.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque identifier assigned to every scheduled event.
///
/// Identifiers are unique within one [`crate::Scheduler`] and increase
/// monotonically in scheduling order, which also serves as the tie-breaker
/// for events scheduled at the same instant (FIFO among equals, the same
/// deterministic rule SystemC applies to its evaluate queue). The
/// scheduler's payload arena recycles *slots*, never identifiers: an
/// `EventId` observed once is never handed out again, so identifiers remain
/// safe to use as correlation keys across a whole simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// Raw numeric value of the identifier.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "event #{}", self.0)
    }
}

/// A scheduled event carrying a user-defined payload.
///
/// The payload type `T` is chosen by the component that owns the scheduler;
/// the kernel itself never inspects it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event<T> {
    /// Unique identifier of this event.
    pub id: EventId,
    /// Simulated instant at which the event fires.
    pub at: SimTime,
    /// User payload.
    pub payload: T,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_id_display_and_order() {
        let a = EventId(1);
        let b = EventId(2);
        assert!(a < b);
        assert_eq!(a.to_string(), "event #1");
        assert_eq!(b.as_u64(), 2);
    }
}
