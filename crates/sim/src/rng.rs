//! Deterministic pseudo-random number generation for reproducible simulations.
//!
//! The virtual platform must produce identical results for identical seeds so
//! that design-space sweeps are comparable; this module provides a small,
//! dependency-free SplitMix64 generator with convenience helpers for the
//! distributions the component models need (uniform ranges and Bernoulli
//! draws).

/// A deterministic SplitMix64 pseudo-random number generator.
///
/// The generator is a single `u64` of state — `Send + Sync` by
/// construction — and every component stream is [`fork`](Self::fork)ed from
/// a configuration seed rather than drawn from a global or thread-local
/// source. That is what makes simulations reproducible across thread
/// placements: a platform built on a parallel-sweep worker draws exactly
/// the sequences it would draw on the main thread.
///
/// # Example
///
/// ```
/// use ssdx_sim::rng::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Equal seeds yield equal sequences.
    pub fn new(seed: u64) -> Self {
        SimRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Derives an independent child generator, useful for giving each
    /// component (die, channel, …) its own stream.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        SimRng::new(self.next_u64() ^ salt.wrapping_mul(0xD6E8_FEB8_6659_FD93))
    }

    /// The raw SplitMix64 state word, for snapshotting.
    ///
    /// Note this is the internal state, **not** the seed passed to
    /// [`new`](Self::new): restore it with [`from_state`](Self::from_state),
    /// after which the generator continues the exact sequence it was
    /// producing when captured.
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Reconstructs a generator from a raw state word captured with
    /// [`state`](Self::state).
    pub fn from_state(state: u64) -> SimRng {
        SimRng { state }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[low, high]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn uniform_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(low <= high, "uniform range is empty: {low} > {high}");
        if low == high {
            return low;
        }
        let span = high - low + 1;
        low + self.next_u64() % span
    }

    /// Uniform float in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low > high`.
    pub fn uniform_f64(&mut self, low: f64, high: f64) -> f64 {
        assert!(low <= high, "uniform range is empty: {low} > {high}");
        low + self.next_f64() * (high - low)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn uniform_u64_respects_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let v = r.uniform_u64(10, 20);
            assert!((10..=20).contains(&v));
        }
        assert_eq!(r.uniform_u64(5, 5), 5);
    }

    #[test]
    fn uniform_f64_respects_bounds() {
        let mut r = SimRng::new(4);
        for _ in 0..1000 {
            let v = r.uniform_f64(-1.5, 2.5);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(6);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        // Out-of-range probabilities are clamped rather than panicking.
        assert!(r.chance(5.0));
        assert!(!r.chance(-3.0));
    }

    #[test]
    fn chance_roughly_matches_probability() {
        let mut r = SimRng::new(8);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = SimRng::new(9);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn raw_state_round_trip_continues_the_sequence() {
        let mut original = SimRng::new(42);
        let _ = original.next_u64();
        let _ = original.next_f64();
        let mut restored = SimRng::from_state(original.state());
        assert_eq!(restored, original);
        for _ in 0..16 {
            assert_eq!(restored.next_u64(), original.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "range is empty")]
    fn empty_uniform_range_panics() {
        let mut r = SimRng::new(10);
        let _ = r.uniform_u64(6, 5);
    }
}
