//! Simulated time and clock-frequency types.
//!
//! All timing inside the virtual platform is expressed as [`SimTime`], an
//! integer number of picoseconds. Picosecond resolution is fine enough that
//! every clock used by the platform (200 MHz AHB/CPU, DDR2-800, ONFI 166 MT/s,
//! SATA 3 Gb/s, PCIe 5 GT/s) has an exact integer period, so no rounding error
//! accumulates across long simulations.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or duration of) simulated time, stored as integer picoseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the two
/// interpretations share the same arithmetic, mirroring `sc_time` in SystemC.
///
/// # Example
///
/// ```
/// use ssdx_sim::SimTime;
/// let t = SimTime::from_us(60) + SimTime::from_ns(500);
/// assert_eq!(t.as_ns(), 60_500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time (used as "never").
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a time from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a time from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a time from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }

    /// Creates a time from a (possibly fractional) number of nanoseconds,
    /// rounding to the nearest picosecond.
    ///
    /// Negative inputs saturate to zero.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        if ns <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((ns * 1_000.0).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole microseconds (truncating).
    #[inline]
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole milliseconds (truncating).
    #[inline]
    pub const fn as_ms(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Time expressed as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Time expressed as fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time expressed as fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns `true` if the time is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: returns zero instead of underflowing.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Multiplies a duration by a floating-point scale factor (e.g. a
    /// compression ratio), rounding to the nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[inline]
    pub fn scale(self, factor: f64) -> SimTime {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        SimTime((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            return write!(f, "0 s");
        }
        // Exact multiples print as integers in the largest exact unit;
        // everything else prints with three decimals in a readable unit.
        if ps % 1_000_000_000_000 == 0 {
            write!(f, "{} s", ps / 1_000_000_000_000)
        } else if ps % 1_000_000_000 == 0 {
            write!(f, "{} ms", ps / 1_000_000_000)
        } else if ps % 1_000_000 == 0 {
            write!(f, "{} us", ps / 1_000_000)
        } else if ps % 1_000 == 0 {
            write!(f, "{} ns", ps / 1_000)
        } else if ps >= 1_000_000_000_000 {
            write!(f, "{:.3} s", ps as f64 / 1e12)
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3} ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3} us", ps as f64 / 1e6)
        } else if ps >= 1_000 {
            write!(f, "{:.3} ns", ps as f64 / 1e3)
        } else {
            write!(f, "{ps} ps")
        }
    }
}

/// A clock frequency, used to convert between cycle counts and [`SimTime`].
///
/// # Example
///
/// ```
/// use ssdx_sim::Frequency;
/// let cpu = Frequency::from_mhz(200);
/// assert_eq!(cpu.period().as_ns(), 5);
/// assert_eq!(cpu.cycles_to_time(200_000_000).as_ms(), 1000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Frequency {
    hz: u64,
}

impl Frequency {
    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    pub fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be non-zero");
        Frequency { hz }
    }

    /// Creates a frequency from kilohertz.
    pub fn from_khz(khz: u64) -> Self {
        Self::from_hz(khz * 1_000)
    }

    /// Creates a frequency from megahertz.
    pub fn from_mhz(mhz: u64) -> Self {
        Self::from_hz(mhz * 1_000_000)
    }

    /// Creates a frequency from gigahertz.
    pub fn from_ghz(ghz: u64) -> Self {
        Self::from_hz(ghz * 1_000_000_000)
    }

    /// Frequency in hertz.
    #[inline]
    pub fn as_hz(self) -> u64 {
        self.hz
    }

    /// Frequency in megahertz (fractional).
    pub fn as_mhz_f64(self) -> f64 {
        self.hz as f64 / 1e6
    }

    /// Clock period.
    #[inline]
    pub fn period(self) -> SimTime {
        SimTime::from_ps(1_000_000_000_000 / self.hz)
    }

    /// Duration of `cycles` clock cycles.
    #[inline]
    pub fn cycles_to_time(self, cycles: u64) -> SimTime {
        // Multiply first in u128 to avoid losing sub-period remainders.
        let ps = (cycles as u128 * 1_000_000_000_000u128) / self.hz as u128;
        SimTime::from_ps(ps as u64)
    }

    /// Number of whole clock cycles elapsed in `time` (truncating).
    #[inline]
    pub fn time_to_cycles(self, time: SimTime) -> u64 {
        ((time.as_ps() as u128 * self.hz as u128) / 1_000_000_000_000u128) as u64
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hz % 1_000_000_000 == 0 {
            write!(f, "{} GHz", self.hz / 1_000_000_000)
        } else if self.hz % 1_000_000 == 0 {
            write!(f, "{} MHz", self.hz / 1_000_000)
        } else if self.hz % 1_000 == 0 {
            write!(f, "{} kHz", self.hz / 1_000)
        } else {
            write!(f, "{} Hz", self.hz)
        }
    }
}

/// Computes the time needed to move `bytes` at a sustained bandwidth of
/// `bytes_per_sec`, rounding up to the next picosecond.
///
/// # Panics
///
/// Panics if `bytes_per_sec` is zero.
#[inline]
pub fn transfer_time(bytes: u64, bytes_per_sec: u64) -> SimTime {
    assert!(bytes_per_sec > 0, "bandwidth must be non-zero");
    let ps = (bytes as u128 * 1_000_000_000_000u128).div_ceil(bytes_per_sec as u128);
    SimTime::from_ps(ps as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors_round_trip() {
        assert_eq!(SimTime::from_ns(5).as_ps(), 5_000);
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(2).as_us(), 2_000);
        assert_eq!(SimTime::from_secs(1).as_ms(), 1_000);
    }

    #[test]
    fn arithmetic_behaves_like_integers() {
        let a = SimTime::from_ns(100);
        let b = SimTime::from_ns(40);
        assert_eq!((a + b).as_ns(), 140);
        assert_eq!((a - b).as_ns(), 60);
        assert_eq!((a * 3).as_ns(), 300);
        assert_eq!((a / 4).as_ns(), 25);
    }

    #[test]
    fn saturating_sub_does_not_underflow() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(20);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a).as_ns(), 10);
    }

    #[test]
    fn display_picks_largest_exact_unit() {
        assert_eq!(SimTime::from_ms(3).to_string(), "3 ms");
        assert_eq!(SimTime::from_us(7).to_string(), "7 us");
        assert_eq!(SimTime::from_ns(9).to_string(), "9 ns");
        assert_eq!(SimTime::from_ps(11).to_string(), "11 ps");
        assert_eq!(SimTime::ZERO.to_string(), "0 s");
    }

    #[test]
    fn display_uses_decimals_for_inexact_values() {
        assert_eq!(SimTime::from_ps(1_234_567).to_string(), "1.235 us");
        assert_eq!(SimTime::from_ps(403_211_536_814).to_string(), "403.212 ms");
        assert_eq!(SimTime::from_ps(1_500).to_string(), "1.500 ns");
    }

    #[test]
    fn frequency_period_is_exact_for_platform_clocks() {
        assert_eq!(Frequency::from_mhz(200).period().as_ps(), 5_000);
        assert_eq!(Frequency::from_mhz(400).period().as_ps(), 2_500);
        assert_eq!(Frequency::from_ghz(1).period().as_ps(), 1_000);
    }

    #[test]
    fn cycles_round_trip() {
        let f = Frequency::from_mhz(200);
        let t = f.cycles_to_time(12345);
        assert_eq!(f.time_to_cycles(t), 12345);
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 300 MB/s moving 3 MB takes 10 ms.
        let t = transfer_time(3_000_000, 300_000_000);
        assert_eq!(t.as_ms(), 10);
    }

    #[test]
    fn scale_rounds_to_nearest_ps() {
        let t = SimTime::from_ns(100);
        assert_eq!(t.scale(0.5).as_ps(), 50_000);
        assert_eq!(t.scale(1.0), t);
        assert_eq!(t.scale(0.0), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scale_rejects_negative() {
        let _ = SimTime::from_ns(1).scale(-1.0);
    }

    #[test]
    fn from_ns_f64_saturates_negative_to_zero() {
        assert_eq!(SimTime::from_ns_f64(-4.0), SimTime::ZERO);
        assert_eq!(SimTime::from_ns_f64(2.5).as_ps(), 2_500);
    }

    #[test]
    fn sum_of_times() {
        let total: SimTime = [
            SimTime::from_ns(1),
            SimTime::from_ns(2),
            SimTime::from_ns(3),
        ]
        .into_iter()
        .sum();
        assert_eq!(total.as_ns(), 6);
    }
}
