//! Discrete-event simulation kernel for the SSDExplorer virtual platform.
//!
//! The original SSDExplorer is built on SystemC; this crate provides the
//! equivalent substrate in pure Rust: a simulated time base with picosecond
//! resolution ([`SimTime`]), an event calendar ([`Scheduler`]), resource
//! reservation primitives used to model shared hardware blocks
//! ([`Resource`], [`RoundRobinArbiter`]), collection of performance
//! statistics ([`stats`]), and a small deterministic random number generator
//! ([`rng::SimRng`]) so that simulations are reproducible.
//!
//! # Example
//!
//! ```
//! use ssdx_sim::{SimTime, Resource};
//!
//! // A single-ported resource (e.g. a bus) that takes 100 ns per transfer.
//! let mut bus = Resource::new("bus");
//! let grant_a = bus.reserve(SimTime::ZERO, SimTime::from_ns(100));
//! let grant_b = bus.reserve(SimTime::ZERO, SimTime::from_ns(100));
//! assert_eq!(grant_a.start, SimTime::ZERO);
//! // The second request had to wait for the first to finish.
//! assert_eq!(grant_b.start, SimTime::from_ns(100));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arbiter;
pub mod event;
pub mod resource;
pub mod rng;
pub mod scheduler;
pub mod stats;
pub mod time;

pub use arbiter::RoundRobinArbiter;
pub use event::{Event, EventId};
pub use resource::{Grant, MultiResource, Resource};
pub use scheduler::Scheduler;
pub use time::{Frequency, SimTime};
