//! Discrete-event simulation kernel for the SSDExplorer virtual platform.
//!
//! The original SSDExplorer is built on SystemC; this crate provides the
//! equivalent substrate in pure Rust: a simulated time base with picosecond
//! resolution ([`SimTime`]), an event calendar ([`Scheduler`]), resource
//! reservation primitives used to model shared hardware blocks
//! ([`Resource`], [`RoundRobinArbiter`]), collection of performance
//! statistics ([`stats`]), and a small deterministic random number generator
//! ([`rng::SimRng`]) so that simulations are reproducible.
//!
//! Every primitive is thread-safe by construction — plain data with no
//! interior mutability, no globals, no thread-locals — so a whole platform
//! built from them is `Send` and can be constructed and driven on a worker
//! thread of a parallel sweep executor. A compile-time test pins
//! [`Scheduler`], [`SimRng`](rng::SimRng), [`Resource`] and
//! [`RoundRobinArbiter`] as `Send + Sync`.
//!
//! # Example
//!
//! ```
//! use ssdx_sim::{SimTime, Resource};
//!
//! // A single-ported resource (e.g. a bus) that takes 100 ns per transfer.
//! let mut bus = Resource::new("bus");
//! let grant_a = bus.reserve(SimTime::ZERO, SimTime::from_ns(100));
//! let grant_b = bus.reserve(SimTime::ZERO, SimTime::from_ns(100));
//! assert_eq!(grant_a.start, SimTime::ZERO);
//! // The second request had to wait for the first to finish.
//! assert_eq!(grant_b.start, SimTime::from_ns(100));
//! ```

#![warn(rust_2018_idioms)]

pub mod arbiter;
pub mod codec;
pub mod event;
pub mod hash;
pub mod resource;
pub mod rng;
pub mod scheduler;
pub mod stats;
pub mod time;

pub use arbiter::RoundRobinArbiter;
pub use codec::{DecodeError, Decoder, Encoder};
pub use event::{Event, EventId};
pub use resource::{Grant, MultiResource, Resource};
pub use scheduler::Scheduler;
pub use time::{Frequency, SimTime};

#[cfg(test)]
mod thread_safety {
    use super::*;

    /// The kernel's thread-safety contract, pinned at compile time: every
    /// primitive the parallel sweep executor moves to (or shares with) a
    /// worker thread must be `Send`/`Sync`. A regression here (e.g. an `Rc`
    /// or `RefCell` slipping into a model) fails this test at compile time.
    #[test]
    fn kernel_primitives_are_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<SimTime>();
        assert_sync::<SimTime>();
        assert_send::<rng::SimRng>();
        assert_sync::<rng::SimRng>();
        assert_send::<Resource>();
        assert_sync::<Resource>();
        assert_send::<MultiResource>();
        assert_send::<RoundRobinArbiter>();
        assert_sync::<RoundRobinArbiter>();
        assert_send::<Scheduler<u64>>();
        assert_sync::<Scheduler<u64>>();
        assert_send::<stats::LatencyHistogram>();
        assert_sync::<stats::LatencyHistogram>();
    }
}
