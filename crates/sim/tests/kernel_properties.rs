//! Property-based tests of the simulation kernel: time arithmetic, calendar
//! ordering, resource bookkeeping and arbiter fairness.

use proptest::prelude::*;
use ssdx_sim::stats::{LatencyHistogram, ThroughputMeter};
use ssdx_sim::{Frequency, MultiResource, Resource, RoundRobinArbiter, Scheduler, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cycles_to_time_round_trips_for_platform_clocks(
        mhz in prop::sample::select(vec![100u64, 125, 133, 166, 200, 250, 266, 400, 500, 800, 1000]),
        cycles in 0u64..10_000_000
    ) {
        // The kernel guarantees exact conversions for the clocks the platform
        // actually uses (whose periods are whole picoseconds or recur within
        // the u128 intermediate precision of the conversion).
        let clock = Frequency::from_mhz(mhz);
        let time = clock.cycles_to_time(cycles);
        let back = clock.time_to_cycles(time);
        prop_assert!(back == cycles || back + 1 == cycles,
            "round trip drifted: {back} vs {cycles} at {mhz} MHz");
    }

    #[test]
    fn transfer_time_never_understates_bandwidth(bytes in 1u64..1_000_000_000, bw in 1u64..10_000_000_000u64) {
        let t = ssdx_sim::time::transfer_time(bytes, bw);
        // Moving `bytes` in time `t` must not imply a rate above `bw`.
        let implied = bytes as f64 / t.as_secs_f64();
        prop_assert!(implied <= bw as f64 * 1.000_001);
    }

    #[test]
    fn simtime_ordering_is_total_and_consistent(a in any::<u64>(), b in any::<u64>()) {
        let ta = SimTime::from_ps(a);
        let tb = SimTime::from_ps(b);
        prop_assert_eq!(ta < tb, a < b);
        prop_assert_eq!(ta.max(tb).as_ps(), a.max(b));
        prop_assert_eq!(ta.min(tb).as_ps(), a.min(b));
    }

    #[test]
    fn scheduler_processes_every_event_exactly_once(times in prop::collection::vec(0u64..100_000, 0..300)) {
        let mut scheduler: Scheduler<usize> = Scheduler::new();
        for (i, t) in times.iter().enumerate() {
            scheduler.schedule(SimTime::from_ns(*t), i);
        }
        let mut seen = vec![false; times.len()];
        while let Some(event) = scheduler.pop() {
            prop_assert!(!seen[event.payload], "event delivered twice");
            seen[event.payload] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
        prop_assert!(scheduler.is_empty());
    }

    #[test]
    fn batched_delivery_equals_event_by_event_delivery(times in prop::collection::vec(0u64..200, 0..300)) {
        // The arena heap's batch drain must deliver exactly the sequence the
        // one-at-a-time pop does — same payload order, same timestamps —
        // only grouped by instant.
        let mut singles: Scheduler<usize> = Scheduler::new();
        let mut batched: Scheduler<usize> = Scheduler::new();
        for (i, t) in times.iter().enumerate() {
            singles.schedule(SimTime::from_ns(*t), i);
            batched.schedule(SimTime::from_ns(*t), i);
        }
        let mut single_order = Vec::new();
        while let Some(ev) = singles.pop() {
            single_order.push((ev.at, ev.payload));
        }
        let mut batch_order = Vec::new();
        let mut buf = Vec::new();
        while batched.pop_batch_into(&mut buf) > 0 {
            let at = buf[0].at;
            for ev in &buf {
                prop_assert_eq!(ev.at, at, "a batch must share one instant");
                batch_order.push((ev.at, ev.payload));
            }
        }
        prop_assert_eq!(single_order, batch_order);
        prop_assert_eq!(singles.processed(), batched.processed());
    }

    #[test]
    fn arena_capacity_is_bounded_by_peak_pending(depth in 1usize..40, rounds in 1u64..2_000) {
        // Streaming `rounds` events through a calendar that never holds more
        // than `depth` pending must not grow the arena past `depth` slots:
        // the zero-allocation steady state of the index-arena design.
        let mut s: Scheduler<u64> = Scheduler::new();
        for i in 0..depth as u64 {
            s.schedule(SimTime::from_ns(i), i);
        }
        for r in 0..rounds {
            let ev = s.pop().expect("pending events remain");
            s.schedule(ev.at + SimTime::from_ns(depth as u64), r);
        }
        prop_assert_eq!(s.pending(), depth);
        prop_assert!(
            s.arena_capacity() <= depth,
            "arena grew past peak pending: {} > {}", s.arena_capacity(), depth
        );
    }

    #[test]
    fn resource_total_busy_equals_sum_of_durations(durations in prop::collection::vec(1u64..10_000, 1..100)) {
        let mut resource = Resource::new("busy");
        let mut expected = SimTime::ZERO;
        for d in &durations {
            resource.reserve(SimTime::ZERO, SimTime::from_ns(*d));
            expected += SimTime::from_ns(*d);
        }
        prop_assert_eq!(resource.busy_time(), expected);
        prop_assert_eq!(resource.free_at(), expected);
        prop_assert_eq!(resource.served(), durations.len() as u64);
    }

    #[test]
    fn multi_resource_is_never_slower_than_single(reqs in prop::collection::vec((0u64..1_000, 1u64..500), 1..60)) {
        let mut single = Resource::new("single");
        let mut quad = MultiResource::new("quad", 4);
        let mut single_end = SimTime::ZERO;
        let mut quad_end = SimTime::ZERO;
        for (at, dur) in reqs {
            let at = SimTime::from_ns(at);
            let dur = SimTime::from_ns(dur);
            single_end = single_end.max(single.reserve(at, dur).end);
            quad_end = quad_end.max(quad.reserve(at, dur).end);
        }
        prop_assert!(quad_end <= single_end);
    }

    #[test]
    fn arbiter_is_fair_under_saturation(ports in 2usize..12, rounds in 10usize..200) {
        let mut arbiter = RoundRobinArbiter::new(ports);
        let mut counts = vec![0u32; ports];
        for _ in 0..rounds * ports {
            let winner = arbiter.grant(&vec![true; ports]).expect("requests pending");
            counts[winner] += 1;
        }
        let max = *counts.iter().max().expect("non-empty");
        let min = *counts.iter().min().expect("non-empty");
        prop_assert!(max - min <= 1, "round-robin must be fair under saturation: {counts:?}");
    }

    #[test]
    fn throughput_meter_is_linear_in_bytes(chunks in prop::collection::vec(1u64..1_000_000, 1..50)) {
        let mut meter = ThroughputMeter::new();
        for c in &chunks {
            meter.record(*c);
        }
        let total: u64 = chunks.iter().sum();
        prop_assert_eq!(meter.bytes(), total);
        let mbps = meter.mbps(SimTime::from_secs(1));
        prop_assert!((mbps - total as f64 / 1e6).abs() < 1e-9);
    }

    #[test]
    fn histogram_percentiles_are_ordered(samples in prop::collection::vec(1u64..10_000_000, 1..300)) {
        let mut histogram = LatencyHistogram::new();
        for s in &samples {
            histogram.record(SimTime::from_ns(*s));
        }
        let p50 = histogram.percentile(50.0);
        let p90 = histogram.percentile(90.0);
        let p99 = histogram.percentile(99.0);
        prop_assert!(p50 <= p90);
        prop_assert!(p90 <= p99);
        prop_assert!(histogram.min() <= histogram.mean());
        prop_assert!(histogram.mean() <= histogram.max());
    }
}

#[test]
fn scheduler_interleaves_newly_scheduled_events_correctly() {
    // A process-like pattern: every event reschedules itself twice with
    // different delays; the calendar must still deliver in global time order.
    let mut scheduler = Scheduler::new();
    scheduler.schedule(SimTime::from_ns(10), 3u32);
    let mut deliveries = Vec::new();
    scheduler.run(|sched, event| {
        deliveries.push(event.at);
        if event.payload > 0 {
            sched.schedule_after(SimTime::from_ns(7), event.payload - 1);
            sched.schedule_after(SimTime::from_ns(3), event.payload - 1);
        }
    });
    let mut sorted = deliveries.clone();
    sorted.sort();
    assert_eq!(deliveries, sorted, "events must be delivered in time order");
    assert_eq!(deliveries.len(), 1 + 2 + 4 + 8);
}
