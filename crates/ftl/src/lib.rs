//! Flash translation layer: the WAF abstraction and a real page-mapped FTL.
//!
//! Estimating the impact of the FTL's software management algorithms
//! (garbage collection, wear leveling, TRIM) without actually implementing a
//! production FTL is one of SSDExplorer's key ideas: following Hu et al.
//! (SYSTOR 2009), the blocking time those algorithms introduce is captured
//! by a single quantity, the **Write Amplification Factor** (WAF) — the ratio
//! between the data physically written to the NAND array and the data the
//! host asked to write. The [`WafModel`] reproduces the greedy-policy
//! analytic model the validated SSDExplorer instance embeds.
//!
//! For users that want to refine the platform with an actual FTL, the crate
//! also provides [`PageMappedFtl`], a complete page-mapped translation layer
//! with greedy garbage collection and dynamic wear leveling; its *measured*
//! write amplification converges to the analytic model, which is exactly the
//! property the property-based tests check.
//!
//! # Example
//!
//! ```
//! use ssdx_ftl::{PageMappedFtl, WafModel, WorkloadMix};
//!
//! // The analytic abstraction: random writes on a consumer-grade 7%
//! // over-provisioned drive amplify, sequential writes do not.
//! let model = WafModel::consumer_7pct();
//! assert!(model.waf(WorkloadMix::random()) > 1.5);
//! assert!((model.waf(WorkloadMix::sequential()) - 1.0).abs() < 1e-9);
//!
//! // The real page-mapped FTL measures the same quantity instead of
//! // predicting it: overwrite a small logical footprint until garbage
//! // collection has to relocate live pages.
//! let mut ftl = PageMappedFtl::new(16, 32, 0.25);
//! for round in 0..40 {
//!     for lpn in 0..ftl.logical_pages() {
//!         ftl.write(lpn).expect("GC keeps a free block available");
//!     }
//!     let _ = round;
//! }
//! assert!(ftl.stats().waf() >= 1.0);
//! ```

#![warn(rust_2018_idioms)]

pub mod mapping;
pub mod waf;

pub use mapping::{FtlError, FtlStats, PageMappedFtl};
pub use waf::{WafModel, WorkloadMix};
