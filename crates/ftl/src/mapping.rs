//! A real page-mapped FTL: logical-to-physical mapping, greedy garbage
//! collection and dynamic wear leveling.
//!
//! SSDExplorer supports both the WAF abstraction and an actual FTL executed
//! by the platform CPU. This module provides the latter as a self-contained,
//! functional translation layer operating on an abstract physical page space
//! (blocks × pages per block); the SSD model charges its decisions with NAND
//! timing, while unit and property tests use it standalone to verify mapping
//! invariants and to cross-check the analytic WAF model.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Errors reported by the page-mapped FTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlError {
    /// The logical page address is beyond the exported capacity.
    LbaOutOfRange,
    /// The device has no free block left even after garbage collection
    /// (can only happen if over-provisioning is zero).
    OutOfSpace,
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::LbaOutOfRange => write!(f, "logical page address out of range"),
            FtlError::OutOfSpace => write!(f, "no free physical block available"),
        }
    }
}

impl std::error::Error for FtlError {}

/// Counters describing the work the FTL has performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FtlStats {
    /// Host page writes accepted.
    pub host_writes: u64,
    /// Physical page programs issued (host writes + GC relocations).
    pub nand_writes: u64,
    /// Page relocations performed by the garbage collector.
    pub gc_relocations: u64,
    /// Page relocations performed by the static wear leveler (cold data
    /// moved so that low-erase-count blocks re-enter the rotation).
    pub wear_level_moves: u64,
    /// Blocks erased.
    pub erases: u64,
    /// TRIM commands processed.
    pub trims: u64,
}

impl FtlStats {
    /// Measured write amplification factor so far (1.0 when no host writes
    /// have been issued yet).
    pub fn waf(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            self.nand_writes as f64 / self.host_writes as f64
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    Free,
    Valid(u64),
    Invalid,
}

#[derive(Debug, Clone)]
struct Block {
    pages: Vec<PageState>,
    write_ptr: u32,
    valid: u32,
    erase_count: u64,
}

impl Block {
    fn new(pages_per_block: u32) -> Self {
        Block {
            pages: vec![PageState::Free; pages_per_block as usize],
            write_ptr: 0,
            valid: 0,
            erase_count: 0,
        }
    }

    fn is_full(&self) -> bool {
        self.write_ptr as usize >= self.pages.len()
    }

    fn invalid_count(&self) -> u32 {
        self.write_ptr - self.valid
    }
}

/// A page-mapped flash translation layer.
///
/// Physical space is organised as `blocks × pages_per_block` pages; a
/// fraction of the blocks is reserved as over-provisioning and never exported
/// to the host. Writes always go to the current open block (appended
/// log-style); when free blocks run low, the greedy collector reclaims the
/// block with the most invalid pages, relocating its still-valid pages.
/// Wear leveling is both dynamic (the freshest erase-count block is chosen
/// when a new open block is needed) and static (when the erase-count spread
/// exceeds a threshold, the coldest full block is relocated and erased so it
/// re-enters the rotation). Host writes and garbage-collection relocations
/// use separate open blocks so that hot host data and cold relocated data do
/// not mix (and so collection never re-enters itself).
#[derive(Debug, Clone)]
pub struct PageMappedFtl {
    pages_per_block: u32,
    blocks: Vec<Block>,
    mapping: HashMap<u64, (u32, u32)>,
    open_block: u32,
    gc_open_block: u32,
    free_blocks: Vec<u32>,
    logical_pages: u64,
    gc_threshold: usize,
    wear_level_threshold: u64,
    stats: FtlStats,
}

impl PageMappedFtl {
    /// Creates an FTL over `blocks` physical blocks of `pages_per_block`
    /// pages, exporting `1 / (1 + over_provisioning)` of the capacity to the
    /// host.
    ///
    /// # Panics
    ///
    /// Panics if `blocks < 8`, `pages_per_block == 0` or
    /// `over_provisioning <= 0`.
    pub fn new(blocks: u32, pages_per_block: u32, over_provisioning: f64) -> Self {
        assert!(blocks >= 8, "need at least 8 physical blocks");
        assert!(pages_per_block > 0, "pages per block must be non-zero");
        assert!(
            over_provisioning > 0.0,
            "over-provisioning must be positive for garbage collection to make progress"
        );
        let physical_pages = blocks as u64 * pages_per_block as u64;
        let logical_pages =
            ((physical_pages as f64 / (1.0 + over_provisioning)).floor() as u64).max(1);
        let all_blocks: Vec<Block> = (0..blocks).map(|_| Block::new(pages_per_block)).collect();
        let free_blocks: Vec<u32> = (2..blocks).rev().collect();
        let gc_threshold = 2.max(blocks as usize / 32);
        PageMappedFtl {
            wear_level_threshold: 16,
            pages_per_block,
            blocks: all_blocks,
            mapping: HashMap::new(),
            open_block: 0,
            gc_open_block: 1,
            free_blocks,
            logical_pages,
            gc_threshold,
            stats: FtlStats::default(),
        }
    }

    /// Number of logical pages exported to the host.
    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    /// Pages per physical block.
    pub fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Current physical location of a logical page, if it has been written.
    pub fn lookup(&self, lpn: u64) -> Option<(u32, u32)> {
        self.mapping.get(&lpn).copied()
    }

    /// Highest erase count across all blocks (wear-leveling quality metric).
    pub fn max_erase_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.erase_count).max().unwrap_or(0)
    }

    /// Lowest erase count across all blocks.
    pub fn min_erase_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.erase_count).min().unwrap_or(0)
    }

    fn invalidate(&mut self, lpn: u64) {
        if let Some((blk, page)) = self.mapping.remove(&lpn) {
            let block = &mut self.blocks[blk as usize];
            block.pages[page as usize] = PageState::Invalid;
            block.valid -= 1;
        }
    }

    /// Removes the lowest-erase-count block from the free pool (dynamic wear
    /// leveling).
    fn take_free_block(&mut self) -> Result<u32, FtlError> {
        let (pos, _) = self
            .free_blocks
            .iter()
            .enumerate()
            .min_by_key(|(_, &b)| self.blocks[b as usize].erase_count)
            .ok_or(FtlError::OutOfSpace)?;
        Ok(self.free_blocks.swap_remove(pos))
    }

    /// Appends `lpn` to the block `blk`, which must not be full.
    fn raw_append_to(&mut self, blk: u32, lpn: u64) -> (u32, u32) {
        let block = &mut self.blocks[blk as usize];
        debug_assert!(!block.is_full(), "raw_append_to requires a non-full block");
        let page = block.write_ptr;
        block.pages[page as usize] = PageState::Valid(lpn);
        block.write_ptr += 1;
        block.valid += 1;
        self.mapping.insert(lpn, (blk, page));
        self.stats.nand_writes += 1;
        (blk, page)
    }

    fn append(&mut self, lpn: u64) -> Result<(u32, u32), FtlError> {
        if self.blocks[self.open_block as usize].is_full() {
            // Reclaim space first if the free pool is running low, then
            // switch to a fresh open block.
            while self.free_blocks.len() <= self.gc_threshold {
                if !self.collect_one_victim()? {
                    break;
                }
            }
            self.maybe_wear_level()?;
            self.open_block = self.take_free_block()?;
        }
        Ok(self.raw_append_to(self.open_block, lpn))
    }

    /// Static wear leveling: when the erase-count spread across the array
    /// exceeds the threshold, relocate the coldest full block so it rejoins
    /// the free pool and starts absorbing erases.
    fn maybe_wear_level(&mut self) -> Result<(), FtlError> {
        if self.max_erase_count() - self.min_erase_count() < self.wear_level_threshold {
            return Ok(());
        }
        let coldest = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                *i as u32 != self.open_block && *i as u32 != self.gc_open_block && b.is_full()
            })
            .min_by_key(|(_, b)| b.erase_count)
            .map(|(i, _)| i as u32);
        if let Some(victim) = coldest {
            let moved = self.reclaim_block(victim)?;
            self.stats.wear_level_moves += moved;
            self.stats.gc_relocations -= moved;
        }
        Ok(())
    }

    /// Reclaims the single best victim block (greedy policy: the full block
    /// with the most invalid pages). Returns `Ok(false)` when no block is
    /// worth collecting (no full block carries an invalid page).
    fn collect_one_victim(&mut self) -> Result<bool, FtlError> {
        // Blocks in the free pool are never full, so filtering on fullness
        // also excludes them; the two open blocks are excluded explicitly.
        let victim = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                *i as u32 != self.open_block && *i as u32 != self.gc_open_block && b.is_full()
            })
            .max_by_key(|(_, b)| b.invalid_count())
            .filter(|(_, b)| b.invalid_count() > 0)
            .map(|(i, _)| i as u32);
        let Some(victim) = victim else {
            return Ok(false);
        };
        self.reclaim_block(victim)?;
        Ok(true)
    }

    /// Relocates every valid page of `victim` into the GC open block, erases
    /// it and returns it to the free pool. Returns the number of pages
    /// relocated. Relocation never re-enters collection: it takes fresh
    /// blocks straight from the free pool.
    fn reclaim_block(&mut self, victim: u32) -> Result<u64, FtlError> {
        let victims: Vec<u64> = self.blocks[victim as usize]
            .pages
            .iter()
            .filter_map(|p| match p {
                PageState::Valid(lpn) => Some(*lpn),
                _ => None,
            })
            .collect();
        let moved = victims.len() as u64;
        for lpn in victims {
            self.invalidate(lpn);
            if self.blocks[self.gc_open_block as usize].is_full() {
                self.gc_open_block = self.take_free_block()?;
            }
            self.raw_append_to(self.gc_open_block, lpn);
            self.stats.gc_relocations += 1;
        }
        // Erase the victim and return it to the free pool.
        let block = &mut self.blocks[victim as usize];
        for p in &mut block.pages {
            *p = PageState::Free;
        }
        block.write_ptr = 0;
        block.valid = 0;
        block.erase_count += 1;
        self.stats.erases += 1;
        self.free_blocks.push(victim);
        Ok(moved)
    }

    /// Writes one logical page, returning its new physical location.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LbaOutOfRange`] if `lpn` exceeds the exported
    /// capacity, or [`FtlError::OutOfSpace`] if no block can be reclaimed.
    pub fn write(&mut self, lpn: u64) -> Result<(u32, u32), FtlError> {
        if lpn >= self.logical_pages {
            return Err(FtlError::LbaOutOfRange);
        }
        self.invalidate(lpn);
        self.stats.host_writes += 1;
        self.append(lpn)
    }

    /// Reads one logical page, returning its physical location if mapped.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LbaOutOfRange`] if `lpn` exceeds the exported
    /// capacity.
    pub fn read(&self, lpn: u64) -> Result<Option<(u32, u32)>, FtlError> {
        if lpn >= self.logical_pages {
            return Err(FtlError::LbaOutOfRange);
        }
        Ok(self.lookup(lpn))
    }

    /// TRIMs (discards) one logical page.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LbaOutOfRange`] if `lpn` exceeds the exported
    /// capacity.
    pub fn trim(&mut self, lpn: u64) -> Result<(), FtlError> {
        if lpn >= self.logical_pages {
            return Err(FtlError::LbaOutOfRange);
        }
        self.invalidate(lpn);
        self.stats.trims += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ftl() -> PageMappedFtl {
        PageMappedFtl::new(64, 32, 0.25)
    }

    #[test]
    fn capacity_reflects_over_provisioning() {
        let ftl = small_ftl();
        // 64*32 = 2048 physical pages, /1.25 = 1638 logical.
        assert_eq!(ftl.logical_pages(), 1638);
    }

    #[test]
    fn write_then_read_back_same_location() {
        let mut ftl = small_ftl();
        let loc = ftl.write(10).unwrap();
        assert_eq!(ftl.read(10).unwrap(), Some(loc));
        assert_eq!(ftl.read(11).unwrap(), None);
    }

    #[test]
    fn rewrite_moves_the_page_and_invalidates_old_copy() {
        let mut ftl = small_ftl();
        let first = ftl.write(5).unwrap();
        let second = ftl.write(5).unwrap();
        assert_ne!(first, second);
        assert_eq!(ftl.lookup(5), Some(second));
    }

    #[test]
    fn out_of_range_lba_is_rejected() {
        let mut ftl = small_ftl();
        let bad = ftl.logical_pages();
        assert_eq!(ftl.write(bad), Err(FtlError::LbaOutOfRange));
        assert_eq!(ftl.read(bad), Err(FtlError::LbaOutOfRange));
        assert_eq!(ftl.trim(bad), Err(FtlError::LbaOutOfRange));
    }

    #[test]
    fn trim_unmaps_the_page() {
        let mut ftl = small_ftl();
        ftl.write(3).unwrap();
        ftl.trim(3).unwrap();
        assert_eq!(ftl.lookup(3), None);
        assert_eq!(ftl.stats().trims, 1);
    }

    #[test]
    fn sequential_overwrites_have_waf_near_one() {
        let mut ftl = small_ftl();
        // Fill the logical space sequentially three times.
        for _round in 0..3 {
            for lpn in 0..ftl.logical_pages() {
                ftl.write(lpn).unwrap();
            }
        }
        let waf = ftl.stats().waf();
        assert!(waf < 1.2, "sequential WAF should stay near 1, got {waf}");
    }

    #[test]
    fn random_overwrites_amplify_writes() {
        let mut ftl = small_ftl();
        // Prime the drive, then hammer it with uniform random overwrites.
        for lpn in 0..ftl.logical_pages() {
            ftl.write(lpn).unwrap();
        }
        let mut rng = ssdx_sim::rng::SimRng::new(99);
        for _ in 0..20_000 {
            let lpn = rng.uniform_u64(0, ftl.logical_pages() - 1);
            ftl.write(lpn).unwrap();
        }
        let waf = ftl.stats().waf();
        assert!(waf > 1.3, "random WAF should exceed 1.3, got {waf}");
        assert!(ftl.stats().erases > 0);
        assert!(ftl.stats().gc_relocations > 0);
    }

    #[test]
    fn wear_leveling_keeps_erase_counts_close() {
        let mut ftl = small_ftl();
        for lpn in 0..ftl.logical_pages() {
            ftl.write(lpn).unwrap();
        }
        let mut rng = ssdx_sim::rng::SimRng::new(7);
        for _ in 0..30_000 {
            let lpn = rng.uniform_u64(0, ftl.logical_pages() - 1);
            ftl.write(lpn).unwrap();
        }
        let spread = ftl.max_erase_count() - ftl.min_erase_count();
        assert!(
            spread <= ftl.max_erase_count().max(4),
            "erase counts should stay within a reasonable band (spread {spread})"
        );
    }

    #[test]
    fn mapping_is_injective() {
        let mut ftl = small_ftl();
        let mut rng = ssdx_sim::rng::SimRng::new(5);
        for _ in 0..5_000 {
            let lpn = rng.uniform_u64(0, ftl.logical_pages() - 1);
            ftl.write(lpn).unwrap();
        }
        let mut seen = std::collections::HashSet::new();
        for lpn in 0..ftl.logical_pages() {
            if let Some(loc) = ftl.lookup(lpn) {
                assert!(seen.insert(loc), "two LBAs map to the same physical page");
            }
        }
    }

    #[test]
    #[should_panic(expected = "over-provisioning must be positive")]
    fn zero_op_rejected() {
        let _ = PageMappedFtl::new(8, 8, 0.0);
    }
}
