//! A real page-mapped FTL: logical-to-physical mapping, greedy garbage
//! collection and dynamic wear leveling — on flat-memory data structures.
//!
//! SSDExplorer supports both the WAF abstraction and an actual FTL executed
//! by the platform CPU. This module provides the latter as a self-contained,
//! functional translation layer operating on an abstract physical page space
//! (blocks × pages per block); the SSD model charges its decisions with NAND
//! timing, while unit and property tests use it standalone to verify mapping
//! invariants and to cross-check the analytic WAF model.
//!
//! # Flat-memory representation
//!
//! The FTL sits on the per-page hot path of the page-mapped simulation mode,
//! so its state is kept in dense arrays rather than hash maps:
//!
//! * **L2P**: `l2p[lpn]` holds the packed physical page number
//!   (`block * pages_per_block + page`) of a logical page, or a sentinel for
//!   unmapped — one bounds-checked index instead of a hash probe per lookup.
//! * **Reverse map**: `page_lpn[ppn]` holds the logical page stored in a
//!   physical page (or free/invalid sentinels), flattening the former
//!   per-block `Vec<PageState>` into one contiguous allocation shared by all
//!   blocks. Garbage collection walks a victim block as one cache-friendly
//!   slice.
//! * **Per-block metadata** (`write_ptr`, `valid`, `erase_count`) lives in
//!   parallel `Vec`s indexed by block, and a **free-block bitset**
//!   (`free_mask`) answers pool-membership queries in O(1) so the victim
//!   scans skip free blocks without touching their metadata.
//!
//! The relocation scratch buffer is owned by the FTL and reused across
//! collections, so a `write` performs **zero heap allocations** in steady
//! state — the property the `SimSession` allocation suite pins.
//!
//! The behaviour (victim choice, wear-leveling decisions, tie-breaking, every
//! counter) is bit-for-bit identical to the original `HashMap`-based
//! implementation; `tests/ftl_properties.rs` replays arbitrary command
//! streams against that original structure as an oracle to prove it.

use serde::{Deserialize, Serialize};
use ssdx_sim::codec::{DecodeError, Decoder, Encoder};
use std::fmt;

/// Errors reported by the page-mapped FTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlError {
    /// The logical page address is beyond the exported capacity.
    LbaOutOfRange,
    /// The device has no free block left even after garbage collection
    /// (can only happen if over-provisioning is zero).
    OutOfSpace,
}

impl fmt::Display for FtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtlError::LbaOutOfRange => write!(f, "logical page address out of range"),
            FtlError::OutOfSpace => write!(f, "no free physical block available"),
        }
    }
}

impl std::error::Error for FtlError {}

/// Counters describing the work the FTL has performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FtlStats {
    /// Host page writes accepted.
    pub host_writes: u64,
    /// Physical page programs issued (host writes + GC relocations).
    pub nand_writes: u64,
    /// Page relocations performed by the garbage collector.
    pub gc_relocations: u64,
    /// Page relocations performed by the static wear leveler (cold data
    /// moved so that low-erase-count blocks re-enter the rotation).
    pub wear_level_moves: u64,
    /// Blocks erased.
    pub erases: u64,
    /// TRIM commands processed.
    pub trims: u64,
}

impl FtlStats {
    /// Measured write amplification factor so far (1.0 when no host writes
    /// have been issued yet).
    pub fn waf(&self) -> f64 {
        if self.host_writes == 0 {
            1.0
        } else {
            self.nand_writes as f64 / self.host_writes as f64
        }
    }
}

/// `page_lpn` sentinel: the physical page has never been programmed since
/// the last erase.
const PAGE_FREE: u64 = u64::MAX;
/// `page_lpn` sentinel: the physical page held data that has since been
/// overwritten or trimmed.
const PAGE_INVALID: u64 = u64::MAX - 1;
/// `l2p` sentinel: the logical page is unmapped.
const UNMAPPED: u64 = u64::MAX;

/// A dense bitset over block indices, used to answer "is this block in the
/// free pool?" in O(1) during victim scans.
#[derive(Debug, Clone, Default)]
struct BlockBitset {
    words: Vec<u64>,
}

impl BlockBitset {
    fn new(blocks: u32) -> Self {
        BlockBitset {
            words: vec![0; (blocks as usize).div_ceil(64)],
        }
    }

    #[inline]
    fn set(&mut self, block: u32) {
        self.words[block as usize / 64] |= 1u64 << (block % 64);
    }

    #[inline]
    fn clear(&mut self, block: u32) {
        self.words[block as usize / 64] &= !(1u64 << (block % 64));
    }

    #[inline]
    fn contains(&self, block: u32) -> bool {
        self.words[block as usize / 64] & (1u64 << (block % 64)) != 0
    }

    fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// A page-mapped flash translation layer.
///
/// Physical space is organised as `blocks × pages_per_block` pages; a
/// fraction of the blocks is reserved as over-provisioning and never exported
/// to the host. Writes always go to the current open block (appended
/// log-style); when free blocks run low, the greedy collector reclaims the
/// block with the most invalid pages, relocating its still-valid pages.
/// Wear leveling is both dynamic (the freshest erase-count block is chosen
/// when a new open block is needed) and static (when the erase-count spread
/// exceeds a threshold, the coldest full block is relocated and erased so it
/// re-enters the rotation). Host writes and garbage-collection relocations
/// use separate open blocks so that hot host data and cold relocated data do
/// not mix (and so collection never re-enters itself).
#[derive(Debug, Clone)]
pub struct PageMappedFtl {
    pages_per_block: u32,
    blocks: u32,
    /// Packed physical page number per logical page, or [`UNMAPPED`].
    l2p: Vec<u64>,
    /// Logical page stored in each physical page, or a sentinel.
    page_lpn: Vec<u64>,
    /// Next free page index within each block (log-structured append point).
    write_ptr: Vec<u32>,
    /// Count of valid pages per block.
    valid: Vec<u32>,
    /// Erase count per block.
    erase_count: Vec<u64>,
    open_block: u32,
    gc_open_block: u32,
    /// Free pool in take/return order (position order is the wear-leveling
    /// tie-breaker, so it is part of the FTL's observable behaviour).
    free_blocks: Vec<u32>,
    /// O(1) membership mirror of `free_blocks`.
    free_mask: BlockBitset,
    /// Reusable scratch for the LPNs relocated out of a GC victim.
    reloc_buf: Vec<u64>,
    logical_pages: u64,
    gc_threshold: usize,
    wear_level_threshold: u64,
    /// P/E-cycle budget after which an erased block is retired instead of
    /// re-entering the free pool (`u64::MAX` disables retirement). A
    /// construction parameter, not snapshot state: retirement itself is
    /// observable through free-pool membership, which is encoded.
    retire_limit: u64,
    stats: FtlStats,
}

impl PageMappedFtl {
    /// Creates an FTL over `blocks` physical blocks of `pages_per_block`
    /// pages, exporting `1 / (1 + over_provisioning)` of the capacity to the
    /// host.
    ///
    /// # Panics
    ///
    /// Panics if `blocks < 8`, `pages_per_block == 0` or
    /// `over_provisioning <= 0`.
    pub fn new(blocks: u32, pages_per_block: u32, over_provisioning: f64) -> Self {
        assert!(blocks >= 8, "need at least 8 physical blocks");
        assert!(pages_per_block > 0, "pages per block must be non-zero");
        assert!(
            over_provisioning > 0.0,
            "over-provisioning must be positive for garbage collection to make progress"
        );
        let physical_pages = blocks as u64 * pages_per_block as u64;
        let logical_pages =
            ((physical_pages as f64 / (1.0 + over_provisioning)).floor() as u64).max(1);
        let free_blocks: Vec<u32> = (2..blocks).rev().collect();
        let mut free_mask = BlockBitset::new(blocks);
        for &b in &free_blocks {
            free_mask.set(b);
        }
        let gc_threshold = 2.max(blocks as usize / 32);
        PageMappedFtl {
            wear_level_threshold: 16,
            retire_limit: u64::MAX,
            pages_per_block,
            blocks,
            l2p: vec![UNMAPPED; logical_pages as usize],
            page_lpn: vec![PAGE_FREE; physical_pages as usize],
            write_ptr: vec![0; blocks as usize],
            valid: vec![0; blocks as usize],
            erase_count: vec![0; blocks as usize],
            open_block: 0,
            gc_open_block: 1,
            free_blocks,
            free_mask,
            reloc_buf: Vec::with_capacity(pages_per_block as usize),
            logical_pages,
            gc_threshold,
            stats: FtlStats::default(),
        }
    }

    /// Sets the P/E-cycle budget after which an erased block is retired
    /// instead of returning to the free pool. `u64::MAX` (the default)
    /// disables retirement. Like the geometry, this is a construction
    /// parameter: set it before driving traffic, and build forks with the
    /// same limit.
    pub fn set_retire_limit(&mut self, limit: u64) {
        self.retire_limit = limit;
    }

    /// Builder-style variant of [`set_retire_limit`](Self::set_retire_limit).
    #[must_use]
    pub fn with_retire_limit(mut self, limit: u64) -> Self {
        self.retire_limit = limit;
        self
    }

    /// Configured retirement P/E budget (`u64::MAX` when disabled).
    pub fn retire_limit(&self) -> u64 {
        self.retire_limit
    }

    /// Number of blocks currently retired: fully erased, at or past the
    /// retirement budget, and permanently out of the free pool. Derived from
    /// encoded state (erase counts + pool membership), so it needs no
    /// snapshot field of its own.
    pub fn retired_block_count(&self) -> u32 {
        (0..self.blocks)
            .filter(|&b| {
                b != self.open_block
                    && b != self.gc_open_block
                    && !self.free_mask.contains(b)
                    && self.write_ptr[b as usize] == 0
                    && self.erase_count[b as usize] >= self.retire_limit
            })
            .count() as u32
    }

    /// Number of logical pages exported to the host.
    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    /// Pages per physical block.
    pub fn pages_per_block(&self) -> u32 {
        self.pages_per_block
    }

    /// Number of physical blocks managed.
    pub fn physical_blocks(&self) -> u32 {
        self.blocks
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// `true` if `block` currently sits in the free pool (O(1), answered by
    /// the free-block bitset).
    pub fn is_free_block(&self, block: u32) -> bool {
        self.free_mask.contains(block)
    }

    /// Number of blocks currently in the free pool.
    pub fn free_block_count(&self) -> usize {
        debug_assert_eq!(self.free_mask.count(), self.free_blocks.len());
        self.free_blocks.len()
    }

    /// Current physical location of a logical page, if it has been written.
    #[inline]
    pub fn lookup(&self, lpn: u64) -> Option<(u32, u32)> {
        match self.l2p.get(lpn as usize) {
            Some(&ppn) if ppn != UNMAPPED => Some(self.unpack(ppn)),
            _ => None,
        }
    }

    /// Highest erase count across all blocks (wear-leveling quality metric).
    pub fn max_erase_count(&self) -> u64 {
        self.erase_count.iter().copied().max().unwrap_or(0)
    }

    /// Lowest erase count across all blocks.
    pub fn min_erase_count(&self) -> u64 {
        self.erase_count.iter().copied().min().unwrap_or(0)
    }

    /// Erase count of one block.
    ///
    /// # Panics
    ///
    /// Panics if `block` is out of range.
    pub fn erase_count_of(&self, block: u32) -> u64 {
        self.erase_count[block as usize]
    }

    #[inline]
    fn pack(&self, blk: u32, page: u32) -> u64 {
        blk as u64 * self.pages_per_block as u64 + page as u64
    }

    #[inline]
    fn unpack(&self, ppn: u64) -> (u32, u32) {
        (
            (ppn / self.pages_per_block as u64) as u32,
            (ppn % self.pages_per_block as u64) as u32,
        )
    }

    #[inline]
    fn is_full(&self, blk: u32) -> bool {
        self.write_ptr[blk as usize] >= self.pages_per_block
    }

    #[inline]
    fn invalid_count(&self, blk: u32) -> u32 {
        self.write_ptr[blk as usize] - self.valid[blk as usize]
    }

    #[inline]
    fn invalidate(&mut self, lpn: u64) {
        let ppn = std::mem::replace(&mut self.l2p[lpn as usize], UNMAPPED);
        if ppn != UNMAPPED {
            let blk = (ppn / self.pages_per_block as u64) as usize;
            self.page_lpn[ppn as usize] = PAGE_INVALID;
            self.valid[blk] -= 1;
        }
    }

    /// Removes the lowest-erase-count block from the free pool (dynamic wear
    /// leveling). Ties resolve to the earliest position in the pool, exactly
    /// as the original `min_by_key` over the evolving free list did.
    fn take_free_block(&mut self) -> Result<u32, FtlError> {
        if self.free_blocks.is_empty() {
            return Err(FtlError::OutOfSpace);
        }
        let mut pos = 0;
        let mut best = self.erase_count[self.free_blocks[0] as usize];
        for (i, &b) in self.free_blocks.iter().enumerate().skip(1) {
            let count = self.erase_count[b as usize];
            if count < best {
                best = count;
                pos = i;
            }
        }
        let block = self.free_blocks.swap_remove(pos);
        self.free_mask.clear(block);
        Ok(block)
    }

    /// Appends `lpn` to the block `blk`, which must not be full.
    #[inline]
    fn raw_append_to(&mut self, blk: u32, lpn: u64) -> (u32, u32) {
        debug_assert!(
            !self.is_full(blk),
            "raw_append_to requires a non-full block"
        );
        let page = self.write_ptr[blk as usize];
        let ppn = self.pack(blk, page);
        self.page_lpn[ppn as usize] = lpn;
        self.write_ptr[blk as usize] = page + 1;
        self.valid[blk as usize] += 1;
        self.l2p[lpn as usize] = ppn;
        self.stats.nand_writes += 1;
        (blk, page)
    }

    fn append(&mut self, lpn: u64) -> Result<(u32, u32), FtlError> {
        if self.is_full(self.open_block) {
            // Reclaim space first if the free pool is running low, then
            // switch to a fresh open block.
            while self.free_blocks.len() <= self.gc_threshold {
                if !self.collect_one_victim()? {
                    break;
                }
            }
            self.maybe_wear_level()?;
            self.open_block = self.take_free_block()?;
        }
        Ok(self.raw_append_to(self.open_block, lpn))
    }

    /// Static wear leveling: when the erase-count spread across the array
    /// exceeds the threshold, relocate the coldest full block so it rejoins
    /// the free pool and starts absorbing erases.
    fn maybe_wear_level(&mut self) -> Result<(), FtlError> {
        if self.max_erase_count() - self.min_erase_count() < self.wear_level_threshold {
            return Ok(());
        }
        // First minimum in block order (ties resolve to the lowest index,
        // as `min_by_key` over the block iterator did).
        let mut coldest: Option<(u32, u64)> = None;
        for blk in 0..self.blocks {
            if blk == self.open_block
                || blk == self.gc_open_block
                || self.free_mask.contains(blk)
                || !self.is_full(blk)
            {
                continue;
            }
            let count = self.erase_count[blk as usize];
            match coldest {
                Some((_, best)) if count >= best => {}
                _ => coldest = Some((blk, count)),
            }
        }
        if let Some((victim, _)) = coldest {
            let moved = self.reclaim_block(victim)?;
            self.stats.wear_level_moves += moved;
            self.stats.gc_relocations -= moved;
        }
        Ok(())
    }

    /// Reclaims the single best victim block (greedy policy: the full block
    /// with the most invalid pages). Returns `Ok(false)` when no block is
    /// worth collecting (no full block carries an invalid page).
    fn collect_one_victim(&mut self) -> Result<bool, FtlError> {
        // Blocks in the free pool are never full, so the bitset skip mirrors
        // the fullness filter; the two open blocks are excluded explicitly.
        // Last maximum in block order (ties resolve to the highest index, as
        // `max_by_key` over the block iterator did).
        let mut victim: Option<(u32, u32)> = None;
        for blk in 0..self.blocks {
            if blk == self.open_block
                || blk == self.gc_open_block
                || self.free_mask.contains(blk)
                || !self.is_full(blk)
            {
                continue;
            }
            let inv = self.invalid_count(blk);
            match victim {
                Some((_, best)) if inv < best => {}
                _ => victim = Some((blk, inv)),
            }
        }
        let Some((victim, invalid)) = victim else {
            return Ok(false);
        };
        if invalid == 0 {
            return Ok(false);
        }
        self.reclaim_block(victim)?;
        Ok(true)
    }

    /// Relocates every valid page of `victim` into the GC open block, erases
    /// it and returns it to the free pool. Returns the number of pages
    /// relocated. Relocation never re-enters collection: it takes fresh
    /// blocks straight from the free pool.
    fn reclaim_block(&mut self, victim: u32) -> Result<u64, FtlError> {
        let base = self.pack(victim, 0) as usize;
        let end = base + self.write_ptr[victim as usize] as usize;
        // The reusable scratch buffer keeps collection allocation-free in
        // steady state (it only grows until it has seen a full block once).
        let mut reloc = std::mem::take(&mut self.reloc_buf);
        reloc.clear();
        reloc.extend(
            self.page_lpn[base..end]
                .iter()
                .copied()
                .filter(|&lpn| lpn != PAGE_FREE && lpn != PAGE_INVALID),
        );
        let moved = reloc.len() as u64;
        for &lpn in &reloc {
            self.invalidate(lpn);
            if self.is_full(self.gc_open_block) {
                match self.take_free_block() {
                    Ok(b) => self.gc_open_block = b,
                    Err(e) => {
                        self.reloc_buf = reloc;
                        return Err(e);
                    }
                }
            }
            self.raw_append_to(self.gc_open_block, lpn);
            self.stats.gc_relocations += 1;
        }
        self.reloc_buf = reloc;
        // Erase the victim and return it to the free pool — unless the erase
        // exhausted its retirement budget, in which case the block is
        // permanently withdrawn (spare-area exhaustion shows up as a
        // shrinking pool and, eventually, OutOfSpace).
        let erase_base = self.pack(victim, 0) as usize;
        let erase_end = erase_base + self.pages_per_block as usize;
        self.page_lpn[erase_base..erase_end].fill(PAGE_FREE);
        self.write_ptr[victim as usize] = 0;
        self.valid[victim as usize] = 0;
        self.erase_count[victim as usize] += 1;
        self.stats.erases += 1;
        if self.erase_count[victim as usize] < self.retire_limit {
            self.free_blocks.push(victim);
            self.free_mask.set(victim);
        }
        Ok(moved)
    }

    /// Starts collecting the current greedy victim but stops after
    /// relocating at most `limit_pages` of its valid pages, leaving the
    /// victim half-evacuated and **not** erased. This manufactures a genuine
    /// mid-garbage-collection state for power-loss experiments: relocated
    /// pages live in the GC open block with their old copies marked invalid
    /// in the victim, while the remaining valid pages still live in the
    /// victim. Returns the number of pages relocated (0 when no block is
    /// worth collecting or the pool cannot supply a GC block).
    pub fn interrupt_reclaim(&mut self, limit_pages: u32) -> u64 {
        // Victim selection mirrors collect_one_victim (last maximum of the
        // invalid count over full, non-open, non-free blocks).
        let mut victim: Option<(u32, u32)> = None;
        for blk in 0..self.blocks {
            if blk == self.open_block
                || blk == self.gc_open_block
                || self.free_mask.contains(blk)
                || !self.is_full(blk)
            {
                continue;
            }
            let inv = self.invalid_count(blk);
            match victim {
                Some((_, best)) if inv < best => {}
                _ => victim = Some((blk, inv)),
            }
        }
        let Some((victim, _)) = victim else {
            return 0;
        };
        let base = self.pack(victim, 0) as usize;
        let end = base + self.write_ptr[victim as usize] as usize;
        let mut reloc = std::mem::take(&mut self.reloc_buf);
        reloc.clear();
        reloc.extend(
            self.page_lpn[base..end]
                .iter()
                .copied()
                .filter(|&lpn| lpn != PAGE_FREE && lpn != PAGE_INVALID)
                .take(limit_pages as usize),
        );
        let mut moved = 0u64;
        for &lpn in &reloc {
            if self.is_full(self.gc_open_block) {
                match self.take_free_block() {
                    Ok(b) => self.gc_open_block = b,
                    Err(FtlError::OutOfSpace | FtlError::LbaOutOfRange) => break,
                }
            }
            self.invalidate(lpn);
            self.raw_append_to(self.gc_open_block, lpn);
            self.stats.gc_relocations += 1;
            moved += 1;
        }
        self.reloc_buf = reloc;
        moved
    }

    /// Rebuilds the FTL after a power loss, treating the per-physical-page
    /// LPN table (the out-of-band/journal metadata a real FTL persists with
    /// each program) and the per-block erase counts as the only surviving
    /// state. Everything volatile — the L2P table, per-block valid counts
    /// and write pointers, the free pool and the open blocks — is
    /// reconstructed deterministically from that journal:
    ///
    /// * the L2P table is rebuilt from live reverse-map entries (each LPN is
    ///   live in at most one physical page, so the scan order is immaterial);
    /// * write pointers and valid counts are recounted per block;
    /// * the free pool is rebuilt in ascending block order from fully-erased
    ///   blocks that are still within the retirement budget;
    /// * fresh host and GC open blocks are taken from the rebuilt pool; when
    ///   the pool cannot supply both, the partially-programmed blocks with
    ///   the largest unwritten tails are reopened instead (the journal
    ///   replay certifies their append point), so the device never wedges
    ///   with reclaimable space behind a full GC block;
    /// * every remaining partially-programmed block is **closed** — its
    ///   unwritten tail is accounted as reclaimable space and the block
    ///   becomes an ordinary garbage-collection candidate.
    ///
    /// Statistics are modelled as persisted. Returns the number of live
    /// logical mappings recovered. The rebuild is a pure function of state
    /// that the snapshot codec already encodes, so recovery on a forked
    /// session is byte-identical to recovery on the continuous one.
    pub fn recover_from_power_loss(&mut self) -> u64 {
        for slot in &mut self.l2p {
            *slot = UNMAPPED;
        }
        let mut live = 0u64;
        for blk in 0..self.blocks {
            let base = self.pack(blk, 0) as usize;
            let mut wp = 0u32;
            let mut valid = 0u32;
            for page in 0..self.pages_per_block {
                let lpn = self.page_lpn[base + page as usize];
                if lpn == PAGE_FREE {
                    continue;
                }
                wp = page + 1;
                if lpn != PAGE_INVALID {
                    valid += 1;
                    live += 1;
                    self.l2p[lpn as usize] = self.pack(blk, page);
                }
            }
            self.write_ptr[blk as usize] = wp;
            self.valid[blk as usize] = valid;
        }
        self.free_blocks.clear();
        self.free_mask = BlockBitset::new(self.blocks);
        for blk in 0..self.blocks {
            if self.write_ptr[blk as usize] == 0
                && self.erase_count[blk as usize] < self.retire_limit
            {
                self.free_blocks.push(blk);
                self.free_mask.set(blk);
            }
        }
        // Partially-programmed blocks, most unwritten tail first (ties to
        // the lowest index): candidates for reopening when the pool runs
        // short.
        let mut partials: Vec<u32> = (0..self.blocks)
            .filter(|&b| {
                let wp = self.write_ptr[b as usize];
                wp > 0 && wp < self.pages_per_block
            })
            .collect();
        partials.sort_by_key(|&b| (self.write_ptr[b as usize], b));
        let mut partials = partials.into_iter();
        let (old_open, old_gc) = (self.open_block, self.gc_open_block);
        self.open_block = match self.take_free_block() {
            Ok(b) => b,
            Err(_) => partials.next().unwrap_or(old_open),
        };
        self.gc_open_block = match self.take_free_block() {
            Ok(b) => b,
            Err(_) => partials.next().unwrap_or(old_gc),
        };
        // Close every partial block that was not reopened: the unwritten
        // tail pages stay PAGE_FREE (reclaim filters them out) but count as
        // invalid space, so the collector can recover them.
        for blk in partials {
            self.write_ptr[blk as usize] = self.pages_per_block;
        }
        self.reloc_buf.clear();
        live
    }

    /// Writes one logical page, returning its new physical location.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LbaOutOfRange`] if `lpn` exceeds the exported
    /// capacity, or [`FtlError::OutOfSpace`] if no block can be reclaimed.
    pub fn write(&mut self, lpn: u64) -> Result<(u32, u32), FtlError> {
        if lpn >= self.logical_pages {
            return Err(FtlError::LbaOutOfRange);
        }
        self.invalidate(lpn);
        self.stats.host_writes += 1;
        self.append(lpn)
    }

    /// Reads one logical page, returning its physical location if mapped.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LbaOutOfRange`] if `lpn` exceeds the exported
    /// capacity.
    pub fn read(&self, lpn: u64) -> Result<Option<(u32, u32)>, FtlError> {
        if lpn >= self.logical_pages {
            return Err(FtlError::LbaOutOfRange);
        }
        Ok(self.lookup(lpn))
    }

    /// TRIMs (discards) one logical page.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LbaOutOfRange`] if `lpn` exceeds the exported
    /// capacity.
    pub fn trim(&mut self, lpn: u64) -> Result<(), FtlError> {
        if lpn >= self.logical_pages {
            return Err(FtlError::LbaOutOfRange);
        }
        self.invalidate(lpn);
        self.stats.trims += 1;
        Ok(())
    }

    /// Encodes the FTL's mutable state, in stable field order: the L2P table
    /// (construction-fixed length; `UNMAPPED` as `0`, a mapped PPN as
    /// `ppn + 1` — the sentinel would otherwise cost a 10-byte varint per
    /// unmapped page), the per-physical-page LPN table (`PAGE_FREE` as
    /// `0`, `PAGE_INVALID` as `1`, a live LPN as `lpn + 2`), per-block
    /// write pointers, valid counts and erase counts, the host and GC open
    /// blocks, the free pool in take/return order (its order is the
    /// wear-leveling tie-breaker, so it is observable state), then the
    /// statistics. The free-pool bitset mirror is rebuilt on decode, and the
    /// relocation scratch buffer is transient, not state.
    pub fn encode_state(&self, enc: &mut Encoder) {
        for &ppn in &self.l2p {
            enc.put_u64(if ppn == UNMAPPED { 0 } else { ppn + 1 });
        }
        for &lpn in &self.page_lpn {
            enc.put_u64(match lpn {
                PAGE_FREE => 0,
                PAGE_INVALID => 1,
                live => live + 2,
            });
        }
        for &p in &self.write_ptr {
            enc.put_u32(p);
        }
        for &v in &self.valid {
            enc.put_u32(v);
        }
        for &e in &self.erase_count {
            enc.put_u64(e);
        }
        enc.put_u32(self.open_block);
        enc.put_u32(self.gc_open_block);
        enc.put_len(self.free_blocks.len());
        for &b in &self.free_blocks {
            enc.put_u32(b);
        }
        enc.put_u64(self.stats.host_writes);
        enc.put_u64(self.stats.nand_writes);
        enc.put_u64(self.stats.gc_relocations);
        enc.put_u64(self.stats.wear_level_moves);
        enc.put_u64(self.stats.erases);
        enc.put_u64(self.stats.trims);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state) onto
    /// an FTL constructed with the same geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input, including
    /// out-of-range physical/logical page numbers, write pointers past the
    /// block end, open-block or free-pool entries that are not valid block
    /// indices, or duplicated free-pool entries.
    pub fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        let physical_pages = self.blocks as u64 * self.pages_per_block as u64;
        for slot in &mut self.l2p {
            let raw = dec.get_u64()?;
            *slot = match raw.checked_sub(1) {
                None => UNMAPPED,
                Some(ppn) if ppn < physical_pages => ppn,
                Some(_) => return Err(dec.invalid("L2P entry out of range")),
            };
        }
        for slot in &mut self.page_lpn {
            let raw = dec.get_u64()?;
            *slot = match raw {
                0 => PAGE_FREE,
                1 => PAGE_INVALID,
                shifted if shifted - 2 < self.logical_pages => shifted - 2,
                _ => return Err(dec.invalid("physical-page LPN out of range")),
            };
        }
        for slot in &mut self.write_ptr {
            let p = dec.get_u32()?;
            if p > self.pages_per_block {
                return Err(dec.invalid("write pointer past block end"));
            }
            *slot = p;
        }
        for slot in &mut self.valid {
            let v = dec.get_u32()?;
            if v > self.pages_per_block {
                return Err(dec.invalid("valid count past block size"));
            }
            *slot = v;
        }
        for slot in &mut self.erase_count {
            *slot = dec.get_u64()?;
        }
        self.open_block = dec.get_u32()?;
        self.gc_open_block = dec.get_u32()?;
        if self.open_block >= self.blocks || self.gc_open_block >= self.blocks {
            return Err(dec.invalid("open block out of range"));
        }
        let free = dec.get_len()?;
        if free > self.blocks as usize {
            return Err(dec.invalid("free pool larger than block count"));
        }
        self.free_blocks.clear();
        self.free_mask = BlockBitset::new(self.blocks);
        for _ in 0..free {
            let b = dec.get_u32()?;
            if b >= self.blocks {
                return Err(dec.invalid("free-pool block out of range"));
            }
            if self.free_mask.contains(b) {
                return Err(dec.invalid("duplicate free-pool block"));
            }
            self.free_mask.set(b);
            self.free_blocks.push(b);
        }
        self.reloc_buf.clear();
        self.stats.host_writes = dec.get_u64()?;
        self.stats.nand_writes = dec.get_u64()?;
        self.stats.gc_relocations = dec.get_u64()?;
        self.stats.wear_level_moves = dec.get_u64()?;
        self.stats.erases = dec.get_u64()?;
        self.stats.trims = dec.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ftl() -> PageMappedFtl {
        PageMappedFtl::new(64, 32, 0.25)
    }

    #[test]
    fn capacity_reflects_over_provisioning() {
        let ftl = small_ftl();
        // 64*32 = 2048 physical pages, /1.25 = 1638 logical.
        assert_eq!(ftl.logical_pages(), 1638);
        assert_eq!(ftl.physical_blocks(), 64);
    }

    #[test]
    fn write_then_read_back_same_location() {
        let mut ftl = small_ftl();
        let loc = ftl.write(10).unwrap();
        assert_eq!(ftl.read(10).unwrap(), Some(loc));
        assert_eq!(ftl.read(11).unwrap(), None);
    }

    #[test]
    fn rewrite_moves_the_page_and_invalidates_old_copy() {
        let mut ftl = small_ftl();
        let first = ftl.write(5).unwrap();
        let second = ftl.write(5).unwrap();
        assert_ne!(first, second);
        assert_eq!(ftl.lookup(5), Some(second));
    }

    #[test]
    fn out_of_range_lba_is_rejected() {
        let mut ftl = small_ftl();
        let bad = ftl.logical_pages();
        assert_eq!(ftl.write(bad), Err(FtlError::LbaOutOfRange));
        assert_eq!(ftl.read(bad), Err(FtlError::LbaOutOfRange));
        assert_eq!(ftl.trim(bad), Err(FtlError::LbaOutOfRange));
    }

    #[test]
    fn trim_unmaps_the_page() {
        let mut ftl = small_ftl();
        ftl.write(3).unwrap();
        ftl.trim(3).unwrap();
        assert_eq!(ftl.lookup(3), None);
        assert_eq!(ftl.stats().trims, 1);
    }

    #[test]
    fn sequential_overwrites_have_waf_near_one() {
        let mut ftl = small_ftl();
        // Fill the logical space sequentially three times.
        for _round in 0..3 {
            for lpn in 0..ftl.logical_pages() {
                ftl.write(lpn).unwrap();
            }
        }
        let waf = ftl.stats().waf();
        assert!(waf < 1.2, "sequential WAF should stay near 1, got {waf}");
    }

    #[test]
    fn random_overwrites_amplify_writes() {
        let mut ftl = small_ftl();
        // Prime the drive, then hammer it with uniform random overwrites.
        for lpn in 0..ftl.logical_pages() {
            ftl.write(lpn).unwrap();
        }
        let mut rng = ssdx_sim::rng::SimRng::new(99);
        for _ in 0..20_000 {
            let lpn = rng.uniform_u64(0, ftl.logical_pages() - 1);
            ftl.write(lpn).unwrap();
        }
        let waf = ftl.stats().waf();
        assert!(waf > 1.3, "random WAF should exceed 1.3, got {waf}");
        assert!(ftl.stats().erases > 0);
        assert!(ftl.stats().gc_relocations > 0);
    }

    #[test]
    fn wear_leveling_keeps_erase_counts_close() {
        let mut ftl = small_ftl();
        for lpn in 0..ftl.logical_pages() {
            ftl.write(lpn).unwrap();
        }
        let mut rng = ssdx_sim::rng::SimRng::new(7);
        for _ in 0..30_000 {
            let lpn = rng.uniform_u64(0, ftl.logical_pages() - 1);
            ftl.write(lpn).unwrap();
        }
        let spread = ftl.max_erase_count() - ftl.min_erase_count();
        assert!(
            spread <= ftl.max_erase_count().max(4),
            "erase counts should stay within a reasonable band (spread {spread})"
        );
    }

    #[test]
    fn mapping_is_injective() {
        let mut ftl = small_ftl();
        let mut rng = ssdx_sim::rng::SimRng::new(5);
        for _ in 0..5_000 {
            let lpn = rng.uniform_u64(0, ftl.logical_pages() - 1);
            ftl.write(lpn).unwrap();
        }
        let mut seen = std::collections::BTreeSet::new();
        for lpn in 0..ftl.logical_pages() {
            if let Some(loc) = ftl.lookup(lpn) {
                assert!(seen.insert(loc), "two LBAs map to the same physical page");
            }
        }
    }

    #[test]
    fn free_bitset_mirrors_the_free_pool() {
        let mut ftl = small_ftl();
        // Initially blocks 2.. are free, 0 and 1 are the open blocks.
        assert!(!ftl.is_free_block(0));
        assert!(!ftl.is_free_block(1));
        assert!(ftl.is_free_block(2));
        assert_eq!(ftl.free_block_count(), 62);
        let mut rng = ssdx_sim::rng::SimRng::new(21);
        for _ in 0..10_000 {
            let lpn = rng.uniform_u64(0, ftl.logical_pages() - 1);
            ftl.write(lpn).unwrap();
        }
        // The bitset and the pool agree after heavy GC churn (the debug
        // assertion inside free_block_count checks the counts match).
        let free = ftl.free_block_count();
        assert!(free > 0);
        let mask_count = (0..ftl.physical_blocks())
            .filter(|&b| ftl.is_free_block(b))
            .count();
        assert_eq!(mask_count, free);
    }

    #[test]
    #[should_panic(expected = "over-provisioning must be positive")]
    fn zero_op_rejected() {
        let _ = PageMappedFtl::new(8, 8, 0.0);
    }

    #[test]
    fn retirement_shrinks_the_free_pool() {
        let mut ftl = small_ftl().with_retire_limit(2);
        assert_eq!(ftl.retire_limit(), 2);
        assert_eq!(ftl.retired_block_count(), 0);
        for lpn in 0..ftl.logical_pages() {
            ftl.write(lpn).unwrap();
        }
        let mut rng = ssdx_sim::rng::SimRng::new(99);
        let mut failed = false;
        for _ in 0..60_000 {
            let lpn = rng.uniform_u64(0, ftl.logical_pages() - 1);
            if ftl.write(lpn).is_err() {
                failed = true;
                break;
            }
        }
        assert!(ftl.retired_block_count() > 0, "no block ever retired");
        // No retired block may sit in the free pool.
        for b in 0..ftl.physical_blocks() {
            if ftl.erase_count_of(b) >= 2 {
                assert!(!ftl.is_free_block(b), "retired block {b} still in pool");
            }
        }
        // A 2-erase budget under sustained random overwrites must exhaust
        // the spares eventually.
        assert!(failed, "spare exhaustion never produced OutOfSpace");
    }

    #[test]
    fn last_spare_block_retirement_reports_out_of_space() {
        // Retire on the very first erase: the pool can only shrink, and the
        // device dies as soon as GC cannot hand the collector a fresh block.
        let mut ftl = PageMappedFtl::new(8, 4, 0.30).with_retire_limit(1);
        let mut rng = ssdx_sim::rng::SimRng::new(5);
        let mut out_of_space = false;
        for _ in 0..10_000 {
            let lpn = rng.uniform_u64(0, ftl.logical_pages() - 1);
            match ftl.write(lpn) {
                Ok(_) => {}
                Err(FtlError::OutOfSpace) => {
                    out_of_space = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(out_of_space, "retire-on-first-erase must exhaust the pool");
        // After exhaustion the FTL is still consistent and readable.
        let mapped = (0..ftl.logical_pages())
            .filter(|&lpn| ftl.lookup(lpn).is_some())
            .count();
        assert!(mapped > 0);
    }

    #[test]
    fn interrupt_reclaim_leaves_victim_unerased() {
        let mut ftl = small_ftl();
        for lpn in 0..ftl.logical_pages() {
            ftl.write(lpn).unwrap();
        }
        let mut rng = ssdx_sim::rng::SimRng::new(11);
        for _ in 0..5_000 {
            let lpn = rng.uniform_u64(0, ftl.logical_pages() - 1);
            ftl.write(lpn).unwrap();
        }
        let erases_before = ftl.stats().erases;
        let moved = ftl.interrupt_reclaim(4);
        assert!(moved > 0 && moved <= 4, "moved {moved}");
        // The interruption relocates but never erases.
        assert_eq!(ftl.stats().erases, erases_before);
    }

    #[test]
    fn recovery_preserves_logical_contents() {
        let mut ftl = small_ftl();
        for lpn in 0..ftl.logical_pages() {
            ftl.write(lpn).unwrap();
        }
        let mut rng = ssdx_sim::rng::SimRng::new(17);
        for _ in 0..8_000 {
            let lpn = rng.uniform_u64(0, ftl.logical_pages() - 1);
            if rng.uniform_u64(0, 9) == 0 {
                ftl.trim(lpn).unwrap();
            } else {
                ftl.write(lpn).unwrap();
            }
        }
        let before: Vec<Option<(u32, u32)>> =
            (0..ftl.logical_pages()).map(|l| ftl.lookup(l)).collect();
        ftl.interrupt_reclaim(7);
        // Relocation moves pages, so compare against the post-interruption
        // mapping presence (contents), not raw locations.
        let mapped_before: Vec<bool> = (0..ftl.logical_pages())
            .map(|l| ftl.lookup(l).is_some())
            .collect();
        let live = ftl.recover_from_power_loss();
        assert_eq!(live as usize, mapped_before.iter().filter(|&&m| m).count());
        for (lpn, (&was_mapped, old)) in mapped_before.iter().zip(before.iter()).enumerate() {
            assert_eq!(
                ftl.lookup(lpn as u64).is_some(),
                was_mapped,
                "lpn {lpn} mapping presence changed across recovery (pre-GC {old:?})"
            );
        }
        // The FTL keeps working after recovery.
        for _ in 0..2_000 {
            let lpn = rng.uniform_u64(0, ftl.logical_pages() - 1);
            ftl.write(lpn).unwrap();
        }
    }
}
