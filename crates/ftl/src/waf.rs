//! The Write Amplification Factor abstraction (greedy garbage collection).

use serde::{Deserialize, Serialize};

/// How random the write stream is, which drives write amplification.
///
/// Purely sequential traffic fills whole blocks before they are invalidated,
/// so greedy garbage collection reclaims blocks that are entirely invalid and
/// the write amplification stays at 1. Purely random traffic scatters
/// invalidations uniformly and forces the collector to relocate live pages.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Fraction of the write footprint updated at random, `0.0` (sequential)
    /// to `1.0` (uniform random).
    pub random_fraction: f64,
}

impl WorkloadMix {
    /// A purely sequential write stream.
    pub fn sequential() -> Self {
        WorkloadMix {
            random_fraction: 0.0,
        }
    }

    /// A uniformly random write stream.
    pub fn random() -> Self {
        WorkloadMix {
            random_fraction: 1.0,
        }
    }

    /// A mixed stream with the given random fraction (clamped to `[0, 1]`).
    pub fn mixed(random_fraction: f64) -> Self {
        WorkloadMix {
            random_fraction: random_fraction.clamp(0.0, 1.0),
        }
    }
}

/// Greedy-policy analytic write-amplification model (Hu et al., SYSTOR 2009).
///
/// The model needs only the over-provisioning of the device — the fraction of
/// physical capacity hidden from the host — and the randomness of the write
/// stream. It returns the WAF used to inflate the NAND write traffic and the
/// equivalent garbage-collection blocking overhead, which is how SSDExplorer
/// accounts for the FTL without implementing one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WafModel {
    /// Spare factor: `(physical - logical) / logical` capacity.
    pub over_provisioning: f64,
    /// Fraction of logical capacity actually occupied by valid data (hot
    /// data footprint), 0–1. A lightly filled drive amplifies less.
    pub occupancy: f64,
}

impl WafModel {
    /// A model with the given over-provisioning and full occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `over_provisioning` is not positive and finite.
    pub fn new(over_provisioning: f64) -> Self {
        assert!(
            over_provisioning.is_finite() && over_provisioning > 0.0,
            "over-provisioning must be positive"
        );
        WafModel {
            over_provisioning,
            occupancy: 1.0,
        }
    }

    /// The ~7 % over-provisioning of consumer drives such as the OCZ Vertex
    /// (120 GB usable out of 128 GiB raw).
    pub fn consumer_7pct() -> Self {
        WafModel::new(0.07)
    }

    /// The ~28 % over-provisioning typical of enterprise drives.
    pub fn enterprise_28pct() -> Self {
        WafModel::new(0.28)
    }

    /// Sets the valid-data occupancy (clamped to `[0.05, 1.0]`).
    pub fn with_occupancy(mut self, occupancy: f64) -> Self {
        self.occupancy = occupancy.clamp(0.05, 1.0);
        self
    }

    /// Write amplification of a *uniformly random* write stream under greedy
    /// garbage collection.
    ///
    /// Uses the closed-form approximation of the greedy/LRU collector on
    /// uniform traffic: with an effective spare factor
    /// `ρ = over_provisioning / occupancy`, the victim block still holds
    /// about `1 / (1 + 2ρ)` valid data when reclaimed, giving
    /// `WAF ≈ (1 + 2ρ) / (2ρ)`· ... simplified here to the standard
    /// `(1 + ρ) / (2 ρ)` worst-case greedy bound, floored at 1.
    pub fn random_waf(&self) -> f64 {
        let rho = self.over_provisioning / self.occupancy.max(0.05);
        ((1.0 + rho) / (2.0 * rho)).max(1.0)
    }

    /// Write amplification for an arbitrary workload mix: sequential traffic
    /// does not amplify, random traffic amplifies per
    /// [`random_waf`](Self::random_waf), blends linearly in between.
    pub fn waf(&self, mix: WorkloadMix) -> f64 {
        let r = mix.random_fraction.clamp(0.0, 1.0);
        1.0 + r * (self.random_waf() - 1.0)
    }

    /// Number of *physical* page writes needed to serve `host_pages` host
    /// page writes (rounded to the nearest whole page, at least
    /// `host_pages`).
    pub fn physical_pages(&self, host_pages: u64, mix: WorkloadMix) -> u64 {
        ((host_pages as f64 * self.waf(mix)).round() as u64).max(host_pages)
    }

    /// Extra page relocations (reads + writes performed by the garbage
    /// collector) per host page write.
    pub fn gc_relocations_per_write(&self, mix: WorkloadMix) -> f64 {
        (self.waf(mix) - 1.0).max(0.0)
    }

    /// Block erases per host page write, for a block of `pages_per_block`
    /// pages: every `pages_per_block / WAF` host writes consume one block.
    pub fn erases_per_write(&self, mix: WorkloadMix, pages_per_block: u32) -> f64 {
        self.waf(mix) / pages_per_block.max(1) as f64
    }
}

impl Default for WafModel {
    fn default() -> Self {
        Self::consumer_7pct()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_traffic_does_not_amplify() {
        let m = WafModel::consumer_7pct();
        assert!((m.waf(WorkloadMix::sequential()) - 1.0).abs() < 1e-12);
        assert_eq!(m.physical_pages(1000, WorkloadMix::sequential()), 1000);
    }

    #[test]
    fn random_traffic_amplifies_substantially_at_low_op() {
        let m = WafModel::consumer_7pct();
        let waf = m.waf(WorkloadMix::random());
        assert!(waf > 4.0, "waf = {waf}");
        assert!(waf < 12.0, "waf = {waf}");
    }

    #[test]
    fn more_over_provisioning_means_less_amplification() {
        let consumer = WafModel::consumer_7pct().random_waf();
        let enterprise = WafModel::enterprise_28pct().random_waf();
        assert!(enterprise < consumer);
        assert!(enterprise >= 1.0);
    }

    #[test]
    fn waf_is_monotone_in_random_fraction() {
        let m = WafModel::consumer_7pct();
        let mut prev = 0.0;
        for i in 0..=10 {
            let w = m.waf(WorkloadMix::mixed(i as f64 / 10.0));
            assert!(w >= prev);
            prev = w;
        }
    }

    #[test]
    fn lower_occupancy_reduces_amplification() {
        let full = WafModel::consumer_7pct();
        let half = WafModel::consumer_7pct().with_occupancy(0.5);
        assert!(half.random_waf() < full.random_waf());
    }

    #[test]
    fn gc_relocations_and_erases_track_waf() {
        let m = WafModel::consumer_7pct();
        let mix = WorkloadMix::random();
        assert!((m.gc_relocations_per_write(mix) - (m.waf(mix) - 1.0)).abs() < 1e-12);
        let erases = m.erases_per_write(mix, 128);
        assert!(erases > 0.0 && erases < 1.0);
    }

    #[test]
    fn physical_pages_never_less_than_host_pages() {
        let m = WafModel::enterprise_28pct();
        for pages in [1u64, 10, 1_000, 1_000_000] {
            assert!(m.physical_pages(pages, WorkloadMix::random()) >= pages);
        }
    }

    #[test]
    #[should_panic(expected = "over-provisioning must be positive")]
    fn zero_op_rejected() {
        let _ = WafModel::new(0.0);
    }

    #[test]
    fn mix_constructor_clamps() {
        assert_eq!(WorkloadMix::mixed(7.0).random_fraction, 1.0);
        assert_eq!(WorkloadMix::mixed(-2.0).random_fraction, 0.0);
    }
}
