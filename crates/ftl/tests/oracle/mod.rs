//! The original `HashMap`-based page-mapped FTL, kept verbatim as the test
//! oracle for the flat-memory rewrite.
//!
//! This is the implementation that shipped before the hot-path overhaul,
//! preserved unmodified (only renamed to `OracleFtl`). The property suite in
//! `ftl_properties.rs` replays arbitrary command streams through both
//! implementations and asserts that every observable — mapping, statistics,
//! erase counts, errors — stays identical, which is what proves the flat
//! rewrite is a pure-speed change.

use ssdx_ftl::{FtlError, FtlStats};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PageState {
    Free,
    Valid(u64),
    Invalid,
}

#[derive(Debug, Clone)]
struct Block {
    pages: Vec<PageState>,
    write_ptr: u32,
    valid: u32,
    erase_count: u64,
}

impl Block {
    fn new(pages_per_block: u32) -> Self {
        Block {
            pages: vec![PageState::Free; pages_per_block as usize],
            write_ptr: 0,
            valid: 0,
            erase_count: 0,
        }
    }

    fn is_full(&self) -> bool {
        self.write_ptr as usize >= self.pages.len()
    }

    fn invalid_count(&self) -> u32 {
        self.write_ptr - self.valid
    }
}

/// The pre-overhaul page-mapped FTL (hash-map L2P, per-block page vectors).
#[derive(Debug, Clone)]
pub struct OracleFtl {
    // Kept although the equivalence suite never reads it back: the oracle
    // is a verbatim copy of the original structure.
    #[allow(dead_code)]
    pages_per_block: u32,
    blocks: Vec<Block>,
    mapping: HashMap<u64, (u32, u32)>,
    open_block: u32,
    gc_open_block: u32,
    free_blocks: Vec<u32>,
    logical_pages: u64,
    gc_threshold: usize,
    wear_level_threshold: u64,
    stats: FtlStats,
}

impl OracleFtl {
    pub fn new(blocks: u32, pages_per_block: u32, over_provisioning: f64) -> Self {
        assert!(blocks >= 8, "need at least 8 physical blocks");
        assert!(pages_per_block > 0, "pages per block must be non-zero");
        assert!(
            over_provisioning > 0.0,
            "over-provisioning must be positive for garbage collection to make progress"
        );
        let physical_pages = blocks as u64 * pages_per_block as u64;
        let logical_pages =
            ((physical_pages as f64 / (1.0 + over_provisioning)).floor() as u64).max(1);
        let all_blocks: Vec<Block> = (0..blocks).map(|_| Block::new(pages_per_block)).collect();
        let free_blocks: Vec<u32> = (2..blocks).rev().collect();
        let gc_threshold = 2.max(blocks as usize / 32);
        OracleFtl {
            wear_level_threshold: 16,
            pages_per_block,
            blocks: all_blocks,
            mapping: HashMap::new(),
            open_block: 0,
            gc_open_block: 1,
            free_blocks,
            logical_pages,
            gc_threshold,
            stats: FtlStats::default(),
        }
    }

    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    pub fn lookup(&self, lpn: u64) -> Option<(u32, u32)> {
        self.mapping.get(&lpn).copied()
    }

    pub fn max_erase_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.erase_count).max().unwrap_or(0)
    }

    pub fn min_erase_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.erase_count).min().unwrap_or(0)
    }

    /// Erase count of one block (exposed for per-block state comparison).
    pub fn erase_count_of(&self, block: u32) -> u64 {
        self.blocks[block as usize].erase_count
    }

    fn invalidate(&mut self, lpn: u64) {
        if let Some((blk, page)) = self.mapping.remove(&lpn) {
            let block = &mut self.blocks[blk as usize];
            block.pages[page as usize] = PageState::Invalid;
            block.valid -= 1;
        }
    }

    fn take_free_block(&mut self) -> Result<u32, FtlError> {
        let (pos, _) = self
            .free_blocks
            .iter()
            .enumerate()
            .min_by_key(|(_, &b)| self.blocks[b as usize].erase_count)
            .ok_or(FtlError::OutOfSpace)?;
        Ok(self.free_blocks.swap_remove(pos))
    }

    fn raw_append_to(&mut self, blk: u32, lpn: u64) -> (u32, u32) {
        let block = &mut self.blocks[blk as usize];
        debug_assert!(!block.is_full(), "raw_append_to requires a non-full block");
        let page = block.write_ptr;
        block.pages[page as usize] = PageState::Valid(lpn);
        block.write_ptr += 1;
        block.valid += 1;
        self.mapping.insert(lpn, (blk, page));
        self.stats.nand_writes += 1;
        (blk, page)
    }

    fn append(&mut self, lpn: u64) -> Result<(u32, u32), FtlError> {
        if self.blocks[self.open_block as usize].is_full() {
            while self.free_blocks.len() <= self.gc_threshold {
                if !self.collect_one_victim()? {
                    break;
                }
            }
            self.maybe_wear_level()?;
            self.open_block = self.take_free_block()?;
        }
        Ok(self.raw_append_to(self.open_block, lpn))
    }

    fn maybe_wear_level(&mut self) -> Result<(), FtlError> {
        if self.max_erase_count() - self.min_erase_count() < self.wear_level_threshold {
            return Ok(());
        }
        let coldest = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                *i as u32 != self.open_block && *i as u32 != self.gc_open_block && b.is_full()
            })
            .min_by_key(|(_, b)| b.erase_count)
            .map(|(i, _)| i as u32);
        if let Some(victim) = coldest {
            let moved = self.reclaim_block(victim)?;
            self.stats.wear_level_moves += moved;
            self.stats.gc_relocations -= moved;
        }
        Ok(())
    }

    fn collect_one_victim(&mut self) -> Result<bool, FtlError> {
        let victim = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                *i as u32 != self.open_block && *i as u32 != self.gc_open_block && b.is_full()
            })
            .max_by_key(|(_, b)| b.invalid_count())
            .filter(|(_, b)| b.invalid_count() > 0)
            .map(|(i, _)| i as u32);
        let Some(victim) = victim else {
            return Ok(false);
        };
        self.reclaim_block(victim)?;
        Ok(true)
    }

    fn reclaim_block(&mut self, victim: u32) -> Result<u64, FtlError> {
        let victims: Vec<u64> = self.blocks[victim as usize]
            .pages
            .iter()
            .filter_map(|p| match p {
                PageState::Valid(lpn) => Some(*lpn),
                _ => None,
            })
            .collect();
        let moved = victims.len() as u64;
        for lpn in victims {
            self.invalidate(lpn);
            if self.blocks[self.gc_open_block as usize].is_full() {
                self.gc_open_block = self.take_free_block()?;
            }
            self.raw_append_to(self.gc_open_block, lpn);
            self.stats.gc_relocations += 1;
        }
        let block = &mut self.blocks[victim as usize];
        for p in &mut block.pages {
            *p = PageState::Free;
        }
        block.write_ptr = 0;
        block.valid = 0;
        block.erase_count += 1;
        self.stats.erases += 1;
        self.free_blocks.push(victim);
        Ok(moved)
    }

    pub fn write(&mut self, lpn: u64) -> Result<(u32, u32), FtlError> {
        if lpn >= self.logical_pages {
            return Err(FtlError::LbaOutOfRange);
        }
        self.invalidate(lpn);
        self.stats.host_writes += 1;
        self.append(lpn)
    }

    pub fn read(&self, lpn: u64) -> Result<Option<(u32, u32)>, FtlError> {
        if lpn >= self.logical_pages {
            return Err(FtlError::LbaOutOfRange);
        }
        Ok(self.lookup(lpn))
    }

    pub fn trim(&mut self, lpn: u64) -> Result<(), FtlError> {
        if lpn >= self.logical_pages {
            return Err(FtlError::LbaOutOfRange);
        }
        self.invalidate(lpn);
        self.stats.trims += 1;
        Ok(())
    }
}
