//! Property-based tests of the flash translation layer: mapping consistency,
//! trim semantics, write-amplification bounds, agreement between the
//! analytic WAF model and the real page-mapped FTL, and bit-for-bit
//! state-identity of the flat-memory FTL against the original
//! `HashMap`-based implementation (kept in `oracle/` as the reference).

mod oracle;

use oracle::OracleFtl;
use proptest::prelude::*;
use ssdx_ftl::{PageMappedFtl, WafModel, WorkloadMix};

#[derive(Debug, Clone)]
enum Op {
    Write(u64),
    Trim(u64),
    Read(u64),
}

fn op_strategy(logical: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..logical).prop_map(Op::Write),
        1 => (0..logical).prop_map(Op::Trim),
        2 => (0..logical).prop_map(Op::Read),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn model_checking_against_a_shadow_map(ops in prop::collection::vec(op_strategy(400), 1..600)) {
        let mut ftl = PageMappedFtl::new(16, 32, 0.3);
        let logical = ftl.logical_pages().min(400);
        let mut shadow: std::collections::BTreeMap<u64, bool> = std::collections::BTreeMap::new();
        for op in ops {
            match op {
                Op::Write(lpn) if lpn < logical => {
                    ftl.write(lpn).expect("in-range write succeeds");
                    shadow.insert(lpn, true);
                }
                Op::Trim(lpn) if lpn < logical => {
                    ftl.trim(lpn).expect("in-range trim succeeds");
                    shadow.insert(lpn, false);
                }
                Op::Read(lpn) if lpn < logical => {
                    let mapped = ftl.read(lpn).expect("in-range read succeeds").is_some();
                    let expected = shadow.get(&lpn).copied().unwrap_or(false);
                    prop_assert_eq!(mapped, expected, "mapping state diverged for lpn {}", lpn);
                }
                _ => {}
            }
        }
        // Every logical page the shadow map says is live must be mapped, and
        // no two of them may share a physical page.
        let mut used = std::collections::BTreeSet::new();
        for (&lpn, &live) in &shadow {
            let location = ftl.lookup(lpn);
            prop_assert_eq!(location.is_some(), live);
            if let Some(loc) = location {
                prop_assert!(used.insert(loc));
            }
        }
    }

    #[test]
    fn flat_ftl_is_state_identical_to_the_hashmap_oracle(
        ops in prop::collection::vec(op_strategy(400), 1..1_200),
        geometry in prop::sample::select(vec![(16u32, 32u32, 0.3f64), (8, 8, 0.15), (64, 16, 0.25), (12, 64, 0.4)]),
    ) {
        let (blocks, pages, op) = geometry;
        let mut flat = PageMappedFtl::new(blocks, pages, op);
        let mut oracle = OracleFtl::new(blocks, pages, op);
        prop_assert_eq!(flat.logical_pages(), oracle.logical_pages());
        // Drive both implementations with the same stream — including
        // out-of-range addresses, so the error paths are compared too — and
        // check every observable after every step.
        for op in ops {
            match op {
                Op::Write(lpn) => {
                    prop_assert_eq!(flat.write(lpn), oracle.write(lpn), "write({}) diverged", lpn);
                }
                Op::Trim(lpn) => {
                    prop_assert_eq!(flat.trim(lpn), oracle.trim(lpn), "trim({}) diverged", lpn);
                }
                Op::Read(lpn) => {
                    prop_assert_eq!(flat.read(lpn), oracle.read(lpn), "read({}) diverged", lpn);
                }
            }
            prop_assert_eq!(flat.stats(), oracle.stats(), "stats diverged");
        }
        // Full end-state comparison: the complete L2P mapping, the erase
        // count of every block and the wear extremes.
        for lpn in 0..flat.logical_pages() {
            prop_assert_eq!(flat.lookup(lpn), oracle.lookup(lpn), "mapping diverged at lpn {}", lpn);
        }
        for blk in 0..blocks {
            prop_assert_eq!(
                flat.erase_count_of(blk),
                oracle.erase_count_of(blk),
                "erase count diverged at block {}", blk
            );
        }
        prop_assert_eq!(flat.max_erase_count(), oracle.max_erase_count());
        prop_assert_eq!(flat.min_erase_count(), oracle.min_erase_count());
    }

    #[test]
    fn power_loss_recovery_loses_no_acknowledged_write(
        ops in prop::collection::vec(op_strategy(400), 1..1_200),
        geometry in prop::sample::select(vec![(16u32, 32u32, 0.3f64), (8, 8, 0.15), (64, 16, 0.25), (12, 64, 0.4)]),
        gc_pages in 1u32..12,
    ) {
        // Differential recovery check: drive the flat FTL and the HashMap
        // oracle with the same acknowledged command stream, then cut power
        // mid-garbage-collection on the flat FTL only. After the recovery
        // replay, its logical contents must equal the oracle's — i.e. the
        // pre-loss acknowledged state: every acknowledged write is still
        // mapped, every trimmed/never-written page is still unmapped.
        let (blocks, pages, op) = geometry;
        let mut flat = PageMappedFtl::new(blocks, pages, op);
        let mut oracle = OracleFtl::new(blocks, pages, op);
        for op in ops {
            match op {
                Op::Write(lpn) => {
                    let (a, b) = (flat.write(lpn), oracle.write(lpn));
                    prop_assert_eq!(a.is_ok(), b.is_ok(), "ack for write({}) diverged", lpn);
                }
                Op::Trim(lpn) => {
                    prop_assert_eq!(flat.trim(lpn), oracle.trim(lpn));
                }
                Op::Read(lpn) => {
                    prop_assert_eq!(flat.read(lpn).map(|l| l.is_some()), oracle.read(lpn).map(|l| l.is_some()));
                }
            }
        }
        // Power loss strikes while the collector is half-way through a
        // victim; the journal (reverse map) is all that survives.
        flat.interrupt_reclaim(gc_pages);
        let live = flat.recover_from_power_loss();
        let mut oracle_live = 0u64;
        for lpn in 0..oracle.logical_pages() {
            let expected = oracle.lookup(lpn).is_some();
            prop_assert_eq!(
                flat.lookup(lpn).is_some(),
                expected,
                "lpn {} {} across power loss", lpn,
                if expected { "lost" } else { "resurrected" }
            );
            oracle_live += expected as u64;
        }
        prop_assert_eq!(live, oracle_live, "recovered mapping count diverged");
        // The recovered FTL must still accept traffic and stay consistent
        // with the oracle's logical contents.
        for lpn in (0..flat.logical_pages().min(64)).rev() {
            if let Err(e) = flat.write(lpn) {
                let dump: Vec<_> = (0..flat.physical_blocks())
                    .map(|b| (b, flat.is_free_block(b), flat.erase_count_of(b)))
                    .collect();
                prop_assert!(false, "write({lpn}) failed with {e}; free={} blocks={dump:?}", flat.free_block_count());
            }
            prop_assert!(flat.lookup(lpn).is_some());
        }
    }

    #[test]
    fn waf_never_below_one_and_erases_follow_writes(writes in prop::collection::vec(0u64..300, 50..800) ) {
        let mut ftl = PageMappedFtl::new(16, 32, 0.3);
        let logical = ftl.logical_pages();
        for w in &writes {
            ftl.write(w % logical).expect("write fits");
        }
        let stats = ftl.stats();
        prop_assert!(stats.waf() >= 1.0);
        prop_assert_eq!(stats.host_writes, writes.len() as u64);
        prop_assert!(stats.nand_writes >= stats.host_writes);
        // Every extra NAND write is accounted to either the garbage
        // collector or the static wear leveler.
        prop_assert_eq!(
            stats.nand_writes - stats.host_writes,
            stats.gc_relocations + stats.wear_level_moves
        );
    }

    #[test]
    fn more_over_provisioning_never_hurts_write_amplification(
        seed in any::<u64>(),
        writes in 2_000usize..6_000
    ) {
        let measure = |op: f64| {
            let mut ftl = PageMappedFtl::new(64, 32, op);
            let logical = ftl.logical_pages();
            for lpn in 0..logical {
                ftl.write(lpn).expect("priming fits");
            }
            let mut rng = ssdx_sim::rng::SimRng::new(seed);
            for _ in 0..writes {
                ftl.write(rng.uniform_u64(0, logical - 1)).expect("fits");
            }
            ftl.stats().waf()
        };
        let tight = measure(0.10);
        let roomy = measure(0.45);
        prop_assert!(roomy <= tight + 0.15, "roomy {roomy} vs tight {tight}");
    }

    #[test]
    fn analytic_waf_brackets_reality_for_uniform_random(seed in any::<u64>()) {
        let over_provisioning = 0.25;
        let mut ftl = PageMappedFtl::new(64, 32, over_provisioning);
        let logical = ftl.logical_pages();
        for lpn in 0..logical {
            ftl.write(lpn).expect("priming fits");
        }
        let mut rng = ssdx_sim::rng::SimRng::new(seed);
        for _ in 0..30_000 {
            ftl.write(rng.uniform_u64(0, logical - 1)).expect("fits");
        }
        let measured = ftl.stats().waf();
        let predicted = WafModel::new(over_provisioning).waf(WorkloadMix::random());
        // The greedy analytic bound is a worst-case estimate; the measured
        // greedy collector must amplify, but not more than the bound by a
        // wide margin.
        prop_assert!(measured > 1.1, "measured {measured}");
        prop_assert!(measured < predicted * 1.5, "measured {measured} vs predicted {predicted}");
    }
}

#[test]
fn trim_reduces_future_write_amplification() {
    // A drive whose stale data is trimmed behaves like a freshly formatted
    // one: garbage collection finds empty victims and relocates nothing.
    let mut with_trim = PageMappedFtl::new(32, 32, 0.2);
    let mut without_trim = PageMappedFtl::new(32, 32, 0.2);
    let logical = with_trim.logical_pages();
    for lpn in 0..logical {
        with_trim.write(lpn).unwrap();
        without_trim.write(lpn).unwrap();
    }
    // Trim half of the space on one drive, then overwrite the other half on
    // both drives several times.
    for lpn in logical / 2..logical {
        with_trim.trim(lpn).unwrap();
    }
    let mut rng = ssdx_sim::rng::SimRng::new(11);
    for _ in 0..20_000 {
        let lpn = rng.uniform_u64(0, logical / 2 - 1);
        with_trim.write(lpn).unwrap();
        without_trim.write(lpn).unwrap();
    }
    assert!(
        with_trim.stats().waf() <= without_trim.stats().waf(),
        "trim {} vs no-trim {}",
        with_trim.stats().waf(),
        without_trim.stats().waf()
    );
}

#[test]
fn wear_leveling_keeps_the_erase_spread_bounded_under_skewed_traffic() {
    let mut ftl = PageMappedFtl::new(48, 32, 0.3);
    let logical = ftl.logical_pages();
    for lpn in 0..logical {
        ftl.write(lpn).unwrap();
    }
    // Hammer a tiny hot set: without wear leveling the same few blocks would
    // absorb every erase.
    let mut rng = ssdx_sim::rng::SimRng::new(17);
    for _ in 0..40_000 {
        let lpn = rng.uniform_u64(0, (logical / 20).max(1) - 1);
        ftl.write(lpn).unwrap();
    }
    let spread = ftl.max_erase_count() - ftl.min_erase_count();
    let max = ftl.max_erase_count();
    assert!(
        (spread as f64) < 0.9 * max as f64 + 8.0,
        "erase spread {spread} too large for max {max}"
    );
}
