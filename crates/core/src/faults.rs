//! Fault injection and device aging as first-class [`Explorer`] axes.
//!
//! The reliability campaign answers the question the healthy-device studies
//! cannot: *what do the tail latencies look like once the device degrades?*
//! Each degradation mechanism is packaged as one [`Axis`] constructor, so a
//! fault source composes with any other sweep dimension exactly like
//! channels or cache policy:
//!
//! * [`read_disturb_axis`] — per-read raw-bit-error growth
//!   ([`FaultConfig::read_disturb_per_read`]): repeated reads of a hot block
//!   accumulate errors and escalate the adaptive ECC;
//! * [`retention_axis`] — retention-driven multiplication of the wear-based
//!   raw error rate ([`FaultConfig::retention_scale`]), swept on an aged
//!   platform (a fresh device has nothing to multiply);
//! * [`retirement_axis`] — block retirement on an erase-count budget
//!   ([`FaultConfig::retire_pe_limit`]): retired blocks leave the free pool
//!   for good, shrinking the over-provisioning until garbage collection
//!   runs hot and, at the limit, the device reports out of space;
//! * [`power_loss_axis`] — power loss mid-garbage-collection after a fixed
//!   number of commands ([`FaultConfig::power_loss_at`]), followed by the
//!   recovery replay that rebuilds the mapping table from the out-of-band
//!   journal (built on the PR-8 snapshot/fork machinery — the trigger is
//!   the snapshot-encoded command cursor);
//! * the existing [`endurance_axis`] —
//!   artificial aging to a normalised rated endurance — covers end-of-life
//!   wear itself.
//!
//! [`fault_campaign`] runs the canonical study: one sub-sweep per fault
//! source on a page-mapped platform (so retirement, GC pressure and the
//! recovery replay are real, not analytic), reporting steady-state
//! per-class tail latencies for every degradation point.
//! [`fault_campaign_warm`] is the same study executed through per-point
//! warm-start images — byte-identical output by the fork-equivalence
//! contract, which the fault-scenario equivalence suite asserts.
//!
//! # Determinism
//!
//! Fault injection adds **no** entropy source: read-disturb and retention
//! scaling are deterministic functions of the per-block read/erase
//! counters, retirement is a threshold on the erase counter, and the
//! power-loss trigger is an exact command index. Everything flows from
//! `config.seed` exactly as the determinism contract on [`Explorer`]
//! requires, so two runs of the campaign — sequential, parallel, cold or
//! warm-started — print identical bytes.

use crate::config::{FaultConfig, FtlMode, SsdConfig};
use crate::explorer::{endurance_axis, Axis, Explorer, Sweep, SweepError, SweepPoint};
use crate::metrics::{push_json_escaped, SteadyStateCutoff, TailSummary};
use serde::Serialize;
use ssdx_hostif::{generative, CommandSource, ZipfianWorkload};
use std::fmt::Write as _;

/// An axis sweeping the per-read disturb coefficient: each point sets
/// [`FaultConfig::read_disturb_per_read`], leaving everything else at the
/// base configuration. `0.0` is the healthy reference point.
pub fn read_disturb_axis(points: &[f64]) -> Axis {
    Axis::over("read_disturb", points.to_vec(), |cfg, &v| {
        cfg.faults.read_disturb_per_read = v;
    })
}

/// An axis sweeping the retention multiplier on the wear-driven raw error
/// rate: each point sets [`FaultConfig::retention_scale`]. `1.0` is the
/// healthy reference point. Sweep this on an aged platform (e.g. behind an
/// [`endurance_axis`] point, as
/// [`fault_campaign`] does) — a fresh device has almost no wear-driven
/// errors to multiply.
pub fn retention_axis(points: &[f64]) -> Axis {
    Axis::over("retention", points.to_vec(), |cfg, &v| {
        cfg.faults.retention_scale = v;
    })
}

/// An axis sweeping the block-retirement budget: each point sets
/// [`FaultConfig::retire_pe_limit`], the erase count at which a block is
/// retired instead of returning to the free pool. `u64::MAX` (labelled
/// `off`) disables retirement and is the healthy reference point. Only
/// meaningful in [`FtlMode::PageMapped`] — the analytic WAF model has no
/// blocks to retire.
pub fn retirement_axis(limits: &[u64]) -> Axis {
    let mut axis = Axis::new("retire_limit");
    for &limit in limits {
        let label = if limit == u64::MAX {
            "off".to_string()
        } else {
            limit.to_string()
        };
        axis = axis.point(label, move |cfg| cfg.faults.retire_pe_limit = limit);
    }
    axis
}

/// An axis sweeping the power-loss point: each point sets
/// [`FaultConfig::power_loss_at`], the command count after which power is
/// cut mid-garbage-collection and the recovery replay rebuilds the mapping
/// table. `u64::MAX` (labelled `off`) disables the fault and is the healthy
/// reference point. Only meaningful in [`FtlMode::PageMapped`] — there is
/// no mapping table to lose otherwise.
pub fn power_loss_axis(points: &[u64]) -> Axis {
    let mut axis = Axis::new("power_loss");
    for &at in points {
        let label = if at == u64::MAX {
            "off".to_string()
        } else {
            at.to_string()
        };
        axis = axis.point(label, move |cfg| cfg.faults.power_loss_at = at);
    }
    axis
}

/// The result of a [`fault_campaign`]: one sweep point per degradation
/// scenario, each carrying a full [`PerfReport`](crate::PerfReport) with
/// per-class tail histograms. The `axes` field lists every swept fault
/// dimension; each point's coordinates name the sub-sweep it came from
/// (e.g. `retire_limit=2`).
#[must_use = "a fault study carries the measured percentiles"]
#[derive(Debug, Clone, Serialize)]
pub struct FaultStudy {
    /// The underlying sweep: the concatenated per-fault-source sub-sweeps.
    pub sweep: Sweep,
}

/// `axis=value` scenario label of one campaign point (points carry one
/// coordinate per swept dimension of their sub-sweep).
fn scenario(point: &SweepPoint) -> String {
    point
        .coordinates
        .iter()
        .map(|c| format!("{}={}", c.axis, c.value))
        .collect::<Vec<_>>()
        .join(" ")
}

impl FaultStudy {
    /// Formats the campaign as an aligned percentile table (all times in
    /// microseconds): one row per scenario × command class (classes with no
    /// samples are skipped). Rendered through one shared `fmt::Write`
    /// buffer; the exact rendering is pinned by a unit test.
    pub fn to_table(&self) -> String {
        let mut out = String::with_capacity(128 + self.sweep.points.len() * 256);
        let _ = writeln!(
            out,
            "{:<30} {:<6} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "scenario", "class", "count", "mean(us)", "p50(us)", "p95(us)", "p99(us)", "p99.9(us)"
        );
        for point in &self.sweep.points {
            let scenario = scenario(point);
            for tail in point.report.tails() {
                if tail.count == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "{:<30} {:<6} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                    scenario,
                    tail.class.label(),
                    tail.count,
                    tail.mean.as_us_f64(),
                    tail.p50.as_us_f64(),
                    tail.p95.as_us_f64(),
                    tail.p99.as_us_f64(),
                    tail.p999.as_us_f64(),
                );
            }
        }
        out
    }

    /// Machine-readable JSON emission (hand rolled — the vendored serde is
    /// a marker), mirroring `experiments -- faults --json`. Scenario and
    /// workload labels are JSON-escaped.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.sweep.points.len() * 512);
        out.push_str("{\n  \"schema\": \"ssdx-fault-tails/v1\",\n  \"scenarios\": [\n");
        for (si, point) in self.sweep.points.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            out.push_str("      \"scenario\": \"");
            push_json_escaped(&mut out, &scenario(point));
            out.push_str("\",\n      \"workload\": \"");
            push_json_escaped(&mut out, &point.report.workload);
            out.push_str("\",\n");
            let _ = writeln!(out, "      \"classes\": [");
            let tails: Vec<TailSummary> = point
                .report
                .tails()
                .into_iter()
                .filter(|t| t.count > 0)
                .collect();
            for (ci, tail) in tails.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {{\"class\": \"{}\", \"count\": {}, \"mean_ns\": {}, \
                     \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
                     \"max_ns\": {}}}",
                    tail.class.label(),
                    tail.count,
                    tail.mean.as_ns(),
                    tail.p50.as_ns(),
                    tail.p95.as_ns(),
                    tail.p99.as_ns(),
                    tail.p999.as_ns(),
                    tail.max.as_ns(),
                );
                out.push_str(if ci + 1 < tails.len() { ",\n" } else { "\n" });
            }
            let _ = writeln!(out, "      ]");
            out.push_str("    }");
            out.push_str(if si + 1 < self.sweep.points.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs the canonical degraded-device campaign on `base`: five fault/aging
/// axes — artificial endurance aging, read-disturb growth, retention error
/// scaling (on an aged platform), block retirement and mid-GC power loss
/// with recovery replay — each swept as its own sub-sweep and concatenated
/// into one [`FaultStudy`].
///
/// The platform is forced to [`FtlMode::PageMapped`] so retirement, GC
/// pressure and the recovery replay are mechanically real. The wear-facing
/// axes run the read-heavy [`generative::degraded_probe`]; the FTL-facing
/// axes run a write-heavy small-footprint churn workload that keeps the
/// garbage collector busy. Both are seeded from `base.seed`, so the study
/// is fully deterministic: same configuration, same table, byte for byte.
///
/// # Errors
///
/// Returns [`SweepError::InvalidPoint`] if `base` does not validate.
pub fn fault_campaign(
    base: &SsdConfig,
    commands_per_point: u64,
    warmup: SteadyStateCutoff,
) -> Result<FaultStudy, SweepError> {
    fault_campaign_impl(base, commands_per_point, warmup, SteadyStateCutoff::None)
}

/// [`fault_campaign`] with warm-start execution: each scenario's warmup
/// prefix (the `warmup` cutoff) is simulated once, captured as a
/// [`Snapshot`](crate::Snapshot), and the measured run forks from the
/// image ([`Explorer::warm_start`]). The study is **byte-identical** to the
/// cold [`fault_campaign`] — same table, same JSON — which
/// `experiments -- faults --warm-start` and the fault-scenario equivalence
/// suite both assert. In particular a power-loss point whose trigger falls
/// inside the warmup prefix fires while building the image, and one whose
/// trigger falls after the capture fires in the forked run: the command
/// cursor the trigger keys on is snapshot state.
///
/// # Errors
///
/// Returns [`SweepError::InvalidPoint`] if `base` does not validate.
pub fn fault_campaign_warm(
    base: &SsdConfig,
    commands_per_point: u64,
    warmup: SteadyStateCutoff,
) -> Result<FaultStudy, SweepError> {
    fault_campaign_impl(base, commands_per_point, warmup, warmup)
}

/// The churn workload of the FTL-facing axes: write-heavy zipfian traffic
/// over a footprint small enough that the run overwrites it several times,
/// so garbage collection (and therefore retirement and mid-GC power loss)
/// actually happens within the swept command budget.
fn gc_churn(seed: u64, commands: u64) -> ZipfianWorkload {
    ZipfianWorkload::new(0.9, seed)
        .read_fraction(0.05)
        .footprint_bytes(2 << 20)
        .command_count(commands)
        .with_label("gc-churn")
}

fn fault_campaign_impl(
    base: &SsdConfig,
    commands_per_point: u64,
    warmup: SteadyStateCutoff,
    warm_start: SteadyStateCutoff,
) -> Result<FaultStudy, SweepError> {
    let mut cfg = base.clone();
    cfg.ftl_mode = FtlMode::PageMapped;
    cfg.faults = FaultConfig::healthy();

    let probe = generative::degraded_probe(cfg.seed).command_count(commands_per_point);
    let churn = gc_churn(cfg.seed, commands_per_point);

    let sub = |axes: Vec<Axis>, source: &(dyn CommandSource + Sync)| -> Result<Sweep, SweepError> {
        let mut explorer = Explorer::new(cfg.clone())
            .steady_state(warmup)
            .warm_start(warm_start);
        for axis in axes {
            explorer = explorer.over(axis);
        }
        // Fanned out across all cores; byte-identical to a sequential run
        // by the determinism contract on `Explorer`.
        explorer.run_parallel(source)
    };

    // One sub-sweep per fault source. Each is one-dimensional (the
    // retention sweep pins a single aged endurance point first), so every
    // resulting point is a self-describing `axis=value` scenario.
    let sweeps = [
        sub(vec![endurance_axis(&[0.0, 0.6, 1.0])], &probe)?,
        sub(vec![read_disturb_axis(&[0.0, 0.02, 0.1])], &probe)?,
        sub(
            vec![endurance_axis(&[0.8]), retention_axis(&[1.0, 2.0, 4.0])],
            &probe,
        )?,
        sub(vec![retirement_axis(&[u64::MAX, 2, 1])], &churn)?,
        sub(vec![power_loss_axis(&[u64::MAX, 256, 1024])], &churn)?,
    ];

    let mut axes: Vec<String> = Vec::new();
    let mut points = Vec::new();
    for sweep in sweeps {
        for axis in sweep.axes {
            if !axes.contains(&axis) {
                axes.push(axis);
            }
        }
        points.extend(sweep.points);
    }
    Ok(FaultStudy {
        sweep: Sweep { axes, points },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_axes_label_their_points() {
        let rd = read_disturb_axis(&[0.0, 0.05]);
        assert_eq!(rd.name(), "read_disturb");
        assert_eq!(rd.len(), 2);
        let retention = retention_axis(&[1.0, 4.0]);
        assert_eq!(retention.name(), "retention");
        let retire = retirement_axis(&[u64::MAX, 3]);
        assert_eq!(retire.name(), "retire_limit");
        let power = power_loss_axis(&[u64::MAX, 64]);
        assert_eq!(power.name(), "power_loss");

        // The sentinel points are labelled `off`, not a 20-digit number.
        let jobs = Explorer::new(campaign_base())
            .over(retirement_axis(&[u64::MAX, 3]))
            .over(power_loss_axis(&[u64::MAX, 64]))
            .jobs()
            .unwrap();
        assert_eq!(jobs[0].point_label(), "retire_limit=off, power_loss=off");
        assert_eq!(jobs[3].point_label(), "retire_limit=3, power_loss=64");
        assert_eq!(jobs[3].config.faults.retire_pe_limit, 3);
        assert_eq!(jobs[3].config.faults.power_loss_at, 64);
    }

    fn campaign_base() -> SsdConfig {
        let mut cfg = SsdConfig::builder("fault-test")
            .topology(2, 2, 1)
            .dram_buffers(2)
            .dram_buffer_capacity(128 * 1024)
            .build()
            .unwrap();
        cfg.seed = 11;
        cfg
    }

    #[test]
    fn fault_campaign_covers_every_axis_and_is_deterministic() {
        let base = campaign_base();
        let warmup = SteadyStateCutoff::Commands(32);
        let study = fault_campaign(&base, 256, warmup).unwrap();
        assert_eq!(
            study.sweep.axes,
            vec![
                "endurance".to_string(),
                "read_disturb".to_string(),
                "retention".to_string(),
                "retire_limit".to_string(),
                "power_loss".to_string(),
            ]
        );
        // 3 aging + 3 read-disturb + 3 retention + 3 retirement + 3 power
        // loss scenarios.
        assert_eq!(study.sweep.len(), 15);

        // Byte-identical across repeated runs — the determinism contract.
        let again = fault_campaign(&base, 256, warmup).unwrap();
        assert_eq!(study.to_table(), again.to_table());
        assert_eq!(study.to_json(), again.to_json());

        let table = study.to_table();
        assert!(table.contains("retire_limit=off"), "{table}");
        assert!(table.contains("power_loss=256"), "{table}");
        assert!(table.contains("endurance=0.80 retention=4"), "{table}");
        let json = study.to_json();
        assert!(json.contains("\"schema\": \"ssdx-fault-tails/v1\""));
        assert!(json.contains("\"scenario\": \"read_disturb=0.1\""));
        assert!(json.contains("\"workload\": \"gc-churn\""));
    }

    #[test]
    fn warm_started_campaign_is_byte_identical_to_cold() {
        let base = campaign_base();
        let warmup = SteadyStateCutoff::Commands(32);
        let cold = fault_campaign(&base, 192, warmup).unwrap();
        let warm = fault_campaign_warm(&base, 192, warmup).unwrap();
        assert_eq!(cold.to_table(), warm.to_table());
        assert_eq!(cold.to_json(), warm.to_json());
    }

    #[test]
    fn degraded_scenarios_move_the_tail() {
        // The campaign exists to show degradation in the latency tail: at
        // full endurance with a 4x retention multiplier, the adaptive ECC
        // decodes against far more raw errors than on the healthy point, so
        // the read mean must not be faster. (Exact magnitudes are pinned by
        // the determinism tests, not here — this guards the mechanism.)
        let base = campaign_base();
        let study = fault_campaign(&base, 256, SteadyStateCutoff::None).unwrap();
        let healthy = &study.sweep.points[6]; // endurance=0.80 retention=1
        let degraded = &study.sweep.points[8]; // endurance=0.80 retention=4
        assert_eq!(healthy.value("retention"), Some("1"));
        assert_eq!(degraded.value("retention"), Some("4"));
        assert!(
            degraded.report.mean_latency() >= healthy.report.mean_latency(),
            "degraded {:?} vs healthy {:?}",
            degraded.report.mean_latency(),
            healthy.report.mean_latency()
        );
    }
}
