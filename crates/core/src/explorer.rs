//! Design-space exploration drivers.
//!
//! These helpers regenerate the series of the paper's optimal-design-point
//! experiments: for every candidate configuration they produce the
//! `DDR+FLASH`, `SSD cache` and `SSD no cache` columns, alongside the
//! interface-level `ideal` and `+DDR` reference lines, and identify the
//! cheapest configuration that saturates the host interface (the "optimal
//! design point" the paper's Section IV-A is after).

use crate::config::{CachePolicy, HostInterfaceConfig, SsdConfig};
use crate::ssd::Ssd;
use serde::{Deserialize, Serialize};
use ssdx_ecc::EccScheme;
use ssdx_hostif::{AccessPattern, Workload};

/// One bar group of Fig. 3 / Fig. 4: the three throughput columns of a
/// single SSD configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Configuration name (e.g. "C6").
    pub config_name: String,
    /// Architecture summary.
    pub architecture: String,
    /// Number of NAND channels.
    pub channels: u32,
    /// Number of DRAM data buffers.
    pub dram_buffers: u32,
    /// Total dies.
    pub total_dies: u32,
    /// Throughput of the DRAM-to-flash back end alone, MB/s.
    pub ddr_flash_mbps: f64,
    /// Host-visible throughput with the write cache enabled, MB/s.
    pub ssd_cache_mbps: f64,
    /// Host-visible throughput with no write cache, MB/s.
    pub ssd_no_cache_mbps: f64,
}

impl SweepPoint {
    /// Controller-side resource cost used to rank design points, as the
    /// paper does: channels and DRAM buffers (controller pins, DRAM devices
    /// and channel controllers) dominate the cost, the die count breaks
    /// ties.
    pub fn resource_cost(&self) -> (u32, u32) {
        (self.channels + self.dram_buffers, self.total_dies)
    }
}

/// The full result of sweeping one host interface across a set of
/// configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSweep {
    /// Host interface name.
    pub interface: String,
    /// Stand-alone ideal interface throughput, MB/s.
    pub interface_ideal_mbps: f64,
    /// Interface + DMA + DRAM best-case throughput, MB/s.
    pub interface_plus_dram_mbps: f64,
    /// Per-configuration columns.
    pub points: Vec<SweepPoint>,
}

impl HostSweep {
    /// The configurations that saturate the host interface: their cached
    /// throughput reaches at least `threshold` (e.g. 0.95) of the
    /// interface-plus-DRAM best case.
    pub fn saturating_points(&self, threshold: f64) -> Vec<&SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.ssd_cache_mbps >= threshold * self.interface_plus_dram_mbps)
            .collect()
    }

    /// The optimal design point: among the saturating configurations, the
    /// one with the lowest resource cost (channels + DRAM buffers, dies as
    /// tie-break); if none saturates, the cheapest configuration overall
    /// (the paper's fallback when the no-cache SATA window flattens every
    /// configuration).
    pub fn optimal_design_point(&self, threshold: f64) -> Option<&SweepPoint> {
        let saturating = self.saturating_points(threshold);
        if saturating.is_empty() {
            self.points.iter().min_by_key(|p| p.resource_cost())
        } else {
            saturating.into_iter().min_by_key(|p| p.resource_cost())
        }
    }

    /// The Pareto-optimal design points of the cached throughput vs
    /// controller resource cost trade-off: a point is kept if no other point
    /// achieves at least its throughput at a lower or equal cost (used for
    /// the PCIe experiment, where the host interface no longer saturates and
    /// the search is driven by hardware cost).
    pub fn pareto_front(&self) -> Vec<&SweepPoint> {
        let mut front: Vec<&SweepPoint> = self
            .points
            .iter()
            .filter(|candidate| {
                !self.points.iter().any(|other| {
                    let strictly_better_perf = other.ssd_cache_mbps > candidate.ssd_cache_mbps;
                    let cheaper_or_equal = other.resource_cost() <= candidate.resource_cost();
                    strictly_better_perf && cheaper_or_equal
                })
            })
            .collect();
        front.sort_by_key(|p| p.resource_cost());
        front.dedup_by_key(|p| p.resource_cost());
        front
    }

    /// Formats the sweep as an aligned text table (one row per
    /// configuration), convenient for the experiment binaries.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "host interface      : {} (ideal {:.0} MB/s, +DDR {:.0} MB/s)\n",
            self.interface, self.interface_ideal_mbps, self.interface_plus_dram_mbps
        ));
        out.push_str(&format!(
            "{:<6} {:<34} {:>12} {:>12} {:>14}\n",
            "config", "architecture", "DDR+FLASH", "SSD cache", "SSD no cache"
        ));
        for p in &self.points {
            out.push_str(&format!(
                "{:<6} {:<34} {:>10.1} MB/s {:>10.1} MB/s {:>12.1} MB/s\n",
                p.config_name,
                p.architecture,
                p.ddr_flash_mbps,
                p.ssd_cache_mbps,
                p.ssd_no_cache_mbps
            ));
        }
        out
    }
}

/// Sweeps `configs` under `host`, running the given workload for the
/// DDR+FLASH, cached and no-cache variants of every configuration.
pub fn sweep_host_interface(
    host: HostInterfaceConfig,
    configs: &[SsdConfig],
    workload: &Workload,
) -> HostSweep {
    let mut points = Vec::with_capacity(configs.len());
    let mut interface_ideal = 0.0;
    let mut interface_plus_dram: f64 = 0.0;
    for base in configs {
        let mut cached_cfg = base.clone();
        cached_cfg.host_interface = host;
        cached_cfg.cache_policy = CachePolicy::WriteCache;
        let mut no_cache_cfg = cached_cfg.clone();
        no_cache_cfg.cache_policy = CachePolicy::NoCache;

        let mut ssd = Ssd::new(cached_cfg);
        interface_ideal = ssd.interface_ideal_mbps();
        interface_plus_dram = interface_plus_dram.max(ssd.host_dram_only_mbps(workload));
        let ddr_flash = ssd.flash_path_mbps(workload);
        let cache_report = ssd.run(workload);

        let mut ssd_nc = Ssd::new(no_cache_cfg);
        let no_cache_report = ssd_nc.run(workload);

        points.push(SweepPoint {
            config_name: base.name.clone(),
            architecture: base.architecture_label(),
            channels: base.channels,
            dram_buffers: base.dram_buffers,
            total_dies: base.total_dies(),
            ddr_flash_mbps: ddr_flash,
            ssd_cache_mbps: cache_report.throughput_mbps,
            ssd_no_cache_mbps: no_cache_report.throughput_mbps,
        });
    }
    HostSweep {
        interface: host.name(),
        interface_ideal_mbps: interface_ideal,
        interface_plus_dram_mbps: interface_plus_dram,
        points,
    }
}

/// One sample of the wear-out experiment (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WearoutPoint {
    /// Normalised rated endurance (0.0 fresh – 1.0 end of life).
    pub normalized_endurance: f64,
    /// Sequential-read throughput at this wear level, MB/s.
    pub read_mbps: f64,
    /// Sequential-write throughput at this wear level, MB/s.
    pub write_mbps: f64,
}

/// Sweeps NAND wear from fresh to rated end of life for the given ECC
/// scheme on `config`, measuring sequential read and write throughput at
/// each point (the paper samples the normalised endurance axis 0.0–1.0).
pub fn wearout_sweep(
    config: &SsdConfig,
    ecc: EccScheme,
    endurance_points: &[f64],
    commands_per_point: u64,
) -> Vec<WearoutPoint> {
    let mut cfg = config.clone();
    cfg.ecc = ecc;
    let mut ssd = Ssd::new(cfg);
    let read_wl = Workload::builder(AccessPattern::SequentialRead)
        .command_count(commands_per_point)
        .build();
    let write_wl = Workload::builder(AccessPattern::SequentialWrite)
        .command_count(commands_per_point)
        .build();
    endurance_points
        .iter()
        .map(|&endurance| {
            ssd.age_to_normalized(endurance);
            let read = ssd.run(&read_wl).throughput_mbps;
            let write = ssd.run(&write_wl).throughput_mbps;
            WearoutPoint {
                normalized_endurance: endurance,
                read_mbps: read,
                write_mbps: write,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    fn quick_workload() -> Workload {
        Workload::builder(AccessPattern::SequentialWrite)
            .command_count(192)
            .build()
    }

    fn small_table() -> Vec<SsdConfig> {
        vec![
            SsdConfig::builder("small")
                .topology(2, 2, 1)
                .dram_buffers(2)
                .dram_buffer_capacity(128 * 1024)
                .build()
                .unwrap(),
            SsdConfig::builder("large")
                .topology(8, 4, 2)
                .dram_buffers(8)
                .dram_buffer_capacity(128 * 1024)
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn sweep_produces_one_point_per_config() {
        let sweep = sweep_host_interface(HostInterfaceConfig::Sata2, &small_table(), &quick_workload());
        assert_eq!(sweep.points.len(), 2);
        assert!(sweep.interface_ideal_mbps > 200.0);
        assert!(sweep.interface_plus_dram_mbps > 0.0);
        assert!(sweep.points[1].ddr_flash_mbps > sweep.points[0].ddr_flash_mbps);
        let table = sweep.to_table();
        assert!(table.contains("DDR+FLASH"));
        assert!(table.contains("small"));
    }

    #[test]
    fn optimal_design_point_prefers_cheapest_controller_among_saturating() {
        let sweep = HostSweep {
            interface: "test".to_string(),
            interface_ideal_mbps: 280.0,
            interface_plus_dram_mbps: 250.0,
            points: vec![
                SweepPoint {
                    config_name: "tiny".into(),
                    architecture: String::new(),
                    channels: 2,
                    dram_buffers: 2,
                    total_dies: 8,
                    ddr_flash_mbps: 50.0,
                    ssd_cache_mbps: 50.0,
                    ssd_no_cache_mbps: 40.0,
                },
                SweepPoint {
                    config_name: "right".into(),
                    architecture: String::new(),
                    channels: 16,
                    dram_buffers: 16,
                    total_dies: 512,
                    ddr_flash_mbps: 300.0,
                    ssd_cache_mbps: 248.0,
                    ssd_no_cache_mbps: 60.0,
                },
                SweepPoint {
                    config_name: "huge".into(),
                    architecture: String::new(),
                    channels: 32,
                    dram_buffers: 32,
                    total_dies: 256,
                    ddr_flash_mbps: 900.0,
                    ssd_cache_mbps: 250.0,
                    ssd_no_cache_mbps: 60.0,
                },
            ],
        };
        assert_eq!(sweep.saturating_points(0.95).len(), 2);
        assert_eq!(sweep.optimal_design_point(0.95).unwrap().config_name, "right");
    }

    #[test]
    fn optimal_design_point_falls_back_to_smallest_config() {
        let sweep = HostSweep {
            interface: "test".to_string(),
            interface_ideal_mbps: 280.0,
            interface_plus_dram_mbps: 250.0,
            points: vec![
                SweepPoint {
                    config_name: "a".into(),
                    architecture: String::new(),
                    channels: 4,
                    dram_buffers: 4,
                    total_dies: 32,
                    ddr_flash_mbps: 40.0,
                    ssd_cache_mbps: 40.0,
                    ssd_no_cache_mbps: 40.0,
                },
                SweepPoint {
                    config_name: "b".into(),
                    architecture: String::new(),
                    channels: 8,
                    dram_buffers: 8,
                    total_dies: 64,
                    ddr_flash_mbps: 60.0,
                    ssd_cache_mbps: 60.0,
                    ssd_no_cache_mbps: 42.0,
                },
            ],
        };
        assert!(sweep.saturating_points(0.95).is_empty());
        assert_eq!(sweep.optimal_design_point(0.95).unwrap().config_name, "a");
    }

    #[test]
    fn pareto_front_keeps_only_undominated_points() {
        let mk = |name: &str, channels: u32, dies: u32, cache: f64| SweepPoint {
            config_name: name.into(),
            architecture: String::new(),
            channels,
            dram_buffers: channels,
            total_dies: dies,
            ddr_flash_mbps: cache,
            ssd_cache_mbps: cache,
            ssd_no_cache_mbps: cache,
        };
        let sweep = HostSweep {
            interface: "test".to_string(),
            interface_ideal_mbps: 3400.0,
            interface_plus_dram_mbps: 1700.0,
            points: vec![
                mk("C1", 4, 32, 36.0),
                mk("C5", 8, 512, 156.0),
                // C3 has fewer dies than C5 (cheaper tie-break), so it stays
                // on the front even though C5 is faster.
                mk("C3", 8, 128, 147.0),
                mk("C6", 16, 512, 314.0),
                // C8 is dominated by C6: faster and cheaper on the
                // controller side (fewer channels and buffers).
                mk("C8", 32, 256, 304.0),
                mk("C10", 32, 1024, 630.0),
            ],
        };
        let front: Vec<&str> = sweep.pareto_front().iter().map(|p| p.config_name.as_str()).collect();
        assert_eq!(front, vec!["C1", "C3", "C5", "C6", "C10"]);
    }

    #[test]
    fn wearout_sweep_shows_adaptive_advantage_early_in_life() {
        let cfg = configs::fig5_config(EccScheme::fixed_bch(40));
        let points = [0.0, 1.0];
        let fixed = wearout_sweep(&cfg, EccScheme::fixed_bch(40), &points, 96);
        let adaptive = wearout_sweep(&cfg, EccScheme::adaptive_bch(40), &points, 96);
        assert_eq!(fixed.len(), 2);
        // Fresh device: adaptive reads faster.
        assert!(adaptive[0].read_mbps > fixed[0].read_mbps);
        // End of life: both run the worst-case code.
        let ratio = adaptive[1].read_mbps / fixed[1].read_mbps;
        assert!((0.85..1.15).contains(&ratio), "ratio = {ratio}");
        // Writes are much less sensitive to the ECC choice than reads.
        let write_gap = (adaptive[0].write_mbps - fixed[0].write_mbps).abs()
            / fixed[0].write_mbps.max(1e-9);
        assert!(write_gap < 0.15, "write gap = {write_gap}");
    }
}
