//! Generic design-space exploration: parameter sweeps over arbitrary
//! configuration mutators.
//!
//! [`Explorer`] is the sweep engine: start from a base [`SsdConfig`], add
//! one [`Axis`] per swept dimension (each axis is a list of labelled
//! configuration mutations, built from value lists, whole configurations or
//! hand-written closures), and [`run`](Explorer::run) any
//! [`CommandSource`] across the cartesian product. Every evaluated point
//! yields a [`SweepPoint`] carrying the full [`PerfReport`], so analyses
//! are not limited to the throughput columns the original drivers exposed.
//! The expansion into [`SweepJob`]s is explicit and side-effect free, which
//! is what the [`ParallelExecutor`](crate::ParallelExecutor) fans out over
//! worker threads: [`Explorer::run_parallel`] produces a byte-identical
//! [`Sweep`] using every available core (see the determinism contract on
//! [`Explorer`]).
//!
//! The paper's two original studies are re-expressed on top of the engine:
//! [`host_interface_study`] regenerates the optimal-design-point sweeps of
//! Figs. 3 and 4 (per-configuration `DDR+FLASH`, `SSD cache` and `SSD no
//! cache` columns plus the interface-level reference lines), and
//! [`wearout_study`] the ECC/wear-out curves of Fig. 5.
//!
//! # Example
//!
//! ```
//! use ssdx_core::{Axis, Explorer, SsdConfig};
//! use ssdx_hostif::{AccessPattern, Workload};
//!
//! let base = SsdConfig::builder("base").dram_buffer_capacity(128 * 1024).build()?;
//! let workload = Workload::builder(AccessPattern::SequentialWrite)
//!     .command_count(128)
//!     .build();
//! let sweep = Explorer::new(base)
//!     .over(Axis::over("channels", [2u32, 4], |cfg, &c| {
//!         cfg.channels = c;
//!         cfg.dram_buffers = c;
//!     }))
//!     .run(&workload)
//!     .expect("all swept points are valid");
//! assert_eq!(sweep.len(), 2);
//! let best = sweep.best_by(|r| r.throughput_mbps).unwrap();
//! assert_eq!(best.value("channels"), Some("4"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::config::{CachePolicy, ConfigError, HostInterfaceConfig, SsdConfig};
use crate::metrics::SteadyStateCutoff;
use crate::report::PerfReport;
use crate::session::SimSession;
use crate::snapshot::Snapshot;
use crate::ssd::Ssd;
use serde::{Deserialize, Serialize};
use ssdx_ecc::EccScheme;
use ssdx_hostif::{AccessPattern, CommandSource, Workload};
use ssdx_sim::codec::DecodeError;
use std::fmt;
use std::sync::Arc;

/// Errors produced while expanding or executing a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepError {
    /// An axis holds no points, so the cartesian product is empty.
    EmptyAxis(String),
    /// A swept point produced a configuration that does not validate.
    InvalidPoint {
        /// `axis=value` coordinates of the offending point.
        point: String,
        /// The underlying configuration error.
        error: ConfigError,
    },
    /// A warm-start image could not be forked onto a swept point's
    /// platform. This only arises when a [`SweepJob`] batch is mutated
    /// after [`Explorer::warmed_jobs`] attached the images — expansion
    /// itself only shares an image within a group of identical
    /// configurations.
    WarmStart {
        /// `axis=value` coordinates of the offending point.
        point: String,
        /// The underlying snapshot decode error.
        error: DecodeError,
    },
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SweepError::EmptyAxis(axis) => write!(f, "sweep axis `{axis}` has no points"),
            SweepError::InvalidPoint { point, error } => {
                write!(f, "sweep point ({point}) is invalid: {error}")
            }
            SweepError::WarmStart { point, error } => {
                write!(
                    f,
                    "sweep point ({point}) could not fork its warm-start image: {error}"
                )
            }
        }
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SweepError::InvalidPoint { error, .. } => Some(error),
            SweepError::WarmStart { error, .. } => Some(error),
            SweepError::EmptyAxis(_) => None,
        }
    }
}

/// Shared platform-preparation hook applied after construction (e.g.
/// artificial aging), before the source runs. `Send + Sync` so a batch of
/// [`SweepJob`]s can be fanned out across threads by the
/// [`ParallelExecutor`](crate::ParallelExecutor).
type PrepareHook = Arc<dyn Fn(&mut Ssd) + Send + Sync>;

/// `true` when two hook chains are the very same `Arc`s in the same order.
/// Closures have no `Eq`, so warm-start grouping uses allocation identity —
/// which cartesian expansion guarantees for points sharing an axis entry.
/// Compared as thin data pointers: vtable addresses are not stable enough
/// for identity (the same closure can have several vtables across
/// codegen units).
fn same_hooks(a: &[PrepareHook], b: &[PrepareHook]) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| std::ptr::eq(Arc::as_ptr(x).cast::<u8>(), Arc::as_ptr(y).cast::<u8>()))
}

/// One labelled point of an [`Axis`]: a configuration mutation plus an
/// optional platform-preparation hook applied after construction.
#[derive(Clone)]
struct AxisPoint {
    label: String,
    mutate: Arc<dyn Fn(&mut SsdConfig) + Send + Sync>,
    prepare: Option<PrepareHook>,
}

/// One swept dimension: a name and an ordered list of labelled
/// configuration mutations.
#[derive(Clone)]
pub struct Axis {
    name: String,
    points: Vec<AxisPoint>,
}

impl Axis {
    /// Creates an empty axis with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Axis {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// The axis name, as reported in [`SweepPoint::coordinates`].
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of points on the axis.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the axis holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Adds one labelled point mutating the configuration.
    pub fn point(
        mut self,
        label: impl Into<String>,
        mutate: impl Fn(&mut SsdConfig) + Send + Sync + 'static,
    ) -> Self {
        self.points.push(AxisPoint {
            label: label.into(),
            mutate: Arc::new(mutate),
            prepare: None,
        });
        self
    }

    /// Adds one labelled point that both mutates the configuration and
    /// prepares the constructed platform (e.g. artificial NAND aging)
    /// before the source runs.
    pub fn point_with_setup(
        mut self,
        label: impl Into<String>,
        mutate: impl Fn(&mut SsdConfig) + Send + Sync + 'static,
        prepare: impl Fn(&mut Ssd) + Send + Sync + 'static,
    ) -> Self {
        self.points.push(AxisPoint {
            label: label.into(),
            mutate: Arc::new(mutate),
            prepare: Some(Arc::new(prepare)),
        });
        self
    }

    /// Builds an axis from a list of values and one shared mutator: each
    /// point is labelled with the value's `Display` form and applies
    /// `apply(config, &value)`.
    pub fn over<T, F>(
        name: impl Into<String>,
        values: impl IntoIterator<Item = T>,
        apply: F,
    ) -> Self
    where
        T: fmt::Display + Send + Sync + 'static,
        F: Fn(&mut SsdConfig, &T) + Send + Sync + 'static,
    {
        let apply = Arc::new(apply);
        let mut axis = Axis::new(name);
        for value in values {
            let label = value.to_string();
            let apply = Arc::clone(&apply);
            axis = axis.point(label, move |cfg| apply(cfg, &value));
        }
        axis
    }

    /// Builds an axis whose points are whole configurations (labelled by
    /// their names), each replacing the base configuration entirely — how
    /// the Table II sweeps enumerate candidate architectures.
    pub fn configs(name: impl Into<String>, configs: impl IntoIterator<Item = SsdConfig>) -> Self {
        let mut axis = Axis::new(name);
        for config in configs {
            let label = config.name.clone();
            axis = axis.point(label, move |cfg| *cfg = config.clone());
        }
        axis
    }
}

impl fmt::Debug for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Axis")
            .field("name", &self.name)
            .field(
                "points",
                &self.points.iter().map(|p| &p.label).collect::<Vec<_>>(),
            )
            .finish()
    }
}

/// One `(axis, value)` coordinate of a swept point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AxisValue {
    /// Axis name.
    pub axis: String,
    /// Point label on that axis.
    pub value: String,
}

/// One materialised run of a sweep: the concrete configuration, the
/// coordinates that produced it and the preparation hooks to apply. The
/// expansion is deterministic and side-effect free, so a batch of jobs can
/// be executed in any order — which is exactly what the
/// [`ParallelExecutor`](crate::ParallelExecutor) does, claiming jobs from
/// an atomic cursor across worker threads. `SweepJob` is `Send + Sync`
/// (asserted at compile time by the executor's tests): the configuration is
/// plain data and the hooks are `Arc<dyn Fn + Send + Sync>`.
#[derive(Clone)]
pub struct SweepJob {
    /// `(axis, value)` coordinates of this job, in axis order.
    pub coordinates: Vec<AxisValue>,
    /// The fully mutated configuration the platform is built from.
    pub config: SsdConfig,
    /// Warmup trimming applied to the run's per-class tail histograms
    /// (inherited from [`Explorer::steady_state`]; never affects the
    /// legacy report fields).
    pub steady_state: SteadyStateCutoff,
    prepare: Vec<PrepareHook>,
    warm_image: Option<Arc<Snapshot>>,
}

impl SweepJob {
    /// `axis=value` summary of the job, used in error messages.
    pub fn point_label(&self) -> String {
        if self.coordinates.is_empty() {
            self.config.name.clone()
        } else {
            self.coordinates
                .iter()
                .map(|c| format!("{}={}", c.axis, c.value))
                .collect::<Vec<_>>()
                .join(", ")
        }
    }

    /// The shared warm-start image attached by [`Explorer::warmed_jobs`],
    /// if any. Jobs of the same warm-start group hold clones of one `Arc`,
    /// which is how the warm-start suite proves warmup ran once per group.
    pub fn warm_image(&self) -> Option<&Arc<Snapshot>> {
        self.warm_image.as_ref()
    }

    /// Builds the platform, applies the preparation hooks and runs the
    /// source to completion. When a warm-start image is attached
    /// ([`Explorer::warmed_jobs`]), the session is forked from it instead
    /// of replaying the warmup — byte-identical by the fork-equivalence
    /// contract on [`SimSession::fork`].
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::InvalidPoint`] if the configuration does not
    /// validate, and [`SweepError::WarmStart`] if an attached warm-start
    /// image does not decode onto this job's platform.
    pub fn execute<S: CommandSource + ?Sized>(&self, source: &S) -> Result<SweepPoint, SweepError> {
        let mut ssd =
            Ssd::try_new(self.config.clone()).map_err(|error| SweepError::InvalidPoint {
                point: self.point_label(),
                error,
            })?;
        for hook in &self.prepare {
            hook(&mut ssd);
        }
        let mut session = match &self.warm_image {
            Some(image) => SimSession::fork(&mut ssd, source, image).map_err(|error| {
                SweepError::WarmStart {
                    point: self.point_label(),
                    error,
                }
            })?,
            None => ssd.session(source),
        };
        session.steady_state(self.steady_state);
        let report = session.finish();
        Ok(SweepPoint {
            coordinates: self.coordinates.clone(),
            report,
        })
    }
}

impl fmt::Debug for SweepJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SweepJob")
            .field("point", &self.point_label())
            .field("config", &self.config.name)
            .field("prepare_hooks", &self.prepare.len())
            .field("warm", &self.warm_image.is_some())
            .finish()
    }
}

/// One evaluated point of a sweep: its coordinates and the full
/// performance report of the run.
///
/// Note for 0.1 users: this is a new type. The three-column point of the
/// legacy host-interface sweep now lives on as [`HostSweepPoint`].
#[must_use = "a sweep point carries the measured report"]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// `(axis, value)` coordinates, in axis order.
    pub coordinates: Vec<AxisValue>,
    /// The complete performance report of this run.
    pub report: PerfReport,
}

impl SweepPoint {
    /// The point's value on the named axis, if that axis was swept.
    pub fn value(&self, axis: &str) -> Option<&str> {
        self.coordinates
            .iter()
            .find(|c| c.axis == axis)
            .map(|c| c.value.as_str())
    }

    /// Compact point label: the axis values joined with ` · `.
    pub fn label(&self) -> String {
        if self.coordinates.is_empty() {
            self.report.config_name.clone()
        } else {
            self.coordinates
                .iter()
                .map(|c| c.value.as_str())
                .collect::<Vec<_>>()
                .join(" · ")
        }
    }
}

/// The full result of one [`Explorer::run`]: every evaluated point with its
/// report, in cartesian-product order (last axis fastest).
#[must_use = "a sweep carries the measured reports"]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sweep {
    /// The swept axis names, in application order.
    pub axes: Vec<String>,
    /// One point per evaluated combination.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Number of evaluated points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the sweep holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Every point whose coordinate on `axis` equals `value`.
    pub fn select(&self, axis: &str, value: &str) -> Vec<&SweepPoint> {
        self.points
            .iter()
            .filter(|p| p.value(axis) == Some(value))
            .collect()
    }

    /// The point maximising the given report metric, if any.
    ///
    /// NaN-safe: points whose metric evaluates to NaN are skipped entirely
    /// (under [`f64::total_cmp`] alone a NaN would outrank every finite
    /// value), so the result is `None` only for an empty sweep or when every
    /// metric is NaN. Ties resolve to the last tied point in sweep order
    /// (standard [`Iterator::max_by`] semantics).
    pub fn best_by<F: Fn(&PerfReport) -> f64>(&self, metric: F) -> Option<&SweepPoint> {
        self.points
            .iter()
            .map(|p| (p, metric(&p.report)))
            .filter(|(_, value)| !value.is_nan())
            .max_by(|(_, a), (_, b)| a.total_cmp(b))
            .map(|(p, _)| p)
    }

    /// Formats the sweep as an aligned text table (one row per point).
    ///
    /// Every row is written straight into one shared buffer through
    /// `fmt::Write` — no intermediate `String` per cell or per row (the
    /// exact rendering is pinned by a unit test).
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64 + self.points.len() * 80);
        let _ = writeln!(
            out,
            "{:<40} {:>12} {:>12} {:>12}",
            "point", "MB/s", "IOPS", "mean lat"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:<40} {:>12.1} {:>12.0} {:>12}",
                p.label(),
                p.report.throughput_mbps,
                p.report.iops,
                p.report.mean_latency()
            );
        }
        out
    }
}

/// A parameter-sweep engine over arbitrary [`SsdConfig`] mutators.
///
/// Axes are applied in registration order to a clone of the base
/// configuration; the run evaluates the cartesian product of all axis
/// points against one [`CommandSource`]. Construction of each platform is
/// fallible ([`Ssd::try_new`]), so a bad mutation surfaces as a
/// [`SweepError`] instead of a panic.
///
/// # Determinism
///
/// This is the platform-wide determinism contract, stated once:
///
/// * **All randomness flows from `config.seed`.** Every stochastic
///   component stream (per-die program-time jitter, raw-bit-error draws)
///   is a [`SimRng`](ssdx_sim::rng::SimRng) forked from the configuration's
///   seed with a component-specific salt. There are no global, thread-local
///   or wall-clock entropy sources anywhere in the simulation.
/// * **Per-point derivation.** [`jobs`](Self::jobs) clones the base
///   configuration per point before mutating it, so each [`SweepJob`]
///   carries its own seed (axes may themselves sweep `cfg.seed`). A job's
///   platform is built, seeded and run entirely from that job's data.
/// * **Order independence.** Because jobs share nothing mutable, executing
///   them in any order — or concurrently via
///   [`run_parallel`](Self::run_parallel) /
///   [`ParallelExecutor`](crate::ParallelExecutor) — produces a [`Sweep`]
///   byte-identical to the sequential [`run`](Self::run). The
///   `parallel_sweep` integration suite asserts this at 1, 2, 4 and 8
///   threads, and the session suite asserts the analogous property one
///   level down: stepping a [`SimSession`] command by
///   command reproduces the one-shot [`Ssd::simulate`] byte for byte.
#[derive(Debug, Clone)]
pub struct Explorer {
    base: SsdConfig,
    axes: Vec<Axis>,
    steady_state: SteadyStateCutoff,
    warm_start: SteadyStateCutoff,
}

impl Explorer {
    /// Starts a sweep from the given base configuration. With no axes, the
    /// sweep evaluates exactly the base.
    pub fn new(base: SsdConfig) -> Self {
        Explorer {
            base,
            axes: Vec::new(),
            steady_state: SteadyStateCutoff::None,
            warm_start: SteadyStateCutoff::None,
        }
    }

    /// Adds a swept dimension.
    pub fn over(mut self, axis: Axis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Applies warmup trimming to every evaluated point: completions the
    /// cutoff rejects are excluded from the per-class tail histograms
    /// ([`PerfReport::class_latency`](crate::PerfReport::class_latency)).
    /// The legacy report fields are untouched, so a sweep with a cutoff is
    /// still byte-identical to one without it everywhere the golden
    /// equivalence capture looks.
    pub fn steady_state(mut self, cutoff: SteadyStateCutoff) -> Self {
        self.steady_state = cutoff;
        self
    }

    /// Enables warm-start execution: before the sweep runs, the warmup
    /// prefix defined by `cutoff` is simulated **once per group of
    /// identical points** (same configuration, same preparation hooks) and
    /// captured as a [`Snapshot`]; every job in the group then
    /// [forks](SimSession::fork) from that image instead of replaying the
    /// warmup. By the fork-equivalence contract the sweep results stay
    /// byte-identical to a cold run — only the wall-clock cost of the
    /// warmup drops from per-point to per-group.
    ///
    /// Points with distinct configurations (the usual case for a swept
    /// axis) each form their own group, so warm-start never mixes state
    /// across configurations; it pays off when a sweep revisits one
    /// configuration many times (replica axes, per-workload tail studies
    /// re-running a fixed platform). [`SteadyStateCutoff::None`] (the
    /// default) disables warm-start entirely.
    pub fn warm_start(mut self, cutoff: SteadyStateCutoff) -> Self {
        self.warm_start = cutoff;
        self
    }

    /// Convenience for [`Axis::over`]: sweeps a value list through one
    /// mutator.
    pub fn over_values<T, F>(
        self,
        axis: impl Into<String>,
        values: impl IntoIterator<Item = T>,
        apply: F,
    ) -> Self
    where
        T: fmt::Display + Send + Sync + 'static,
        F: Fn(&mut SsdConfig, &T) + Send + Sync + 'static,
    {
        self.over(Axis::over(axis, values, apply))
    }

    /// Expands the cartesian product of all axes into concrete, validated
    /// [`SweepJob`]s — the batch the
    /// [`ParallelExecutor`](crate::ParallelExecutor) fans out, and what
    /// [`run`](Self::run) executes in place.
    ///
    /// # Errors
    ///
    /// Returns [`SweepError::EmptyAxis`] for an axis without points and
    /// [`SweepError::InvalidPoint`] for a combination whose configuration
    /// does not validate.
    pub fn jobs(&self) -> Result<Vec<SweepJob>, SweepError> {
        let mut jobs = vec![SweepJob {
            coordinates: Vec::new(),
            config: self.base.clone(),
            steady_state: self.steady_state,
            prepare: Vec::new(),
            warm_image: None,
        }];
        for axis in &self.axes {
            if axis.points.is_empty() {
                return Err(SweepError::EmptyAxis(axis.name.clone()));
            }
            let mut next = Vec::with_capacity(jobs.len() * axis.points.len());
            for job in &jobs {
                for point in &axis.points {
                    let mut config = job.config.clone();
                    (point.mutate)(&mut config);
                    let mut coordinates = job.coordinates.clone();
                    coordinates.push(AxisValue {
                        axis: axis.name.clone(),
                        value: point.label.clone(),
                    });
                    let mut prepare = job.prepare.clone();
                    if let Some(hook) = &point.prepare {
                        prepare.push(Arc::clone(hook));
                    }
                    next.push(SweepJob {
                        coordinates,
                        config,
                        steady_state: self.steady_state,
                        prepare,
                        warm_image: None,
                    });
                }
            }
            jobs = next;
        }
        for job in &jobs {
            job.config
                .validate()
                .map_err(|error| SweepError::InvalidPoint {
                    point: job.point_label(),
                    error,
                })?;
        }
        Ok(jobs)
    }

    /// The swept axis names, in application order — the `axes` field of the
    /// [`Sweep`] this explorer produces.
    pub fn axis_names(&self) -> Vec<String> {
        self.axes.iter().map(|a| a.name.clone()).collect()
    }

    /// Expands the sweep like [`jobs`](Self::jobs), then — if
    /// [`warm_start`](Self::warm_start) is set — simulates the warmup
    /// prefix once per group of identical points (same configuration,
    /// same preparation hooks in the same order) against `source`,
    /// captures the steady-state image, and attaches it to every job in
    /// the group. [`SweepJob::execute`] then forks each run from the image
    /// instead of replaying the warmup.
    ///
    /// With warm-start disabled this is exactly [`jobs`](Self::jobs); both
    /// [`run`](Self::run) and the
    /// [`ParallelExecutor`](crate::ParallelExecutor) expand through here.
    ///
    /// # Errors
    ///
    /// Propagates the expansion errors of [`jobs`](Self::jobs); a group
    /// representative whose platform fails to build reports the same
    /// [`SweepError::InvalidPoint`] a cold run of that point would.
    pub fn warmed_jobs<S: CommandSource + ?Sized>(
        &self,
        source: &S,
    ) -> Result<Vec<SweepJob>, SweepError> {
        let mut jobs = self.jobs()?;
        if self.warm_start == SteadyStateCutoff::None {
            return Ok(jobs);
        }
        // Group jobs sharing a platform: equal configurations and the very
        // same hook chain (Arc identity — hook closures have no `Eq`).
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for index in 0..jobs.len() {
            let job = &jobs[index];
            match groups.iter_mut().find(|group| {
                let rep = &jobs[group[0]];
                rep.config == job.config && same_hooks(&rep.prepare, &job.prepare)
            }) {
                Some(group) => group.push(index),
                None => groups.push(vec![index]),
            }
        }
        for group in groups {
            let rep = &jobs[group[0]];
            let mut ssd =
                Ssd::try_new(rep.config.clone()).map_err(|error| SweepError::InvalidPoint {
                    point: rep.point_label(),
                    error,
                })?;
            for hook in &rep.prepare {
                hook(&mut ssd);
            }
            let mut session = ssd.session(source);
            session.steady_state(rep.steady_state);
            match self.warm_start {
                SteadyStateCutoff::None => unreachable!("checked above"),
                SteadyStateCutoff::Commands(count) => {
                    for _ in 0..count {
                        if session.step().is_none() {
                            break;
                        }
                    }
                }
                SteadyStateCutoff::SimulatedTime(deadline) => {
                    session.run_until(deadline);
                }
            }
            let image = Arc::new(session.capture());
            drop(session);
            for &index in &group {
                jobs[index].warm_image = Some(Arc::clone(&image));
            }
        }
        Ok(jobs)
    }

    /// Runs the source across every combination, returning one
    /// [`SweepPoint`] per evaluated configuration. With
    /// [`warm_start`](Self::warm_start) set, points are forked from
    /// per-group steady-state images ([`warmed_jobs`](Self::warmed_jobs))
    /// — the results are byte-identical either way.
    ///
    /// # Errors
    ///
    /// Propagates the expansion errors of [`jobs`](Self::jobs).
    pub fn run<S: CommandSource + ?Sized>(&self, source: &S) -> Result<Sweep, SweepError> {
        let jobs = self.warmed_jobs(source)?;
        let mut points = Vec::with_capacity(jobs.len());
        for job in &jobs {
            points.push(job.execute(source)?);
        }
        Ok(Sweep {
            axes: self.axis_names(),
            points,
        })
    }

    /// Runs the sweep across all available cores, producing a [`Sweep`]
    /// byte-identical to [`run`](Self::run) (see the determinism contract
    /// above). Equivalent to
    /// [`ParallelExecutor::new().run(self, source)`](crate::ParallelExecutor::run);
    /// build a [`ParallelExecutor`](crate::ParallelExecutor) explicitly to
    /// pin the thread count.
    ///
    /// # Errors
    ///
    /// Propagates the expansion errors of [`jobs`](Self::jobs) and the
    /// earliest failing job's [`SweepError::InvalidPoint`].
    pub fn run_parallel<S>(&self, source: &S) -> Result<Sweep, SweepError>
    where
        S: CommandSource + Sync + ?Sized,
    {
        crate::parallel::ParallelExecutor::new().run(self, source)
    }

    /// Runs the sweep once per source, prepending a `workload` axis to the
    /// result: every [`SweepPoint`] gains a leading
    /// `workload=<source label>` coordinate, and the sweep's `axes` lead
    /// with `"workload"`. This is how workload *parameters* (zipfian skew,
    /// burst shape, block-size mix, …) become sweep axes — encode each
    /// parameter choice as its own labelled source (the generative sources
    /// take `with_label` overrides for exactly this, so two burst shapes
    /// never collide on the default `bursty` label).
    ///
    /// The workload axis varies slowest (all points of the first source,
    /// then all points of the second, …); within one source the usual
    /// cartesian order applies. Each source's product is fanned out through
    /// [`run_parallel`](Self::run_parallel), which by the determinism
    /// contract changes nothing about the results.
    ///
    /// # Errors
    ///
    /// Propagates the expansion errors of [`jobs`](Self::jobs) and the
    /// earliest failing job's [`SweepError::InvalidPoint`].
    pub fn run_workloads(
        &self,
        sources: &[&(dyn CommandSource + Sync)],
    ) -> Result<Sweep, SweepError> {
        let mut axes = vec!["workload".to_string()];
        axes.extend(self.axis_names());
        let mut points = Vec::new();
        for source in sources {
            let sweep = self.run_parallel(source)?;
            points.reserve(sweep.points.len());
            for mut point in sweep.points {
                point.coordinates.insert(
                    0,
                    AxisValue {
                        axis: "workload".to_string(),
                        value: source.label(),
                    },
                );
                points.push(point);
            }
        }
        Ok(Sweep { axes, points })
    }
}

/// An axis of artificial NAND aging: each point ages the constructed
/// platform to the given normalised rated endurance (0.0 fresh – 1.0 end
/// of life) before the source runs, leaving the configuration untouched.
pub fn endurance_axis(points: &[f64]) -> Axis {
    let mut axis = Axis::new("endurance");
    for &endurance in points {
        axis = axis.point_with_setup(
            format!("{endurance:.2}"),
            |_| {},
            move |ssd| ssd.age_to_normalized(endurance),
        );
    }
    axis
}

/// One bar group of Fig. 3 / Fig. 4: the three throughput columns of a
/// single SSD configuration.
///
/// Renamed from `SweepPoint` in 0.2 — that name now belongs to the generic
/// [`Explorer`] output (coordinates + full [`PerfReport`]). Code that
/// serialised the old three-column shape should migrate to this type.
#[must_use = "a host-sweep point carries the measured columns"]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSweepPoint {
    /// Configuration name (e.g. "C6").
    pub config_name: String,
    /// Architecture summary.
    pub architecture: String,
    /// Number of NAND channels.
    pub channels: u32,
    /// Number of DRAM data buffers.
    pub dram_buffers: u32,
    /// Total dies.
    pub total_dies: u32,
    /// Throughput of the DRAM-to-flash back end alone, MB/s.
    pub ddr_flash_mbps: f64,
    /// Host-visible throughput with the write cache enabled, MB/s.
    pub ssd_cache_mbps: f64,
    /// Host-visible throughput with no write cache, MB/s.
    pub ssd_no_cache_mbps: f64,
}

impl HostSweepPoint {
    /// Controller-side resource cost used to rank design points, as the
    /// paper does: channels and DRAM buffers (controller pins, DRAM devices
    /// and channel controllers) dominate the cost, the die count breaks
    /// ties.
    pub fn resource_cost(&self) -> (u32, u32) {
        (self.channels + self.dram_buffers, self.total_dies)
    }
}

/// The full result of sweeping one host interface across a set of
/// configurations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSweep {
    /// Host interface name.
    pub interface: String,
    /// Stand-alone ideal interface throughput, MB/s.
    pub interface_ideal_mbps: f64,
    /// Interface + DMA + DRAM best-case throughput, MB/s.
    pub interface_plus_dram_mbps: f64,
    /// Per-configuration columns.
    pub points: Vec<HostSweepPoint>,
}

impl HostSweep {
    /// The configurations that saturate the host interface: their cached
    /// throughput reaches at least `threshold` (e.g. 0.95) of the
    /// interface-plus-DRAM best case.
    pub fn saturating_points(&self, threshold: f64) -> Vec<&HostSweepPoint> {
        self.points
            .iter()
            .filter(|p| p.ssd_cache_mbps >= threshold * self.interface_plus_dram_mbps)
            .collect()
    }

    /// The optimal design point: among the saturating configurations, the
    /// one with the lowest resource cost (channels + DRAM buffers, dies as
    /// tie-break); if none saturates, the cheapest configuration overall
    /// (the paper's fallback when the no-cache SATA window flattens every
    /// configuration).
    pub fn optimal_design_point(&self, threshold: f64) -> Option<&HostSweepPoint> {
        let saturating = self.saturating_points(threshold);
        if saturating.is_empty() {
            self.points.iter().min_by_key(|p| p.resource_cost())
        } else {
            saturating.into_iter().min_by_key(|p| p.resource_cost())
        }
    }

    /// The Pareto-optimal design points of the cached throughput vs
    /// controller resource cost trade-off: a point is kept if no other point
    /// achieves at least its throughput at a lower or equal cost (used for
    /// the PCIe experiment, where the host interface no longer saturates and
    /// the search is driven by hardware cost).
    pub fn pareto_front(&self) -> Vec<&HostSweepPoint> {
        let mut front: Vec<&HostSweepPoint> = self
            .points
            .iter()
            .filter(|candidate| {
                !self.points.iter().any(|other| {
                    let strictly_better_perf = other.ssd_cache_mbps > candidate.ssd_cache_mbps;
                    let cheaper_or_equal = other.resource_cost() <= candidate.resource_cost();
                    strictly_better_perf && cheaper_or_equal
                })
            })
            .collect();
        front.sort_by_key(|p| p.resource_cost());
        front.dedup_by_key(|p| p.resource_cost());
        front
    }

    /// Formats the sweep as an aligned text table (one row per
    /// configuration), convenient for the experiment binaries.
    ///
    /// Rendered through one shared `fmt::Write` buffer (no per-row `String`
    /// allocations); the exact rendering is pinned by a unit test.
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(128 + self.points.len() * 96);
        let _ = writeln!(
            out,
            "host interface      : {} (ideal {:.0} MB/s, +DDR {:.0} MB/s)",
            self.interface, self.interface_ideal_mbps, self.interface_plus_dram_mbps
        );
        let _ = writeln!(
            out,
            "{:<6} {:<34} {:>12} {:>12} {:>14}",
            "config", "architecture", "DDR+FLASH", "SSD cache", "SSD no cache"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:<6} {:<34} {:>10.1} MB/s {:>10.1} MB/s {:>12.1} MB/s",
                p.config_name,
                p.architecture,
                p.ddr_flash_mbps,
                p.ssd_cache_mbps,
                p.ssd_no_cache_mbps
            );
        }
        out
    }
}

/// Sweeps `configs` under the given host interface with an [`Explorer`]
/// over the configuration × cache-policy product, augmenting the
/// full-pipeline columns with the component-path reference series
/// (`ideal`, `+DDR`, `DDR+FLASH`) measured outside the session pipeline.
///
/// The full-pipeline product (the expensive part — two complete simulations
/// per configuration) is fanned out across all cores with
/// [`Explorer::run_parallel`]; by the determinism contract the result is
/// byte-identical to a sequential run, so the legacy-shim fidelity tests
/// keep passing unchanged.
///
/// # Errors
///
/// Returns [`SweepError::InvalidPoint`] if any supplied configuration does
/// not validate.
pub fn host_interface_study(
    host: HostInterfaceConfig,
    configs: &[SsdConfig],
    workload: &Workload,
) -> Result<HostSweep, SweepError> {
    if configs.is_empty() {
        return Ok(HostSweep {
            interface: host.name(),
            interface_ideal_mbps: 0.0,
            interface_plus_dram_mbps: 0.0,
            points: Vec::new(),
        });
    }

    let explorer = Explorer::new(configs[0].clone())
        .over(Axis::configs("config", configs.to_vec()))
        .over(Axis::new("host").point(host.name(), move |cfg| cfg.host_interface = host))
        .over(
            Axis::new("cache")
                .point(CachePolicy::WriteCache.label(), |cfg| {
                    cfg.cache_policy = CachePolicy::WriteCache;
                })
                .point(CachePolicy::NoCache.label(), |cfg| {
                    cfg.cache_policy = CachePolicy::NoCache;
                }),
        );
    let sweep = explorer.run_parallel(workload)?;

    let mut points = Vec::with_capacity(configs.len());
    let mut interface_ideal = 0.0;
    let mut interface_plus_dram: f64 = 0.0;
    for (index, base) in configs.iter().enumerate() {
        // Component-path reference series, measured on the cached variant
        // exactly as the paper's figures do.
        let mut component_cfg = base.clone();
        component_cfg.host_interface = host;
        component_cfg.cache_policy = CachePolicy::WriteCache;
        let mut ssd = Ssd::try_new(component_cfg).map_err(|error| SweepError::InvalidPoint {
            point: format!("config={}", base.name),
            error,
        })?;
        interface_ideal = ssd.interface_ideal_mbps();
        interface_plus_dram = interface_plus_dram.max(ssd.host_dram_only_mbps(workload));
        let ddr_flash = ssd.flash_path_mbps(workload);

        // The product expands config-major with the cache axis varying
        // fastest, so the two policy columns of configuration `index` sit at
        // fixed positions — a positional join that stays correct even when
        // two supplied configurations share a name.
        let cached = &sweep.points[index * 2];
        let no_cache = &sweep.points[index * 2 + 1];
        debug_assert_eq!(cached.value("cache"), Some(CachePolicy::WriteCache.label()));
        debug_assert_eq!(no_cache.value("cache"), Some(CachePolicy::NoCache.label()));

        points.push(HostSweepPoint {
            config_name: base.name.clone(),
            architecture: base.architecture_label(),
            channels: base.channels,
            dram_buffers: base.dram_buffers,
            total_dies: base.total_dies(),
            ddr_flash_mbps: ddr_flash,
            ssd_cache_mbps: cached.report.throughput_mbps,
            ssd_no_cache_mbps: no_cache.report.throughput_mbps,
        });
    }
    Ok(HostSweep {
        interface: host.name(),
        interface_ideal_mbps: interface_ideal,
        interface_plus_dram_mbps: interface_plus_dram,
        points,
    })
}

/// Sweeps `configs` under `host`, running the given workload for the
/// DDR+FLASH, cached and no-cache variants of every configuration.
#[deprecated(
    since = "0.2.0",
    note = "use `host_interface_study`, the Explorer-based re-expression"
)]
pub fn sweep_host_interface(
    host: HostInterfaceConfig,
    configs: &[SsdConfig],
    workload: &Workload,
) -> HostSweep {
    host_interface_study(host, configs, workload)
        .expect("legacy sweep configurations are structurally valid")
}

/// One sample of the wear-out experiment (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WearoutPoint {
    /// Normalised rated endurance (0.0 fresh – 1.0 end of life).
    pub normalized_endurance: f64,
    /// Sequential-read throughput at this wear level, MB/s.
    pub read_mbps: f64,
    /// Sequential-write throughput at this wear level, MB/s.
    pub write_mbps: f64,
}

/// Sweeps NAND wear from fresh to rated end of life for the given ECC
/// scheme on `config` with an [`Explorer`] over an [`endurance_axis`],
/// measuring sequential read and write throughput at each point (the paper
/// samples the normalised endurance axis 0.0–1.0). Both the read and the
/// write sweep run through [`Explorer::run_parallel`], one platform per
/// endurance point per worker thread.
///
/// # Errors
///
/// Returns [`SweepError::InvalidPoint`] if `config` does not validate.
pub fn wearout_study(
    config: &SsdConfig,
    ecc: EccScheme,
    endurance_points: &[f64],
    commands_per_point: u64,
) -> Result<Vec<WearoutPoint>, SweepError> {
    if endurance_points.is_empty() {
        return Ok(Vec::new());
    }
    let mut cfg = config.clone();
    cfg.ecc = ecc;
    let explorer = Explorer::new(cfg).over(endurance_axis(endurance_points));
    let read_wl = Workload::builder(AccessPattern::SequentialRead)
        .command_count(commands_per_point)
        .build();
    let write_wl = Workload::builder(AccessPattern::SequentialWrite)
        .command_count(commands_per_point)
        .build();
    let reads = explorer.run_parallel(&read_wl)?;
    let writes = explorer.run_parallel(&write_wl)?;
    Ok(endurance_points
        .iter()
        .zip(reads.points)
        .zip(writes.points)
        .map(|((&endurance, read), write)| WearoutPoint {
            normalized_endurance: endurance,
            read_mbps: read.report.throughput_mbps,
            write_mbps: write.report.throughput_mbps,
        })
        .collect())
}

/// Sweeps NAND wear for the given ECC scheme, measuring sequential read and
/// write throughput at each endurance point.
#[deprecated(
    since = "0.2.0",
    note = "use `wearout_study`, the Explorer-based re-expression"
)]
pub fn wearout_sweep(
    config: &SsdConfig,
    ecc: EccScheme,
    endurance_points: &[f64],
    commands_per_point: u64,
) -> Vec<WearoutPoint> {
    wearout_study(config, ecc, endurance_points, commands_per_point)
        .expect("legacy wear-out configuration is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    fn quick_workload() -> Workload {
        Workload::builder(AccessPattern::SequentialWrite)
            .command_count(192)
            .build()
    }

    fn small_table() -> Vec<SsdConfig> {
        vec![
            SsdConfig::builder("small")
                .topology(2, 2, 1)
                .dram_buffers(2)
                .dram_buffer_capacity(128 * 1024)
                .build()
                .unwrap(),
            SsdConfig::builder("large")
                .topology(8, 4, 2)
                .dram_buffers(8)
                .dram_buffer_capacity(128 * 1024)
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn explorer_with_no_axes_runs_the_base_configuration() {
        let sweep = Explorer::new(small_table().remove(0))
            .run(&quick_workload())
            .unwrap();
        assert_eq!(sweep.len(), 1);
        assert!(sweep.axes.is_empty());
        assert_eq!(sweep.points[0].report.config_name, "small");
        assert_eq!(sweep.points[0].label(), "small");
        assert!(sweep.points[0].report.throughput_mbps > 0.0);
    }

    #[test]
    fn explorer_expands_the_cartesian_product_in_order() {
        let explorer = Explorer::new(small_table().remove(0))
            .over_values("channels", [2u32, 4], |cfg, &c| {
                cfg.channels = c;
                cfg.dram_buffers = c;
            })
            .over(
                Axis::new("cache")
                    .point("cache", |cfg| cfg.cache_policy = CachePolicy::WriteCache)
                    .point("no cache", |cfg| cfg.cache_policy = CachePolicy::NoCache),
            );
        let jobs = explorer.jobs().unwrap();
        assert_eq!(jobs.len(), 4);
        // Last axis varies fastest.
        assert_eq!(jobs[0].point_label(), "channels=2, cache=cache");
        assert_eq!(jobs[1].point_label(), "channels=2, cache=no cache");
        assert_eq!(jobs[3].point_label(), "channels=4, cache=no cache");
        assert_eq!(jobs[3].config.channels, 4);
        assert_eq!(jobs[3].config.cache_policy, CachePolicy::NoCache);

        let sweep = explorer.run(&quick_workload()).unwrap();
        assert_eq!(
            sweep.axes,
            vec!["channels".to_string(), "cache".to_string()]
        );
        assert_eq!(sweep.len(), 4);
        assert_eq!(sweep.select("cache", "no cache").len(), 2);
        assert_eq!(sweep.points[2].value("channels"), Some("4"));
        // More channels must not hurt cached sequential writes.
        let best = sweep.best_by(|r| r.throughput_mbps).unwrap();
        assert_eq!(best.value("channels"), Some("4"));
        let table = sweep.to_table();
        assert!(table.contains("4 · no cache"), "{table}");
    }

    #[test]
    fn explorer_surfaces_invalid_points_instead_of_panicking() {
        let err = Explorer::new(small_table().remove(0))
            .over_values("channels", [0u32], |cfg, &c| cfg.channels = c)
            .run(&quick_workload())
            .unwrap_err();
        assert_eq!(
            err,
            SweepError::InvalidPoint {
                point: "channels=0".to_string(),
                error: ConfigError::ZeroDimension("channels"),
            }
        );
        assert!(err.to_string().contains("channels=0"));

        let empty = Explorer::new(small_table().remove(0))
            .over(Axis::new("void"))
            .run(&quick_workload())
            .unwrap_err();
        assert_eq!(empty, SweepError::EmptyAxis("void".to_string()));
    }

    #[test]
    fn axis_constructors_label_their_points() {
        let axis = Axis::over("qd", [1u32, 32], |cfg, &qd| {
            cfg.queue_depth_override = Some(qd);
        });
        assert_eq!(axis.name(), "qd");
        assert_eq!(axis.len(), 2);
        assert!(!axis.is_empty());

        let configs_axis = Axis::configs("config", small_table());
        assert_eq!(configs_axis.len(), 2);
        let jobs = Explorer::new(SsdConfig::default())
            .over(configs_axis)
            .jobs()
            .unwrap();
        assert_eq!(jobs[0].point_label(), "config=small");
        assert_eq!(jobs[1].config.channels, 8, "whole config replaced");
    }

    #[test]
    fn run_workloads_prepends_the_workload_axis() {
        let sw = quick_workload();
        let rr = Workload::builder(AccessPattern::RandomRead)
            .command_count(192)
            .build();
        let explorer =
            Explorer::new(small_table().remove(0)).over_values("channels", [2u32, 4], |cfg, &c| {
                cfg.channels = c;
                cfg.dram_buffers = c;
            });
        let sweep = explorer.run_workloads(&[&sw, &rr]).unwrap();
        assert_eq!(
            sweep.axes,
            vec!["workload".to_string(), "channels".to_string()]
        );
        assert_eq!(sweep.len(), 4, "2 workloads x 2 channel counts");
        assert_eq!(sweep.points[0].value("workload"), Some("SW"));
        assert_eq!(sweep.points[3].value("workload"), Some("RR"));
        assert_eq!(sweep.points[3].value("channels"), Some("4"));
        // Each workload's slice is byte-identical to running it directly.
        let direct = explorer.run(&rr).unwrap();
        assert_eq!(
            format!("{:?}", direct.points[1].report),
            format!("{:?}", sweep.points[3].report)
        );
    }

    #[test]
    fn steady_state_cutoff_flows_into_every_sweep_point() {
        let explorer =
            Explorer::new(small_table().remove(0)).steady_state(SteadyStateCutoff::Commands(64));
        let sweep = explorer.run(&quick_workload()).unwrap();
        assert_eq!(
            sweep.points[0].report.class_latency.count(),
            192 - 64,
            "the first 64 completions are warmup"
        );
        // The legacy fields are untouched by the cutoff.
        let untrimmed = Explorer::new(small_table().remove(0))
            .run(&quick_workload())
            .unwrap();
        assert_eq!(
            format!("{:?}", untrimmed.points[0].report),
            format!("{:?}", sweep.points[0].report)
        );
    }

    #[test]
    fn sweep_results_are_serialization_ready() {
        // The vendored serde is a marker stand-in; this pins the derive so
        // swapping in the real serde keeps `Sweep` dumpable by experiments.
        fn assert_serialize<T: serde::Serialize>() {}
        assert_serialize::<Sweep>();
        assert_serialize::<SweepPoint>();
        assert_serialize::<AxisValue>();
        assert_serialize::<HostSweep>();

        let sweep = Explorer::new(small_table().remove(0))
            .over_values("seed", [1u64, 2], |cfg, &s| cfg.seed = s)
            .run(&quick_workload())
            .unwrap();
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep.points[0].value("seed"), Some("1"));
    }

    #[test]
    fn empty_sweep_accessors_degrade_gracefully() {
        let sweep = Sweep {
            axes: Vec::new(),
            points: Vec::new(),
        };
        assert!(sweep.is_empty());
        assert_eq!(sweep.len(), 0);
        assert!(sweep.best_by(|r| r.throughput_mbps).is_none());
        assert!(sweep.select("channels", "4").is_empty());
        // The table still renders: the header row and nothing else.
        let table = sweep.to_table();
        assert_eq!(table.lines().count(), 1);
        assert!(table.contains("point"));
        assert!(table.contains("MB/s"));
    }

    #[test]
    fn best_by_skips_nan_metrics() {
        let sweep = Explorer::new(small_table().remove(0))
            .over_values("channels", [2u32, 4], |cfg, &c| {
                cfg.channels = c;
                cfg.dram_buffers = c;
            })
            .run(&quick_workload())
            .unwrap();
        // total_cmp alone would rank NaN above every number; best_by must
        // skip NaN metrics instead of electing them.
        assert!(sweep.best_by(|_| f64::NAN).is_none(), "all NaN -> None");
        // Mixed case: the faster (4-channel) point's metric is NaN, so the
        // slower point must win despite its lower throughput.
        let fast = sweep
            .best_by(|r| r.throughput_mbps)
            .unwrap()
            .report
            .throughput_mbps;
        let best = sweep
            .best_by(|r| {
                if r.throughput_mbps == fast {
                    f64::NAN
                } else {
                    r.throughput_mbps
                }
            })
            .expect("finite points remain eligible");
        assert_eq!(best.value("channels"), Some("2"));
    }

    #[test]
    fn select_and_value_handle_missing_axis_names() {
        let sweep = Explorer::new(small_table().remove(0))
            .over_values("channels", [2u32, 4], |cfg, &c| {
                cfg.channels = c;
                cfg.dram_buffers = c;
            })
            .run(&quick_workload())
            .unwrap();
        assert!(sweep.select("no-such-axis", "2").is_empty());
        assert!(sweep.select("channels", "no-such-value").is_empty());
        assert_eq!(sweep.points[0].value("no-such-axis"), None);
        assert_eq!(sweep.points[0].value("channels"), Some("2"));
    }

    #[test]
    fn sweep_table_rendering_is_pinned() {
        use crate::report::{PerfReport, UtilizationBreakdown};
        use ssdx_sim::stats::LatencyHistogram;
        use ssdx_sim::SimTime;
        let mut latency = LatencyHistogram::new();
        latency.record(SimTime::from_us(100));
        let report = |name: &str, mbps: f64, iops: f64| PerfReport {
            config_name: name.to_string(),
            architecture: "arch".to_string(),
            workload: "SW".to_string(),
            policy: "cache".to_string(),
            commands: 10,
            bytes: 40_960,
            elapsed: SimTime::from_ms(1),
            throughput_mbps: mbps,
            iops,
            waf: 1.0,
            nand_page_programs: 20,
            nand_page_reads: 0,
            latency: latency.clone(),
            utilization: UtilizationBreakdown::default(),
            class_latency: Box::new(crate::metrics::ClassHistograms::new()),
        };
        let sweep = Sweep {
            axes: vec!["channels".to_string()],
            points: vec![
                SweepPoint {
                    coordinates: vec![AxisValue {
                        axis: "channels".to_string(),
                        value: "2".to_string(),
                    }],
                    report: report("a", 123.45, 30_000.0),
                },
                SweepPoint {
                    coordinates: vec![AxisValue {
                        axis: "channels".to_string(),
                        value: "4".to_string(),
                    }],
                    report: report("b", 240.0, 58_593.75),
                },
            ],
        };
        // The exact rendering is part of the experiment drivers' recorded
        // output; pin it so the shared-buffer rewrite (and any future
        // change) cannot silently reformat the tables.
        // (`mean lat` renders through SimTime's Display, which does not
        // consume the width flag — the column is ragged, as it always was.)
        let expected = "\
point                                            MB/s         IOPS     mean lat\n\
2                                               123.5        30000 100 us\n\
4                                               240.0        58594 100 us\n";
        assert_eq!(sweep.to_table(), expected);
    }

    #[test]
    fn host_sweep_table_rendering_is_pinned() {
        let sweep = HostSweep {
            interface: "SATA II".to_string(),
            interface_ideal_mbps: 279.0,
            interface_plus_dram_mbps: 250.5,
            points: vec![HostSweepPoint {
                config_name: "C1".to_string(),
                architecture: "1-DDR-buf;1-CHN;1-WAY;1-DIE".to_string(),
                channels: 1,
                dram_buffers: 1,
                total_dies: 1,
                ddr_flash_mbps: 10.04,
                ssd_cache_mbps: 9.96,
                ssd_no_cache_mbps: 8.0,
            }],
        };
        let expected = "\
host interface      : SATA II (ideal 279 MB/s, +DDR 250 MB/s)\n\
config architecture                          DDR+FLASH    SSD cache   SSD no cache\n\
C1     1-DDR-buf;1-CHN;1-WAY;1-DIE              10.0 MB/s       10.0 MB/s          8.0 MB/s\n";
        assert_eq!(sweep.to_table(), expected);
    }

    #[test]
    fn host_interface_study_produces_one_point_per_config() {
        let sweep = host_interface_study(
            HostInterfaceConfig::Sata2,
            &small_table(),
            &quick_workload(),
        )
        .unwrap();
        assert_eq!(sweep.points.len(), 2);
        assert!(sweep.interface_ideal_mbps > 200.0);
        assert!(sweep.interface_plus_dram_mbps > 0.0);
        assert!(sweep.points[1].ddr_flash_mbps > sweep.points[0].ddr_flash_mbps);
        let table = sweep.to_table();
        assert!(table.contains("DDR+FLASH"));
        assert!(table.contains("small"));
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_sweep_shim_matches_the_explorer_study() {
        let workload = quick_workload();
        let legacy = sweep_host_interface(HostInterfaceConfig::Sata2, &small_table(), &workload);
        let study =
            host_interface_study(HostInterfaceConfig::Sata2, &small_table(), &workload).unwrap();
        assert_eq!(legacy, study);
    }

    #[test]
    fn optimal_design_point_prefers_cheapest_controller_among_saturating() {
        let sweep = HostSweep {
            interface: "test".to_string(),
            interface_ideal_mbps: 280.0,
            interface_plus_dram_mbps: 250.0,
            points: vec![
                HostSweepPoint {
                    config_name: "tiny".into(),
                    architecture: String::new(),
                    channels: 2,
                    dram_buffers: 2,
                    total_dies: 8,
                    ddr_flash_mbps: 50.0,
                    ssd_cache_mbps: 50.0,
                    ssd_no_cache_mbps: 40.0,
                },
                HostSweepPoint {
                    config_name: "right".into(),
                    architecture: String::new(),
                    channels: 16,
                    dram_buffers: 16,
                    total_dies: 512,
                    ddr_flash_mbps: 300.0,
                    ssd_cache_mbps: 248.0,
                    ssd_no_cache_mbps: 60.0,
                },
                HostSweepPoint {
                    config_name: "huge".into(),
                    architecture: String::new(),
                    channels: 32,
                    dram_buffers: 32,
                    total_dies: 256,
                    ddr_flash_mbps: 900.0,
                    ssd_cache_mbps: 250.0,
                    ssd_no_cache_mbps: 60.0,
                },
            ],
        };
        assert_eq!(sweep.saturating_points(0.95).len(), 2);
        assert_eq!(
            sweep.optimal_design_point(0.95).unwrap().config_name,
            "right"
        );
    }

    #[test]
    fn optimal_design_point_falls_back_to_smallest_config() {
        let sweep = HostSweep {
            interface: "test".to_string(),
            interface_ideal_mbps: 280.0,
            interface_plus_dram_mbps: 250.0,
            points: vec![
                HostSweepPoint {
                    config_name: "a".into(),
                    architecture: String::new(),
                    channels: 4,
                    dram_buffers: 4,
                    total_dies: 32,
                    ddr_flash_mbps: 40.0,
                    ssd_cache_mbps: 40.0,
                    ssd_no_cache_mbps: 40.0,
                },
                HostSweepPoint {
                    config_name: "b".into(),
                    architecture: String::new(),
                    channels: 8,
                    dram_buffers: 8,
                    total_dies: 64,
                    ddr_flash_mbps: 60.0,
                    ssd_cache_mbps: 60.0,
                    ssd_no_cache_mbps: 42.0,
                },
            ],
        };
        assert!(sweep.saturating_points(0.95).is_empty());
        assert_eq!(sweep.optimal_design_point(0.95).unwrap().config_name, "a");
    }

    #[test]
    fn pareto_front_keeps_only_undominated_points() {
        let mk = |name: &str, channels: u32, dies: u32, cache: f64| HostSweepPoint {
            config_name: name.into(),
            architecture: String::new(),
            channels,
            dram_buffers: channels,
            total_dies: dies,
            ddr_flash_mbps: cache,
            ssd_cache_mbps: cache,
            ssd_no_cache_mbps: cache,
        };
        let sweep = HostSweep {
            interface: "test".to_string(),
            interface_ideal_mbps: 3400.0,
            interface_plus_dram_mbps: 1700.0,
            points: vec![
                mk("C1", 4, 32, 36.0),
                mk("C5", 8, 512, 156.0),
                // C3 has fewer dies than C5 (cheaper tie-break), so it stays
                // on the front even though C5 is faster.
                mk("C3", 8, 128, 147.0),
                mk("C6", 16, 512, 314.0),
                // C8 is dominated by C6: faster and cheaper on the
                // controller side (fewer channels and buffers).
                mk("C8", 32, 256, 304.0),
                mk("C10", 32, 1024, 630.0),
            ],
        };
        let front: Vec<&str> = sweep
            .pareto_front()
            .iter()
            .map(|p| p.config_name.as_str())
            .collect();
        assert_eq!(front, vec!["C1", "C3", "C5", "C6", "C10"]);
    }

    #[test]
    fn wearout_study_shows_adaptive_advantage_early_in_life() {
        let cfg = configs::fig5_config(EccScheme::fixed_bch(40));
        let points = [0.0, 1.0];
        let fixed = wearout_study(&cfg, EccScheme::fixed_bch(40), &points, 96).unwrap();
        let adaptive = wearout_study(&cfg, EccScheme::adaptive_bch(40), &points, 96).unwrap();
        assert_eq!(fixed.len(), 2);
        // Fresh device: adaptive reads faster.
        assert!(adaptive[0].read_mbps > fixed[0].read_mbps);
        // End of life: both run the worst-case code.
        let ratio = adaptive[1].read_mbps / fixed[1].read_mbps;
        assert!((0.85..1.15).contains(&ratio), "ratio = {ratio}");
        // Writes are much less sensitive to the ECC choice than reads.
        let write_gap =
            (adaptive[0].write_mbps - fixed[0].write_mbps).abs() / fixed[0].write_mbps.max(1e-9);
        assert!(write_gap < 0.15, "write gap = {write_gap}");
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_wearout_shim_matches_the_explorer_study() {
        let cfg = configs::fig5_config(EccScheme::fixed_bch(40));
        let points = [0.0, 0.5];
        let legacy = wearout_sweep(&cfg, EccScheme::adaptive_bch(40), &points, 64);
        let study = wearout_study(&cfg, EccScheme::adaptive_bch(40), &points, 64).unwrap();
        assert_eq!(legacy, study);
    }
}
