//! SSDExplorer core: a virtual platform for fine-grained design space
//! exploration of Solid State Drives.
//!
//! This crate assembles the substrate models (NAND array, DDR2 buffers,
//! AMBA AHB interconnect, controller CPU, channel/way controllers, ECC,
//! compressor, host interfaces and the WAF-based FTL abstraction) into a
//! complete SSD platform ([`Ssd`]) driven by a single configuration object
//! ([`SsdConfig`]). Execution is session based: any
//! [`CommandSource`](ssdx_hostif::CommandSource) — a synthetic workload, a
//! trace, a closure generator — runs through [`Ssd::simulate`] in one shot,
//! or through a steppable [`SimSession`] with [`Probe`] observers for
//! mid-run sampling. On top sits the generic [`Explorer`] sweep engine —
//! with the [`ParallelExecutor`] fanning its [`SweepJob`]s out across all
//! cores while keeping results byte-identical to a sequential run (see the
//! determinism contract on [`Explorer`]) — and the drivers that regenerate
//! the paper's experiments:
//!
//! * [`explorer::host_interface_study`] — the optimal-design-point sweeps of
//!   Figs. 3 and 4 over the Table II configurations ([`configs::table2_configs`]);
//! * [`explorer::wearout_study`] — the ECC/wear-out study of Fig. 5;
//! * [`metrics::tail_latency_study`] — steady-state p50/p95/p99/p99.9 per
//!   command class across the generative workload suite (zipfian skew,
//!   bursty arrivals, mixed block sizes, read-modify-write);
//! * [`speed::measure_kcps_sweep`] — the simulation-speed study of Fig. 6
//!   over the Table III configurations ([`configs::table3_configs`]);
//! * [`configs::ocz_vertex_like`] — the validation configuration of Fig. 2.
//!
//! # Quick start
//!
//! ```
//! use ssdx_core::{Ssd, SsdConfig};
//! use ssdx_hostif::{AccessPattern, Workload};
//!
//! // A 4-channel SATA II drive with the write cache enabled.
//! let config = SsdConfig::builder("demo")
//!     .topology(4, 4, 2)
//!     .dram_buffers(4)
//!     .build()?;
//! let mut ssd = Ssd::try_new(config)?;
//!
//! // 4 KB sequential writes, as in the paper's experiments.
//! let workload = Workload::builder(AccessPattern::SequentialWrite)
//!     .command_count(256)
//!     .build();
//! let report = ssd.simulate(&workload);
//! println!("{report}");
//! # Ok::<(), ssdx_core::ConfigError>(())
//! ```

#![warn(rust_2018_idioms)]

pub mod config;
pub mod configs;
pub mod explorer;
pub mod faults;
pub mod layout;
pub mod metrics;
pub mod parallel;
pub mod report;
pub mod session;
pub mod snapshot;
pub mod speed;
pub mod ssd;

pub use config::{
    CachePolicy, CompressorConfig, ConfigError, FaultConfig, FtlMode, HostInterfaceConfig,
    SsdConfig, SsdConfigBuilder,
};
pub use explorer::{
    endurance_axis, host_interface_study, wearout_study, Axis, AxisValue, Explorer, HostSweep,
    HostSweepPoint, Sweep, SweepError, SweepJob, SweepPoint, WearoutPoint,
};
#[allow(deprecated)]
pub use explorer::{sweep_host_interface, wearout_sweep};
pub use faults::{
    fault_campaign, fault_campaign_warm, power_loss_axis, read_disturb_axis, retention_axis,
    retirement_axis, FaultStudy,
};
pub use layout::{PageAllocator, PageTarget};
pub use metrics::{
    tail_latency_study, tail_latency_study_warm, ClassHistograms, CommandClass, LatencyHistogram,
    SteadyStateCutoff, TailStudy, TailSummary,
};
pub use parallel::ParallelExecutor;
pub use report::{PerfReport, UtilizationBreakdown};
pub use session::{CommandRecord, CompletionLog, Probe, SessionSnapshot, SimSession};
pub use snapshot::{Snapshot, StateInventoryEntry, SNAPSHOT_VERSION, STATE_INVENTORY};
pub use speed::{
    measure_fig6_baseline, measure_kcps, measure_kcps_sweep, measure_sweep_speedup,
    measure_sweep_speedups, ParallelSpeed, SpeedBaseline, SpeedPoint, SweepSpeedup,
};
pub use ssd::Ssd;
