//! Steppable simulation sessions with observer probes.
//!
//! [`Ssd::session`] turns any [`CommandSource`]
//! into a [`SimSession`]: an
//! in-flight simulation that can be advanced one command at a time
//! ([`step`](SimSession::step)), up to a simulated deadline
//! ([`run_until`](SimSession::run_until)), or to completion
//! ([`finish`](SimSession::finish)). Mid-run state — per-command completion
//! records, protocol-window occupancy, per-component utilization — is
//! observable through [`Probe`]s and [`snapshot`](SimSession::snapshot), so
//! design-space exploration can sample latency and queue depth *during* a
//! run instead of only post-hoc, which is the fine-grained visibility the
//! paper's platform is built around.
//!
//! # Example
//!
//! ```
//! use ssdx_core::{CompletionLog, Ssd, SsdConfig};
//! use ssdx_hostif::{AccessPattern, Workload};
//!
//! let mut ssd = Ssd::try_new(SsdConfig::default())?;
//! let workload = Workload::builder(AccessPattern::SequentialWrite)
//!     .command_count(64)
//!     .build();
//! let mut log = CompletionLog::new();
//! let mut session = ssd.session(&workload);
//! session.attach(&mut log);
//! let report = session.finish();
//! assert_eq!(log.records().len(), 64);
//! assert_eq!(report.commands, 64);
//! # Ok::<(), ssdx_core::ConfigError>(())
//! ```

use crate::config::{CachePolicy, FtlMode};
use crate::metrics::{ClassHistograms, SteadyStateCutoff};
use crate::report::{PerfReport, UtilizationBreakdown};
use crate::snapshot::{self, Snapshot};
use crate::ssd::Ssd;
use serde::Serialize;
use ssdx_compress::{CompressorModel, CompressorPlacement};
use ssdx_dram::AccessKind;
use ssdx_ftl::{PageMappedFtl, WorkloadMix};
use ssdx_hostif::{CommandSource, HostCommand, HostOp};
use ssdx_nand::NandOp;
use ssdx_sim::codec::{DecodeError, Decoder, Encoder};
use ssdx_sim::stats::LatencyHistogram;
use ssdx_sim::SimTime;
use std::borrow::Cow;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One completed host command, as delivered to [`Probe::on_command`] and
/// returned by [`SimSession::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CommandRecord {
    /// Zero-based position of the command in the source stream.
    pub index: u64,
    /// The command itself.
    pub command: HostCommand,
    /// Instant the command was admitted past the protocol queue window.
    pub admitted_at: SimTime,
    /// Instant its completion was notified to the host.
    pub completed_at: SimTime,
}

impl CommandRecord {
    /// Host-visible latency of the command (admission to completion).
    pub fn latency(&self) -> SimTime {
        self.completed_at.saturating_sub(self.admitted_at)
    }
}

/// A mid-run sample of the session, as produced by
/// [`SimSession::snapshot`] and delivered to [`Probe::on_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SessionSnapshot {
    /// Simulated instant of the sample (latest host-visible completion).
    pub at: SimTime,
    /// Commands completed so far.
    pub commands_completed: u64,
    /// Commands still waiting in the source stream.
    pub commands_remaining: u64,
    /// Completions currently tracked inside the protocol queue window.
    pub outstanding: usize,
    /// Mean host-visible latency over the commands completed so far.
    pub mean_latency: SimTime,
    /// Host payload bytes moved so far.
    pub bytes: u64,
    /// Per-component utilization over the activity horizon so far.
    pub utilization: UtilizationBreakdown,
}

/// Observer of an in-flight [`SimSession`].
///
/// All methods have empty defaults, so a probe implements only what it
/// cares about. For every run the session guarantees the ordering:
/// [`on_command`](Probe::on_command) fires once per command in stream
/// order, [`on_snapshot`](Probe::on_snapshot) fires between commands at the
/// configured cadence, and [`on_finish`](Probe::on_finish) fires exactly
/// once, last.
pub trait Probe {
    /// Called after each command completes, in stream order.
    fn on_command(&mut self, record: &CommandRecord) {
        let _ = record;
    }

    /// Called with a utilization/latency sample every
    /// [`sample_every`](SimSession::sample_every) commands.
    fn on_snapshot(&mut self, snapshot: &SessionSnapshot) {
        let _ = snapshot;
    }

    /// Called once when the session finishes, with the final report.
    fn on_finish(&mut self, report: &PerfReport) {
        let _ = report;
    }
}

/// A ready-made [`Probe`] that records every [`CommandRecord`] and
/// [`SessionSnapshot`] it observes — convenient for tests and for quick
/// latency-over-time plots.
#[derive(Debug, Clone, Default)]
pub struct CompletionLog {
    records: Vec<CommandRecord>,
    snapshots: Vec<SessionSnapshot>,
    finished: bool,
}

impl CompletionLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        CompletionLog::default()
    }

    /// Creates an empty log with room for `records` command records and
    /// `snapshots` periodic snapshots. With sufficient capacity the log
    /// never allocates while observing a run, preserving the session's
    /// zero-allocations-per-step property (pinned by the
    /// `step_allocations` suite).
    pub fn with_capacity(records: usize, snapshots: usize) -> Self {
        CompletionLog {
            records: Vec::with_capacity(records),
            snapshots: Vec::with_capacity(snapshots),
            finished: false,
        }
    }

    /// Every command completion observed, in stream order.
    pub fn records(&self) -> &[CommandRecord] {
        &self.records
    }

    /// Every periodic snapshot observed, in time order.
    pub fn snapshots(&self) -> &[SessionSnapshot] {
        &self.snapshots
    }

    /// `true` once [`Probe::on_finish`] has fired.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Builds per-command-class latency histograms from the recorded
    /// completions, admitting only records past `warmup` — the post-hoc
    /// equivalent of [`SimSession::steady_state`] for sessions observed
    /// through a log. Never allocates (the histograms are inline arrays).
    pub fn class_histograms(&self, warmup: SteadyStateCutoff) -> ClassHistograms {
        let mut classes = ClassHistograms::new();
        for r in &self.records {
            if warmup.admits(r.index, r.completed_at) {
                classes.record(r.command.op, r.latency());
            }
        }
        classes
    }
}

impl Probe for CompletionLog {
    fn on_command(&mut self, record: &CommandRecord) {
        self.records.push(*record);
    }

    fn on_snapshot(&mut self, snapshot: &SessionSnapshot) {
        self.snapshots.push(*snapshot);
    }

    fn on_finish(&mut self, _report: &PerfReport) {
        self.finished = true;
    }
}

/// An in-flight simulation of one command stream on one [`Ssd`].
///
/// Created by [`Ssd::session`]; drop-in equivalent to the one-shot
/// [`Ssd::simulate`] when driven straight to [`finish`](SimSession::finish)
/// — stepping produces byte-identical reports, which the integration suite
/// asserts. The session holds the per-run pipeline state (protocol window,
/// DRAM back-pressure ledger, WAF carry, latency histogram, optional
/// page-mapped FTL), while the borrowed platform holds the component
/// models.
///
/// # Determinism
///
/// A session is fully deterministic: given the same configuration
/// (including `config.seed`, from which every component RNG stream is
/// forked) and the same command stream, `step`-ing in any granularity —
/// one command at a time, in [`run_until`](Self::run_until) slices, or
/// straight to [`finish`](Self::finish) — produces the same
/// [`CommandRecord`]s and a byte-identical [`PerfReport`]. Neither wall
/// clock nor thread identity ever enters the simulation, which is what lets
/// the [`ParallelExecutor`](crate::ParallelExecutor) run whole sessions on
/// worker threads without changing any result. The full platform-wide
/// contract (seeding rules, per-point derivation, parallel byte-identity)
/// is documented once, on [`Explorer`](crate::Explorer#determinism).
#[must_use = "a session simulates nothing until stepped or finished"]
pub struct SimSession<'a> {
    ssd: &'a mut Ssd,
    label: String,
    mix: WorkloadMix,
    commands: Cow<'a, [HostCommand]>,
    cursor: usize,
    queue_depth: usize,
    buffer_capacity: u64,
    waf: f64,
    compressor: Option<CompressorModel>,
    ftl: Option<PageMappedFtl>,
    window: BinaryHeap<Reverse<SimTime>>,
    in_flight: BinaryHeap<Reverse<(SimTime, u64)>>,
    in_flight_bytes: u64,
    waf_carry: f64,
    latency: LatencyHistogram,
    classes: ClassHistograms,
    steady_state: SteadyStateCutoff,
    total_bytes: u64,
    last_completion: SimTime,
    probes: Vec<&'a mut dyn Probe>,
    sample_every: Option<u64>,
}

impl<'a> SimSession<'a> {
    pub(crate) fn new(
        ssd: &'a mut Ssd,
        label: String,
        commands: Cow<'a, [HostCommand]>,
        mix: WorkloadMix,
    ) -> Self {
        ssd.reset_activity();

        let queue_depth = ssd.config().queue_depth() as usize;
        let page_bytes = ssd.config().nand.geometry.page_size_bytes;
        let waf = ssd.config().waf.waf(mix);
        let buffer_capacity = ssd.config().dram_buffers as u64 * ssd.config().dram_buffer_capacity;
        let compressor = ssd.config().compressor.build();

        // In page-mapped mode an actual FTL is instantiated, sized to cover
        // the logical footprint the command stream touches (plus the
        // configured over-provisioning), and its garbage collection issues
        // real NAND operations that compete with host traffic.
        let ftl: Option<PageMappedFtl> = if ssd.config().ftl_mode == FtlMode::PageMapped {
            let max_end = commands
                .iter()
                .map(|c| c.offset + c.bytes as u64)
                .max()
                .unwrap_or(page_bytes as u64);
            let logical_pages = max_end.div_ceil(page_bytes as u64).max(1);
            let pages_per_block = ssd.config().nand.geometry.pages_per_block as u64;
            let blocks = ((logical_pages as f64 * (1.0 + ssd.config().waf.over_provisioning)
                / pages_per_block as f64)
                .ceil() as u32)
                .max(8)
                + 8;
            Some(
                PageMappedFtl::new(
                    blocks,
                    ssd.config().nand.geometry.pages_per_block,
                    ssd.config().waf.over_provisioning,
                )
                .with_retire_limit(ssd.config().faults.retire_pe_limit),
            )
        } else {
            None
        };

        // Pre-size the per-run queues to their provable high-water marks so
        // `step` never allocates: the protocol window holds at most
        // `queue_depth` completions, and the DRAM back-pressure ledger holds
        // at most one entry per buffered write — bounded by the aggregate
        // buffer capacity divided by the smallest write in the stream
        // (clamped by the command count for short streams).
        let window = BinaryHeap::with_capacity(queue_depth + 1);
        let min_write_bytes = commands
            .iter()
            .filter(|c| c.op == HostOp::Write)
            .map(|c| c.bytes.max(1))
            .min();
        let in_flight_bound = match min_write_bytes {
            Some(bytes) => {
                commands
                    .len()
                    .min((buffer_capacity / bytes as u64 + 2) as usize)
                    + 1
            }
            None => 1, // no writes: the ledger stays empty
        };
        let in_flight = BinaryHeap::with_capacity(in_flight_bound);
        SimSession {
            ssd,
            label,
            mix,
            commands,
            cursor: 0,
            queue_depth,
            buffer_capacity,
            waf,
            compressor,
            ftl,
            window,
            in_flight,
            in_flight_bytes: 0,
            waf_carry: 0.0,
            latency: LatencyHistogram::new(),
            classes: ClassHistograms::new(),
            steady_state: SteadyStateCutoff::None,
            total_bytes: 0,
            last_completion: SimTime::ZERO,
            probes: Vec::new(),
            sample_every: None,
        }
    }

    /// Registers a probe; its callbacks fire for every subsequent step. The
    /// probe outlives the session, so its collected data can be read back
    /// after [`finish`](Self::finish).
    pub fn attach(&mut self, probe: &'a mut dyn Probe) {
        self.probes.push(probe);
    }

    /// Emits a [`SessionSnapshot`] to every probe each `commands` completed
    /// commands (in addition to the per-command records). `0` disables
    /// periodic snapshots again.
    pub fn sample_every(&mut self, commands: u64) {
        self.sample_every = if commands == 0 { None } else { Some(commands) };
    }

    /// Sets the steady-state cutoff for the per-class tail-latency
    /// histograms: completions the cutoff rejects are treated as warmup and
    /// excluded from [`tail_latency`](Self::tail_latency) and the report's
    /// [`class_latency`](crate::PerfReport::class_latency).
    ///
    /// The cutoff never touches the whole-run
    /// [`latency`](crate::PerfReport::latency) histogram, so every
    /// pre-existing report field stays byte-identical regardless of the
    /// configured warmup.
    pub fn steady_state(&mut self, cutoff: SteadyStateCutoff) {
        self.steady_state = cutoff;
    }

    /// The per-command-class steady-state latency histograms recorded so
    /// far (mid-run view of what [`finish`](Self::finish) reports).
    pub fn tail_latency(&self) -> &ClassHistograms {
        &self.classes
    }

    /// Report label of the underlying source.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Workload mix driving the WAF abstraction for this run.
    pub fn mix(&self) -> WorkloadMix {
        self.mix
    }

    /// Latest host-visible completion instant (zero before the first step).
    pub fn now(&self) -> SimTime {
        self.last_completion
    }

    /// Commands completed so far.
    pub fn completed(&self) -> u64 {
        self.cursor as u64
    }

    /// Commands still waiting in the stream.
    pub fn remaining(&self) -> u64 {
        (self.commands.len() - self.cursor) as u64
    }

    /// `true` once every command in the stream has been executed.
    pub fn is_done(&self) -> bool {
        self.cursor >= self.commands.len()
    }

    /// A mid-run sample of latency, queue occupancy and per-component
    /// utilization, computed over the activity horizon so far.
    pub fn snapshot(&self) -> SessionSnapshot {
        let horizon = self.ssd.activity_horizon(self.last_completion);
        SessionSnapshot {
            at: self.last_completion,
            commands_completed: self.cursor as u64,
            commands_remaining: self.remaining(),
            outstanding: self.window.len(),
            mean_latency: self.latency.mean(),
            bytes: self.total_bytes,
            utilization: self.ssd.utilization_snapshot(horizon),
        }
    }

    /// Captures the full simulation state — the platform plus this
    /// session's in-flight state — as a versioned [`Snapshot`].
    ///
    /// A later [`fork`](Self::fork) from the same configuration and
    /// command source resumes exactly where this session stands: the
    /// forked run's remaining steps, completion records and final report
    /// are byte-identical to continuing this session
    /// (`tests/snapshot_equivalence.rs` pins this).
    ///
    /// This is the serialization counterpart of the probe sample
    /// [`snapshot`](Self::snapshot): `snapshot` summarises observable
    /// progress, `capture` serialises resumable state. Attached probes and
    /// the sampling cadence are runtime observers, not simulation state,
    /// and are not captured.
    pub fn capture(&self) -> Snapshot {
        let mut enc = Encoder::new();
        snapshot::encode_header(&mut enc, self.ssd.config());
        self.ssd.encode_state(&mut enc);
        enc.put_bool(true);
        enc.put_u64(self.cursor as u64);
        // Both heaps are serialised in sorted order so that equal states
        // encode to equal bytes regardless of heap-internal layout.
        let mut window: Vec<SimTime> = self.window.iter().map(|r| r.0).collect();
        window.sort_unstable();
        enc.put_len(window.len());
        for t in window {
            enc.put_time(t);
        }
        let mut in_flight: Vec<(SimTime, u64)> = self.in_flight.iter().map(|r| r.0).collect();
        in_flight.sort_unstable();
        enc.put_len(in_flight.len());
        for (flushed_at, bytes) in in_flight {
            enc.put_time(flushed_at);
            enc.put_u64(bytes);
        }
        enc.put_f64(self.waf_carry);
        self.latency.encode_state(&mut enc);
        self.classes.encode_state(&mut enc);
        match self.steady_state {
            SteadyStateCutoff::None => enc.put_u8(0),
            SteadyStateCutoff::Commands(n) => {
                enc.put_u8(1);
                enc.put_u64(n);
            }
            SteadyStateCutoff::SimulatedTime(t) => {
                enc.put_u8(2);
                enc.put_time(t);
            }
        }
        enc.put_u64(self.total_bytes);
        enc.put_time(self.last_completion);
        match &self.ftl {
            Some(f) => {
                enc.put_bool(true);
                f.encode_state(&mut enc);
            }
            None => enc.put_bool(false),
        }
        Snapshot::from_encoder(enc)
    }

    /// Opens a session on `ssd` over `source` and restores it to the state
    /// `snapshot` was captured at, so stepping it continues the captured
    /// run exactly.
    ///
    /// The platform must be built from the same configuration (topology
    /// and seed are checked via the snapshot's platform signature) and
    /// `source` must be the same command source the captured session was
    /// running — the stream itself is re-derived from the source rather
    /// than stored in the image.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the image is malformed or truncated,
    /// was captured from a different topology or seed, lacks session state
    /// (restore those with [`Ssd::restore`]), or disagrees with the
    /// session's derived geometry (cursor past the stream end, FTL
    /// presence mismatch). On error the platform may hold
    /// partially-restored state; fork again or discard it.
    pub fn fork<S: CommandSource + ?Sized>(
        ssd: &'a mut Ssd,
        source: &'a S,
        snapshot: &Snapshot,
    ) -> Result<SimSession<'a>, DecodeError> {
        let mut session = ssd.session(source);
        session.restore_from(snapshot)?;
        Ok(session)
    }

    fn restore_from(&mut self, snap: &Snapshot) -> Result<(), DecodeError> {
        let mut dec = Decoder::new(snap.to_bytes());
        snapshot::decode_header(&mut dec, self.ssd.config())?;
        self.ssd.decode_state(&mut dec)?;
        if !dec.get_bool()? {
            return Err(dec.invalid("snapshot has no session state; restore it with Ssd::restore"));
        }
        let cursor = dec.get_u64()?;
        if cursor > self.commands.len() as u64 {
            return Err(dec.invalid("session cursor past the command stream end"));
        }
        self.cursor = cursor as usize;
        let window_len = dec.get_len()?;
        self.window.clear();
        let mut prev = SimTime::ZERO;
        for _ in 0..window_len {
            let t = dec.get_time()?;
            if t < prev {
                return Err(dec.invalid("protocol-window entries out of order"));
            }
            prev = t;
            self.window.push(Reverse(t));
        }
        let in_flight_len = dec.get_len()?;
        self.in_flight.clear();
        self.in_flight_bytes = 0;
        let mut prev = (SimTime::ZERO, 0u64);
        for _ in 0..in_flight_len {
            let entry = (dec.get_time()?, dec.get_u64()?);
            if entry < prev {
                return Err(dec.invalid("in-flight entries out of order"));
            }
            prev = entry;
            self.in_flight_bytes += entry.1;
            self.in_flight.push(Reverse(entry));
        }
        self.waf_carry = dec.get_f64()?;
        self.latency.decode_state(&mut dec)?;
        self.classes.decode_state(&mut dec)?;
        self.steady_state = match dec.get_u8()? {
            0 => SteadyStateCutoff::None,
            1 => SteadyStateCutoff::Commands(dec.get_u64()?),
            2 => SteadyStateCutoff::SimulatedTime(dec.get_time()?),
            _ => return Err(dec.invalid("steady-state cutoff tag")),
        };
        self.total_bytes = dec.get_u64()?;
        self.last_completion = dec.get_time()?;
        let has_ftl = dec.get_bool()?;
        match (&mut self.ftl, has_ftl) {
            (Some(f), true) => f.decode_state(&mut dec)?,
            (None, false) => {}
            _ => return Err(dec.invalid("FTL presence mismatch")),
        }
        dec.expect_end()
    }

    /// Executes the next command through the full pipeline, returning its
    /// completion record, or `None` when the stream is exhausted.
    pub fn step(&mut self) -> Option<CommandRecord> {
        let cmd = *self.commands.get(self.cursor)?;
        let index = self.cursor as u64;
        self.cursor += 1;

        let (admitted_at, completed_at) = self.execute(&cmd);

        // Deterministic power-loss injection: once the configured number of
        // commands has completed, the FTL's volatile state is dropped
        // mid-garbage-collection and rebuilt by the recovery replay. The
        // trigger is the monotonic command index — already captured by the
        // snapshot cursor — so the fault fires exactly once and identically
        // on warm-started and forked runs.
        if index + 1 == self.ssd.config().faults.power_loss_at {
            self.inject_power_loss(completed_at);
        }

        self.window.push(Reverse(completed_at));
        self.latency
            .record(completed_at.saturating_sub(admitted_at));
        if self.steady_state.admits(index, completed_at) {
            self.classes
                .record(cmd.op, completed_at.saturating_sub(admitted_at));
        }
        if cmd.op != HostOp::Trim {
            self.total_bytes += cmd.bytes as u64;
        }
        self.last_completion = self.last_completion.max(completed_at);

        let record = CommandRecord {
            index,
            command: cmd,
            admitted_at,
            completed_at,
        };
        for probe in &mut self.probes {
            probe.on_command(&record);
        }
        if let Some(every) = self.sample_every {
            if self.cursor as u64 % every == 0 && !self.probes.is_empty() {
                let snapshot = self.snapshot();
                for probe in &mut self.probes {
                    probe.on_snapshot(&snapshot);
                }
            }
        }
        Some(record)
    }

    /// Cuts power mid-garbage-collection and replays the recovery. The
    /// collector is interrupted half-way through a victim block (pages
    /// relocated, erase never issued), the volatile FTL state — mapping
    /// table, free pool, open blocks — is discarded, and everything is
    /// rebuilt from the out-of-band journal. The rebuild is charged to the
    /// firmware CPU as one scan task per recovered block's worth of live
    /// mappings, so the outage shows up in the latency of the commands that
    /// follow. No-op in [`FtlMode::Waf`] mode, where no real mapping exists.
    fn inject_power_loss(&mut self, at: SimTime) {
        let pages_per_block = self.ssd.config().nand.geometry.pages_per_block;
        let Some(f) = self.ftl.as_mut() else {
            return;
        };
        f.interrupt_reclaim((pages_per_block / 2).max(1));
        let live = f.recover_from_power_loss();
        let scan_tasks = 1 + live / pages_per_block.max(1) as u64;
        let mut cursor = at;
        for _ in 0..scan_tasks {
            cursor = self.ssd.cpus[0].execute_command_overhead(cursor).end;
        }
        self.last_completion = self.last_completion.max(cursor);
    }

    /// Steps until the stream is exhausted or the simulated clock
    /// ([`now`](Self::now)) reaches `deadline`, returning the number of
    /// commands executed. Commands are atomic: the command whose completion
    /// crosses the deadline is still executed in full.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        let mut executed = 0;
        while !self.is_done() && self.last_completion < deadline {
            if self.step().is_none() {
                break;
            }
            executed += 1;
        }
        executed
    }

    /// Drains the remaining commands and produces the final report,
    /// notifying every probe's [`Probe::on_finish`].
    pub fn finish(mut self) -> PerfReport {
        while self.step().is_some() {}
        let reported_waf = match &self.ftl {
            Some(f) => f.stats().waf(),
            None => self.waf,
        };
        let latency = std::mem::take(&mut self.latency);
        let report = self.ssd.build_report(
            &self.label,
            self.commands.len() as u64,
            self.total_bytes,
            self.last_completion,
            reported_waf,
            latency,
            self.classes,
        );
        for probe in &mut self.probes {
            probe.on_finish(&report);
        }
        report
    }

    /// Pushes one command through the pipeline, returning its admission and
    /// host-visible completion instants.
    fn execute(&mut self, cmd: &HostCommand) -> (SimTime, SimTime) {
        let page_bytes = self.ssd.config().nand.geometry.page_size_bytes;
        let raw_page_bytes = self.ssd.config().nand.geometry.raw_page_bytes();

        // --- Admission: protocol queue window ----------------------------
        let mut admit = cmd.issue_at;
        if self.window.len() >= self.queue_depth {
            if let Some(Reverse(earliest)) = self.window.pop() {
                admit = admit.max(earliest);
            }
        }

        let completion = match cmd.op {
            HostOp::Write => {
                // --- DRAM-buffer back-pressure ---------------------------
                while self.in_flight_bytes + cmd.bytes as u64 > self.buffer_capacity {
                    match self.in_flight.pop() {
                        Some(Reverse((flushed_at, bytes))) => {
                            admit = admit.max(flushed_at);
                            self.in_flight_bytes -= bytes;
                        }
                        None => break,
                    }
                }

                // --- Host link + DMA into the DRAM buffer ----------------
                let host_payload = match self.compressor {
                    Some(c) if c.placement == CompressorPlacement::HostSide => {
                        c.output_bytes(cmd.bytes)
                    }
                    _ => cmd.bytes,
                };
                let transfer = self.ssd.iface.transfer_time(cmd.bytes);
                let link = self.ssd.host_link.reserve(admit, transfer);
                let host_side_comp_done = match self.compressor {
                    Some(c) if c.placement == CompressorPlacement::HostSide => {
                        link.end + c.compress_time(cmd.bytes)
                    }
                    _ => link.end,
                };
                let buf = (cmd.id % self.ssd.dram.len() as u64) as usize;
                let dram_done = self.ssd.dram[buf]
                    .access(
                        host_side_comp_done,
                        cmd.offset,
                        host_payload,
                        AccessKind::Write,
                    )
                    .end;

                // --- Firmware + descriptor traffic on the AHB -------------
                let core = (cmd.id % self.ssd.cpus.len() as u64) as usize;
                let fw = self.ssd.cpus[core].execute_command_overhead(admit.max(link.start));
                let desc_bytes = 4 * self.ssd.cpus[core].bus_accesses_per_task() * 4;
                let ahb_done = self
                    .ssd
                    .ahb
                    .transfer(fw.start, core as u32, 0, desc_bytes)
                    .end;
                let ready = dram_done.max(fw.end).max(ahb_done);

                // --- Optional channel-side compression --------------------
                let (nand_payload, comp_done) = match self.compressor {
                    Some(c) if c.placement == CompressorPlacement::ChannelSide => (
                        c.output_bytes(host_payload),
                        ready + c.compress_time(host_payload),
                    ),
                    _ => (host_payload, ready),
                };

                // --- Translate into physical NAND programs ----------------
                let mut last_nand = comp_done;
                if let Some(f) = self.ftl.as_mut() {
                    // Actual FTL: map every logical page, and charge the
                    // relocations and erases its garbage collector performs
                    // as real NAND operations.
                    let logical_pages = cmd.bytes.div_ceil(page_bytes).max(1);
                    for i in 0..logical_pages {
                        let lpn = cmd.offset / page_bytes as u64 + i as u64;
                        let (location, relocations, erases) = {
                            let before = f.stats();
                            let location = f.write(lpn).ok();
                            let after = f.stats();
                            (
                                location,
                                after.gc_relocations - before.gc_relocations,
                                after.erases - before.erases,
                            )
                        };
                        let target = match location {
                            Some((blk, page)) => self.ssd.target_for_block(blk, page),
                            None => self.ssd.allocator.next_write(),
                        };
                        let done = self.ssd.program_page_at(comp_done, buf, cmd.offset, target);
                        last_nand = last_nand.max(done);
                        for r in 0..relocations {
                            // A relocation is a page read plus a page
                            // program somewhere else in the array.
                            let src = self.ssd.allocator.locate(lpn.wrapping_add(r + 1));
                            let out = self.ssd.channels[src.channel as usize].execute(
                                comp_done,
                                src.way,
                                src.die,
                                NandOp::Read,
                                src.addr,
                                raw_page_bytes,
                            );
                            let dst = self.ssd.allocator.next_write();
                            let done =
                                self.ssd
                                    .program_page_at(out.complete_at, buf, cmd.offset, dst);
                            last_nand = last_nand.max(done);
                        }
                        for e in 0..erases {
                            let victim = self.ssd.allocator.locate(lpn.wrapping_add(e) ^ 0x5A5A);
                            let done = self.ssd.erase_block_at(comp_done, victim);
                            last_nand = last_nand.max(done);
                        }
                    }
                } else {
                    // WAF abstraction: inflate the physical page count
                    // analytically and stripe the programs across the array.
                    let host_pages = nand_payload.div_ceil(page_bytes).max(1);
                    self.waf_carry += host_pages as f64 * (self.waf - 1.0);
                    let mut phys_pages = host_pages;
                    while self.waf_carry >= 1.0 {
                        phys_pages += 1;
                        self.waf_carry -= 1.0;
                    }
                    for _ in 0..phys_pages {
                        let target = self.ssd.allocator.next_write();
                        let done = self.ssd.program_page_at(comp_done, buf, cmd.offset, target);
                        last_nand = last_nand.max(done);
                    }
                }

                // --- Completion per DRAM-buffer policy --------------------
                self.in_flight.push(Reverse((last_nand, cmd.bytes as u64)));
                self.in_flight_bytes += cmd.bytes as u64;
                match self.ssd.config().cache_policy {
                    CachePolicy::WriteCache => dram_done.max(fw.end),
                    CachePolicy::NoCache => last_nand.max(fw.end),
                }
            }
            HostOp::Read => {
                // --- Firmware + descriptor traffic ------------------------
                let core = (cmd.id % self.ssd.cpus.len() as u64) as usize;
                let fw = self.ssd.cpus[core].execute_command_overhead(admit);
                let desc_bytes = 4 * self.ssd.cpus[core].bus_accesses_per_task() * 4;
                let ahb_done = self
                    .ssd
                    .ahb
                    .transfer(fw.start, core as u32, 0, desc_bytes)
                    .end;
                let ready = fw.end.max(ahb_done);

                // --- Read every page from the array -----------------------
                let pages = cmd.bytes.div_ceil(page_bytes).max(1);
                let first_lpn = cmd.offset / page_bytes as u64;
                let buf = (cmd.id % self.ssd.dram.len() as u64) as usize;
                let mut last_page = ready;
                for p in 0..pages {
                    let lpn = first_lpn + p as u64;
                    let target = match self.ftl.as_ref().and_then(|f| f.lookup(lpn)) {
                        Some((blk, page)) => self.ssd.target_for_block(blk, page),
                        None => self.ssd.allocator.locate(lpn),
                    };
                    let (channel, way, die, addr) =
                        (target.channel, target.way, target.die, target.addr);
                    let out = self.ssd.channels[channel as usize].execute(
                        ready,
                        way,
                        die,
                        NandOp::Read,
                        addr,
                        raw_page_bytes,
                    );
                    let pe = self.ssd.channels[channel as usize]
                        .die(way, die)
                        // ssdx-lint::allow(no-panic-in-hot-path): the
                        // allocator and the channels are built from the
                        // same geometry, so every target it hands out is
                        // in range; a miss means the config was mutated
                        // mid-run.
                        .expect("allocator targets are in range")
                        .block_pe_cycles(addr);
                    let dec_latency =
                        self.ssd
                            .ecc_decode_latency(page_bytes, pe, out.expected_raw_errors);
                    let dec = self.ssd.ecc_decoders[channel as usize]
                        .reserve(out.complete_at, dec_latency);
                    let decomp_done = match self.compressor {
                        Some(c) if c.placement == CompressorPlacement::ChannelSide => {
                            dec.end + c.decompress_time(page_bytes)
                        }
                        _ => dec.end,
                    };
                    let dram_done = self.ssd.dram[buf]
                        .access(decomp_done, cmd.offset, page_bytes, AccessKind::Write)
                        .end;
                    last_page = last_page.max(dram_done);
                }

                // --- Return the data to the host --------------------------
                let host_side_decomp = match self.compressor {
                    Some(c) if c.placement == CompressorPlacement::HostSide => {
                        last_page + c.decompress_time(cmd.bytes)
                    }
                    _ => last_page,
                };
                let transfer = self.ssd.iface.transfer_time(cmd.bytes);
                self.ssd.host_link.reserve(host_side_decomp, transfer).end
            }
            HostOp::Trim => {
                // TRIM only touches the FTL metadata: firmware cost only.
                let core = (cmd.id % self.ssd.cpus.len() as u64) as usize;
                if let Some(ftl) = self.ftl.as_mut() {
                    let lpn = cmd.offset / page_bytes as u64;
                    let _ = ftl.trim(lpn);
                }
                let fw = self.ssd.cpus[core].execute_command_overhead(admit);
                fw.end
            }
        };

        (admit, completion)
    }
}

impl std::fmt::Debug for SimSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSession")
            .field("label", &self.label)
            .field("completed", &self.completed())
            .field("remaining", &self.remaining())
            .field("now", &self.last_completion)
            .field("probes", &self.probes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SsdConfig;
    use ssdx_hostif::{AccessPattern, Workload};

    fn platform() -> Ssd {
        Ssd::try_new(
            SsdConfig::builder("session-test")
                .topology(4, 2, 2)
                .dram_buffers(4)
                .dram_buffer_capacity(256 * 1024)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    fn workload(count: u64) -> Workload {
        Workload::builder(AccessPattern::SequentialWrite)
            .command_count(count)
            .footprint_bytes(16 << 20)
            .build()
    }

    #[test]
    fn stepping_to_completion_matches_one_shot_finish() {
        let w = workload(192);
        let one_shot = platform().simulate(&w);

        let mut ssd = platform();
        let mut session = ssd.session(&w);
        let mut steps = 0;
        while session.step().is_some() {
            steps += 1;
        }
        let stepped = session.finish();
        assert_eq!(steps, 192);
        assert_eq!(format!("{one_shot:?}"), format!("{stepped:?}"));
    }

    #[test]
    fn run_until_stops_at_the_deadline() {
        let w = workload(256);
        let mut ssd = platform();
        let mut session = ssd.session(&w);
        let horizon = SimTime::from_us(300);
        let executed = session.run_until(horizon);
        assert!(executed > 0, "some commands complete within 300 us");
        assert!(!session.is_done(), "256 commands take longer than 300 us");
        assert!(session.now() >= horizon, "the crossing command still runs");
        assert_eq!(session.completed() + session.remaining(), 256);
        // Finishing afterwards is still byte-identical to the one-shot run.
        let report = session.finish();
        assert_eq!(
            format!("{report:?}"),
            format!("{:?}", platform().simulate(&w))
        );
    }

    #[test]
    fn snapshot_tracks_progress_and_utilization() {
        let w = workload(128);
        let mut ssd = platform();
        let mut session = ssd.session(&w);
        let before = session.snapshot();
        assert_eq!(before.commands_completed, 0);
        assert_eq!(before.commands_remaining, 128);
        assert_eq!(before.at, SimTime::ZERO);

        session.run_until(SimTime::from_us(500));
        let during = session.snapshot();
        assert!(during.commands_completed > 0);
        assert!(during.at > SimTime::ZERO);
        assert!(during.outstanding > 0);
        assert!(during.utilization.die > 0.0, "dies are busy mid-run");
        assert!(during.mean_latency > SimTime::ZERO);
    }

    #[test]
    fn probes_observe_every_command_and_periodic_snapshots() {
        let w = workload(96);
        let mut ssd = platform();
        let mut log = CompletionLog::new();
        let mut session = ssd.session(&w);
        session.attach(&mut log);
        session.sample_every(32);
        let report = session.finish();

        assert_eq!(log.records().len(), 96);
        assert!(log.is_finished());
        assert_eq!(log.snapshots().len(), 3, "one snapshot every 32 commands");
        for (i, r) in log.records().iter().enumerate() {
            assert_eq!(r.index, i as u64, "records arrive in stream order");
            assert!(r.completed_at >= r.admitted_at);
            assert_eq!(r.latency(), r.completed_at.saturating_sub(r.admitted_at));
        }
        assert_eq!(report.commands, 96);
    }

    #[test]
    fn sample_every_zero_disables_snapshots() {
        let w = workload(64);
        let mut ssd = platform();
        let mut log = CompletionLog::new();
        let mut session = ssd.session(&w);
        session.attach(&mut log);
        session.sample_every(16);
        session.sample_every(0);
        let _ = session.finish();
        assert!(log.snapshots().is_empty());
        assert_eq!(log.records().len(), 64);
    }

    #[test]
    fn class_histograms_split_reads_writes_and_respect_warmup() {
        use crate::metrics::CommandClass;
        let w = workload(128);
        let mut ssd = platform();
        let mut log = CompletionLog::new();
        let mut session = ssd.session(&w);
        session.attach(&mut log);
        session.steady_state(SteadyStateCutoff::Commands(32));
        assert_eq!(session.tail_latency().count(), 0);
        let report = session.finish();

        // 128 sequential writes, 32 trimmed as warmup.
        let write = report.tail(CommandClass::Write);
        assert_eq!(write.count, 96);
        assert_eq!(report.tail(CommandClass::Read).count, 0);
        assert!(write.p50 <= write.p99 && write.p99 <= write.p999);
        // The legacy whole-run histogram still counts everything.
        assert_eq!(report.latency.count(), 128);

        // A CompletionLog digests the same records to the same histograms.
        let from_log = log.class_histograms(SteadyStateCutoff::Commands(32));
        assert_eq!(from_log, *report.class_latency);
        assert_eq!(
            log.class_histograms(SteadyStateCutoff::None)
                .class(CommandClass::Write)
                .count(),
            128
        );
    }

    #[test]
    fn warmup_cutoff_never_changes_the_report_outside_class_latency() {
        let w = workload(96);
        let plain = platform().simulate(&w);
        let mut ssd = platform();
        let mut session = ssd.session(&w);
        session.steady_state(SteadyStateCutoff::SimulatedTime(SimTime::from_us(200)));
        let trimmed = session.finish();
        // Debug covers exactly the pre-metrics field set (the golden
        // format), so byte-equality here proves the cutoff is invisible to
        // every legacy field.
        assert_eq!(format!("{plain:?}"), format!("{trimmed:?}"));
        assert!(trimmed.class_latency.count() < plain.class_latency.count());
    }

    #[test]
    fn session_debug_names_the_source() {
        let w = workload(8);
        let mut ssd = platform();
        let session = ssd.session(&w);
        let text = format!("{session:?}");
        assert!(text.contains("SW"));
        assert!(text.contains("remaining"));
    }
}
