//! Tail-latency metrics: alloc-free latency histograms, per-command-class
//! aggregation and the tail-latency workload study.
//!
//! Mean throughput — what the paper's figures report — hides exactly the
//! behaviour large fleets are judged on: the p99/p99.9 latency a skewed,
//! bursty workload sees once queues build. This module provides the
//! measurement substrate for those questions:
//!
//! * [`LatencyHistogram`] — a fixed-precision log-bucketed histogram with
//!   **zero heap allocations** (its buckets are one inline array, `Copy`
//!   friendly), supporting `record`/`merge`/`quantile` with a bounded
//!   relative error of [`LatencyHistogram::RELATIVE_ERROR`];
//! * [`CommandClass`] / [`ClassHistograms`] — one histogram per host command
//!   class (read / write / trim);
//! * [`SteadyStateCutoff`] — configurable warmup trimming, so cache-fill
//!   transients do not pollute steady-state percentiles;
//! * [`TailSummary`] — the p50/p95/p99/p99.9 digest every
//!   [`PerfReport`](crate::PerfReport) now carries per class;
//! * [`tail_latency_study`] — an [`Explorer`]-based sweep running the
//!   generative workload suite (zipfian, bursty, mixed block sizes,
//!   read-modify-write) and tabulating per-class percentiles.
//!
//! The per-step recording path is pinned allocation-free by the
//! `alloctrack` suite, and the histogram's quantile error bound is pinned
//! by a property test against exact sorted-vector quantiles
//! (`tests/tail_metrics.rs`).

use crate::config::SsdConfig;
use crate::explorer::{Explorer, Sweep, SweepError};
use serde::Serialize;
use ssdx_hostif::{BurstyWorkload, HostOp, MixedSizeWorkload, RmwWorkload, ZipfianWorkload};
use ssdx_sim::codec::{DecodeError, Decoder, Encoder};
use ssdx_sim::SimTime;
use std::fmt::Write as _;

/// Subdivisions per power-of-two octave (as a bit count): 32 sub-buckets,
/// bounding the quantile relative error at 1/32.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUBS: usize = 1 << SUB_BITS;
/// Octaves covering the full `u64` nanosecond range (values below `SUBS`
/// are stored exactly in octave 0).
const OCTAVES: usize = 64 - SUB_BITS as usize + 1;
/// Total bucket count.
const BUCKETS: usize = OCTAVES * SUBS;

/// An alloc-free, fixed-precision, log-bucketed latency histogram.
///
/// Buckets follow the log-linear scheme of HdrHistogram: each power-of-two
/// octave of nanoseconds is split into 32 linear sub-buckets, so any
/// recorded value is resolved within a relative error of
/// [`RELATIVE_ERROR`](Self::RELATIVE_ERROR) (≈ 3.1 %) across the whole
/// `u64` nanosecond range; values below 32 ns are stored exactly. The
/// bucket array is inline (`Copy`-friendly) — constructing, recording,
/// merging and querying never touch the heap, which is what lets the
/// session hot path record every command without breaking the platform's
/// zero-allocations-per-step property (pinned by the `alloctrack` suite).
///
/// [`quantile`](Self::quantile) returns the upper bound of the bucket
/// containing the requested rank (clamped to the observed maximum), so the
/// returned value is always ≥ the exact quantile and within one bucket's
/// relative error of it — the bound the `tail_metrics` property suite
/// asserts against exact sorted-vector quantiles.
///
/// Not to be confused with the legacy whole-run
/// [`ssdx_sim::stats::LatencyHistogram`] carried in
/// [`PerfReport::latency`](crate::PerfReport::latency): that one keeps the
/// paper-era power-of-two buckets and is part of the golden capture
/// format; *this* type (re-exported as `ssdx_core::LatencyHistogram`) is
/// the steady-state tail-metrics histogram behind
/// [`PerfReport::class_latency`](crate::PerfReport::class_latency).
///
/// # Example
///
/// ```
/// use ssdx_core::LatencyHistogram;
/// use ssdx_sim::SimTime;
///
/// let mut h = LatencyHistogram::new();
/// for us in 1..=1000u64 {
///     h.record(SimTime::from_us(us));
/// }
/// assert_eq!(h.count(), 1000);
/// let p99 = h.quantile(0.99);
/// assert!(p99 >= SimTime::from_us(990) && p99 <= SimTime::from_us(1025));
///
/// // Merging is exact: bucket counts add.
/// let mut other = LatencyHistogram::new();
/// other.record(SimTime::from_us(5000));
/// h.merge(&other);
/// assert_eq!(h.count(), 1001);
/// assert_eq!(h.max(), SimTime::from_us(5000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Serialize)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl LatencyHistogram {
    /// Upper bound on the relative error of [`quantile`](Self::quantile):
    /// one sub-bucket's width relative to its octave, `1/32`.
    pub const RELATIVE_ERROR: f64 = 1.0 / SUBS as f64;

    /// Creates an empty histogram. No heap allocation — the buckets live
    /// inline.
    pub const fn new() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Bucket index for a nanosecond value.
    #[inline]
    fn index(ns: u64) -> usize {
        if ns < SUBS as u64 {
            return ns as usize;
        }
        let exponent = 63 - ns.leading_zeros(); // >= SUB_BITS
        let shift = exponent - SUB_BITS;
        let sub = ((ns >> shift) & (SUBS as u64 - 1)) as usize;
        (exponent - SUB_BITS + 1) as usize * SUBS + sub
    }

    /// Smallest nanosecond value mapping to bucket `i`.
    #[inline]
    fn lower_bound(i: usize) -> u64 {
        let octave = i / SUBS;
        let sub = (i % SUBS) as u64;
        if octave == 0 {
            sub
        } else {
            (SUBS as u64 + sub) << (octave - 1)
        }
    }

    /// Largest nanosecond value mapping to bucket `i`.
    #[inline]
    fn upper_bound(i: usize) -> u64 {
        if i + 1 >= BUCKETS {
            u64::MAX
        } else {
            Self::lower_bound(i + 1) - 1
        }
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, latency: SimTime) {
        let ns = latency.as_ns();
        self.buckets[Self::index(ns)] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded latency, or zero when empty.
    pub fn mean(&self) -> SimTime {
        if self.count == 0 {
            return SimTime::ZERO;
        }
        SimTime::from_ns((self.sum_ns / self.count as u128) as u64)
    }

    /// Smallest recorded latency, or zero when empty.
    pub fn min(&self) -> SimTime {
        if self.count == 0 {
            SimTime::ZERO
        } else {
            SimTime::from_ns(self.min_ns)
        }
    }

    /// Largest recorded latency, or zero when empty.
    pub fn max(&self) -> SimTime {
        SimTime::from_ns(self.max_ns)
    }

    /// Adds every sample of `other` into `self`.
    ///
    /// Merging is exact (bucket counts add), commutative and associative —
    /// merging per-shard histograms in any order yields the same result,
    /// which the `tail_metrics` property suite pins.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Latency at quantile `q` (`0.0..=1.0`), resolved to the upper bound of
    /// the bucket holding that rank and clamped to the observed maximum.
    /// Returns zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `0.0..=1.0`.
    pub fn quantile(&self, q: f64) -> SimTime {
        assert!((0.0..=1.0).contains(&q), "quantile must be in 0..=1");
        if self.count == 0 {
            return SimTime::ZERO;
        }
        let rank = ((q * self.count as f64).ceil().max(1.0)) as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return SimTime::from_ns(Self::upper_bound(i).min(self.max_ns));
            }
        }
        self.max()
    }

    /// Latency at percentile `p` (`0.0..=100.0`); convenience for
    /// [`quantile`](Self::quantile)`(p / 100)`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `0.0..=100.0`.
    pub fn percentile(&self, p: f64) -> SimTime {
        assert!((0.0..=100.0).contains(&p), "percentile must be in 0..=100");
        self.quantile(p / 100.0)
    }

    /// Encodes the histogram, in stable field order: count, nanosecond sum,
    /// min, max, then the bucket array encoded sparsely as the number of
    /// non-zero buckets followed by ascending `(index, count)` pairs — a
    /// steady-state latency distribution touches a few dozen of the 1 920
    /// buckets, so the dense array would be almost all zeros.
    pub fn encode_state(&self, enc: &mut Encoder) {
        enc.put_u64(self.count);
        enc.put_u128(self.sum_ns);
        enc.put_u64(self.min_ns);
        enc.put_u64(self.max_ns);
        let nonzero = self.buckets.iter().filter(|&&b| b != 0).count();
        enc.put_len(nonzero);
        for (i, &b) in self.buckets.iter().enumerate() {
            if b != 0 {
                enc.put_u32(i as u32);
                enc.put_u64(b);
            }
        }
    }

    /// Restores a histogram captured by
    /// [`encode_state`](Self::encode_state), replacing `self` entirely.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input, including
    /// bucket indices that are out of range, out of order, or duplicated.
    pub fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        let mut h = LatencyHistogram::new();
        h.count = dec.get_u64()?;
        h.sum_ns = dec.get_u128()?;
        h.min_ns = dec.get_u64()?;
        h.max_ns = dec.get_u64()?;
        let nonzero = dec.get_len()?;
        if nonzero > BUCKETS {
            return Err(dec.invalid("more non-zero buckets than buckets"));
        }
        let mut prev: Option<u32> = None;
        for _ in 0..nonzero {
            let i = dec.get_u32()?;
            if i as usize >= BUCKETS {
                return Err(dec.invalid("histogram bucket index out of range"));
            }
            if prev.is_some_and(|p| p >= i) {
                return Err(dec.invalid("histogram bucket indices out of order"));
            }
            prev = Some(i);
            h.buckets[i as usize] = dec.get_u64()?;
        }
        *self = h;
        Ok(())
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    /// Compact rendering: the 1 920-entry bucket array is summarised as its
    /// derived statistics instead of dumped raw.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

/// The class of a host command, as aggregated by [`ClassHistograms`].
///
/// # Example
///
/// ```
/// use ssdx_core::CommandClass;
/// use ssdx_hostif::HostOp;
///
/// assert_eq!(CommandClass::from(HostOp::Write), CommandClass::Write);
/// assert_eq!(CommandClass::Read.label(), "read");
/// assert_eq!(CommandClass::ALL.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum CommandClass {
    /// Host reads.
    Read,
    /// Host writes.
    Write,
    /// TRIM / deallocate commands.
    Trim,
}

impl CommandClass {
    /// All classes, in reporting order.
    pub const ALL: [CommandClass; 3] =
        [CommandClass::Read, CommandClass::Write, CommandClass::Trim];

    /// Lower-case label used in tables and JSON ("read"/"write"/"trim").
    pub fn label(self) -> &'static str {
        match self {
            CommandClass::Read => "read",
            CommandClass::Write => "write",
            CommandClass::Trim => "trim",
        }
    }

    #[inline]
    fn slot(self) -> usize {
        match self {
            CommandClass::Read => 0,
            CommandClass::Write => 1,
            CommandClass::Trim => 2,
        }
    }
}

impl From<HostOp> for CommandClass {
    fn from(op: HostOp) -> Self {
        match op {
            HostOp::Read => CommandClass::Read,
            HostOp::Write => CommandClass::Write,
            HostOp::Trim => CommandClass::Trim,
        }
    }
}

/// One [`LatencyHistogram`] per command class (read / write / trim).
///
/// This is what a [`SimSession`](crate::SimSession) records during a run
/// (post-warmup, see [`SteadyStateCutoff`]) and what every
/// [`PerfReport`](crate::PerfReport) carries as
/// [`class_latency`](crate::PerfReport::class_latency). Like the underlying
/// histograms it never allocates.
///
/// # Example
///
/// ```
/// use ssdx_core::{ClassHistograms, CommandClass};
/// use ssdx_hostif::HostOp;
/// use ssdx_sim::SimTime;
///
/// let mut classes = ClassHistograms::new();
/// classes.record(HostOp::Read, SimTime::from_us(80));
/// classes.record(HostOp::Write, SimTime::from_us(250));
/// assert_eq!(classes.class(CommandClass::Read).count(), 1);
/// assert_eq!(classes.total().count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct ClassHistograms {
    classes: [LatencyHistogram; 3],
}

impl ClassHistograms {
    /// Creates empty per-class histograms.
    pub const fn new() -> Self {
        ClassHistograms {
            classes: [LatencyHistogram::new(); 3],
        }
    }

    /// Records one sample into the class of `op`.
    #[inline]
    pub fn record(&mut self, op: HostOp, latency: SimTime) {
        self.classes[CommandClass::from(op).slot()].record(latency);
    }

    /// The histogram of one class.
    pub fn class(&self, class: CommandClass) -> &LatencyHistogram {
        &self.classes[class.slot()]
    }

    /// Total samples across all classes.
    pub fn count(&self) -> u64 {
        self.classes.iter().map(LatencyHistogram::count).sum()
    }

    /// All classes merged into one histogram.
    pub fn total(&self) -> LatencyHistogram {
        let mut total = LatencyHistogram::new();
        for h in &self.classes {
            total.merge(h);
        }
        total
    }

    /// Merges every class of `other` into `self` (exact, order
    /// independent).
    pub fn merge(&mut self, other: &ClassHistograms) {
        for (mine, theirs) in self.classes.iter_mut().zip(other.classes.iter()) {
            mine.merge(theirs);
        }
    }

    /// One [`TailSummary`] per class, in [`CommandClass::ALL`] order.
    pub fn summaries(&self) -> [TailSummary; 3] {
        CommandClass::ALL.map(|class| TailSummary::from_histogram(class, self.class(class)))
    }

    /// Encodes every class histogram in [`CommandClass::ALL`] order.
    pub fn encode_state(&self, enc: &mut Encoder) {
        for h in &self.classes {
            h.encode_state(enc);
        }
    }

    /// Restores state captured by [`encode_state`](Self::encode_state).
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    pub fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        for h in &mut self.classes {
            h.decode_state(dec)?;
        }
        Ok(())
    }
}

impl Default for ClassHistograms {
    fn default() -> Self {
        Self::new()
    }
}

/// Warmup trimming for steady-state tail metrics: which completions a
/// session's per-class histograms admit.
///
/// The transient while caches fill and queues ramp up is not what a fleet's
/// p99 means; trimming it is standard benchmarking practice (and what the
/// `experiments -- tails` driver does). The cutoff never affects the legacy
/// whole-run [`PerfReport::latency`](crate::PerfReport::latency) histogram,
/// so existing report fields stay byte-identical.
///
/// # Example
///
/// ```
/// use ssdx_core::SteadyStateCutoff;
/// use ssdx_sim::SimTime;
///
/// // Skip the first 100 completions.
/// let by_count = SteadyStateCutoff::Commands(100);
/// assert!(!by_count.admits(99, SimTime::ZERO));
/// assert!(by_count.admits(100, SimTime::ZERO));
///
/// // Skip everything completing before 1 ms of simulated time.
/// let by_time = SteadyStateCutoff::SimulatedTime(SimTime::from_ms(1));
/// assert!(by_time.admits(0, SimTime::from_ms(2)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub enum SteadyStateCutoff {
    /// No trimming: every completion is recorded (the default).
    #[default]
    None,
    /// Skip the first `n` commands of the stream (by stream index).
    Commands(u64),
    /// Skip completions whose host-visible completion instant is earlier
    /// than the given simulated time.
    SimulatedTime(SimTime),
}

impl SteadyStateCutoff {
    /// `true` if a completion with the given stream index and completion
    /// instant belongs to the steady state.
    #[inline]
    pub fn admits(&self, index: u64, completed_at: SimTime) -> bool {
        match *self {
            SteadyStateCutoff::None => true,
            SteadyStateCutoff::Commands(n) => index >= n,
            SteadyStateCutoff::SimulatedTime(t) => completed_at >= t,
        }
    }
}

/// The percentile digest of one command class: what `experiments -- tails`
/// prints and what dashboards would ingest.
///
/// # Example
///
/// ```
/// use ssdx_core::{CommandClass, LatencyHistogram, TailSummary};
/// use ssdx_sim::SimTime;
///
/// let mut h = LatencyHistogram::new();
/// for us in 1..=100u64 {
///     h.record(SimTime::from_us(us));
/// }
/// let tail = TailSummary::from_histogram(CommandClass::Read, &h);
/// assert_eq!(tail.count, 100);
/// assert!(tail.p50 <= tail.p95 && tail.p95 <= tail.p99 && tail.p99 <= tail.p999);
/// assert!(tail.p999 <= tail.max);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TailSummary {
    /// The command class summarised.
    pub class: CommandClass,
    /// Samples in the class (post-warmup).
    pub count: u64,
    /// Mean latency.
    pub mean: SimTime,
    /// Median latency.
    pub p50: SimTime,
    /// 95th-percentile latency.
    pub p95: SimTime,
    /// 99th-percentile latency.
    pub p99: SimTime,
    /// 99.9th-percentile latency.
    pub p999: SimTime,
    /// Largest observed latency.
    pub max: SimTime,
}

impl TailSummary {
    /// Digests one class histogram into its headline percentiles.
    pub fn from_histogram(class: CommandClass, h: &LatencyHistogram) -> Self {
        TailSummary {
            class,
            count: h.count(),
            mean: h.mean(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
            max: h.max(),
        }
    }
}

/// The result of a [`tail_latency_study`]: one sweep point per workload
/// (the "workload" axis), each carrying a full
/// [`PerfReport`](crate::PerfReport) with per-class histograms.
///
/// # Example
///
/// ```no_run
/// use ssdx_core::{metrics, SsdConfig, SteadyStateCutoff};
///
/// let study = metrics::tail_latency_study(
///     &SsdConfig::default(),
///     2_048,
///     SteadyStateCutoff::Commands(256),
/// )?;
/// println!("{}", study.to_table());
/// # Ok::<(), ssdx_core::SweepError>(())
/// ```
#[must_use = "a tail study carries the measured percentiles"]
#[derive(Debug, Clone, Serialize)]
pub struct TailStudy {
    /// The underlying sweep, one point per workload.
    pub sweep: Sweep,
}

impl TailStudy {
    /// Formats the study as an aligned percentile table (all times in
    /// microseconds): one row per workload × command class (classes with
    /// no samples are skipped).
    ///
    /// Rendered through one shared `fmt::Write` buffer — no per-cell
    /// `String` allocations; the exact rendering is pinned by a unit test.
    pub fn to_table(&self) -> String {
        let mut out = String::with_capacity(128 + self.sweep.points.len() * 256);
        let _ = writeln!(
            out,
            "{:<22} {:<6} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "workload", "class", "count", "mean(us)", "p50(us)", "p95(us)", "p99(us)", "p99.9(us)"
        );
        for point in &self.sweep.points {
            let workload = point.value("workload").unwrap_or(&point.report.workload);
            for tail in point.report.tails() {
                if tail.count == 0 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "{:<22} {:<6} {:>8} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                    workload,
                    tail.class.label(),
                    tail.count,
                    tail.mean.as_us_f64(),
                    tail.p50.as_us_f64(),
                    tail.p95.as_us_f64(),
                    tail.p99.as_us_f64(),
                    tail.p999.as_us_f64(),
                );
            }
        }
        out
    }

    /// Machine-readable JSON emission (hand rolled — the vendored serde is
    /// a marker), mirroring `experiments -- tails --json`. Workload labels
    /// are caller-chosen strings and are JSON-escaped.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.sweep.points.len() * 512);
        out.push_str("{\n  \"schema\": \"ssdx-tail-latency/v1\",\n  \"workloads\": [\n");
        for (wi, point) in self.sweep.points.iter().enumerate() {
            let workload = point.value("workload").unwrap_or(&point.report.workload);
            let _ = writeln!(out, "    {{");
            out.push_str("      \"workload\": \"");
            push_json_escaped(&mut out, workload);
            out.push_str("\",\n");
            let _ = writeln!(out, "      \"classes\": [");
            let tails: Vec<TailSummary> = point
                .report
                .tails()
                .into_iter()
                .filter(|t| t.count > 0)
                .collect();
            for (ci, tail) in tails.iter().enumerate() {
                let _ = write!(
                    out,
                    "        {{\"class\": \"{}\", \"count\": {}, \"mean_ns\": {}, \
                     \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
                     \"max_ns\": {}}}",
                    tail.class.label(),
                    tail.count,
                    tail.mean.as_ns(),
                    tail.p50.as_ns(),
                    tail.p95.as_ns(),
                    tail.p99.as_ns(),
                    tail.p999.as_ns(),
                    tail.max.as_ns(),
                );
                out.push_str(if ci + 1 < tails.len() { ",\n" } else { "\n" });
            }
            let _ = writeln!(out, "      ]");
            out.push_str("    }");
            out.push_str(if wi + 1 < self.sweep.points.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes and
/// control characters) — labels are caller-chosen and must not be able to
/// break the emitted document. Shared with the fault campaign's JSON
/// emission ([`crate::faults::FaultStudy::to_json`]).
pub(crate) fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Runs the generative workload suite — zipfian-skewed, bursty on/off,
/// mixed block sizes and read-modify-write — on `base`, reporting
/// steady-state per-class tail latencies for each workload.
///
/// The workloads fan out as a "workload" axis through
/// [`Explorer::run_workloads`]; each point's report carries the full
/// per-class histograms, digested by [`TailStudy::to_table`]. All four
/// sources are seeded from `base.seed`, so the study is fully
/// deterministic: same configuration, same table, byte for byte.
///
/// # Errors
///
/// Returns [`SweepError::InvalidPoint`] if `base` does not validate.
pub fn tail_latency_study(
    base: &SsdConfig,
    commands_per_workload: u64,
    warmup: SteadyStateCutoff,
) -> Result<TailStudy, SweepError> {
    tail_study_impl(base, commands_per_workload, warmup, SteadyStateCutoff::None)
}

/// [`tail_latency_study`] with warm-start execution: each workload's
/// warmup prefix (the `warmup` cutoff) is simulated once, captured as a
/// [`Snapshot`](crate::Snapshot), and every run of that workload's
/// platform forks from the image ([`Explorer::warm_start`]). The study is
/// **byte-identical** to the cold [`tail_latency_study`] — same table,
/// same JSON — which `experiments -- tails --warm-start` and the
/// warm-start equivalence suite both assert.
///
/// # Errors
///
/// Returns [`SweepError::InvalidPoint`] if `base` does not validate.
pub fn tail_latency_study_warm(
    base: &SsdConfig,
    commands_per_workload: u64,
    warmup: SteadyStateCutoff,
) -> Result<TailStudy, SweepError> {
    tail_study_impl(base, commands_per_workload, warmup, warmup)
}

fn tail_study_impl(
    base: &SsdConfig,
    commands_per_workload: u64,
    warmup: SteadyStateCutoff,
    warm_start: SteadyStateCutoff,
) -> Result<TailStudy, SweepError> {
    let footprint = 256 << 20;
    let zipf = ZipfianWorkload::new(0.99, base.seed)
        .command_count(commands_per_workload)
        .footprint_bytes(footprint)
        .read_fraction(0.7);
    let bursty = BurstyWorkload::new(base.seed)
        .command_count(commands_per_workload)
        .footprint_bytes(footprint)
        .burst(64, SimTime::from_us(2), SimTime::from_ms(1))
        .read_fraction(0.5);
    let mixed = MixedSizeWorkload::new([(4096, 6), (16 << 10, 3), (128 << 10, 1)], base.seed)
        .command_count(commands_per_workload)
        .footprint_bytes(footprint)
        .read_fraction(0.5);
    let rmw = RmwWorkload::new(base.seed)
        .updates(commands_per_workload / 2)
        .footprint_bytes(footprint);

    let explorer = Explorer::new(base.clone())
        .steady_state(warmup)
        .warm_start(warm_start);
    let sweep = explorer.run_workloads(&[&zipf, &bursty, &mixed, &rmw])?;
    Ok(TailStudy { sweep })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for ns in 0..32u64 {
            h.record(SimTime::from_ns(ns));
        }
        // Every value below SUBS lands in its own bucket: the 50 % quantile
        // of 0..=31 is exactly 15 (rank 16).
        assert_eq!(h.quantile(0.5), SimTime::from_ns(15));
        assert_eq!(h.min(), SimTime::ZERO);
        assert_eq!(h.max(), SimTime::from_ns(31));
    }

    #[test]
    fn bucket_bounds_tile_the_axis() {
        // lower_bound(i + 1) == upper_bound(i) + 1 everywhere, and index()
        // maps both bounds of every bucket back to it.
        for i in 0..BUCKETS - 1 {
            assert_eq!(
                LatencyHistogram::lower_bound(i + 1),
                LatencyHistogram::upper_bound(i) + 1,
                "bucket {i}"
            );
            assert_eq!(LatencyHistogram::index(LatencyHistogram::lower_bound(i)), i);
            assert_eq!(LatencyHistogram::index(LatencyHistogram::upper_bound(i)), i);
        }
        assert_eq!(LatencyHistogram::index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantile_is_monotone_and_bounded() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(SimTime::from_ns(i * 37));
        }
        let qs = [0.0, 0.5, 0.9, 0.99, 0.999, 1.0];
        for pair in qs.windows(2) {
            assert!(h.quantile(pair[0]) <= h.quantile(pair[1]));
        }
        assert_eq!(h.quantile(1.0), h.max());
        assert_eq!(h.percentile(99.9), h.quantile(0.999));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimTime::ZERO);
        assert_eq!(h.min(), SimTime::ZERO);
        assert_eq!(h.max(), SimTime::ZERO);
        assert_eq!(h.quantile(0.99), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn quantile_rejects_out_of_range() {
        let _ = LatencyHistogram::new().quantile(1.5);
    }

    #[test]
    fn merge_matches_recording_into_one() {
        let samples_a = [10u64, 500, 80_000, 3];
        let samples_b = [7u64, 7, 1_000_000_000];
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for &ns in &samples_a {
            a.record(SimTime::from_ns(ns));
            all.record(SimTime::from_ns(ns));
        }
        for &ns in &samples_b {
            b.record(SimTime::from_ns(ns));
            all.record(SimTime::from_ns(ns));
        }
        a.merge(&b);
        assert_eq!(a, all);
        // Merging an empty histogram is the identity.
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, all);
    }

    #[test]
    fn class_histograms_split_by_op() {
        let mut classes = ClassHistograms::new();
        classes.record(HostOp::Read, SimTime::from_us(10));
        classes.record(HostOp::Read, SimTime::from_us(20));
        classes.record(HostOp::Write, SimTime::from_us(100));
        classes.record(HostOp::Trim, SimTime::from_ns(500));
        assert_eq!(classes.class(CommandClass::Read).count(), 2);
        assert_eq!(classes.class(CommandClass::Write).count(), 1);
        assert_eq!(classes.class(CommandClass::Trim).count(), 1);
        assert_eq!(classes.count(), 4);
        assert_eq!(classes.total().count(), 4);
        let summaries = classes.summaries();
        assert_eq!(summaries[0].class, CommandClass::Read);
        assert_eq!(summaries[0].count, 2);
        assert_eq!(summaries[2].count, 1);
    }

    #[test]
    fn cutoff_admits_by_index_and_time() {
        assert!(SteadyStateCutoff::None.admits(0, SimTime::ZERO));
        let by_count = SteadyStateCutoff::Commands(8);
        assert!(!by_count.admits(7, SimTime::MAX));
        assert!(by_count.admits(8, SimTime::ZERO));
        let by_time = SteadyStateCutoff::SimulatedTime(SimTime::from_us(5));
        assert!(!by_time.admits(u64::MAX, SimTime::from_us(4)));
        assert!(by_time.admits(0, SimTime::from_us(5)));
        assert_eq!(SteadyStateCutoff::default(), SteadyStateCutoff::None);
    }

    #[test]
    fn debug_rendering_is_compact() {
        let mut h = LatencyHistogram::new();
        h.record(SimTime::from_us(3));
        let text = format!("{h:?}");
        assert!(text.contains("count: 1"), "{text}");
        assert!(
            !text.contains('['),
            "bucket array must not be dumped: {text}"
        );
    }

    #[test]
    fn json_escapes_caller_chosen_labels() {
        let mut out = String::new();
        push_json_escaped(&mut out, "8\"-drive \\ tab:\there");
        assert_eq!(out, "8\\\"-drive \\\\ tab:\\u0009here");
    }

    #[test]
    fn tail_table_rendering_is_pinned() {
        use crate::explorer::{AxisValue, SweepPoint};
        use crate::report::{PerfReport, UtilizationBreakdown};
        use ssdx_sim::stats::LatencyHistogram as LegacyHistogram;

        let mut classes = ClassHistograms::new();
        for us in [100u64, 200, 300, 400] {
            classes.record(HostOp::Read, SimTime::from_us(us));
        }
        classes.record(HostOp::Write, SimTime::from_us(1000));
        let report = PerfReport {
            config_name: "C1".to_string(),
            architecture: "arch".to_string(),
            workload: "zipf-0.99".to_string(),
            policy: "cache".to_string(),
            commands: 5,
            bytes: 20_480,
            elapsed: SimTime::from_ms(1),
            throughput_mbps: 20.48,
            iops: 5_000.0,
            waf: 1.0,
            nand_page_programs: 2,
            nand_page_reads: 8,
            latency: LegacyHistogram::new(),
            utilization: UtilizationBreakdown::default(),
            class_latency: Box::new(classes),
        };
        let study = TailStudy {
            sweep: Sweep {
                axes: vec!["workload".to_string()],
                points: vec![SweepPoint {
                    coordinates: vec![AxisValue {
                        axis: "workload".to_string(),
                        value: "zipf-0.99".to_string(),
                    }],
                    report,
                }],
            },
        };
        // The trim row is skipped (no samples); the quantiles resolve to
        // bucket upper bounds clamped to the observed maxima.
        // p50 of [100, 200, 300, 400] us is the 200 us sample, resolved to
        // its bucket's upper bound (200 703 ns ≈ 200.7 us); the
        // p95/p99/p99.9 ranks all land on the 400 us sample, clamped to the
        // observed maximum.
        let expected = "\
workload               class     count   mean(us)    p50(us)    p95(us)    p99(us)  p99.9(us)\n\
zipf-0.99              read          4      250.0      200.7      400.0      400.0      400.0\n\
zipf-0.99              write         1     1000.0     1000.0     1000.0     1000.0     1000.0\n";
        assert_eq!(study.to_table(), expected);
        let json = study.to_json();
        assert!(
            json.contains("\"schema\": \"ssdx-tail-latency/v1\""),
            "{json}"
        );
        assert!(json.contains("\"class\": \"write\""), "{json}");
        assert!(!json.contains("\"class\": \"trim\""), "{json}");
    }
}
