//! Physical page layout: striping of host data across channels, ways and
//! dies.
//!
//! The channel/way/die interleaving is the main source of internal
//! parallelism in an SSD and therefore one of the central objects of the
//! paper's design-space exploration. The allocator implemented here stripes
//! consecutive physical page writes channel-first (the channel is the
//! fastest-rotating dimension), then across ways, then across dies — the
//! layout that maximises the number of independent ONFI buses touched by a
//! sequential stream. Reads use the same deterministic mapping so that a
//! logical page always lands on the same die.

use crate::config::SsdConfig;
use ssdx_nand::{NandGeometry, PageAddr};
use ssdx_sim::codec::{DecodeError, Decoder, Encoder};

/// A physical target for one page operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PageTarget {
    /// Channel index.
    pub channel: u32,
    /// Way index inside the channel.
    pub way: u32,
    /// Die index inside the way.
    pub die: u32,
    /// Page address inside the die.
    pub addr: PageAddr,
}

/// Round-robin page allocator with per-die write cursors.
#[derive(Debug, Clone)]
pub struct PageAllocator {
    channels: u32,
    ways: u32,
    dies_per_way: u32,
    geometry: NandGeometry,
    next_die: u64,
    cursors: Vec<u64>,
}

impl PageAllocator {
    /// Creates an allocator for the given configuration.
    pub fn new(config: &SsdConfig) -> Self {
        let total = config.total_dies() as usize;
        PageAllocator {
            channels: config.channels,
            ways: config.ways,
            dies_per_way: config.dies_per_way,
            geometry: config.nand.geometry,
            next_die: 0,
            cursors: vec![0; total],
        }
    }

    /// Total number of dies managed.
    pub fn total_dies(&self) -> u32 {
        self.channels * self.ways * self.dies_per_way
    }

    fn die_coordinates(&self, die_index: u64) -> (u32, u32, u32) {
        let channel = (die_index % self.channels as u64) as u32;
        let way = ((die_index / self.channels as u64) % self.ways as u64) as u32;
        let die = ((die_index / (self.channels as u64 * self.ways as u64))
            % self.dies_per_way as u64) as u32;
        (channel, way, die)
    }

    fn addr_for_cursor(&self, cursor: u64) -> PageAddr {
        let pages_per_block = self.geometry.pages_per_block as u64;
        let blocks_per_plane = self.geometry.blocks_per_plane as u64;
        let planes = self.geometry.planes_per_die as u64;
        let page = (cursor % pages_per_block) as u32;
        let block_linear = cursor / pages_per_block;
        let plane = (block_linear % planes) as u32;
        let block = ((block_linear / planes) % blocks_per_plane) as u32;
        PageAddr { plane, block, page }
    }

    /// Returns the target of the next physical page write, advancing the
    /// stripe.
    pub fn next_write(&mut self) -> PageTarget {
        let die_index = self.next_die % self.total_dies() as u64;
        self.next_die += 1;
        let (channel, way, die) = self.die_coordinates(die_index);
        let cursor = self.cursors[die_index as usize];
        self.cursors[die_index as usize] = cursor.wrapping_add(1);
        PageTarget {
            channel,
            way,
            die,
            addr: self.addr_for_cursor(cursor % self.geometry.pages_per_die()),
        }
    }

    /// Deterministic location of logical page `lpn`: the same channel-first
    /// striping used by writes, so sequential reads fan out across channels
    /// exactly like sequential writes did.
    pub fn locate(&self, lpn: u64) -> PageTarget {
        let die_index = lpn % self.total_dies() as u64;
        let (channel, way, die) = self.die_coordinates(die_index);
        let cursor = (lpn / self.total_dies() as u64) % self.geometry.pages_per_die();
        PageTarget {
            channel,
            way,
            die,
            addr: self.addr_for_cursor(cursor),
        }
    }

    /// Resets the write stripe to the beginning.
    pub fn reset(&mut self) {
        self.next_die = 0;
        for c in &mut self.cursors {
            *c = 0;
        }
    }

    /// Encodes the allocator's mutable state, in stable field order: the
    /// next-die rotation counter, then the per-die write cursors
    /// (construction-fixed count, no length prefix). The topology and
    /// geometry are construction parameters, not snapshot state.
    pub fn encode_state(&self, enc: &mut Encoder) {
        enc.put_u64(self.next_die);
        for &c in &self.cursors {
            enc.put_u64(c);
        }
    }

    /// Restores state captured by [`encode_state`](Self::encode_state) onto
    /// an allocator constructed for the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    pub fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        self.next_die = dec.get_u64()?;
        for c in &mut self.cursors {
            *c = dec.get_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SsdConfig;

    fn allocator(channels: u32, ways: u32, dies: u32) -> PageAllocator {
        let cfg = SsdConfig::builder("alloc-test")
            .topology(channels, ways, dies)
            .build()
            .unwrap();
        PageAllocator::new(&cfg)
    }

    #[test]
    fn consecutive_writes_rotate_channels_first() {
        let mut a = allocator(4, 2, 2);
        let targets: Vec<PageTarget> = (0..8).map(|_| a.next_write()).collect();
        let channels: Vec<u32> = targets.iter().map(|t| t.channel).collect();
        assert_eq!(channels, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // After all channels, the way advances.
        assert_eq!(targets[0].way, 0);
        assert_eq!(targets[4].way, 1);
    }

    #[test]
    fn all_dies_are_used_before_reusing_one() {
        let mut a = allocator(4, 4, 2);
        let total = a.total_dies() as usize;
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..total {
            let t = a.next_write();
            assert!(seen.insert((t.channel, t.way, t.die)));
        }
        assert_eq!(seen.len(), total);
    }

    #[test]
    fn per_die_cursor_advances_pages_within_a_block() {
        let mut a = allocator(1, 1, 1);
        let first = a.next_write();
        let second = a.next_write();
        assert_eq!(first.addr.page, 0);
        assert_eq!(second.addr.page, 1);
        assert_eq!(first.addr.block, second.addr.block);
    }

    #[test]
    fn addresses_always_fit_the_geometry() {
        let mut a = allocator(2, 2, 2);
        let geo = NandGeometry::mlc_2kb();
        for _ in 0..10_000 {
            let t = a.next_write();
            assert!(t.addr.validate(&geo).is_ok());
        }
    }

    #[test]
    fn locate_is_deterministic_and_in_range() {
        let a = allocator(8, 4, 2);
        let geo = NandGeometry::mlc_2kb();
        for lpn in [0u64, 1, 7, 63, 64, 1_000_000, u32::MAX as u64] {
            let t1 = a.locate(lpn);
            let t2 = a.locate(lpn);
            assert_eq!(t1, t2);
            assert!(t1.channel < 8 && t1.way < 4 && t1.die < 2);
            assert!(t1.addr.validate(&geo).is_ok());
        }
    }

    #[test]
    fn sequential_lpns_fan_out_across_channels() {
        let a = allocator(8, 2, 2);
        let channels: Vec<u32> = (0..8).map(|lpn| a.locate(lpn).channel).collect();
        assert_eq!(channels, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn reset_restarts_the_stripe() {
        let mut a = allocator(2, 2, 1);
        let first = a.next_write();
        a.next_write();
        a.reset();
        assert_eq!(a.next_write(), first);
    }
}
