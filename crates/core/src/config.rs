//! SSD platform configuration.
//!
//! The paper stresses that SSDExplorer exposes a *high degree of platform
//! parameterization*: the number of channels, ways, dies and DRAM buffers,
//! the host interface, the ECC scheme, the compressor placement and the
//! DRAM-buffer management policy are all knobs of a single configuration
//! object, editable through a simple text configuration file. This module
//! provides that object ([`SsdConfig`]), a builder, validation, and the text
//! round-trip.

use serde::{Deserialize, Serialize};
use ssdx_channel::GangMode;
use ssdx_compress::{CompressorModel, CompressorPlacement};
use ssdx_cpu::FirmwareProfile;
use ssdx_dram::DdrTimings;
use ssdx_ecc::EccScheme;
use ssdx_ftl::WafModel;
use ssdx_hostif::{HostInterface, NvmeInterface, PcieGen, SataInterface};
use ssdx_nand::{MlcTimingProfile, NandConfig, NandGeometry, OnfiSpeed, WearModel};
use std::fmt;

/// DRAM-buffer management policy (the paper's "caching" vs "no caching").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CachePolicy {
    /// The controller notifies command completion as soon as the data has
    /// been moved from the host interface into the DRAM buffers.
    WriteCache,
    /// Completion is notified only when all data has actually been written
    /// to the NAND flash memory.
    NoCache,
}

impl CachePolicy {
    /// Short label used in reports ("cache" / "no cache").
    pub fn label(self) -> &'static str {
        match self {
            CachePolicy::WriteCache => "cache",
            CachePolicy::NoCache => "no cache",
        }
    }
}

/// Host interface selection, serialisable form of the hostif crate models.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostInterfaceConfig {
    /// SATA II, 3 Gb/s, NCQ depth 32.
    #[default]
    Sata2,
    /// SATA III, 6 Gb/s, NCQ depth 32.
    Sata3,
    /// PCI Express + NVMe with the given generation and lane count.
    NvmePcie {
        /// PCIe generation (1–3).
        gen: u8,
        /// Lane count.
        lanes: u32,
    },
}

impl HostInterfaceConfig {
    /// The PCIe Gen2 x8 NVMe link of the paper's Fig. 4.
    pub fn nvme_gen2_x8() -> Self {
        HostInterfaceConfig::NvmePcie { gen: 2, lanes: 8 }
    }

    /// Instantiates the concrete interface model.
    pub fn build(&self) -> Box<dyn HostInterface> {
        match *self {
            HostInterfaceConfig::Sata2 => Box::new(SataInterface::sata2()),
            HostInterfaceConfig::Sata3 => Box::new(SataInterface::sata3()),
            HostInterfaceConfig::NvmePcie { gen, lanes } => {
                let gen = match gen {
                    1 => PcieGen::Gen1,
                    2 => PcieGen::Gen2,
                    _ => PcieGen::Gen3,
                };
                Box::new(NvmeInterface::new(gen, lanes.max(1)))
            }
        }
    }

    /// Short name used in the text configuration format.
    pub fn name(&self) -> String {
        match self {
            HostInterfaceConfig::Sata2 => "sata2".to_string(),
            HostInterfaceConfig::Sata3 => "sata3".to_string(),
            HostInterfaceConfig::NvmePcie { gen, lanes } => format!("nvme-gen{gen}-x{lanes}"),
        }
    }
}

/// How the flash translation layer is accounted for during simulation.
///
/// The paper supports both: the WAF abstraction for fast fine-grained design
/// space exploration (the validated instance), and an actual FTL executed by
/// the platform for later refinement steps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FtlMode {
    /// The greedy-policy Write Amplification Factor abstraction: host writes
    /// are inflated analytically, no mapping tables are maintained.
    #[default]
    WafAbstraction,
    /// A real page-mapped FTL (mapping table, greedy garbage collection,
    /// dynamic wear leveling) runs inside the simulation; garbage-collection
    /// relocations and erases are issued to the NAND array as real
    /// operations and compete for the same resources as host traffic.
    PageMapped,
}

/// Compressor placement selection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompressorConfig {
    /// No compressor instantiated.
    #[default]
    None,
    /// GZIP engine between host interface and DRAM buffers.
    HostSide,
    /// GZIP engine between DRAM buffers and channel controllers.
    ChannelSide,
}

impl CompressorConfig {
    /// Instantiates the compressor model, if any.
    pub fn build(&self) -> Option<CompressorModel> {
        match self {
            CompressorConfig::None => None,
            CompressorConfig::HostSide => Some(CompressorModel::hardware_gzip(
                CompressorPlacement::HostSide,
            )),
            CompressorConfig::ChannelSide => Some(CompressorModel::hardware_gzip(
                CompressorPlacement::ChannelSide,
            )),
        }
    }
}

/// Degraded-device fault injection knobs.
///
/// All knobs default to "healthy device"; each one is an independent fault
/// source that the reliability campaign sweeps as an [`crate::Explorer`]
/// axis. They are construction parameters of the platform — none of them is
/// snapshot state, so enabling them changes neither the snapshot byte layout
/// nor the platform signature, and forked runs inherit them through the
/// configuration they were built with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Expected extra raw bit errors a page read accumulates per prior read
    /// of its block (read-disturb). `0.0` disables the mechanism.
    pub read_disturb_per_read: f64,
    /// Multiplier on the wear-model RBER modelling retention loss (`1.0` is
    /// nominal; larger values model long power-off intervals at
    /// temperature).
    pub retention_scale: f64,
    /// P/E-cycle budget after which an erased block is retired instead of
    /// returning to the free pool (page-mapped FTL only). `u64::MAX`
    /// disables retirement.
    pub retire_pe_limit: u64,
    /// Command index after which a power loss is injected: the FTL's
    /// volatile state is dropped mid-garbage-collection and rebuilt by the
    /// recovery replay (page-mapped FTL only). `u64::MAX` disables the
    /// fault.
    pub power_loss_at: u64,
}

impl FaultConfig {
    /// The healthy-device profile: every fault source disabled.
    pub fn healthy() -> Self {
        FaultConfig {
            read_disturb_per_read: 0.0,
            retention_scale: 1.0,
            retire_pe_limit: u64::MAX,
            power_loss_at: u64::MAX,
        }
    }

    /// True when no fault source is enabled (the default profile).
    pub fn is_healthy(&self) -> bool {
        *self == FaultConfig::healthy()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::healthy()
    }
}

/// Errors produced while building or parsing a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A structural parameter (channels, ways, dies, buffers) is zero.
    ZeroDimension(&'static str),
    /// A key in the text configuration is unknown.
    UnknownKey(String),
    /// A value in the text configuration cannot be parsed.
    BadValue {
        /// The configuration key whose value is invalid.
        key: String,
        /// The offending value.
        value: String,
    },
    /// A line in the text configuration is not `key = value`.
    MalformedLine(usize),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroDimension(what) => {
                write!(f, "configuration field `{what}` must be non-zero")
            }
            ConfigError::UnknownKey(k) => write!(f, "unknown configuration key `{k}`"),
            ConfigError::BadValue { key, value } => {
                write!(f, "invalid value `{value}` for configuration key `{key}`")
            }
            ConfigError::MalformedLine(n) => write!(f, "malformed configuration line {n}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Complete configuration of one simulated SSD platform instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Human-readable name ("C1", "ocz-vertex-like", …).
    pub name: String,
    /// Number of NAND channels.
    pub channels: u32,
    /// Ways (chip-enable groups) per channel.
    pub ways: u32,
    /// Dies per way.
    pub dies_per_way: u32,
    /// Number of DRAM data buffers (the paper upper-bounds this by the
    /// channel count).
    pub dram_buffers: u32,
    /// Per-buffer capacity in bytes, which bounds how much un-flushed write
    /// data the cache policy may absorb before back-pressure kicks in.
    pub dram_buffer_capacity: u64,
    /// Host interface.
    pub host_interface: HostInterfaceConfig,
    /// Optional override of the host queue depth (clamped to the protocol
    /// maximum of the selected interface).
    pub queue_depth_override: Option<u32>,
    /// DRAM-buffer management policy.
    pub cache_policy: CachePolicy,
    /// ECC scheme.
    pub ecc: EccScheme,
    /// Compressor instantiation.
    pub compressor: CompressorConfig,
    /// FTL accounting mode (WAF abstraction or actual page-mapped FTL).
    pub ftl_mode: FtlMode,
    /// Write-amplification (FTL abstraction) model.
    pub waf: WafModel,
    /// Number of controller CPU cores executing the firmware.
    pub cpu_cores: u32,
    /// Firmware cycle budgets executed by the controller CPU.
    pub firmware: FirmwareProfile,
    /// NAND die configuration (geometry, timing, wear).
    pub nand: NandConfig,
    /// ONFI interface speed of every channel.
    pub onfi_speed: OnfiSpeed,
    /// Way interconnection scheme.
    pub gang: GangMode,
    /// DDR timing set of the data buffers.
    pub dram_timings: DdrTimings,
    /// Deterministic simulation seed.
    pub seed: u64,
    /// Degraded-device fault injection knobs (healthy by default).
    pub faults: FaultConfig,
}

impl SsdConfig {
    /// Starts a builder pre-loaded with the paper's default platform
    /// parameters.
    pub fn builder(name: impl Into<String>) -> SsdConfigBuilder {
        SsdConfigBuilder::new(name)
    }

    /// Total number of NAND dies in the device.
    pub fn total_dies(&self) -> u32 {
        self.channels * self.ways * self.dies_per_way
    }

    /// The `(channels, ways, dies_per_way)` topology triple.
    pub fn topology_tuple(&self) -> (u32, u32, u32) {
        (self.channels, self.ways, self.dies_per_way)
    }

    /// Raw NAND capacity in bytes.
    pub fn raw_capacity_bytes(&self) -> u64 {
        self.total_dies() as u64 * self.nand.geometry.die_capacity_bytes()
    }

    /// Effective host queue depth: the protocol maximum, optionally reduced
    /// by the override.
    pub fn queue_depth(&self) -> u32 {
        let max = self.host_interface.build().queue_depth();
        match self.queue_depth_override {
            Some(qd) => qd.clamp(1, max),
            None => max,
        }
    }

    /// Architecture summary in the paper's notation, e.g.
    /// `8-DDR-buf;8-CHN;4-WAY;2-DIE`.
    pub fn architecture_label(&self) -> String {
        format!(
            "{}-DDR-buf;{}-CHN;{}-WAY;{}-DIE",
            self.dram_buffers, self.channels, self.ways, self.dies_per_way
        )
    }

    /// Validates structural parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroDimension`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.channels == 0 {
            return Err(ConfigError::ZeroDimension("channels"));
        }
        if self.ways == 0 {
            return Err(ConfigError::ZeroDimension("ways"));
        }
        if self.dies_per_way == 0 {
            return Err(ConfigError::ZeroDimension("dies_per_way"));
        }
        if self.dram_buffers == 0 {
            return Err(ConfigError::ZeroDimension("dram_buffers"));
        }
        if self.dram_buffer_capacity == 0 {
            return Err(ConfigError::ZeroDimension("dram_buffer_capacity"));
        }
        if self.cpu_cores == 0 {
            return Err(ConfigError::ZeroDimension("cpu_cores"));
        }
        Ok(())
    }

    /// Serialises the structural knobs to the simple `key = value` text
    /// format the paper mentions.
    pub fn to_text(&self) -> String {
        let ecc = match &self.ecc {
            EccScheme::None => "none".to_string(),
            EccScheme::FixedBch(c) => format!("fixed-bch:{}", c.t),
            EccScheme::AdaptiveBch { codec, .. } => format!("adaptive-bch:{}", codec.t),
        };
        let compressor = match self.compressor {
            CompressorConfig::None => "none",
            CompressorConfig::HostSide => "host",
            CompressorConfig::ChannelSide => "channel",
        };
        let gang = match self.gang {
            GangMode::SharedBus => "shared-bus",
            GangMode::SharedControl => "shared-control",
        };
        let cache = match self.cache_policy {
            CachePolicy::WriteCache => "on",
            CachePolicy::NoCache => "off",
        };
        let ftl = match self.ftl_mode {
            FtlMode::WafAbstraction => "waf",
            FtlMode::PageMapped => "page-mapped",
        };
        // Fault keys are emitted only when they deviate from the healthy
        // profile (like `queue_depth`, which is parsed but never emitted for
        // the default), keeping healthy-device files byte-stable.
        let mut faults = String::new();
        if self.faults.read_disturb_per_read != 0.0 {
            faults.push_str(&format!(
                "read_disturb = {}\n",
                self.faults.read_disturb_per_read
            ));
        }
        if self.faults.retention_scale != 1.0 {
            faults.push_str(&format!(
                "retention_scale = {}\n",
                self.faults.retention_scale
            ));
        }
        if self.faults.retire_pe_limit != u64::MAX {
            faults.push_str(&format!(
                "retire_pe_limit = {}\n",
                self.faults.retire_pe_limit
            ));
        }
        if self.faults.power_loss_at != u64::MAX {
            faults.push_str(&format!("power_loss_at = {}\n", self.faults.power_loss_at));
        }
        format!(
            "# SSDExplorer platform configuration\n\
             name = {}\n\
             channels = {}\n\
             ways = {}\n\
             dies_per_way = {}\n\
             dram_buffers = {}\n\
             dram_buffer_capacity = {}\n\
             host = {}\n\
             cache = {}\n\
             ecc = {}\n\
             compressor = {}\n\
             ftl = {}\n\
             cpu_cores = {}\n\
             gang = {}\n\
             over_provisioning = {}\n\
             seed = {}\n{}",
            self.name,
            self.channels,
            self.ways,
            self.dies_per_way,
            self.dram_buffers,
            self.dram_buffer_capacity,
            self.host_interface.name(),
            cache,
            ecc,
            compressor,
            ftl,
            self.cpu_cores,
            gang,
            self.waf.over_provisioning,
            self.seed,
            faults,
        )
    }

    /// Parses a configuration from the `key = value` text format, starting
    /// from the default platform and overriding whatever keys are present.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first malformed line, unknown
    /// key or unparsable value.
    pub fn from_text(text: &str) -> Result<SsdConfig, ConfigError> {
        let mut builder = SsdConfigBuilder::new("from-text");
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or(ConfigError::MalformedLine(idx + 1))?;
            let key = key.trim();
            let value = value.trim();
            let bad = || ConfigError::BadValue {
                key: key.to_string(),
                value: value.to_string(),
            };
            match key {
                "name" => builder.name = value.to_string(),
                "channels" => builder.channels = value.parse().map_err(|_| bad())?,
                "ways" => builder.ways = value.parse().map_err(|_| bad())?,
                "dies_per_way" => builder.dies_per_way = value.parse().map_err(|_| bad())?,
                "dram_buffers" => builder.dram_buffers = value.parse().map_err(|_| bad())?,
                "dram_buffer_capacity" => {
                    builder.dram_buffer_capacity = value.parse().map_err(|_| bad())?
                }
                "queue_depth" => {
                    builder.queue_depth_override = Some(value.parse().map_err(|_| bad())?)
                }
                "host" => {
                    builder.host_interface = match value {
                        "sata2" => HostInterfaceConfig::Sata2,
                        "sata3" => HostInterfaceConfig::Sata3,
                        other => {
                            // nvme-gen2-x8
                            let rest = other.strip_prefix("nvme-gen").ok_or_else(bad)?;
                            let (gen, lanes) = rest.split_once("-x").ok_or_else(bad)?;
                            HostInterfaceConfig::NvmePcie {
                                gen: gen.parse().map_err(|_| bad())?,
                                lanes: lanes.parse().map_err(|_| bad())?,
                            }
                        }
                    }
                }
                "cache" => {
                    builder.cache_policy = match value {
                        "on" | "true" | "cache" => CachePolicy::WriteCache,
                        "off" | "false" | "no-cache" => CachePolicy::NoCache,
                        _ => return Err(bad()),
                    }
                }
                "ecc" => {
                    builder.ecc = if value == "none" {
                        EccScheme::None
                    } else if let Some(t) = value.strip_prefix("fixed-bch:") {
                        EccScheme::fixed_bch(t.parse().map_err(|_| bad())?)
                    } else if let Some(t) = value.strip_prefix("adaptive-bch:") {
                        EccScheme::adaptive_bch(t.parse().map_err(|_| bad())?)
                    } else {
                        return Err(bad());
                    }
                }
                "compressor" => {
                    builder.compressor = match value {
                        "none" => CompressorConfig::None,
                        "host" => CompressorConfig::HostSide,
                        "channel" => CompressorConfig::ChannelSide,
                        _ => return Err(bad()),
                    }
                }
                "ftl" => {
                    builder.ftl_mode = match value {
                        "waf" => FtlMode::WafAbstraction,
                        "page-mapped" | "real" => FtlMode::PageMapped,
                        _ => return Err(bad()),
                    }
                }
                "cpu_cores" => builder.cpu_cores = value.parse().map_err(|_| bad())?,
                "gang" => {
                    builder.gang = match value {
                        "shared-bus" => GangMode::SharedBus,
                        "shared-control" => GangMode::SharedControl,
                        _ => return Err(bad()),
                    }
                }
                "over_provisioning" => {
                    let op: f64 = value.parse().map_err(|_| bad())?;
                    if op.is_nan() || op <= 0.0 {
                        return Err(bad());
                    }
                    builder.over_provisioning = op;
                }
                "seed" => builder.seed = value.parse().map_err(|_| bad())?,
                "read_disturb" => {
                    let v: f64 = value.parse().map_err(|_| bad())?;
                    if !v.is_finite() || v < 0.0 {
                        return Err(bad());
                    }
                    builder.faults.read_disturb_per_read = v;
                }
                "retention_scale" => {
                    let v: f64 = value.parse().map_err(|_| bad())?;
                    if !v.is_finite() || v <= 0.0 {
                        return Err(bad());
                    }
                    builder.faults.retention_scale = v;
                }
                "retire_pe_limit" => {
                    builder.faults.retire_pe_limit = value.parse().map_err(|_| bad())?
                }
                "power_loss_at" => {
                    builder.faults.power_loss_at = value.parse().map_err(|_| bad())?
                }
                other => return Err(ConfigError::UnknownKey(other.to_string())),
            }
        }
        builder.build()
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfigBuilder::new("default")
            .build()
            .expect("default configuration is valid")
    }
}

/// Builder for [`SsdConfig`].
#[derive(Debug, Clone)]
pub struct SsdConfigBuilder {
    name: String,
    channels: u32,
    ways: u32,
    dies_per_way: u32,
    dram_buffers: u32,
    dram_buffer_capacity: u64,
    host_interface: HostInterfaceConfig,
    queue_depth_override: Option<u32>,
    cache_policy: CachePolicy,
    ecc: EccScheme,
    compressor: CompressorConfig,
    ftl_mode: FtlMode,
    over_provisioning: f64,
    cpu_cores: u32,
    firmware: FirmwareProfile,
    nand_geometry: NandGeometry,
    nand_timing: MlcTimingProfile,
    wear: WearModel,
    onfi_speed: OnfiSpeed,
    gang: GangMode,
    dram_timings: DdrTimings,
    seed: u64,
    faults: FaultConfig,
}

impl SsdConfigBuilder {
    /// Creates a builder pre-loaded with the paper's default platform: a
    /// 4-channel, 4-way, 2-die SSD with a SATA II host interface, 2 KB-page
    /// MLC NAND behind a legacy asynchronous ONFI bus, a 40-bit fixed BCH
    /// code, the WAF FTL abstraction at 7 % over-provisioning and the write
    /// cache enabled.
    pub fn new(name: impl Into<String>) -> Self {
        SsdConfigBuilder {
            name: name.into(),
            channels: 4,
            ways: 4,
            dies_per_way: 2,
            dram_buffers: 4,
            dram_buffer_capacity: 8 * 1024 * 1024,
            host_interface: HostInterfaceConfig::Sata2,
            queue_depth_override: None,
            cache_policy: CachePolicy::WriteCache,
            ecc: EccScheme::fixed_bch(40),
            compressor: CompressorConfig::None,
            ftl_mode: FtlMode::WafAbstraction,
            over_provisioning: 0.07,
            cpu_cores: 1,
            firmware: FirmwareProfile::waf_abstracted(),
            nand_geometry: NandGeometry::mlc_2kb(),
            nand_timing: MlcTimingProfile::paper_mlc(),
            wear: WearModel::paper_mlc(),
            onfi_speed: OnfiSpeed::Sdr20,
            gang: GangMode::SharedBus,
            dram_timings: DdrTimings::ddr2_800(),
            seed: 0x55DE,
            faults: FaultConfig::healthy(),
        }
    }

    /// Sets the channel/way/die topology.
    pub fn topology(mut self, channels: u32, ways: u32, dies_per_way: u32) -> Self {
        self.channels = channels;
        self.ways = ways;
        self.dies_per_way = dies_per_way;
        self
    }

    /// Sets the number of DRAM buffers.
    pub fn dram_buffers(mut self, buffers: u32) -> Self {
        self.dram_buffers = buffers;
        self
    }

    /// Sets the per-buffer capacity in bytes.
    pub fn dram_buffer_capacity(mut self, bytes: u64) -> Self {
        self.dram_buffer_capacity = bytes;
        self
    }

    /// Selects the host interface.
    pub fn host_interface(mut self, host: HostInterfaceConfig) -> Self {
        self.host_interface = host;
        self
    }

    /// Overrides the host queue depth.
    pub fn queue_depth(mut self, depth: u32) -> Self {
        self.queue_depth_override = Some(depth);
        self
    }

    /// Selects the DRAM-buffer management policy.
    pub fn cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Selects the ECC scheme.
    pub fn ecc(mut self, ecc: EccScheme) -> Self {
        self.ecc = ecc;
        self
    }

    /// Selects the compressor placement.
    pub fn compressor(mut self, compressor: CompressorConfig) -> Self {
        self.compressor = compressor;
        self
    }

    /// Selects the FTL accounting mode.
    pub fn ftl_mode(mut self, mode: FtlMode) -> Self {
        self.ftl_mode = mode;
        self
    }

    /// Sets the number of controller CPU cores.
    pub fn cpu_cores(mut self, cores: u32) -> Self {
        self.cpu_cores = cores;
        self
    }

    /// Sets the over-provisioning factor of the WAF model.
    pub fn over_provisioning(mut self, op: f64) -> Self {
        self.over_provisioning = op;
        self
    }

    /// Sets the firmware cycle budgets.
    pub fn firmware(mut self, firmware: FirmwareProfile) -> Self {
        self.firmware = firmware;
        self
    }

    /// Sets the NAND geometry.
    pub fn nand_geometry(mut self, geometry: NandGeometry) -> Self {
        self.nand_geometry = geometry;
        self
    }

    /// Sets the NAND timing profile.
    pub fn nand_timing(mut self, timing: MlcTimingProfile) -> Self {
        self.nand_timing = timing;
        self
    }

    /// Sets the wear/RBER model.
    pub fn wear(mut self, wear: WearModel) -> Self {
        self.wear = wear;
        self
    }

    /// Sets the ONFI interface speed.
    pub fn onfi_speed(mut self, speed: OnfiSpeed) -> Self {
        self.onfi_speed = speed;
        self
    }

    /// Sets the way interconnection scheme.
    pub fn gang(mut self, gang: GangMode) -> Self {
        self.gang = gang;
        self
    }

    /// Sets the DDR timing set.
    pub fn dram_timings(mut self, timings: DdrTimings) -> Self {
        self.dram_timings = timings;
        self
    }

    /// Sets the deterministic simulation seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Installs a degraded-device fault profile.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Finalises the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroDimension`] if a structural parameter is
    /// zero.
    pub fn build(self) -> Result<SsdConfig, ConfigError> {
        let config = SsdConfig {
            name: self.name,
            channels: self.channels,
            ways: self.ways,
            dies_per_way: self.dies_per_way,
            dram_buffers: self.dram_buffers,
            dram_buffer_capacity: self.dram_buffer_capacity,
            host_interface: self.host_interface,
            queue_depth_override: self.queue_depth_override,
            cache_policy: self.cache_policy,
            ecc: self.ecc,
            compressor: self.compressor,
            ftl_mode: self.ftl_mode,
            waf: WafModel::new(self.over_provisioning),
            cpu_cores: self.cpu_cores,
            firmware: self.firmware,
            nand: NandConfig {
                geometry: self.nand_geometry,
                timing: self.nand_timing,
                wear: self.wear,
            },
            onfi_speed: self.onfi_speed,
            gang: self.gang,
            dram_timings: self.dram_timings,
            seed: self.seed,
            faults: self.faults,
        };
        config.validate()?;
        Ok(config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        let c = SsdConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.total_dies(), 32);
        assert_eq!(c.queue_depth(), 32);
        assert_eq!(c.architecture_label(), "4-DDR-buf;4-CHN;4-WAY;2-DIE");
    }

    #[test]
    fn builder_applies_every_knob() {
        let c = SsdConfig::builder("big")
            .topology(16, 8, 4)
            .dram_buffers(16)
            .dram_buffer_capacity(1 << 20)
            .host_interface(HostInterfaceConfig::nvme_gen2_x8())
            .queue_depth(256)
            .cache_policy(CachePolicy::NoCache)
            .ecc(EccScheme::adaptive_bch(40))
            .compressor(CompressorConfig::ChannelSide)
            .over_provisioning(0.28)
            .gang(GangMode::SharedControl)
            .onfi_speed(OnfiSpeed::Ddr166)
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(c.total_dies(), 512);
        assert_eq!(c.queue_depth(), 256);
        assert_eq!(c.cache_policy, CachePolicy::NoCache);
        assert_eq!(c.compressor, CompressorConfig::ChannelSide);
        assert!((c.waf.over_provisioning - 0.28).abs() < 1e-12);
        assert_eq!(c.gang, GangMode::SharedControl);
        assert_eq!(c.host_interface.name(), "nvme-gen2-x8");
    }

    #[test]
    fn ftl_mode_and_cpu_cores_knobs() {
        let c = SsdConfig::builder("real-ftl")
            .ftl_mode(FtlMode::PageMapped)
            .cpu_cores(2)
            .build()
            .unwrap();
        assert_eq!(c.ftl_mode, FtlMode::PageMapped);
        assert_eq!(c.cpu_cores, 2);
        // Round trip through the text format.
        let parsed = SsdConfig::from_text(&c.to_text()).unwrap();
        assert_eq!(parsed.ftl_mode, FtlMode::PageMapped);
        assert_eq!(parsed.cpu_cores, 2);
        // Defaults stay on the WAF abstraction with one core.
        let d = SsdConfig::default();
        assert_eq!(d.ftl_mode, FtlMode::WafAbstraction);
        assert_eq!(d.cpu_cores, 1);
        // Zero cores is rejected.
        assert_eq!(
            SsdConfig::builder("bad").cpu_cores(0).build().unwrap_err(),
            ConfigError::ZeroDimension("cpu_cores")
        );
        // Unknown ftl value is rejected.
        assert!(matches!(
            SsdConfig::from_text("ftl = magic\n").unwrap_err(),
            ConfigError::BadValue { .. }
        ));
    }

    #[test]
    fn queue_depth_override_is_clamped_to_protocol_maximum() {
        let c = SsdConfig::builder("qd")
            .host_interface(HostInterfaceConfig::Sata2)
            .queue_depth(1000)
            .build()
            .unwrap();
        assert_eq!(c.queue_depth(), 32);
    }

    #[test]
    fn zero_dimensions_are_rejected() {
        assert_eq!(
            SsdConfig::builder("bad")
                .topology(0, 1, 1)
                .build()
                .unwrap_err(),
            ConfigError::ZeroDimension("channels")
        );
        assert_eq!(
            SsdConfig::builder("bad")
                .topology(1, 0, 1)
                .build()
                .unwrap_err(),
            ConfigError::ZeroDimension("ways")
        );
        assert_eq!(
            SsdConfig::builder("bad")
                .topology(1, 1, 0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroDimension("dies_per_way")
        );
        assert_eq!(
            SsdConfig::builder("bad")
                .dram_buffers(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroDimension("dram_buffers")
        );
    }

    #[test]
    fn text_round_trip_preserves_structural_knobs() {
        let original = SsdConfig::builder("round-trip")
            .topology(8, 8, 2)
            .dram_buffers(8)
            .host_interface(HostInterfaceConfig::nvme_gen2_x8())
            .cache_policy(CachePolicy::NoCache)
            .ecc(EccScheme::adaptive_bch(40))
            .compressor(CompressorConfig::HostSide)
            .gang(GangMode::SharedControl)
            .over_provisioning(0.28)
            .seed(77)
            .build()
            .unwrap();
        let text = original.to_text();
        let parsed = SsdConfig::from_text(&text).unwrap();
        assert_eq!(parsed.name, "round-trip");
        assert_eq!(parsed.channels, 8);
        assert_eq!(parsed.ways, 8);
        assert_eq!(parsed.dies_per_way, 2);
        assert_eq!(parsed.host_interface, original.host_interface);
        assert_eq!(parsed.cache_policy, CachePolicy::NoCache);
        assert_eq!(parsed.compressor, CompressorConfig::HostSide);
        assert_eq!(parsed.gang, GangMode::SharedControl);
        assert_eq!(parsed.ecc.name(), "adaptive-bch");
        assert_eq!(parsed.seed, 77);
    }

    #[test]
    fn fault_keys_round_trip_and_default_stays_silent() {
        // Healthy profile: no fault keys in the text form, parses healthy.
        let healthy = SsdConfig::default();
        assert!(healthy.faults.is_healthy());
        let text = healthy.to_text();
        for key in [
            "read_disturb",
            "retention_scale",
            "retire_pe_limit",
            "power_loss_at",
        ] {
            assert!(!text.contains(key), "healthy config leaked `{key}`");
        }
        assert!(SsdConfig::from_text(&text).unwrap().faults.is_healthy());

        // Degraded profile round-trips through the text format.
        let degraded = SsdConfig::builder("aged")
            .faults(FaultConfig {
                read_disturb_per_read: 0.125,
                retention_scale: 2.5,
                retire_pe_limit: 4_000,
                power_loss_at: 777,
            })
            .build()
            .unwrap();
        let parsed = SsdConfig::from_text(&degraded.to_text()).unwrap();
        assert_eq!(parsed.faults, degraded.faults);

        // Invalid fault values are rejected.
        for bad in [
            "read_disturb = -0.5\n",
            "read_disturb = nan\n",
            "retention_scale = 0\n",
            "retention_scale = inf\n",
            "retire_pe_limit = soon\n",
            "power_loss_at = never\n",
        ] {
            assert!(
                matches!(
                    SsdConfig::from_text(bad).unwrap_err(),
                    ConfigError::BadValue { .. }
                ),
                "`{bad}` should be rejected"
            );
        }
    }

    #[test]
    fn parser_reports_errors_precisely() {
        assert!(matches!(
            SsdConfig::from_text("channels 8\n").unwrap_err(),
            ConfigError::MalformedLine(1)
        ));
        assert!(matches!(
            SsdConfig::from_text("wombats = 3\n").unwrap_err(),
            ConfigError::UnknownKey(k) if k == "wombats"
        ));
        assert!(matches!(
            SsdConfig::from_text("channels = many\n").unwrap_err(),
            ConfigError::BadValue { .. }
        ));
        assert!(matches!(
            SsdConfig::from_text("host = scsi\n").unwrap_err(),
            ConfigError::BadValue { .. }
        ));
        assert!(matches!(
            SsdConfig::from_text("over_provisioning = -1\n").unwrap_err(),
            ConfigError::BadValue { .. }
        ));
    }

    #[test]
    fn parser_ignores_comments_and_blank_lines() {
        let c = SsdConfig::from_text("# comment\n\nchannels = 2\n").unwrap();
        assert_eq!(c.channels, 2);
    }

    #[test]
    fn cache_policy_labels() {
        assert_eq!(CachePolicy::WriteCache.label(), "cache");
        assert_eq!(CachePolicy::NoCache.label(), "no cache");
    }

    #[test]
    fn host_interface_config_builds_correct_models() {
        assert_eq!(HostInterfaceConfig::Sata2.build().queue_depth(), 32);
        assert_eq!(
            HostInterfaceConfig::nvme_gen2_x8().build().queue_depth(),
            65_536
        );
        assert!(
            HostInterfaceConfig::Sata3.build().ideal_bandwidth()
                > HostInterfaceConfig::Sata2.build().ideal_bandwidth()
        );
    }
}
