//! Parallel sweep execution with deterministic fan-out.
//!
//! [`ParallelExecutor`] is the engine the [`Explorer`] documentation has
//! always promised: it fans the [`SweepJob`] batch of a sweep out over a
//! scoped worker pool ([`std::thread::scope`]) with a configurable thread
//! count, a self-scheduling job queue (workers atomically claim the next
//! unclaimed job, so long and short points balance automatically), and
//! ordered result collection. Because every job owns its fully mutated
//! [`SsdConfig`](crate::SsdConfig) — including the deterministic RNG seed —
//! and builds its own platform on the worker thread, a parallel sweep is
//! **byte-identical** to the sequential one at any thread count, which the
//! `parallel_sweep` integration suite asserts for 1, 2, 4 and 8 threads.
//!
//! # Determinism
//!
//! Three properties make order-independent execution safe:
//!
//! 1. **Expansion is pure.** [`Explorer::jobs`] produces the cartesian
//!    product deterministically; every job carries its coordinates and its
//!    own configuration, with no shared mutable state.
//! 2. **Seeding is per point.** Each platform derives all component RNG
//!    streams ([`SimRng::fork`](ssdx_sim::rng::SimRng::fork)) from its own
//!    `config.seed`, never from a global or thread-local source, so a job's
//!    result does not depend on which worker runs it or when.
//! 3. **Collection is ordered by job index, not completion time.** Workers
//!    write into a dedicated result slot per job; the final [`Sweep`] is
//!    assembled in expansion order.
//!
//! # Example
//!
//! ```
//! use ssdx_core::{Axis, Explorer, ParallelExecutor, SsdConfig};
//! use ssdx_hostif::{AccessPattern, Workload};
//!
//! let base = SsdConfig::builder("base").dram_buffer_capacity(128 * 1024).build()?;
//! let workload = Workload::builder(AccessPattern::SequentialWrite)
//!     .command_count(64)
//!     .build();
//! let explorer = Explorer::new(base).over(Axis::over(
//!     "channels",
//!     [2u32, 4],
//!     |cfg, &c| {
//!         cfg.channels = c;
//!         cfg.dram_buffers = c;
//!     },
//! ));
//! let sequential = explorer.run(&workload)?;
//! let parallel = ParallelExecutor::with_threads(2).run(&explorer, &workload)?;
//! assert_eq!(format!("{sequential:?}"), format!("{parallel:?}"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::explorer::{Explorer, Sweep, SweepError, SweepJob, SweepPoint};
use ssdx_hostif::CommandSource;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// A scoped worker pool that executes [`SweepJob`] batches in parallel.
///
/// The executor is a small value type — construct one per sweep or reuse it;
/// it holds no threads between runs. Worker threads live only inside
/// [`run`](Self::run)/[`execute_jobs`](Self::execute_jobs) (scoped threads),
/// so borrowed sources and jobs need no `'static` lifetimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelExecutor {
    threads: NonZeroUsize,
}

impl Default for ParallelExecutor {
    fn default() -> Self {
        ParallelExecutor::new()
    }
}

impl ParallelExecutor {
    /// Creates an executor sized to the machine: one worker per available
    /// hardware thread (falling back to 1 when the parallelism cannot be
    /// queried).
    pub fn new() -> Self {
        let threads = thread::available_parallelism().unwrap_or(NonZeroUsize::MIN);
        ParallelExecutor { threads }
    }

    /// Creates an executor with an explicit worker count. A count of zero is
    /// clamped to one; `with_threads(1)` degenerates to strictly sequential
    /// in-place execution (no worker threads are spawned), which makes the
    /// byte-identity property trivially checkable against any other count.
    pub fn with_threads(threads: usize) -> Self {
        ParallelExecutor {
            threads: NonZeroUsize::new(threads).unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// The worker count a batch of `jobs` jobs actually uses: the
    /// configured count clamped to the job count (spawning more workers
    /// than jobs would only create idle threads). This is the number the
    /// speedup meters record.
    pub fn workers_for(&self, jobs: usize) -> usize {
        self.threads.get().min(jobs).max(1)
    }

    /// Expands `explorer` and executes its jobs across the worker pool,
    /// returning the same [`Sweep`] — byte for byte — that
    /// [`Explorer::run`] produces sequentially.
    ///
    /// # Errors
    ///
    /// Propagates the expansion errors of [`Explorer::jobs`] and the
    /// [`SweepError::InvalidPoint`] of the earliest failing job (matching
    /// the error sequential execution reports). Warm-start images
    /// ([`Explorer::warm_start`]) are captured sequentially during
    /// expansion, before the fan-out.
    pub fn run<S>(&self, explorer: &Explorer, source: &S) -> Result<Sweep, SweepError>
    where
        S: CommandSource + Sync + ?Sized,
    {
        let jobs = explorer.warmed_jobs(source)?;
        let points = self.execute_jobs(&jobs, source)?;
        Ok(Sweep {
            axes: explorer.axis_names(),
            points,
        })
    }

    /// Executes an explicit job batch, returning one [`SweepPoint`] per job
    /// **in job order** regardless of completion order.
    ///
    /// Workers claim jobs through an atomic cursor (dynamic
    /// self-scheduling): a worker that lands on a cheap point immediately
    /// claims the next one, so heterogeneous sweeps — where a 32-channel
    /// point simulates far more events than a 2-channel one — stay balanced
    /// without a work-stealing deque.
    ///
    /// # Errors
    ///
    /// Returns the error of the earliest failing job. Once any job fails,
    /// workers stop claiming new jobs (already-claimed jobs run to
    /// completion), exactly as sequential execution would not have started
    /// anything past the first failure.
    pub fn execute_jobs<S>(
        &self,
        jobs: &[SweepJob],
        source: &S,
    ) -> Result<Vec<SweepPoint>, SweepError>
    where
        S: CommandSource + Sync + ?Sized,
    {
        let workers = self.workers_for(jobs.len());
        if workers <= 1 || jobs.is_empty() {
            // Sequential fast path: no threads, no slots, same results.
            let mut points = Vec::with_capacity(jobs.len());
            for job in jobs {
                points.push(job.execute(source)?);
            }
            return Ok(points);
        }

        // One write-once slot per job keeps collection lock-free and ordered.
        let slots: Vec<OnceLock<Result<SweepPoint, SweepError>>> =
            jobs.iter().map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);

        thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(index) else { break };
                    let result = job.execute(source);
                    if result.is_err() {
                        failed.store(true, Ordering::Relaxed);
                    }
                    slots[index]
                        .set(result)
                        .expect("each job index is claimed exactly once");
                });
            }
        });

        // The cursor hands indices out in order and every claimed job runs
        // to completion, so unfilled slots form a suffix that begins only
        // after the earliest error — scanning in order therefore reports
        // exactly the error sequential execution would have hit first.
        let mut points = Vec::with_capacity(jobs.len());
        for slot in slots {
            match slot.into_inner() {
                Some(Ok(point)) => points.push(point),
                Some(Err(error)) => return Err(error),
                None => unreachable!("a slot before the earliest error is always filled"),
            }
        }
        Ok(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ConfigError, SsdConfig};
    use crate::explorer::Axis;
    use crate::ssd::Ssd;
    use ssdx_hostif::{AccessPattern, Workload};

    fn workload(count: u64) -> Workload {
        Workload::builder(AccessPattern::SequentialWrite)
            .command_count(count)
            .build()
    }

    fn explorer() -> Explorer {
        let base = SsdConfig::builder("par")
            .topology(2, 2, 1)
            .dram_buffers(2)
            .dram_buffer_capacity(128 * 1024)
            .build()
            .unwrap();
        Explorer::new(base)
            .over(Axis::over("channels", [2u32, 4], |cfg, &c| {
                cfg.channels = c;
                cfg.dram_buffers = c;
            }))
            .over(Axis::over("seed", [1u64, 2, 3], |cfg, &s| cfg.seed = s))
    }

    #[test]
    fn everything_the_executor_touches_is_thread_safe() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Ssd>();
        assert_send::<SweepJob>();
        assert_sync::<SweepJob>();
        assert_sync::<Workload>();
        assert_send::<SweepPoint>();
        assert_send::<SweepError>();
    }

    #[test]
    fn parallel_run_is_byte_identical_to_sequential() {
        let explorer = explorer();
        let w = workload(96);
        let sequential = explorer.run(&w).unwrap();
        for threads in [1, 2, 4, 8] {
            let parallel = ParallelExecutor::with_threads(threads)
                .run(&explorer, &w)
                .unwrap();
            assert_eq!(
                format!("{sequential:?}"),
                format!("{parallel:?}"),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn executor_reports_the_earliest_failing_job() {
        let base = SsdConfig::builder("bad-axis")
            .topology(2, 2, 1)
            .dram_buffers(2)
            .build()
            .unwrap();
        // `jobs()` validates upfront, so build the failing batch by hand:
        // corrupt the config of a mid-batch job after expansion.
        let explorer =
            Explorer::new(base).over(Axis::over("seed", 1u64..=6, |cfg, &s| cfg.seed = s));
        let mut jobs = explorer.jobs().unwrap();
        jobs[2].config.channels = 0;
        jobs[4].config.ways = 0;
        let err = ParallelExecutor::with_threads(4)
            .execute_jobs(&jobs, &workload(16))
            .unwrap_err();
        assert_eq!(
            err,
            SweepError::InvalidPoint {
                point: "seed=3".to_string(),
                error: ConfigError::ZeroDimension("channels"),
            }
        );
    }

    #[test]
    fn zero_threads_clamp_to_one_and_machine_default_is_positive() {
        assert_eq!(ParallelExecutor::with_threads(0).threads(), 1);
        assert!(ParallelExecutor::new().threads() >= 1);
        assert_eq!(ParallelExecutor::default(), ParallelExecutor::new());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let base = SsdConfig::builder("tiny")
            .topology(2, 2, 1)
            .dram_buffers(2)
            .build()
            .unwrap();
        let explorer = Explorer::new(base);
        let w = workload(32);
        let sweep = ParallelExecutor::with_threads(16)
            .run(&explorer, &w)
            .unwrap();
        assert_eq!(sweep.len(), 1);
        assert_eq!(
            format!("{sweep:?}"),
            format!("{:?}", explorer.run(&w).unwrap())
        );
    }
}
