//! Versioned binary snapshots of the full device state.
//!
//! A [`Snapshot`] is a compact, self-describing byte image of everything
//! mutable in the platform: every model crate's state (NAND wear and
//! per-die RNGs, DRAM banks and refresh deadlines, CPU cores, the AHB bus,
//! channel controllers, ECC pipeline resources, the page allocator and the
//! optional page-mapped FTL) plus, when captured mid-run via
//! [`SimSession::capture`](crate::SimSession::capture), the session's
//! protocol-window and back-pressure state. Restoring a snapshot onto a
//! platform built from the same configuration resumes the simulation
//! exactly: a forked run is byte-identical to the continuous run it
//! branched from, which `tests/snapshot_equivalence.rs` pins.
//!
//! # Format
//!
//! The image is a flat concatenation, encoded with the deterministic
//! varint codec in [`ssdx_sim::codec`]:
//!
//! | section | contents |
//! |---|---|
//! | magic | the 4 raw bytes `b"SSDX"` |
//! | version | one byte, currently [`SNAPSHOT_VERSION`] |
//! | platform signature | channels, ways, dies/way, DRAM buffers, CPU cores, seed |
//! | platform state | [`Ssd`] state in the audited `encode_state` order |
//! | session flag | `bool`: whether session state follows |
//! | session state | cursor, queues, histograms, cutoff, optional FTL |
//!
//! The platform signature binds an image to the topology and seed it was
//! captured from: restoring onto a mismatched platform fails cleanly
//! instead of producing garbage. Container sizes inside the platform state
//! are construction-derived from the configuration and deliberately *not*
//! length-prefixed, so [`Snapshot::from_bytes`] validates the header while
//! full decoding happens against a constructed platform
//! ([`Ssd::restore`] / [`SimSession::fork`](crate::SimSession::fork)).
//!
//! # Version policy
//!
//! Any change to the byte layout — field order, a new field, a different
//! sentinel shift — must bump [`SNAPSHOT_VERSION`]. Old images then fail
//! with a version error instead of decoding to silently-wrong state; the
//! committed golden fixture `tests/golden/snapshot_v1.bin` turns a
//! forgotten bump into a test failure.
//!
//! # Determinism
//!
//! Encoding is a pure function of the device state: capturing the same
//! state twice yields the same bytes, on every platform (the codec has no
//! endianness or pointer-width dependence). Decode never panics on
//! arbitrary input — every malformed image maps to a
//! [`DecodeError`].

use crate::config::SsdConfig;
use crate::ssd::Ssd;
use ssdx_sim::codec::{DecodeError, Decoder, Encoder};

/// Magic bytes opening every snapshot image.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"SSDX";

/// Current snapshot format version. Bump on any byte-layout change.
pub const SNAPSHOT_VERSION: u8 = 1;

/// A validated, versioned binary image of device (and optionally session)
/// state.
///
/// Produced by [`Ssd::capture`] (platform only) or
/// [`SimSession::capture`](crate::SimSession::capture) (platform plus
/// in-flight session state); consumed by [`Ssd::restore`] and
/// [`SimSession::fork`](crate::SimSession::fork). The bytes are opaque but
/// stable: they can be written to disk and restored by a later process
/// running the same format version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// The raw image bytes.
    pub fn to_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the snapshot, returning the owned image bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Format version of this image.
    pub fn version(&self) -> u8 {
        self.bytes[4]
    }

    /// Validates the header of `bytes` (magic and version) and wraps them
    /// as a [`Snapshot`].
    ///
    /// Full decoding is deferred to [`Ssd::restore`] /
    /// [`SimSession::fork`](crate::SimSession::fork): the state sections
    /// have construction-derived sizes, so they can only be interpreted
    /// against a platform built from the matching configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the input is shorter than a header,
    /// does not open with the snapshot magic, or carries an unsupported
    /// version byte.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, DecodeError> {
        let mut dec = Decoder::new(bytes);
        if dec.get_raw(4)? != SNAPSHOT_MAGIC.as_slice() {
            return Err(DecodeError::Invalid {
                offset: 0,
                what: "snapshot magic",
            });
        }
        if dec.get_u8()? != SNAPSHOT_VERSION {
            return Err(DecodeError::Invalid {
                offset: 4,
                what: "unsupported snapshot version",
            });
        }
        Ok(Snapshot {
            bytes: bytes.to_vec(),
        })
    }

    pub(crate) fn from_encoder(enc: Encoder) -> Snapshot {
        Snapshot {
            bytes: enc.finish(),
        }
    }
}

/// Writes the header (magic, version, platform signature) for `config`.
pub(crate) fn encode_header(enc: &mut Encoder, config: &SsdConfig) {
    enc.put_raw(&SNAPSHOT_MAGIC);
    enc.put_u8(SNAPSHOT_VERSION);
    enc.put_u32(config.channels);
    enc.put_u32(config.ways);
    enc.put_u32(config.dies_per_way);
    enc.put_u32(config.dram_buffers);
    enc.put_u32(config.cpu_cores);
    enc.put_u64(config.seed);
}

/// Reads and validates the header against `config`.
pub(crate) fn decode_header(dec: &mut Decoder<'_>, config: &SsdConfig) -> Result<(), DecodeError> {
    if dec.get_raw(4)? != SNAPSHOT_MAGIC.as_slice() {
        return Err(DecodeError::Invalid {
            offset: 0,
            what: "snapshot magic",
        });
    }
    if dec.get_u8()? != SNAPSHOT_VERSION {
        return Err(DecodeError::Invalid {
            offset: 4,
            what: "unsupported snapshot version",
        });
    }
    let matches = dec.get_u32()? == config.channels
        && dec.get_u32()? == config.ways
        && dec.get_u32()? == config.dies_per_way
        && dec.get_u32()? == config.dram_buffers
        && dec.get_u32()? == config.cpu_cores
        && dec.get_u64()? == config.seed;
    if !matches {
        return Err(dec.invalid("snapshot platform signature mismatch"));
    }
    Ok(())
}

impl Ssd {
    /// Captures the platform's full mutable state as a platform-only
    /// [`Snapshot`] (no session section). Use
    /// [`SimSession::capture`](crate::SimSession::capture) to snapshot an
    /// in-flight run instead.
    pub fn capture(&self) -> Snapshot {
        let mut enc = Encoder::new();
        encode_header(&mut enc, self.config());
        self.encode_state(&mut enc);
        enc.put_bool(false);
        Snapshot::from_encoder(enc)
    }

    /// Restores a platform-only snapshot captured by
    /// [`capture`](Self::capture) onto this platform.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the image is malformed or truncated,
    /// was captured from a different topology or seed, or carries session
    /// state (fork those with
    /// [`SimSession::fork`](crate::SimSession::fork) instead). On error
    /// the platform may hold partially-restored state; restore again or
    /// discard it.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<(), DecodeError> {
        let mut dec = Decoder::new(snapshot.to_bytes());
        decode_header(&mut dec, self.config())?;
        self.decode_state(&mut dec)?;
        if dec.get_bool()? {
            return Err(
                dec.invalid("snapshot carries session state; fork it with SimSession::fork")
            );
        }
        dec.expect_end()
    }
}

/// One row of the snapshot state inventory: a layering-table crate and the
/// mutable state (if any) it contributes to a [`Snapshot`].
#[derive(Debug, Clone, Copy)]
pub struct StateInventoryEntry {
    /// Package name, exactly as in the ssdx-lint layering table.
    pub crate_name: &'static str,
    /// The type carrying the crate's `encode_state`/`decode_state` pair,
    /// or `None` for crates audited as stateless.
    pub carrier: Option<&'static str>,
    /// What the state is, or why the crate has none.
    pub notes: &'static str,
}

/// The audited snapshot state inventory.
///
/// Every crate in the ssdx-lint layering table appears here exactly once
/// — either with the type that serialises its mutable state, or with an
/// audit note explaining why it has none. The tier-1 blindness guard in
/// `tests/snapshot_equivalence.rs` cross-checks this table against the
/// layering table, so a new crate cannot silently stay out of the
/// snapshot.
pub const STATE_INVENTORY: &[StateInventoryEntry] = &[
    StateInventoryEntry {
        crate_name: "ssdx-sim",
        carrier: Some("Resource / MultiResource / Scheduler / SimRng / LatencyHistogram"),
        notes: "busy windows, utilization ledgers, event arena, RNG streams",
    },
    StateInventoryEntry {
        crate_name: "ssdx-nand",
        carrier: Some("NandDie"),
        notes: "array resource, per-block wear map, op counters, RNG; the \
                fault profile (read-disturb rate, retention scale) is \
                config-derived and never serialised",
    },
    StateInventoryEntry {
        crate_name: "ssdx-dram",
        carrier: Some("DramBuffer"),
        notes: "bank row state, bus/refresh deadlines, counters",
    },
    StateInventoryEntry {
        crate_name: "ssdx-interconnect",
        carrier: Some("AhbBus"),
        notes: "bus resource, arbiter rotation, per-master stats, wait states",
    },
    StateInventoryEntry {
        crate_name: "ssdx-cpu",
        carrier: Some("CpuModel"),
        notes: "core resource and task/cycle counters",
    },
    StateInventoryEntry {
        crate_name: "ssdx-channel",
        carrier: Some("ChannelController"),
        notes: "ONFI/way/PP-DMA resources, dies, channel counters",
    },
    StateInventoryEntry {
        crate_name: "ssdx-ecc",
        carrier: None,
        notes: "pure latency/strength functions; pipeline occupancy lives in \
                the platform's ECC resources",
    },
    StateInventoryEntry {
        crate_name: "ssdx-compress",
        carrier: None,
        notes: "pure ratio/timing model, no mutable state",
    },
    StateInventoryEntry {
        crate_name: "ssdx-hostif",
        carrier: None,
        notes: "command streams are materialised at session creation and \
                re-derived from (config, source) on fork",
    },
    StateInventoryEntry {
        crate_name: "ssdx-ftl",
        carrier: Some("PageMappedFtl"),
        notes: "L2P map, per-block metadata, free pool, GC counters; the \
                retirement limit is config-derived and retirement itself \
                rebuilds from the encoded per-block erase counts",
    },
    StateInventoryEntry {
        crate_name: "ssdx-core",
        carrier: Some("Ssd / SimSession / PageAllocator / ClassHistograms"),
        notes: "platform assembly, allocator cursors, in-flight session \
                state; the fault schedule is config and its power-loss \
                trigger keys on the encoded command cursor",
    },
    StateInventoryEntry {
        crate_name: "ssdx-bench",
        carrier: None,
        notes: "harness binaries, no simulation state",
    },
    StateInventoryEntry {
        crate_name: "ssdx-alloctrack",
        carrier: None,
        notes: "test-only allocation instrumentation",
    },
    StateInventoryEntry {
        crate_name: "ssdx-lint",
        carrier: None,
        notes: "workspace auditor, no simulation state",
    },
    StateInventoryEntry {
        crate_name: "ssdx-server",
        carrier: None,
        notes: "session state is held as Snapshot images between requests; the \
                service itself adds no simulation state of its own",
    },
    StateInventoryEntry {
        crate_name: "ssdexplorer",
        carrier: None,
        notes: "facade re-exports only",
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SsdConfig;

    fn platform() -> Ssd {
        Ssd::try_new(
            SsdConfig::builder("snapshot-test")
                .topology(2, 2, 1)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn capture_restore_round_trips_platform_state() {
        let mut ssd = platform();
        ssd.age_to_normalized(0.3);
        let snap = ssd.capture();
        assert_eq!(snap.version(), SNAPSHOT_VERSION);
        let mut other = platform();
        other.restore(&snap).unwrap();
        assert_eq!(other.aged_pe_cycles(), ssd.aged_pe_cycles());
        assert_eq!(other.capture(), snap);
    }

    #[test]
    fn from_bytes_validates_magic_and_version() {
        let snap = platform().capture();
        let bytes = snap.to_bytes();
        assert_eq!(Snapshot::from_bytes(bytes).unwrap(), snap);

        let mut bad_magic = bytes.to_vec();
        bad_magic[0] = b'Z';
        assert!(Snapshot::from_bytes(&bad_magic).is_err());

        let mut bad_version = bytes.to_vec();
        bad_version[4] = SNAPSHOT_VERSION + 1;
        assert!(Snapshot::from_bytes(&bad_version).is_err());

        assert!(Snapshot::from_bytes(&bytes[..3]).is_err());
    }

    #[test]
    fn restore_rejects_a_mismatched_platform() {
        let snap = platform().capture();
        let mut wider = Ssd::try_new(
            SsdConfig::builder("snapshot-test")
                .topology(4, 2, 1)
                .build()
                .unwrap(),
        )
        .unwrap();
        let err = wider.restore(&snap).unwrap_err();
        assert!(matches!(err, DecodeError::Invalid { .. }));
    }

    #[test]
    fn state_inventory_has_no_duplicates() {
        let mut names: Vec<&str> = STATE_INVENTORY.iter().map(|e| e.crate_name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), STATE_INVENTORY.len());
    }
}
