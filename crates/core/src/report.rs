//! Performance reports: the per-component breakdown the paper's figures are
//! built from.

use serde::{Deserialize, Serialize};
use ssdx_sim::stats::LatencyHistogram;
use ssdx_sim::SimTime;
use std::fmt;

/// Per-component utilization summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationBreakdown {
    /// Host-interface link utilization (0–1).
    pub host_link: f64,
    /// Average DRAM data-bus utilization across buffers (0–1).
    pub dram: f64,
    /// Controller CPU utilization (0–1).
    pub cpu: f64,
    /// AHB system-interconnect utilization (0–1).
    pub ahb: f64,
    /// Average ONFI channel-bus utilization (0–1).
    pub channel_bus: f64,
    /// Average NAND die (array) utilization (0–1).
    pub die: f64,
}

/// The result of simulating one workload on one SSD configuration.
///
/// Derives `Serialize`/`Deserialize` (via the vendored serde stand-in) so
/// experiment harnesses can dump reports alongside their inputs.
#[must_use = "a performance report carries the measured results"]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfReport {
    /// Configuration name (e.g. "C6").
    pub config_name: String,
    /// Architecture summary (e.g. `16-DDR-buf;16-CHN;8-WAY;4-DIE`).
    pub architecture: String,
    /// Workload label (e.g. "SW" for sequential write).
    pub workload: String,
    /// DRAM-buffer policy label ("cache" / "no cache").
    pub policy: String,
    /// Host commands completed.
    pub commands: u64,
    /// Host payload bytes moved.
    pub bytes: u64,
    /// Simulated time from the first admission to the last completion.
    pub elapsed: SimTime,
    /// Host-visible throughput in MB/s (the paper's `SSD` column).
    pub throughput_mbps: f64,
    /// Host-visible I/O operations per second.
    pub iops: f64,
    /// Write amplification factor applied by the FTL abstraction.
    pub waf: f64,
    /// Physical NAND page programs issued (host + amplified traffic).
    pub nand_page_programs: u64,
    /// Physical NAND page reads issued.
    pub nand_page_reads: u64,
    /// End-to-end command latency distribution.
    pub latency: LatencyHistogram,
    /// Per-component utilization.
    pub utilization: UtilizationBreakdown,
}

impl PerfReport {
    /// Mean command latency.
    pub fn mean_latency(&self) -> SimTime {
        self.latency.mean()
    }

    /// Approximate 99th-percentile command latency.
    pub fn p99_latency(&self) -> SimTime {
        self.latency.percentile(99.0)
    }

    /// A compact single-line summary, handy for sweep printouts.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<18} {:<10} {:<9} {:>9.1} MB/s {:>11.0} IOPS  mean {:>10}  p99 {:>10}",
            self.config_name,
            self.workload,
            self.policy,
            self.throughput_mbps,
            self.iops,
            self.mean_latency(),
            self.p99_latency(),
        )
    }
}

impl fmt::Display for PerfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "configuration : {} ({})",
            self.config_name, self.architecture
        )?;
        writeln!(f, "workload      : {} ({})", self.workload, self.policy)?;
        writeln!(f, "commands      : {}", self.commands)?;
        writeln!(f, "payload       : {:.1} MB", self.bytes as f64 / 1e6)?;
        writeln!(f, "elapsed       : {}", self.elapsed)?;
        writeln!(
            f,
            "throughput    : {:.1} MB/s ({:.0} IOPS)",
            self.throughput_mbps, self.iops
        )?;
        writeln!(f, "write ampl.   : {:.2}", self.waf)?;
        writeln!(
            f,
            "nand traffic  : {} programs, {} reads",
            self.nand_page_programs, self.nand_page_reads
        )?;
        writeln!(
            f,
            "latency       : mean {}, p99 {}",
            self.mean_latency(),
            self.p99_latency()
        )?;
        writeln!(
            f,
            "utilization   : host {:.0}%  dram {:.0}%  cpu {:.0}%  ahb {:.0}%  channel {:.0}%  die {:.0}%",
            self.utilization.host_link * 100.0,
            self.utilization.dram * 100.0,
            self.utilization.cpu * 100.0,
            self.utilization.ahb * 100.0,
            self.utilization.channel_bus * 100.0,
            self.utilization.die * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PerfReport {
        let mut latency = LatencyHistogram::new();
        latency.record(SimTime::from_us(100));
        latency.record(SimTime::from_us(300));
        PerfReport {
            config_name: "C1".to_string(),
            architecture: "4-DDR-buf;4-CHN;4-WAY;2-DIE".to_string(),
            workload: "SW".to_string(),
            policy: "cache".to_string(),
            commands: 2,
            bytes: 8192,
            elapsed: SimTime::from_us(400),
            throughput_mbps: 20.48,
            iops: 5000.0,
            waf: 1.0,
            nand_page_programs: 4,
            nand_page_reads: 0,
            latency,
            utilization: UtilizationBreakdown {
                host_link: 0.5,
                dram: 0.1,
                cpu: 0.2,
                ahb: 0.05,
                channel_bus: 0.3,
                die: 0.6,
            },
        }
    }

    #[test]
    fn latency_accessors() {
        let r = report();
        assert_eq!(r.mean_latency().as_us(), 200);
        assert!(r.p99_latency() >= r.mean_latency());
    }

    #[test]
    fn display_contains_key_fields() {
        let text = report().to_string();
        assert!(text.contains("C1"));
        assert!(text.contains("SW"));
        assert!(text.contains("MB/s"));
        assert!(text.contains("utilization"));
    }

    #[test]
    fn summary_line_is_single_line() {
        let line = report().summary_line();
        assert!(!line.contains('\n'));
        assert!(line.contains("C1"));
    }

    #[test]
    fn reports_are_serialization_ready() {
        // Pins the serde derives so experiments can dump reports once the
        // real serde replaces the vendored marker stand-in.
        fn assert_serialize<T: serde::Serialize>() {}
        assert_serialize::<PerfReport>();
        assert_serialize::<UtilizationBreakdown>();
    }
}
