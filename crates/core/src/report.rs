//! Performance reports: the per-component breakdown the paper's figures are
//! built from, extended with per-command-class tail-latency histograms.

use crate::metrics::{ClassHistograms, CommandClass, TailSummary};
use serde::{Deserialize, Serialize};
use ssdx_sim::stats::LatencyHistogram;
use ssdx_sim::SimTime;
use std::fmt;

/// Per-component utilization summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct UtilizationBreakdown {
    /// Host-interface link utilization (0–1).
    pub host_link: f64,
    /// Average DRAM data-bus utilization across buffers (0–1).
    pub dram: f64,
    /// Controller CPU utilization (0–1).
    pub cpu: f64,
    /// AHB system-interconnect utilization (0–1).
    pub ahb: f64,
    /// Average ONFI channel-bus utilization (0–1).
    pub channel_bus: f64,
    /// Average NAND die (array) utilization (0–1).
    pub die: f64,
}

/// The result of simulating one workload on one SSD configuration.
///
/// Derives `Serialize`/`Deserialize` (via the vendored serde stand-in) so
/// experiment harnesses can dump reports alongside their inputs.
#[must_use = "a performance report carries the measured results"]
#[derive(Clone, Serialize, Deserialize)]
pub struct PerfReport {
    /// Configuration name (e.g. "C6").
    pub config_name: String,
    /// Architecture summary (e.g. `16-DDR-buf;16-CHN;8-WAY;4-DIE`).
    pub architecture: String,
    /// Workload label (e.g. "SW" for sequential write).
    pub workload: String,
    /// DRAM-buffer policy label ("cache" / "no cache").
    pub policy: String,
    /// Host commands completed.
    pub commands: u64,
    /// Host payload bytes moved.
    pub bytes: u64,
    /// Simulated time from the first admission to the last completion.
    pub elapsed: SimTime,
    /// Host-visible throughput in MB/s (the paper's `SSD` column).
    pub throughput_mbps: f64,
    /// Host-visible I/O operations per second.
    pub iops: f64,
    /// Write amplification factor applied by the FTL abstraction.
    pub waf: f64,
    /// Physical NAND page programs issued (host + amplified traffic).
    pub nand_page_programs: u64,
    /// Physical NAND page reads issued.
    pub nand_page_reads: u64,
    /// End-to-end command latency distribution over the whole run — the
    /// legacy [`ssdx_sim::stats::LatencyHistogram`] (power-of-two buckets,
    /// part of the golden capture format), distinct from the metrics
    /// histograms in [`class_latency`](Self::class_latency).
    pub latency: LatencyHistogram,
    /// Per-component utilization.
    pub utilization: UtilizationBreakdown,
    /// Steady-state latency histograms per command class (read / write /
    /// trim), recorded past the session's
    /// [`SteadyStateCutoff`](crate::SteadyStateCutoff). Digest them with
    /// [`tails`](Self::tails) / [`tail`](Self::tail). Boxed: the inline
    /// bucket arrays are ~46 KB, and sweeps hold one report per point —
    /// boxing keeps report moves pointer-sized (one allocation at
    /// `finish`, far from the per-step hot path).
    pub class_latency: Box<ClassHistograms>,
}

impl fmt::Debug for PerfReport {
    /// The `Debug` rendering is the golden-equivalence capture format: it
    /// pins exactly the pre-metrics field set, character for character
    /// (`tests/golden/perf_reports.txt` compares it byte-for-byte across
    /// every subsystem corner). The tail-latency extension renders through
    /// [`tails`](Self::tails) and `Display` instead, so growing the report
    /// never invalidates the capture.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PerfReport")
            .field("config_name", &self.config_name)
            .field("architecture", &self.architecture)
            .field("workload", &self.workload)
            .field("policy", &self.policy)
            .field("commands", &self.commands)
            .field("bytes", &self.bytes)
            .field("elapsed", &self.elapsed)
            .field("throughput_mbps", &self.throughput_mbps)
            .field("iops", &self.iops)
            .field("waf", &self.waf)
            .field("nand_page_programs", &self.nand_page_programs)
            .field("nand_page_reads", &self.nand_page_reads)
            .field("latency", &self.latency)
            .field("utilization", &self.utilization)
            .finish()
    }
}

impl PerfReport {
    /// Mean command latency.
    pub fn mean_latency(&self) -> SimTime {
        self.latency.mean()
    }

    /// Approximate 99th-percentile command latency.
    pub fn p99_latency(&self) -> SimTime {
        self.latency.percentile(99.0)
    }

    /// Steady-state percentile digest of one command class.
    pub fn tail(&self, class: CommandClass) -> TailSummary {
        TailSummary::from_histogram(class, self.class_latency.class(class))
    }

    /// Steady-state percentile digests of all three classes, in
    /// [`CommandClass::ALL`] order.
    pub fn tails(&self) -> [TailSummary; 3] {
        self.class_latency.summaries()
    }

    /// Steady-state latency at quantile `q` (`0.0..=1.0`) for one command
    /// class.
    ///
    /// # Panics
    ///
    /// Panics if `q` is not within `0.0..=1.0`.
    pub fn tail_quantile(&self, class: CommandClass, q: f64) -> SimTime {
        self.class_latency.class(class).quantile(q)
    }

    /// A compact single-line summary, handy for sweep printouts.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<18} {:<10} {:<9} {:>9.1} MB/s {:>11.0} IOPS  mean {:>10}  p99 {:>10}",
            self.config_name,
            self.workload,
            self.policy,
            self.throughput_mbps,
            self.iops,
            self.mean_latency(),
            self.p99_latency(),
        )
    }
}

impl fmt::Display for PerfReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "configuration : {} ({})",
            self.config_name, self.architecture
        )?;
        writeln!(f, "workload      : {} ({})", self.workload, self.policy)?;
        writeln!(f, "commands      : {}", self.commands)?;
        writeln!(f, "payload       : {:.1} MB", self.bytes as f64 / 1e6)?;
        writeln!(f, "elapsed       : {}", self.elapsed)?;
        writeln!(
            f,
            "throughput    : {:.1} MB/s ({:.0} IOPS)",
            self.throughput_mbps, self.iops
        )?;
        writeln!(f, "write ampl.   : {:.2}", self.waf)?;
        writeln!(
            f,
            "nand traffic  : {} programs, {} reads",
            self.nand_page_programs, self.nand_page_reads
        )?;
        writeln!(
            f,
            "latency       : mean {}, p99 {}",
            self.mean_latency(),
            self.p99_latency()
        )?;
        for tail in self.tails() {
            if tail.count == 0 {
                continue;
            }
            writeln!(
                f,
                "tail ({:<5})  : p50 {}, p95 {}, p99 {}, p99.9 {} over {} steady-state samples",
                tail.class.label(),
                tail.p50,
                tail.p95,
                tail.p99,
                tail.p999,
                tail.count,
            )?;
        }
        writeln!(
            f,
            "utilization   : host {:.0}%  dram {:.0}%  cpu {:.0}%  ahb {:.0}%  channel {:.0}%  die {:.0}%",
            self.utilization.host_link * 100.0,
            self.utilization.dram * 100.0,
            self.utilization.cpu * 100.0,
            self.utilization.ahb * 100.0,
            self.utilization.channel_bus * 100.0,
            self.utilization.die * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PerfReport {
        let mut latency = LatencyHistogram::new();
        latency.record(SimTime::from_us(100));
        latency.record(SimTime::from_us(300));
        let mut class_latency = ClassHistograms::new();
        class_latency.record(ssdx_hostif::HostOp::Write, SimTime::from_us(100));
        class_latency.record(ssdx_hostif::HostOp::Write, SimTime::from_us(300));
        PerfReport {
            config_name: "C1".to_string(),
            architecture: "4-DDR-buf;4-CHN;4-WAY;2-DIE".to_string(),
            workload: "SW".to_string(),
            policy: "cache".to_string(),
            commands: 2,
            bytes: 8192,
            elapsed: SimTime::from_us(400),
            throughput_mbps: 20.48,
            iops: 5000.0,
            waf: 1.0,
            nand_page_programs: 4,
            nand_page_reads: 0,
            latency,
            utilization: UtilizationBreakdown {
                host_link: 0.5,
                dram: 0.1,
                cpu: 0.2,
                ahb: 0.05,
                channel_bus: 0.3,
                die: 0.6,
            },
            class_latency: Box::new(class_latency),
        }
    }

    #[test]
    fn latency_accessors() {
        let r = report();
        assert_eq!(r.mean_latency().as_us(), 200);
        assert!(r.p99_latency() >= r.mean_latency());
    }

    #[test]
    fn display_contains_key_fields() {
        let text = report().to_string();
        assert!(text.contains("C1"));
        assert!(text.contains("SW"));
        assert!(text.contains("MB/s"));
        assert!(text.contains("utilization"));
        // Only classes with steady-state samples print a tail line.
        assert!(text.contains("tail (write)"), "{text}");
        assert!(!text.contains("tail (read"), "{text}");
    }

    #[test]
    fn tail_accessors_digest_the_class_histograms() {
        let r = report();
        let write = r.tail(CommandClass::Write);
        assert_eq!(write.count, 2);
        assert!(write.p50 >= SimTime::from_us(100));
        assert!(write.p999 <= write.max);
        assert_eq!(r.tail(CommandClass::Read).count, 0);
        assert_eq!(r.tails()[1].class, CommandClass::Write);
        assert_eq!(r.tail_quantile(CommandClass::Write, 1.0), write.max);
    }

    #[test]
    fn debug_rendering_excludes_the_metrics_extension() {
        // The Debug format is the golden-capture format: extending the
        // report must never change it (tests/golden/perf_reports.txt is
        // compared byte-for-byte).
        let text = format!("{:?}", report());
        assert!(text.starts_with("PerfReport { config_name:"), "{text}");
        assert!(text.contains("utilization:"), "{text}");
        assert!(!text.contains("class_latency"), "{text}");
    }

    #[test]
    fn summary_line_is_single_line() {
        let line = report().summary_line();
        assert!(!line.contains('\n'));
        assert!(line.contains("C1"));
    }

    #[test]
    fn reports_are_serialization_ready() {
        // Pins the serde derives so experiments can dump reports once the
        // real serde replaces the vendored marker stand-in.
        fn assert_serialize<T: serde::Serialize>() {}
        assert_serialize::<PerfReport>();
        assert_serialize::<UtilizationBreakdown>();
    }
}
