//! Simulation-speed metering (the paper's Fig. 6) and sweep-speedup
//! measurement for the parallel executor.
//!
//! The paper quantifies simulator performance in **Kilo-Cycles Per Second
//! (KCPS)**: how many thousands of simulated controller-clock cycles the
//! simulator advances per wall-clock second. The measurement here follows
//! the same definition — simulated cycles are derived from the simulated
//! time span at the 200 MHz controller clock — so the qualitative trend
//! (simulation speed scales inversely with the amount of instantiated
//! resources) can be compared directly with the paper.
//!
//! [`measure_sweep_speedup`] extends the methodology one level up: it times
//! the same [`Explorer`] sweep sequentially and through a
//! [`ParallelExecutor`], verifies the two results are byte-identical, and
//! reports the wall-clock speedup — the number the `experiments -- speedup`
//! subcommand and the `fig7_parallel_speedup` bench record.

use crate::config::SsdConfig;
use crate::explorer::{Explorer, SweepError};
use crate::parallel::ParallelExecutor;
use crate::ssd::Ssd;
use serde::{Deserialize, Serialize};
use ssdx_hostif::{CommandSource, Workload};
use ssdx_sim::Frequency;
use std::time::Instant;

/// Result of one simulation-speed measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedPoint {
    /// Configuration name.
    pub config_name: String,
    /// Architecture summary.
    pub architecture: String,
    /// Total dies instantiated.
    pub total_dies: u32,
    /// Simulated controller-clock cycles covered by the run.
    pub simulated_cycles: u64,
    /// Wall-clock seconds the run took.
    pub wall_seconds: f64,
    /// Kilo-cycles of simulated time per wall-clock second.
    pub kcps: f64,
    /// Host-visible throughput of the measured run, MB/s.
    pub throughput_mbps: f64,
}

/// Runs `workload` on `config` and measures the achieved simulation speed.
pub fn measure_kcps(config: &SsdConfig, workload: &Workload) -> SpeedPoint {
    let mut ssd = Ssd::new(config.clone());
    let start = Instant::now();
    let report = ssd.simulate(workload);
    let wall_seconds = start.elapsed().as_secs_f64().max(1e-9);
    let clock = Frequency::from_mhz(200);
    let simulated_cycles = clock.time_to_cycles(report.elapsed);
    SpeedPoint {
        config_name: config.name.clone(),
        architecture: config.architecture_label(),
        total_dies: config.total_dies(),
        simulated_cycles,
        wall_seconds,
        kcps: simulated_cycles as f64 / 1_000.0 / wall_seconds,
        throughput_mbps: report.throughput_mbps,
    }
}

/// Measures every configuration in `configs` with the same workload.
pub fn measure_kcps_sweep(configs: &[SsdConfig], workload: &Workload) -> Vec<SpeedPoint> {
    configs.iter().map(|c| measure_kcps(c, workload)).collect()
}

/// Result of one sequential-vs-parallel sweep timing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpeedup {
    /// Number of sweep points evaluated by each run.
    pub points: usize,
    /// Worker threads the parallel run actually used (the configured count
    /// clamped to the point count — more workers than points would idle).
    pub threads: usize,
    /// Wall-clock seconds of the sequential [`Explorer::run`].
    pub sequential_seconds: f64,
    /// Wall-clock seconds of the [`ParallelExecutor`] run.
    pub parallel_seconds: f64,
    /// `true` iff the two sweeps were byte-identical (always expected; a
    /// `false` here is a determinism bug worth a report).
    pub identical: bool,
}

impl SweepSpeedup {
    /// Wall-clock speedup of the parallel run over the sequential one
    /// (values above 1.0 mean the parallel run was faster).
    pub fn speedup(&self) -> f64 {
        self.sequential_seconds / self.parallel_seconds.max(1e-12)
    }

    /// One aligned summary row, used by the experiment drivers.
    pub fn summary_line(&self) -> String {
        format!(
            "{:>3} points, {:>2} threads: sequential {:>8.3} s, parallel {:>8.3} s, speedup {:>5.2}x{}",
            self.points,
            self.threads,
            self.sequential_seconds,
            self.parallel_seconds,
            self.speedup(),
            if self.identical { "" } else { "  [MISMATCH]" }
        )
    }
}

/// Times `explorer` once sequentially and once on a [`ParallelExecutor`]
/// with `threads` workers, checking the two [`Sweep`](crate::Sweep)s are
/// byte-identical.
///
/// Wall-clock speedup depends on the host machine (points ÷ threads cores
/// must actually exist for the ideal factor); the byte-identity in
/// [`SweepSpeedup::identical`] must hold everywhere. To compare several
/// thread counts against one shared sequential baseline (saving the
/// redundant sequential re-runs), use [`measure_sweep_speedups`].
///
/// # Errors
///
/// Propagates any [`SweepError`] from either run.
pub fn measure_sweep_speedup<S>(
    explorer: &Explorer,
    source: &S,
    threads: usize,
) -> Result<SweepSpeedup, SweepError>
where
    S: CommandSource + Sync + ?Sized,
{
    let mut rows = measure_sweep_speedups(explorer, source, &[threads])?;
    Ok(rows.pop().expect("one thread count yields one row"))
}

/// Times the sequential [`Explorer::run`] **once**, then one
/// [`ParallelExecutor`] run per entry of `thread_counts`, returning one
/// [`SweepSpeedup`] row per count — all sharing the single sequential
/// baseline. Every parallel sweep is checked byte-identical against it.
///
/// # Errors
///
/// Propagates any [`SweepError`] from any run.
pub fn measure_sweep_speedups<S>(
    explorer: &Explorer,
    source: &S,
    thread_counts: &[usize],
) -> Result<Vec<SweepSpeedup>, SweepError>
where
    S: CommandSource + Sync + ?Sized,
{
    // One untimed warm-up run so the timed sequential baseline is not
    // penalised by cold allocator/page-cache state relative to the parallel
    // rows that follow it (which would overstate the parallel win).
    let _ = explorer.run(source)?;

    let start = Instant::now();
    let sequential = explorer.run(source)?;
    let sequential_seconds = start.elapsed().as_secs_f64().max(1e-9);
    let baseline = format!("{sequential:?}");

    thread_counts
        .iter()
        .map(|&threads| {
            let executor = ParallelExecutor::with_threads(threads);
            let start = Instant::now();
            let parallel = executor.run(explorer, source)?;
            let parallel_seconds = start.elapsed().as_secs_f64().max(1e-9);
            Ok(SweepSpeedup {
                points: sequential.len(),
                threads: executor.workers_for(sequential.len()),
                sequential_seconds,
                parallel_seconds,
                identical: baseline == format!("{parallel:?}"),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdx_hostif::AccessPattern;

    #[test]
    fn kcps_is_positive_and_consistent() {
        let cfg = SsdConfig::builder("speed-test")
            .topology(2, 2, 1)
            .dram_buffers(2)
            .build()
            .unwrap();
        let workload = Workload::builder(AccessPattern::SequentialWrite)
            .command_count(128)
            .build();
        let point = measure_kcps(&cfg, &workload);
        assert!(point.kcps > 0.0);
        assert!(point.simulated_cycles > 0);
        assert!(point.wall_seconds > 0.0);
        let recomputed = point.simulated_cycles as f64 / 1_000.0 / point.wall_seconds;
        assert!((recomputed - point.kcps).abs() < 1e-6);
    }

    #[test]
    fn sweep_covers_all_configs() {
        let configs = vec![
            SsdConfig::builder("a").topology(1, 1, 1).dram_buffers(1).build().unwrap(),
            SsdConfig::builder("b").topology(2, 2, 2).dram_buffers(2).build().unwrap(),
        ];
        let workload = Workload::builder(AccessPattern::SequentialWrite)
            .command_count(64)
            .build();
        let points = measure_kcps_sweep(&configs, &workload);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].config_name, "a");
        assert_eq!(points[1].total_dies, 8);
    }

    #[test]
    fn sweep_speedup_verifies_byte_identity() {
        use crate::explorer::Explorer;
        let base = SsdConfig::builder("speedup")
            .topology(2, 2, 1)
            .dram_buffers(2)
            .build()
            .unwrap();
        let explorer = Explorer::new(base).over(crate::explorer::Axis::over(
            "seed",
            [1u64, 2, 3, 4],
            |cfg, &s| cfg.seed = s,
        ));
        let workload = Workload::builder(AccessPattern::SequentialWrite)
            .command_count(64)
            .build();
        let speedup = measure_sweep_speedup(&explorer, &workload, 2).unwrap();
        assert!(speedup.identical, "parallel sweep must be byte-identical");
        assert_eq!(speedup.points, 4);
        assert_eq!(speedup.threads, 2);
        assert!(speedup.sequential_seconds > 0.0);
        assert!(speedup.parallel_seconds > 0.0);
        assert!(speedup.speedup() > 0.0);
        assert!(speedup.summary_line().contains("speedup"));
        assert!(!speedup.summary_line().contains("MISMATCH"));

        // The multi-count meter times the sequential baseline exactly once
        // and shares it across every row.
        let rows = measure_sweep_speedups(&explorer, &workload, &[1, 2]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].sequential_seconds, rows[1].sequential_seconds);
        assert!(rows.iter().all(|r| r.identical));
        assert_eq!(rows[1].threads, 2);
    }
}
