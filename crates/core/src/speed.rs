//! Simulation-speed metering (the paper's Fig. 6) and sweep-speedup
//! measurement for the parallel executor.
//!
//! The paper quantifies simulator performance in **Kilo-Cycles Per Second
//! (KCPS)**: how many thousands of simulated controller-clock cycles the
//! simulator advances per wall-clock second. The measurement here follows
//! the same definition — simulated cycles are derived from the simulated
//! time span at the 200 MHz controller clock — so the qualitative trend
//! (simulation speed scales inversely with the amount of instantiated
//! resources) can be compared directly with the paper.
//!
//! [`measure_sweep_speedup`] extends the methodology one level up: it times
//! the same [`Explorer`] sweep sequentially and through a
//! [`ParallelExecutor`], verifies the two results are byte-identical, and
//! reports the wall-clock speedup — the number the `experiments -- speedup`
//! subcommand and the `fig7_parallel_speedup` bench record.

use crate::config::SsdConfig;
use crate::configs::table3_configs;
use crate::explorer::{Axis, Explorer, SweepError};
use crate::parallel::ParallelExecutor;
use crate::ssd::Ssd;
use serde::{Deserialize, Serialize};
use ssdx_hostif::{AccessPattern, CommandSource, Workload};
use ssdx_sim::Frequency;
use std::fmt::Write as _;
use std::time::Instant;

/// Result of one simulation-speed measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedPoint {
    /// Configuration name.
    pub config_name: String,
    /// Architecture summary.
    pub architecture: String,
    /// Total dies instantiated.
    pub total_dies: u32,
    /// Simulated controller-clock cycles covered by the run.
    pub simulated_cycles: u64,
    /// Wall-clock seconds the run took.
    pub wall_seconds: f64,
    /// Kilo-cycles of simulated time per wall-clock second.
    pub kcps: f64,
    /// Host-visible throughput of the measured run, MB/s.
    pub throughput_mbps: f64,
    /// Host commands executed by the run.
    pub commands: u64,
    /// Host commands simulated per wall-clock second — the platform's
    /// primary simulation-speed figure of merit.
    pub commands_per_sec: f64,
}

/// Runs `workload` on `config` and measures the achieved simulation speed.
pub fn measure_kcps(config: &SsdConfig, workload: &Workload) -> SpeedPoint {
    let mut ssd = Ssd::new(config.clone());
    let start = Instant::now();
    let report = ssd.simulate(workload);
    let wall_seconds = start.elapsed().as_secs_f64().max(1e-9);
    let clock = Frequency::from_mhz(200);
    let simulated_cycles = clock.time_to_cycles(report.elapsed);
    SpeedPoint {
        config_name: config.name.clone(),
        architecture: config.architecture_label(),
        total_dies: config.total_dies(),
        simulated_cycles,
        wall_seconds,
        kcps: simulated_cycles as f64 / 1_000.0 / wall_seconds,
        throughput_mbps: report.throughput_mbps,
        commands: report.commands,
        commands_per_sec: report.commands as f64 / wall_seconds,
    }
}

/// Measures every configuration in `configs` with the same workload.
pub fn measure_kcps_sweep(configs: &[SsdConfig], workload: &Workload) -> Vec<SpeedPoint> {
    configs.iter().map(|c| measure_kcps(c, workload)).collect()
}

/// Result of one sequential-vs-parallel sweep timing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpeedup {
    /// Number of sweep points evaluated by each run.
    pub points: usize,
    /// Worker threads the parallel run actually used (the configured count
    /// clamped to the point count — more workers than points would idle).
    pub threads: usize,
    /// Wall-clock seconds of the sequential [`Explorer::run`].
    pub sequential_seconds: f64,
    /// Wall-clock seconds of the [`ParallelExecutor`] run.
    pub parallel_seconds: f64,
    /// `true` iff the two sweeps were byte-identical (always expected; a
    /// `false` here is a determinism bug worth a report).
    pub identical: bool,
}

impl SweepSpeedup {
    /// Wall-clock speedup of the parallel run over the sequential one
    /// (values above 1.0 mean the parallel run was faster).
    pub fn speedup(&self) -> f64 {
        self.sequential_seconds / self.parallel_seconds.max(1e-12)
    }

    /// One aligned summary row, used by the experiment drivers.
    pub fn summary_line(&self) -> String {
        format!(
            "{:>3} points, {:>2} threads: sequential {:>8.3} s, parallel {:>8.3} s, speedup {:>5.2}x{}",
            self.points,
            self.threads,
            self.sequential_seconds,
            self.parallel_seconds,
            self.speedup(),
            if self.identical { "" } else { "  [MISMATCH]" }
        )
    }
}

/// Times `explorer` once sequentially and once on a [`ParallelExecutor`]
/// with `threads` workers, checking the two [`Sweep`](crate::Sweep)s are
/// byte-identical.
///
/// Wall-clock speedup depends on the host machine (points ÷ threads cores
/// must actually exist for the ideal factor); the byte-identity in
/// [`SweepSpeedup::identical`] must hold everywhere. To compare several
/// thread counts against one shared sequential baseline (saving the
/// redundant sequential re-runs), use [`measure_sweep_speedups`].
///
/// # Errors
///
/// Propagates any [`SweepError`] from either run.
pub fn measure_sweep_speedup<S>(
    explorer: &Explorer,
    source: &S,
    threads: usize,
) -> Result<SweepSpeedup, SweepError>
where
    S: CommandSource + Sync + ?Sized,
{
    let mut rows = measure_sweep_speedups(explorer, source, &[threads])?;
    Ok(rows.pop().expect("one thread count yields one row"))
}

/// Times the sequential [`Explorer::run`] **once**, then one
/// [`ParallelExecutor`] run per entry of `thread_counts`, returning one
/// [`SweepSpeedup`] row per count — all sharing the single sequential
/// baseline. Every parallel sweep is checked byte-identical against it.
///
/// # Errors
///
/// Propagates any [`SweepError`] from any run.
pub fn measure_sweep_speedups<S>(
    explorer: &Explorer,
    source: &S,
    thread_counts: &[usize],
) -> Result<Vec<SweepSpeedup>, SweepError>
where
    S: CommandSource + Sync + ?Sized,
{
    // One untimed warm-up run so the timed sequential baseline is not
    // penalised by cold allocator/page-cache state relative to the parallel
    // rows that follow it (which would overstate the parallel win).
    let _ = explorer.run(source)?;

    let start = Instant::now();
    let sequential = explorer.run(source)?;
    let sequential_seconds = start.elapsed().as_secs_f64().max(1e-9);
    let baseline = format!("{sequential:?}");

    thread_counts
        .iter()
        .map(|&threads| {
            let executor = ParallelExecutor::with_threads(threads);
            let start = Instant::now();
            let parallel = executor.run(explorer, source)?;
            let parallel_seconds = start.elapsed().as_secs_f64().max(1e-9);
            Ok(SweepSpeedup {
                points: sequential.len(),
                threads: executor.workers_for(sequential.len()),
                sequential_seconds,
                parallel_seconds,
                identical: baseline == format!("{parallel:?}"),
            })
        })
        .collect()
}

/// Timing of the parallel leg of a [`SpeedBaseline`]: the same fig6-style
/// sweep fanned out over a [`ParallelExecutor`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelSpeed {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock seconds for the whole sweep.
    pub wall_seconds: f64,
    /// Aggregate commands simulated per wall-clock second across all points.
    pub commands_per_sec: f64,
    /// `true` iff the parallel sweep was byte-identical to the sequential
    /// one (always expected; `false` is a determinism bug).
    pub identical: bool,
}

/// A machine-readable simulation-speed baseline: the paper's Fig. 6
/// methodology (one run per Table III configuration) measured in host
/// commands per wall-clock second, sequentially and through the parallel
/// executor. Serialised to `BENCH_speed.json` by `experiments -- speed
/// --json` and gated by the CI perf-smoke job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedBaseline {
    /// Format version of the JSON emission.
    pub schema: u32,
    /// Workload description.
    pub workload: String,
    /// Host commands per configuration run.
    pub commands_per_config: u64,
    /// Timed repeats per configuration (the fastest is kept).
    pub repeats: u32,
    /// Hardware threads the machine exposes.
    pub hardware_threads: usize,
    /// Per-configuration measurements (fastest repeat each).
    pub points: Vec<SpeedPoint>,
    /// Geometric mean of the per-configuration commands/sec — the gated
    /// aggregate (geomean, so no single huge configuration dominates).
    pub geomean_commands_per_sec: f64,
    /// Total sequential wall-clock seconds across all points.
    pub total_wall_seconds: f64,
    /// The parallel-executor leg.
    pub parallel: ParallelSpeed,
}

impl SpeedBaseline {
    /// Serialises the baseline as pretty-printed JSON.
    ///
    /// Hand-rolled on purpose: the workspace's vendored `serde` is a marker
    /// stand-in (no registry is reachable from this environment), so the
    /// emission drives a `fmt::Write` buffer directly. The format is pinned
    /// by a unit test; [`parse_geomean`](Self::parse_geomean) reads the one
    /// field the CI gate needs back out.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + self.points.len() * 256);
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"schema\": {},", self.schema);
        let _ = writeln!(out, "  \"workload\": \"{}\",", self.workload);
        let _ = writeln!(
            out,
            "  \"commands_per_config\": {},",
            self.commands_per_config
        );
        let _ = writeln!(out, "  \"repeats\": {},", self.repeats);
        let _ = writeln!(out, "  \"hardware_threads\": {},", self.hardware_threads);
        let _ = writeln!(out, "  \"points\": [");
        for (i, p) in self.points.iter().enumerate() {
            let _ = writeln!(out, "    {{");
            let _ = writeln!(out, "      \"config\": \"{}\",", p.config_name);
            let _ = writeln!(out, "      \"architecture\": \"{}\",", p.architecture);
            let _ = writeln!(out, "      \"total_dies\": {},", p.total_dies);
            let _ = writeln!(out, "      \"commands\": {},", p.commands);
            let _ = writeln!(
                out,
                "      \"commands_per_sec\": {:.1},",
                p.commands_per_sec
            );
            let _ = writeln!(out, "      \"kcps\": {:.1},", p.kcps);
            let _ = writeln!(out, "      \"wall_seconds\": {:.6},", p.wall_seconds);
            let _ = writeln!(out, "      \"simulated_cycles\": {},", p.simulated_cycles);
            let _ = writeln!(out, "      \"throughput_mbps\": {:.2}", p.throughput_mbps);
            let _ = writeln!(
                out,
                "    }}{}",
                if i + 1 < self.points.len() { "," } else { "" }
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(
            out,
            "  \"geomean_commands_per_sec\": {:.1},",
            self.geomean_commands_per_sec
        );
        let _ = writeln!(
            out,
            "  \"total_wall_seconds\": {:.6},",
            self.total_wall_seconds
        );
        let _ = writeln!(out, "  \"parallel\": {{");
        let _ = writeln!(out, "    \"threads\": {},", self.parallel.threads);
        let _ = writeln!(
            out,
            "    \"wall_seconds\": {:.6},",
            self.parallel.wall_seconds
        );
        let _ = writeln!(
            out,
            "    \"commands_per_sec\": {:.1},",
            self.parallel.commands_per_sec
        );
        let _ = writeln!(out, "    \"identical\": {}", self.parallel.identical);
        let _ = writeln!(out, "  }}");
        let _ = writeln!(out, "}}");
        out
    }

    /// Extracts `geomean_commands_per_sec` from a JSON emission produced by
    /// [`to_json`](Self::to_json) — the single field the CI regression gate
    /// compares. Returns `None` when the field is missing or malformed.
    pub fn parse_geomean(json: &str) -> Option<f64> {
        let key = "\"geomean_commands_per_sec\":";
        let at = json.find(key)? + key.len();
        let rest = json[at..].trim_start();
        let end = rest
            .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    }

    /// One aligned human-readable table of the baseline, built on one shared
    /// `fmt::Write` buffer.
    pub fn to_table(&self) -> String {
        let mut out = String::with_capacity(256 + self.points.len() * 96);
        let _ = writeln!(
            out,
            "{:<6} {:<34} {:>12} {:>10} {:>12}",
            "config", "architecture", "cmds/s", "KCPS", "wall (s)"
        );
        for p in &self.points {
            let _ = writeln!(
                out,
                "{:<6} {:<34} {:>12.0} {:>10.1} {:>12.4}",
                p.config_name, p.architecture, p.commands_per_sec, p.kcps, p.wall_seconds
            );
        }
        let _ = writeln!(
            out,
            "geomean {:.0} cmds/s sequential; parallel sweep {:.0} cmds/s on {} thread(s){}",
            self.geomean_commands_per_sec,
            self.parallel.commands_per_sec,
            self.parallel.threads,
            if self.parallel.identical {
                ""
            } else {
                "  [MISMATCH]"
            }
        );
        out
    }
}

/// Measures the fig6-style simulation-speed baseline: the Table III
/// configurations under the canonical 4 KB sequential-write workload, each
/// timed `repeats` times (fastest kept, first run doubling as warm-up), plus
/// one parallel-executor sweep over the same configurations.
///
/// Every repeat's `PerfReport` is asserted byte-identical to the first — a
/// free determinism check riding along with every speed measurement — and
/// the parallel sweep is verified byte-identical to a sequential one.
///
/// # Panics
///
/// Panics if a repeat or the parallel sweep diverges (a determinism bug),
/// or if `repeats` is zero.
pub fn measure_fig6_baseline(commands: u64, repeats: u32) -> SpeedBaseline {
    assert!(repeats > 0, "at least one timed repeat is required");
    let workload = Workload::builder(AccessPattern::SequentialWrite)
        .command_count(commands)
        .build();
    // The same steady-state shrink the experiment drivers apply: keep the
    // aggregate write cache well below the workload footprint so the run
    // measures the pipeline, not the cache-fill transient.
    let configs: Vec<SsdConfig> = table3_configs()
        .into_iter()
        .map(|mut cfg| {
            cfg.dram_buffer_capacity = 128 * 1024;
            cfg
        })
        .collect();

    let mut points = Vec::with_capacity(configs.len());
    let mut total_wall = 0.0;
    for cfg in &configs {
        // Untimed warm-up (allocator, lazily populated wear maps).
        let warm = Ssd::new(cfg.clone()).simulate(&workload);
        let reference = format!("{warm:?}");
        let mut best: Option<SpeedPoint> = None;
        for _ in 0..repeats {
            let mut ssd = Ssd::new(cfg.clone());
            let start = Instant::now();
            let report = ssd.simulate(&workload);
            let wall_seconds = start.elapsed().as_secs_f64().max(1e-9);
            assert_eq!(
                format!("{report:?}"),
                reference,
                "determinism violation: repeat diverged on {}",
                cfg.name
            );
            let clock = Frequency::from_mhz(200);
            let simulated_cycles = clock.time_to_cycles(report.elapsed);
            let point = SpeedPoint {
                config_name: cfg.name.clone(),
                architecture: cfg.architecture_label(),
                total_dies: cfg.total_dies(),
                simulated_cycles,
                wall_seconds,
                kcps: simulated_cycles as f64 / 1_000.0 / wall_seconds,
                throughput_mbps: report.throughput_mbps,
                commands: report.commands,
                commands_per_sec: report.commands as f64 / wall_seconds,
            };
            if best
                .as_ref()
                .map_or(true, |b| point.wall_seconds < b.wall_seconds)
            {
                best = Some(point);
            }
        }
        let best = best.expect("repeats >= 1");
        total_wall += best.wall_seconds;
        points.push(best);
    }

    let geomean = (points
        .iter()
        .map(|p| p.commands_per_sec.max(1e-12).ln())
        .sum::<f64>()
        / points.len() as f64)
        .exp();

    // Parallel leg: the same configurations as one Explorer sweep through
    // the ParallelExecutor, verified byte-identical to a sequential run.
    let explorer = Explorer::new(configs[0].clone()).over(Axis::configs("config", configs.clone()));
    let sequential = explorer
        .run(&workload)
        .expect("table3 configurations validate");
    let executor = ParallelExecutor::new();
    let start = Instant::now();
    let parallel_sweep = executor
        .run(&explorer, &workload)
        .expect("table3 configurations validate");
    let parallel_wall = start.elapsed().as_secs_f64().max(1e-9);
    let identical = format!("{sequential:?}") == format!("{parallel_sweep:?}");
    assert!(identical, "determinism violation: parallel sweep diverged");

    let total_commands = commands * configs.len() as u64;
    SpeedBaseline {
        schema: 1,
        workload: "sequential-write-4k".to_string(),
        commands_per_config: commands,
        repeats,
        hardware_threads: executor.threads(),
        points,
        geomean_commands_per_sec: geomean,
        total_wall_seconds: total_wall,
        parallel: ParallelSpeed {
            threads: executor.threads(),
            wall_seconds: parallel_wall,
            commands_per_sec: total_commands as f64 / parallel_wall,
            identical,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kcps_is_positive_and_consistent() {
        let cfg = SsdConfig::builder("speed-test")
            .topology(2, 2, 1)
            .dram_buffers(2)
            .build()
            .unwrap();
        let workload = Workload::builder(AccessPattern::SequentialWrite)
            .command_count(128)
            .build();
        let point = measure_kcps(&cfg, &workload);
        assert!(point.kcps > 0.0);
        assert!(point.simulated_cycles > 0);
        assert!(point.wall_seconds > 0.0);
        let recomputed = point.simulated_cycles as f64 / 1_000.0 / point.wall_seconds;
        assert!((recomputed - point.kcps).abs() < 1e-6);
    }

    #[test]
    fn sweep_covers_all_configs() {
        let configs = vec![
            SsdConfig::builder("a")
                .topology(1, 1, 1)
                .dram_buffers(1)
                .build()
                .unwrap(),
            SsdConfig::builder("b")
                .topology(2, 2, 2)
                .dram_buffers(2)
                .build()
                .unwrap(),
        ];
        let workload = Workload::builder(AccessPattern::SequentialWrite)
            .command_count(64)
            .build();
        let points = measure_kcps_sweep(&configs, &workload);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].config_name, "a");
        assert_eq!(points[1].total_dies, 8);
    }

    #[test]
    fn sweep_speedup_verifies_byte_identity() {
        use crate::explorer::Explorer;
        let base = SsdConfig::builder("speedup")
            .topology(2, 2, 1)
            .dram_buffers(2)
            .build()
            .unwrap();
        let explorer = Explorer::new(base).over(crate::explorer::Axis::over(
            "seed",
            [1u64, 2, 3, 4],
            |cfg, &s| cfg.seed = s,
        ));
        let workload = Workload::builder(AccessPattern::SequentialWrite)
            .command_count(64)
            .build();
        let speedup = measure_sweep_speedup(&explorer, &workload, 2).unwrap();
        assert!(speedup.identical, "parallel sweep must be byte-identical");
        assert_eq!(speedup.points, 4);
        assert_eq!(speedup.threads, 2);
        assert!(speedup.sequential_seconds > 0.0);
        assert!(speedup.parallel_seconds > 0.0);
        assert!(speedup.speedup() > 0.0);
        assert!(speedup.summary_line().contains("speedup"));
        assert!(!speedup.summary_line().contains("MISMATCH"));

        // The multi-count meter times the sequential baseline exactly once
        // and shares it across every row.
        let rows = measure_sweep_speedups(&explorer, &workload, &[1, 2]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].sequential_seconds, rows[1].sequential_seconds);
        assert!(rows.iter().all(|r| r.identical));
        assert_eq!(rows[1].threads, 2);
    }

    fn tiny_baseline() -> SpeedBaseline {
        SpeedBaseline {
            schema: 1,
            workload: "sequential-write-4k".to_string(),
            commands_per_config: 64,
            repeats: 2,
            hardware_threads: 4,
            points: vec![SpeedPoint {
                config_name: "C1".to_string(),
                architecture: "1-DDR-buf;1-CHN;1-WAY;1-DIE".to_string(),
                total_dies: 1,
                simulated_cycles: 200_000,
                wall_seconds: 0.25,
                kcps: 800.0,
                throughput_mbps: 1.125,
                commands: 64,
                commands_per_sec: 256.0,
            }],
            geomean_commands_per_sec: 256.0,
            total_wall_seconds: 0.25,
            parallel: ParallelSpeed {
                threads: 4,
                wall_seconds: 0.125,
                commands_per_sec: 512.0,
                identical: true,
            },
        }
    }

    #[test]
    fn baseline_json_round_trips_the_gated_field() {
        let json = tiny_baseline().to_json();
        assert_eq!(SpeedBaseline::parse_geomean(&json), Some(256.0));
        // The emission is stable enough for the CI artifact diff: pin the
        // field spellings the gate and the dashboard rely on.
        for needle in [
            "\"schema\": 1",
            "\"workload\": \"sequential-write-4k\"",
            "\"commands_per_config\": 64",
            "\"config\": \"C1\"",
            "\"commands_per_sec\": 256.0",
            "\"geomean_commands_per_sec\": 256.0",
            "\"identical\": true",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn parse_geomean_rejects_malformed_input() {
        assert_eq!(SpeedBaseline::parse_geomean(""), None);
        assert_eq!(SpeedBaseline::parse_geomean("{\"other\": 1}"), None);
        assert_eq!(
            SpeedBaseline::parse_geomean("\"geomean_commands_per_sec\": oops"),
            None
        );
        assert_eq!(
            SpeedBaseline::parse_geomean("\"geomean_commands_per_sec\": 123.5,"),
            Some(123.5)
        );
    }

    #[test]
    fn baseline_table_renders_on_one_buffer() {
        let table = tiny_baseline().to_table();
        assert!(table.contains("C1"));
        assert!(table.contains("geomean 256 cmds/s"));
        assert!(!table.contains("MISMATCH"));
    }

    #[test]
    fn fig6_baseline_measures_all_table3_points() {
        // Tiny command count: this is a structural test, not a benchmark.
        let baseline = measure_fig6_baseline(48, 1);
        assert_eq!(
            baseline.points.len(),
            crate::configs::table3_configs().len()
        );
        assert!(baseline.geomean_commands_per_sec > 0.0);
        assert!(baseline.parallel.identical);
        assert!(baseline.parallel.commands_per_sec > 0.0);
        assert_eq!(baseline.commands_per_config, 48);
        for p in &baseline.points {
            assert_eq!(p.commands, 48);
            assert!(p.commands_per_sec > 0.0);
            assert!(p.wall_seconds > 0.0);
        }
        let json = baseline.to_json();
        let parsed = SpeedBaseline::parse_geomean(&json).expect("geomean field present");
        assert!((parsed - baseline.geomean_commands_per_sec).abs() <= 0.05 + 1e-9);
    }
}
