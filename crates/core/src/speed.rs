//! Simulation-speed metering (the paper's Fig. 6).
//!
//! The paper quantifies simulator performance in **Kilo-Cycles Per Second
//! (KCPS)**: how many thousands of simulated controller-clock cycles the
//! simulator advances per wall-clock second. The measurement here follows
//! the same definition — simulated cycles are derived from the simulated
//! time span at the 200 MHz controller clock — so the qualitative trend
//! (simulation speed scales inversely with the amount of instantiated
//! resources) can be compared directly with the paper.

use crate::config::SsdConfig;
use crate::ssd::Ssd;
use serde::{Deserialize, Serialize};
use ssdx_hostif::Workload;
use ssdx_sim::Frequency;
use std::time::Instant;

/// Result of one simulation-speed measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedPoint {
    /// Configuration name.
    pub config_name: String,
    /// Architecture summary.
    pub architecture: String,
    /// Total dies instantiated.
    pub total_dies: u32,
    /// Simulated controller-clock cycles covered by the run.
    pub simulated_cycles: u64,
    /// Wall-clock seconds the run took.
    pub wall_seconds: f64,
    /// Kilo-cycles of simulated time per wall-clock second.
    pub kcps: f64,
    /// Host-visible throughput of the measured run, MB/s.
    pub throughput_mbps: f64,
}

/// Runs `workload` on `config` and measures the achieved simulation speed.
pub fn measure_kcps(config: &SsdConfig, workload: &Workload) -> SpeedPoint {
    let mut ssd = Ssd::new(config.clone());
    let start = Instant::now();
    let report = ssd.simulate(workload);
    let wall_seconds = start.elapsed().as_secs_f64().max(1e-9);
    let clock = Frequency::from_mhz(200);
    let simulated_cycles = clock.time_to_cycles(report.elapsed);
    SpeedPoint {
        config_name: config.name.clone(),
        architecture: config.architecture_label(),
        total_dies: config.total_dies(),
        simulated_cycles,
        wall_seconds,
        kcps: simulated_cycles as f64 / 1_000.0 / wall_seconds,
        throughput_mbps: report.throughput_mbps,
    }
}

/// Measures every configuration in `configs` with the same workload.
pub fn measure_kcps_sweep(configs: &[SsdConfig], workload: &Workload) -> Vec<SpeedPoint> {
    configs.iter().map(|c| measure_kcps(c, workload)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdx_hostif::AccessPattern;

    #[test]
    fn kcps_is_positive_and_consistent() {
        let cfg = SsdConfig::builder("speed-test")
            .topology(2, 2, 1)
            .dram_buffers(2)
            .build()
            .unwrap();
        let workload = Workload::builder(AccessPattern::SequentialWrite)
            .command_count(128)
            .build();
        let point = measure_kcps(&cfg, &workload);
        assert!(point.kcps > 0.0);
        assert!(point.simulated_cycles > 0);
        assert!(point.wall_seconds > 0.0);
        let recomputed = point.simulated_cycles as f64 / 1_000.0 / point.wall_seconds;
        assert!((recomputed - point.kcps).abs() < 1e-6);
    }

    #[test]
    fn sweep_covers_all_configs() {
        let configs = vec![
            SsdConfig::builder("a").topology(1, 1, 1).dram_buffers(1).build().unwrap(),
            SsdConfig::builder("b").topology(2, 2, 2).dram_buffers(2).build().unwrap(),
        ];
        let workload = Workload::builder(AccessPattern::SequentialWrite)
            .command_count(64)
            .build();
        let points = measure_kcps_sweep(&configs, &workload);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].config_name, "a");
        assert_eq!(points[1].total_dies, 8);
    }
}
