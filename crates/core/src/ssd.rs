//! The full-SSD virtual platform: every substrate wired together.
//!
//! [`Ssd`] instantiates the host interface, the DRAM data buffers, the
//! controller CPU and AMBA AHB interconnect, one channel/way controller per
//! NAND channel (each owning its dies), the per-channel ECC engines, the
//! optional compressor and the WAF-based FTL abstraction. Command streams
//! are pushed through the resulting pipeline by a
//! [`SimSession`]: [`Ssd::simulate`] runs any
//! [`CommandSource`] to completion in one call, [`Ssd::session`] returns
//! the steppable session for mid-run observation.
//!
//! The pipeline mirrors the architecture template of the paper's Fig. 1:
//!
//! ```text
//! host ──link──▶ DMA ──▶ DRAM buffer ──▶ CPU/AHB firmware ──▶ (compressor)
//!      ──▶ ECC encode ──▶ channel PP-DMA ──▶ ONFI bus ──▶ NAND program
//! ```
//!
//! with the read path traversing the same blocks in reverse (NAND read →
//! ONFI → ECC decode → DRAM → host link). Command completion toward the host
//! follows the configured [`CachePolicy`](crate::config::CachePolicy): with
//! the write cache, a write completes when its data reaches the DRAM
//! buffers; without it, only when the last NAND program finishes.

use crate::config::{ConfigError, SsdConfig};
use crate::layout::{PageAllocator, PageTarget};
use crate::metrics::ClassHistograms;
use crate::report::{PerfReport, UtilizationBreakdown};
use crate::session::SimSession;
use ssdx_channel::{ChannelConfig, ChannelController};
use ssdx_cpu::CpuModel;
use ssdx_dram::{AccessKind, DramBuffer};
use ssdx_ftl::WorkloadMix;
use ssdx_hostif::{
    CommandSource, CommandStream, HostCommand, HostInterface, HostOp, TracePlayer, Workload,
};
use ssdx_interconnect::{AhbBus, AhbConfig};
use ssdx_nand::{NandOp, OnfiBus};
use ssdx_sim::codec::{DecodeError, Decoder, Encoder};
use ssdx_sim::stats::LatencyHistogram;
use ssdx_sim::{Resource, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The assembled SSD virtual platform.
///
/// The platform is `Send` (all component models are plain data and
/// [`HostInterface`] requires `Send + Sync`), so a
/// [`ParallelExecutor`](crate::ParallelExecutor) worker can build and drive
/// a whole `Ssd` per sweep point; the `parallel` module's tests pin this at
/// compile time.
///
/// # Example
///
/// ```
/// use ssdx_core::{Ssd, SsdConfig};
/// use ssdx_hostif::{AccessPattern, Workload};
///
/// let mut ssd = Ssd::try_new(SsdConfig::default())?;
/// let workload = Workload::builder(AccessPattern::SequentialWrite)
///     .command_count(256)
///     .build();
/// let report = ssd.simulate(&workload);
/// assert!(report.throughput_mbps > 0.0);
/// # Ok::<(), ssdx_core::ConfigError>(())
/// ```
pub struct Ssd {
    pub(crate) config: SsdConfig,
    pub(crate) iface: Box<dyn HostInterface>,
    pub(crate) host_link: Resource,
    pub(crate) dram: Vec<DramBuffer>,
    pub(crate) cpus: Vec<CpuModel>,
    pub(crate) ahb: AhbBus,
    pub(crate) channels: Vec<ChannelController>,
    pub(crate) ecc_encoders: Vec<Resource>,
    pub(crate) ecc_decoders: Vec<Resource>,
    pub(crate) allocator: PageAllocator,
    pub(crate) aged_pe: u64,
    /// One-entry ECC encode-latency memo keyed by P/E count: the latency is
    /// a pure function of `(page size, pe)`, and recomputing it walks the
    /// codec's float pipeline once per page program on the hot path.
    ecc_encode_memo: (u64, SimTime),
    /// One-entry ECC decode-latency memo keyed by `(pe, raw-error bits)`.
    ecc_decode_memo: (u64, u64, SimTime),
}

impl Ssd {
    /// Builds the platform described by `config`, validating it first.
    ///
    /// This is the panic-free construction path: configurations from
    /// untrusted sources (text files, sweep mutators) surface their
    /// problems as [`ConfigError`] instead of aborting.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] produced by [`SsdConfig::validate`].
    pub fn try_new(config: SsdConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let iface = config.host_interface.build();
        let dram = (0..config.dram_buffers)
            .map(|i| DramBuffer::new(i, config.dram_timings))
            .collect();
        let channel_cfg = ChannelConfig::new(config.ways, config.dies_per_way)
            .with_gang(config.gang)
            .with_onfi(OnfiBus::new(config.onfi_speed));
        let channels = (0..config.channels)
            .map(|c| {
                let mut ch = ChannelController::new(c, channel_cfg, config.nand, config.seed);
                if !config.faults.is_healthy() {
                    ch.set_fault_profile(
                        config.faults.read_disturb_per_read,
                        config.faults.retention_scale,
                    );
                }
                ch
            })
            .collect();
        let ecc_encoders = (0..config.channels)
            .map(|c| Resource::new(format!("ecc-enc-{c}")))
            .collect();
        let ecc_decoders = (0..config.channels)
            .map(|c| Resource::new(format!("ecc-dec-{c}")))
            .collect();
        let allocator = PageAllocator::new(&config);
        let cpus = (0..config.cpu_cores)
            .map(|_| CpuModel::new(config.firmware))
            .collect();
        Ok(Ssd {
            iface,
            host_link: Resource::new("host-link"),
            dram,
            cpus,
            ahb: AhbBus::new(AhbConfig::paper_default()),
            channels,
            ecc_encoders,
            ecc_decoders,
            allocator,
            aged_pe: 0,
            ecc_encode_memo: (u64::MAX, SimTime::ZERO),
            ecc_decode_memo: (u64::MAX, 0, SimTime::ZERO),
            config,
        })
    }

    /// ECC encode latency for one page at the given wear, through the
    /// one-entry memo (identical value to calling the scheme directly).
    #[inline]
    pub(crate) fn ecc_encode_latency(&mut self, page_bytes: u32, pe: u64) -> SimTime {
        if self.ecc_encode_memo.0 != pe {
            self.ecc_encode_memo = (pe, self.config.ecc.encode_latency_for(page_bytes, pe));
        }
        self.ecc_encode_memo.1
    }

    /// ECC decode latency for one page at the given wear and expected raw
    /// error count, through the one-entry memo.
    #[inline]
    pub(crate) fn ecc_decode_latency(&mut self, page_bytes: u32, pe: u64, raw: f64) -> SimTime {
        let raw_bits = raw.to_bits();
        if self.ecc_decode_memo.0 != pe || self.ecc_decode_memo.1 != raw_bits {
            self.ecc_decode_memo = (
                pe,
                raw_bits,
                self.config.ecc.decode_latency_for(page_bytes, pe, raw),
            );
        }
        self.ecc_decode_memo.2
    }

    /// Builds the platform described by `config`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not validate. Prefer
    /// [`Ssd::try_new`] when the configuration comes from an untrusted
    /// source; `new` is a convenience for configurations that are known
    /// valid by construction (e.g. the built-in tables).
    pub fn new(config: SsdConfig) -> Self {
        Ssd::try_new(config).expect("invalid SSD configuration")
    }

    /// The configuration the platform was built from.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// The instantiated host interface model.
    pub fn host_interface(&self) -> &dyn HostInterface {
        self.iface.as_ref()
    }

    /// Ideal stand-alone bandwidth of the host interface in MB/s (the
    /// paper's "SATA ideal" / "PCIE ideal" series).
    pub fn interface_ideal_mbps(&self) -> f64 {
        self.iface.ideal_bandwidth() as f64 / 1e6
    }

    /// Artificially ages every NAND block to the given normalised rated
    /// endurance (0.0 = fresh, 1.0 = rated end of life), as the wear-out
    /// experiment of Fig. 5 does.
    pub fn age_to_normalized(&mut self, normalized: f64) {
        let pe = self.config.nand.wear.pe_at(normalized);
        self.aged_pe = pe;
        for ch in &mut self.channels {
            ch.age_all(pe);
        }
    }

    /// Current artificial P/E cycle count applied by
    /// [`age_to_normalized`](Self::age_to_normalized).
    pub fn aged_pe_cycles(&self) -> u64 {
        self.aged_pe
    }

    /// Clears all dynamic activity (busy windows, statistics, stripe state)
    /// while keeping configuration and wear.
    pub fn reset_activity(&mut self) {
        self.host_link.reset();
        for d in &mut self.dram {
            d.reset();
        }
        for cpu in &mut self.cpus {
            cpu.reset();
        }
        self.ahb.reset();
        for c in &mut self.channels {
            c.reset_activity();
        }
        for e in &mut self.ecc_encoders {
            e.reset();
        }
        for e in &mut self.ecc_decoders {
            e.reset();
        }
        self.allocator.reset();
    }

    /// Encodes the platform's mutable state, in stable field order: the
    /// host link, the artificial P/E age, each DRAM buffer, each CPU, the
    /// AHB bus, each channel (with its dies), each ECC encoder and decoder
    /// resource, then the page allocator (all counts construction-fixed, no
    /// length prefixes). The configuration, host interface, and the ECC
    /// latency memos (value-identical caches, re-primed lazily) are not
    /// snapshot state.
    pub(crate) fn encode_state(&self, enc: &mut Encoder) {
        self.host_link.encode_state(enc);
        enc.put_u64(self.aged_pe);
        for d in &self.dram {
            d.encode_state(enc);
        }
        for cpu in &self.cpus {
            cpu.encode_state(enc);
        }
        self.ahb.encode_state(enc);
        for c in &self.channels {
            c.encode_state(enc);
        }
        for e in &self.ecc_encoders {
            e.encode_state(enc);
        }
        for e in &self.ecc_decoders {
            e.encode_state(enc);
        }
        self.allocator.encode_state(enc);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state) onto
    /// a platform constructed from the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    pub(crate) fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        self.host_link.decode_state(dec)?;
        self.aged_pe = dec.get_u64()?;
        for d in &mut self.dram {
            d.decode_state(dec)?;
        }
        for cpu in &mut self.cpus {
            cpu.decode_state(dec)?;
        }
        self.ahb.decode_state(dec)?;
        for c in &mut self.channels {
            c.decode_state(dec)?;
        }
        for e in &mut self.ecc_encoders {
            e.decode_state(dec)?;
        }
        for e in &mut self.ecc_decoders {
            e.decode_state(dec)?;
        }
        self.allocator.decode_state(dec)?;
        self.ecc_encode_memo = (u64::MAX, SimTime::ZERO);
        self.ecc_decode_memo = (u64::MAX, 0, SimTime::ZERO);
        Ok(())
    }

    /// Opens a steppable [`SimSession`] over any [`CommandSource`]
    /// (synthetic [`Workload`]s, [`TracePlayer`] traces, explicit
    /// [`CommandStream`]s, closure generators, or user types).
    ///
    /// The session resets the platform's dynamic activity, materialises the
    /// source's command stream and derives the FTL workload mix from
    /// [`CommandSource::random_write_fraction`]. Drive it with
    /// [`step`](SimSession::step) / [`run_until`](SimSession::run_until)
    /// and close it with [`finish`](SimSession::finish).
    pub fn session<'a, S: CommandSource + ?Sized>(&'a mut self, source: &'a S) -> SimSession<'a> {
        let label = source.label();
        // Sources that own their stream (traces, explicit lists) are
        // borrowed. Generators materialise here — and a second time if
        // their `random_write_fraction` falls back to the default
        // estimator; generators that know their mix can pin it instead.
        let mix = WorkloadMix::mixed(source.random_write_fraction());
        let commands = source.commands();
        SimSession::new(self, label, commands, mix)
    }

    /// Runs any [`CommandSource`] through the full pipeline in one shot and
    /// reports the host-visible performance. Equivalent to
    /// `self.session(source).finish()`.
    pub fn simulate<S: CommandSource + ?Sized>(&mut self, source: &S) -> PerfReport {
        self.session(source).finish()
    }

    /// Runs a synthetic workload through the full pipeline.
    #[deprecated(
        since = "0.2.0",
        note = "use `simulate` — `Workload` implements `CommandSource`"
    )]
    pub fn run(&mut self, workload: &Workload) -> PerfReport {
        self.simulate(workload)
    }

    /// Replays a parsed trace through the full pipeline.
    #[deprecated(
        since = "0.2.0",
        note = "use `simulate` — `TracePlayer` implements `CommandSource`"
    )]
    pub fn run_trace(&mut self, trace: &TracePlayer) -> PerfReport {
        self.simulate(trace)
    }

    /// Runs an explicit command stream through the full pipeline with a
    /// pinned workload mix.
    #[deprecated(
        since = "0.2.0",
        note = "use `simulate` with a `CommandStream` (optionally pinning the mix \
                via `with_random_write_fraction`)"
    )]
    pub fn run_commands(
        &mut self,
        workload_label: &str,
        commands: &[HostCommand],
        mix: WorkloadMix,
    ) -> PerfReport {
        let stream = CommandStream::new(workload_label, commands.to_vec())
            .with_random_write_fraction(mix.random_fraction);
        self.simulate(&stream)
    }

    /// Maps one page of a linear FTL block onto a concrete
    /// channel/way/die/page target. The FTL's blocks are interpreted as
    /// *superblocks* spanning the whole array: consecutive pages of one FTL
    /// block stripe across channels, ways and dies (channel first), exactly
    /// like the WAF-mode write allocator, so the page-mapped mode enjoys the
    /// same internal parallelism a real controller would extract.
    pub(crate) fn target_for_block(&self, block_index: u32, page: u32) -> PageTarget {
        let total_dies = self.config.total_dies() as u64;
        let geometry = &self.config.nand.geometry;
        let global_page = block_index as u64 * geometry.pages_per_block as u64 + page as u64;
        let die_index = (global_page % total_dies) as u32;
        let channel = die_index % self.config.channels;
        let way = (die_index / self.config.channels) % self.config.ways;
        let die =
            (die_index / (self.config.channels * self.config.ways)) % self.config.dies_per_way;
        // Position of this page within its die, advancing page-first inside
        // blocks, alternating planes between blocks.
        let cursor = (global_page / total_dies) % geometry.pages_per_die();
        let page_in_block = (cursor % geometry.pages_per_block as u64) as u32;
        let block_linear = cursor / geometry.pages_per_block as u64;
        let plane = (block_linear % geometry.planes_per_die as u64) as u32;
        let block = ((block_linear / geometry.planes_per_die as u64)
            % geometry.blocks_per_plane as u64) as u32;
        PageTarget {
            channel,
            way,
            die,
            addr: ssdx_nand::PageAddr {
                plane,
                block,
                page: page_in_block,
            },
        }
    }

    /// Issues one physical page program (ECC encode, DRAM flush, channel
    /// transfer, NAND program) starting no earlier than `at`, returning the
    /// instant the array operation completes.
    pub(crate) fn program_page_at(
        &mut self,
        at: SimTime,
        buf: usize,
        offset: u64,
        target: PageTarget,
    ) -> SimTime {
        let page_bytes = self.config.nand.geometry.page_size_bytes;
        let raw_page_bytes = self.config.nand.geometry.raw_page_bytes();
        let PageTarget {
            channel,
            way,
            die,
            addr,
        } = target;
        let pe = self.channels[channel as usize]
            .die(way, die)
            .expect("targets are in range")
            .block_pe_cycles(addr);
        let enc_latency = self.ecc_encode_latency(page_bytes, pe);
        let enc = self.ecc_encoders[channel as usize].reserve(at, enc_latency);
        let flush = self.dram[buf]
            .access(enc.end, offset, page_bytes, AccessKind::Read)
            .end;
        self.channels[channel as usize]
            .execute(flush, way, die, NandOp::Program, addr, raw_page_bytes)
            .complete_at
    }

    /// Issues one block erase starting no earlier than `at`, returning the
    /// instant the array operation completes.
    pub(crate) fn erase_block_at(&mut self, at: SimTime, target: PageTarget) -> SimTime {
        let PageTarget {
            channel,
            way,
            die,
            mut addr,
        } = target;
        addr.page = 0;
        self.channels[channel as usize]
            .execute(at, way, die, NandOp::Erase, addr, 0)
            .complete_at
    }

    /// The full activity horizon at the given host-visible `elapsed` time:
    /// with the write cache, NAND programs keep running after the last
    /// host-visible completion, and those cycles must still count as busy
    /// time in the utilization figures.
    pub(crate) fn activity_horizon(&self, elapsed: SimTime) -> SimTime {
        let mut horizon = elapsed;
        for ch in &self.channels {
            for way in 0..self.config.ways {
                for die in 0..self.config.dies_per_way {
                    if let Ok(d) = ch.die(way, die) {
                        horizon = horizon.max(d.ready_at());
                    }
                }
            }
        }
        horizon
    }

    /// Per-component utilization over the given horizon.
    pub(crate) fn utilization_snapshot(&self, horizon: SimTime) -> UtilizationBreakdown {
        let mut channel_util = 0.0;
        let mut die_util = 0.0;
        let mut die_count = 0u32;
        for ch in &self.channels {
            channel_util += ch.bus_utilization(horizon);
            for way in 0..self.config.ways {
                for die in 0..self.config.dies_per_way {
                    if let Ok(d) = ch.die(way, die) {
                        die_util += d.utilization(horizon);
                        die_count += 1;
                    }
                }
            }
        }
        let dram_util: f64 = self
            .dram
            .iter()
            .map(|d| {
                if horizon.is_zero() {
                    0.0
                } else {
                    d.stats().bus_busy.as_ps() as f64 / horizon.as_ps() as f64
                }
            })
            .sum::<f64>()
            / self.dram.len() as f64;
        UtilizationBreakdown {
            host_link: self.host_link.utilization(horizon),
            dram: dram_util,
            cpu: self
                .cpus
                .iter()
                .map(|c| c.utilization(horizon))
                .sum::<f64>()
                / self.cpus.len() as f64,
            ahb: self.ahb.utilization(horizon),
            channel_bus: channel_util / self.channels.len() as f64,
            die: if die_count == 0 {
                0.0
            } else {
                die_util / die_count as f64
            },
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build_report(
        &self,
        workload_label: &str,
        commands: u64,
        total_bytes: u64,
        elapsed: SimTime,
        waf: f64,
        latency: LatencyHistogram,
        class_latency: ClassHistograms,
    ) -> PerfReport {
        let throughput_mbps = if elapsed.is_zero() {
            0.0
        } else {
            total_bytes as f64 / 1e6 / elapsed.as_secs_f64()
        };
        let iops = if elapsed.is_zero() {
            0.0
        } else {
            commands as f64 / elapsed.as_secs_f64()
        };

        let horizon = self.activity_horizon(elapsed);
        let mut programs = 0;
        let mut reads = 0;
        for ch in &self.channels {
            let s = ch.stats();
            programs += s.programs;
            reads += s.reads;
        }

        PerfReport {
            config_name: self.config.name.clone(),
            architecture: self.config.architecture_label(),
            workload: workload_label.to_string(),
            policy: self.config.cache_policy.label().to_string(),
            commands,
            bytes: total_bytes,
            elapsed,
            throughput_mbps,
            iops,
            waf,
            nand_page_programs: programs,
            nand_page_reads: reads,
            latency,
            utilization: self.utilization_snapshot(horizon),
            class_latency: Box::new(class_latency),
        }
    }

    /// Best-case throughput of the host interface plus the DMA into the DRAM
    /// buffers, in MB/s — the paper's "SATA+DDR" / "PCIE+DDR" series. Only
    /// the link, the DMA and the buffers are exercised; everything
    /// downstream is assumed infinitely fast.
    pub fn host_dram_only_mbps(&mut self, workload: &Workload) -> f64 {
        self.reset_activity();
        let commands = workload.commands();
        let queue_depth = self.config.queue_depth() as usize;
        let mut window: BinaryHeap<Reverse<SimTime>> = BinaryHeap::new();
        let mut last = SimTime::ZERO;
        let mut bytes = 0u64;
        for cmd in &commands {
            let mut admit = cmd.issue_at;
            if window.len() >= queue_depth {
                if let Some(Reverse(earliest)) = window.pop() {
                    admit = admit.max(earliest);
                }
            }
            let link = self
                .host_link
                .reserve(admit, self.iface.transfer_time(cmd.bytes));
            let buf = (cmd.id % self.dram.len() as u64) as usize;
            let kind = if cmd.op == HostOp::Read {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            let dram_done = self.dram[buf]
                .access(link.end, cmd.offset, cmd.bytes, kind)
                .end;
            window.push(Reverse(dram_done));
            bytes += cmd.bytes as u64;
            last = last.max(dram_done);
        }
        if last.is_zero() {
            0.0
        } else {
            bytes as f64 / 1e6 / last.as_secs_f64()
        }
    }

    /// Throughput of the DRAM-to-flash back end alone, in MB/s — the paper's
    /// "DDR+FLASH" series: the time the flash subsystem needs to flush the
    /// buffered data, with no host-side constraint.
    pub fn flash_path_mbps(&mut self, workload: &Workload) -> f64 {
        self.reset_activity();
        let mix = if workload.pattern.is_random() {
            WorkloadMix::random()
        } else {
            WorkloadMix::sequential()
        };
        let waf = self.config.waf.waf(mix);
        let page_bytes = self.config.nand.geometry.page_size_bytes;
        let raw_page_bytes = self.config.nand.geometry.raw_page_bytes();
        let commands = workload.commands();
        let is_write = workload.pattern.op() == HostOp::Write;
        let mut waf_carry = 0.0f64;
        let mut last = SimTime::ZERO;
        let mut bytes = 0u64;
        for cmd in &commands {
            let buf = (cmd.id % self.dram.len() as u64) as usize;
            let pages = cmd.bytes.div_ceil(page_bytes).max(1);
            let mut phys_pages = pages;
            if is_write {
                waf_carry += pages as f64 * (waf - 1.0);
                while waf_carry >= 1.0 {
                    phys_pages += 1;
                    waf_carry -= 1.0;
                }
            }
            for p in 0..phys_pages {
                let target = if is_write {
                    self.allocator.next_write()
                } else {
                    self.allocator
                        .locate(cmd.offset / page_bytes as u64 + p as u64)
                };
                let PageTarget {
                    channel,
                    way,
                    die,
                    addr,
                } = target;
                let pe = self.channels[channel as usize]
                    .die(way, die)
                    .expect("allocator targets are in range")
                    .block_pe_cycles(addr);
                if is_write {
                    let enc_latency = self.ecc_encode_latency(page_bytes, pe);
                    let enc =
                        self.ecc_encoders[channel as usize].reserve(SimTime::ZERO, enc_latency);
                    let flush = self.dram[buf]
                        .access(enc.end, cmd.offset, page_bytes, AccessKind::Read)
                        .end;
                    let out = self.channels[channel as usize].execute(
                        flush,
                        way,
                        die,
                        NandOp::Program,
                        addr,
                        raw_page_bytes,
                    );
                    last = last.max(out.complete_at);
                } else {
                    let out = self.channels[channel as usize].execute(
                        SimTime::ZERO,
                        way,
                        die,
                        NandOp::Read,
                        addr,
                        raw_page_bytes,
                    );
                    let dec_latency =
                        self.ecc_decode_latency(page_bytes, pe, out.expected_raw_errors);
                    let dec =
                        self.ecc_decoders[channel as usize].reserve(out.complete_at, dec_latency);
                    let dram_done = self.dram[buf]
                        .access(dec.end, cmd.offset, page_bytes, AccessKind::Write)
                        .end;
                    last = last.max(dram_done);
                }
            }
            bytes += cmd.bytes as u64;
        }
        if last.is_zero() {
            0.0
        } else {
            bytes as f64 / 1e6 / last.as_secs_f64()
        }
    }
}

impl std::fmt::Debug for Ssd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ssd")
            .field("config", &self.config.name)
            .field("architecture", &self.config.architecture_label())
            .field("host_interface", &self.iface.name())
            .field("aged_pe", &self.aged_pe)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CachePolicy, HostInterfaceConfig};
    use ssdx_ecc::EccScheme;
    use ssdx_hostif::AccessPattern;

    fn small_workload(pattern: AccessPattern, count: u64) -> Workload {
        Workload::builder(pattern)
            .command_count(count)
            .footprint_bytes(16 << 20)
            .build()
    }

    fn small_config(name: &str) -> crate::config::SsdConfigBuilder {
        SsdConfig::builder(name)
            .topology(4, 2, 2)
            .dram_buffers(4)
            .dram_buffer_capacity(256 * 1024)
    }

    #[test]
    fn try_new_rejects_invalid_configurations() {
        let mut cfg = small_config("bad").build().unwrap();
        cfg.channels = 0;
        assert_eq!(
            Ssd::try_new(cfg).err(),
            Some(ConfigError::ZeroDimension("channels"))
        );
        assert!(Ssd::try_new(small_config("good").build().unwrap()).is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid SSD configuration")]
    fn new_panics_on_invalid_configurations() {
        let mut cfg = small_config("bad").build().unwrap();
        cfg.dram_buffers = 0;
        let _ = Ssd::new(cfg);
    }

    #[test]
    fn sequential_write_produces_sensible_throughput() {
        let mut ssd = Ssd::new(small_config("t").build().unwrap());
        let report = ssd.simulate(&small_workload(AccessPattern::SequentialWrite, 512));
        assert!(report.throughput_mbps > 1.0, "{}", report.throughput_mbps);
        assert!(report.throughput_mbps < ssd.interface_ideal_mbps());
        assert_eq!(report.commands, 512);
        assert_eq!(report.bytes, 512 * 4096);
        assert!(
            report.nand_page_programs >= 1024,
            "two 2 KB pages per 4 KB command"
        );
    }

    #[test]
    fn cache_policy_beats_no_cache_on_sequential_writes() {
        let cache = small_config("cache")
            .cache_policy(CachePolicy::WriteCache)
            .build()
            .unwrap();
        let nocache = small_config("nocache")
            .cache_policy(CachePolicy::NoCache)
            .build()
            .unwrap();
        let w = small_workload(AccessPattern::SequentialWrite, 512);
        let r_cache = Ssd::new(cache).simulate(&w);
        let r_nocache = Ssd::new(nocache).simulate(&w);
        assert!(
            r_cache.mean_latency() < r_nocache.mean_latency(),
            "cache {} vs no-cache {}",
            r_cache.mean_latency(),
            r_nocache.mean_latency()
        );
    }

    #[test]
    fn random_writes_are_slower_than_sequential_writes() {
        let cfg = small_config("waf").build().unwrap();
        let seq =
            Ssd::new(cfg.clone()).simulate(&small_workload(AccessPattern::SequentialWrite, 512));
        let rnd = Ssd::new(cfg).simulate(&small_workload(AccessPattern::RandomWrite, 512));
        assert!(rnd.throughput_mbps < seq.throughput_mbps);
        assert!(rnd.waf > seq.waf);
        assert!(rnd.nand_page_programs > seq.nand_page_programs);
    }

    #[test]
    fn reads_do_not_amplify() {
        let cfg = small_config("reads").build().unwrap();
        let report = Ssd::new(cfg).simulate(&small_workload(AccessPattern::SequentialRead, 256));
        assert_eq!(report.nand_page_programs, 0);
        assert!(report.nand_page_reads >= 512);
        assert!(report.throughput_mbps > 1.0);
    }

    #[test]
    fn more_parallelism_helps_sequential_writes() {
        let small = small_config("small").build().unwrap();
        let big = SsdConfig::builder("big")
            .topology(16, 4, 2)
            .dram_buffers(16)
            .dram_buffer_capacity(256 * 1024)
            .build()
            .unwrap();
        let w = small_workload(AccessPattern::SequentialWrite, 1024);
        let r_small = Ssd::new(small).simulate(&w);
        let r_big = Ssd::new(big).simulate(&w);
        assert!(
            r_big.throughput_mbps > 1.5 * r_small.throughput_mbps,
            "big {} vs small {}",
            r_big.throughput_mbps,
            r_small.throughput_mbps
        );
    }

    #[test]
    fn nvme_uncorks_no_cache_configurations() {
        // Uncorking only shows when the flash back end is far faster than
        // what 32 outstanding SATA commands can keep busy, so use a highly
        // parallel configuration (the point of the paper's Fig. 4).
        let w = small_workload(AccessPattern::SequentialWrite, 1024);
        let sata = SsdConfig::builder("sata-nocache")
            .topology(16, 8, 4)
            .dram_buffers(16)
            .cache_policy(CachePolicy::NoCache)
            .build()
            .unwrap();
        let nvme = SsdConfig::builder("nvme-nocache")
            .topology(16, 8, 4)
            .dram_buffers(16)
            .cache_policy(CachePolicy::NoCache)
            .host_interface(HostInterfaceConfig::nvme_gen2_x8())
            .build()
            .unwrap();
        let r_sata = Ssd::new(sata).simulate(&w);
        let r_nvme = Ssd::new(nvme).simulate(&w);
        assert!(
            r_nvme.throughput_mbps > 1.5 * r_sata.throughput_mbps,
            "nvme {} vs sata {}",
            r_nvme.throughput_mbps,
            r_sata.throughput_mbps
        );
    }

    #[test]
    fn wear_out_slows_down_reads_more_with_fixed_bch() {
        let w = small_workload(AccessPattern::SequentialRead, 256);
        let mut fixed = Ssd::new(
            small_config("fixed")
                .ecc(EccScheme::fixed_bch(40))
                .build()
                .unwrap(),
        );
        let mut adaptive = Ssd::new(
            small_config("adaptive")
                .ecc(EccScheme::adaptive_bch(40))
                .build()
                .unwrap(),
        );
        // Early in life the adaptive code reads faster.
        let r_fixed_fresh = fixed.simulate(&w);
        let r_adaptive_fresh = adaptive.simulate(&w);
        assert!(r_adaptive_fresh.throughput_mbps > r_fixed_fresh.throughput_mbps);
        // At end of life they converge (same 40-bit correction).
        fixed.age_to_normalized(1.0);
        adaptive.age_to_normalized(1.0);
        assert_eq!(fixed.aged_pe_cycles(), 3_000);
        let r_fixed_eol = fixed.simulate(&w);
        let r_adaptive_eol = adaptive.simulate(&w);
        let ratio = r_adaptive_eol.throughput_mbps / r_fixed_eol.throughput_mbps;
        assert!((0.9..1.1).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn determinism_same_config_same_result() {
        let cfg = small_config("det").build().unwrap();
        let w = small_workload(AccessPattern::RandomWrite, 256);
        let a = Ssd::new(cfg.clone()).simulate(&w);
        let b = Ssd::new(cfg).simulate(&w);
        assert_eq!(a.elapsed, b.elapsed);
        assert!((a.throughput_mbps - b.throughput_mbps).abs() < 1e-9);
    }

    #[test]
    fn component_series_are_ordered_sensibly() {
        // Keep the write cache small relative to the workload so the full
        // pipeline reaches its steady state instead of absorbing everything
        // in the buffers.
        let mut ssd = Ssd::new(
            small_config("series")
                .dram_buffer_capacity(64 * 1024)
                .build()
                .unwrap(),
        );
        let w = small_workload(AccessPattern::SequentialWrite, 1024);
        let ideal = ssd.interface_ideal_mbps();
        let host_dram = ssd.host_dram_only_mbps(&w);
        let flash = ssd.flash_path_mbps(&w);
        let full = ssd.simulate(&w).throughput_mbps;
        assert!(
            host_dram <= ideal * 1.01,
            "host+dram {host_dram} vs ideal {ideal}"
        );
        // The full SSD can never beat its own back end or its own front end.
        assert!(full <= host_dram * 1.05);
        assert!(full <= flash * 1.15, "full {full} vs flash {flash}");
    }

    #[test]
    fn trace_replay_works() {
        let trace = TracePlayer::parse("0 write 0 4096\n10 read 0 4096\n20 trim 0 4096\n").unwrap();
        let mut ssd = Ssd::new(small_config("trace").build().unwrap());
        let report = ssd.simulate(&trace);
        assert_eq!(report.commands, 3);
        assert_eq!(report.bytes, 8192);
        assert!(report.elapsed > SimTime::ZERO);
        assert_eq!(report.workload, "trace");
    }

    #[test]
    fn compressor_reduces_nand_traffic() {
        let w = small_workload(AccessPattern::SequentialWrite, 256);
        let plain = small_config("plain").build().unwrap();
        let compressed = small_config("gzip")
            .compressor(crate::config::CompressorConfig::ChannelSide)
            .build()
            .unwrap();
        let r_plain = Ssd::new(plain).simulate(&w);
        let r_comp = Ssd::new(compressed).simulate(&w);
        assert!(r_comp.nand_page_programs < r_plain.nand_page_programs);
    }

    #[test]
    fn debug_format_names_the_platform() {
        let ssd = Ssd::new(small_config("dbg").build().unwrap());
        let text = format!("{ssd:?}");
        assert!(text.contains("dbg"));
        assert!(text.contains("SATA"));
    }

    #[test]
    fn page_mapped_ftl_reports_measured_write_amplification() {
        use crate::config::FtlMode;
        // Small footprint so the random overwrites actually trigger garbage
        // collection inside the page-mapped FTL.
        let workload = Workload::builder(AccessPattern::RandomWrite)
            .command_count(1_500)
            .footprint_bytes(2 << 20)
            .build();
        let cfg = small_config("real-ftl")
            .ftl_mode(FtlMode::PageMapped)
            .over_provisioning(0.25)
            .build()
            .unwrap();
        let report = Ssd::new(cfg).simulate(&workload);
        assert!(
            report.waf > 1.05,
            "measured WAF should exceed 1, got {}",
            report.waf
        );
        assert!(report.nand_page_programs as f64 >= 1.05 * 2.0 * 1_500.0);
        assert!(report.throughput_mbps > 0.0);
    }

    #[test]
    fn page_mapped_and_waf_modes_agree_on_sequential_writes() {
        use crate::config::FtlMode;
        let w = small_workload(AccessPattern::SequentialWrite, 512);
        let waf_mode = Ssd::new(small_config("waf-mode").build().unwrap()).simulate(&w);
        let real_mode = Ssd::new(
            small_config("pm-mode")
                .ftl_mode(FtlMode::PageMapped)
                .build()
                .unwrap(),
        )
        .simulate(&w);
        // Sequential traffic does not amplify in either accounting mode, so
        // the two pipelines should deliver comparable throughput.
        assert!(
            (real_mode.waf - 1.0).abs() < 0.1,
            "sequential WAF {}",
            real_mode.waf
        );
        let ratio = real_mode.throughput_mbps / waf_mode.throughput_mbps;
        assert!((0.8..1.25).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn extra_cpu_cores_relieve_a_firmware_bottleneck() {
        use ssdx_cpu::FirmwareProfile;
        // Make the firmware expensive enough to be the bottleneck, then add
        // a second core.
        let heavy = FirmwareProfile {
            command_decode_cycles: 20_000,
            ftl_lookup_cycles: 20_000,
            dma_setup_cycles: 20_000,
            completion_cycles: 20_000,
            gc_cycles: 0,
            bus_accesses_per_task: 8,
        };
        let w = small_workload(AccessPattern::SequentialWrite, 512);
        let single =
            Ssd::new(small_config("one-core").firmware(heavy).build().unwrap()).simulate(&w);
        let dual = Ssd::new(
            small_config("two-cores")
                .firmware(heavy)
                .cpu_cores(2)
                .build()
                .unwrap(),
        )
        .simulate(&w);
        assert!(
            dual.throughput_mbps > 1.3 * single.throughput_mbps,
            "dual {} vs single {}",
            dual.throughput_mbps,
            single.throughput_mbps
        );
    }
}
