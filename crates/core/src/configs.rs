//! The named SSD configurations used by the paper's experiments.
//!
//! * [`table2_configs`] — the ten design points C1–C10 of Table II, swept by
//!   the optimal-design-point experiments (Figs. 3 and 4).
//! * [`table3_configs`] — the eight design points C1–C8 of Table III, used by
//!   the simulation-speed study (Fig. 6).
//! * [`ocz_vertex_like`] — the consumer-drive configuration validated against
//!   the OCZ Vertex 120 GB in Fig. 2.
//! * [`fig5_config`] — the 4-channel / 2-way / 4-die configuration of the
//!   wear-out experiment (Fig. 5).

use crate::config::{CachePolicy, HostInterfaceConfig, SsdConfig};
use ssdx_ecc::EccScheme;
use ssdx_nand::{NandGeometry, OnfiSpeed};

fn table2_entry(name: &str, buffers: u32, channels: u32, ways: u32, dies: u32) -> SsdConfig {
    SsdConfig::builder(name)
        .topology(channels, ways, dies)
        .dram_buffers(buffers)
        .build()
        .expect("table II configurations are structurally valid")
}

/// The ten SSD configurations of Table II
/// (`DDR-buf; CHN; WAY; DIE` in the paper's notation).
pub fn table2_configs() -> Vec<SsdConfig> {
    vec![
        table2_entry("C1", 4, 4, 4, 2),
        table2_entry("C2", 8, 8, 4, 2),
        table2_entry("C3", 8, 8, 8, 2),
        table2_entry("C4", 8, 8, 8, 4),
        table2_entry("C5", 8, 8, 8, 8),
        table2_entry("C6", 16, 16, 8, 4),
        table2_entry("C7", 16, 16, 4, 2),
        table2_entry("C8", 32, 32, 4, 2),
        table2_entry("C9", 32, 32, 1, 1),
        table2_entry("C10", 32, 32, 8, 4),
    ]
}

/// The eight SSD configurations of Table III, used by the simulation-speed
/// study.
pub fn table3_configs() -> Vec<SsdConfig> {
    vec![
        table2_entry("C1", 1, 1, 1, 1),
        table2_entry("C2", 1, 2, 1, 2),
        table2_entry("C3", 1, 4, 1, 2),
        table2_entry("C4", 1, 4, 2, 4),
        table2_entry("C5", 4, 4, 2, 4),
        table2_entry("C6", 4, 4, 2, 8),
        table2_entry("C7", 4, 4, 2, 16),
        table2_entry("C8", 32, 32, 16, 16),
    ]
}

/// A configuration calibrated to behave like the OCZ Vertex 120 GB consumer
/// drive the paper validates against: a SATA II Barefoot-class controller
/// with eight channels of 4 KB-page MLC NAND on a faster asynchronous bus, a
/// modest fixed BCH code, a write cache and ~7 % over-provisioning.
pub fn ocz_vertex_like() -> SsdConfig {
    SsdConfig::builder("ocz-vertex-like")
        .topology(8, 4, 2)
        .dram_buffers(8)
        .dram_buffer_capacity(8 * 1024 * 1024)
        .host_interface(HostInterfaceConfig::Sata2)
        .cache_policy(CachePolicy::WriteCache)
        .ecc(EccScheme::fixed_bch(12))
        .nand_geometry(NandGeometry::mlc_4kb())
        .onfi_speed(OnfiSpeed::Sdr40)
        .over_provisioning(0.07)
        .build()
        .expect("ocz-vertex-like configuration is structurally valid")
}

/// The configuration of the wear-out experiment (Fig. 5): 4 channels, 2 ways
/// and 4 dies, differing only in ECC adaptability between the two runs.
pub fn fig5_config(ecc: EccScheme) -> SsdConfig {
    SsdConfig::builder(format!("fig5-{}", ecc.name()))
        .topology(4, 2, 4)
        .dram_buffers(4)
        // Keep the write cache small so even the short per-endurance-point
        // workloads reach the flash-limited steady state.
        .dram_buffer_capacity(256 * 1024)
        .ecc(ecc)
        .build()
        .expect("fig5 configuration is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_the_paper() {
        let configs = table2_configs();
        assert_eq!(configs.len(), 10);
        assert_eq!(
            configs[0].architecture_label(),
            "4-DDR-buf;4-CHN;4-WAY;2-DIE"
        );
        assert_eq!(
            configs[5].architecture_label(),
            "16-DDR-buf;16-CHN;8-WAY;4-DIE"
        );
        assert_eq!(
            configs[8].architecture_label(),
            "32-DDR-buf;32-CHN;1-WAY;1-DIE"
        );
        assert_eq!(configs[9].total_dies(), 32 * 8 * 4);
        for c in &configs {
            assert!(c.validate().is_ok());
        }
    }

    #[test]
    fn table3_matches_the_paper() {
        let configs = table3_configs();
        assert_eq!(configs.len(), 8);
        assert_eq!(configs[0].total_dies(), 1);
        assert_eq!(
            configs[7].architecture_label(),
            "32-DDR-buf;32-CHN;16-WAY;16-DIE"
        );
        assert_eq!(configs[7].total_dies(), 8192);
    }

    #[test]
    fn ocz_vertex_like_is_a_sata_cache_drive() {
        let c = ocz_vertex_like();
        assert_eq!(c.host_interface, HostInterfaceConfig::Sata2);
        assert_eq!(c.cache_policy, CachePolicy::WriteCache);
        assert_eq!(c.total_dies(), 64);
        // ~128 GiB raw capacity, of which ~120 GB is exported.
        let raw_gib = c.raw_capacity_bytes() as f64 / (1u64 << 30) as f64;
        assert!((100.0..160.0).contains(&raw_gib), "raw = {raw_gib} GiB");
    }

    #[test]
    fn fig5_configs_differ_only_in_ecc() {
        let fixed = fig5_config(EccScheme::fixed_bch(40));
        let adaptive = fig5_config(EccScheme::adaptive_bch(40));
        assert_eq!(fixed.total_dies(), 32);
        assert_eq!(fixed.topology_tuple(), adaptive.topology_tuple());
        assert_ne!(fixed.ecc.name(), adaptive.ecc.name());
    }
}
