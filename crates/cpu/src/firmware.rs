//! Firmware cycle budgets.

use serde::{Deserialize, Serialize};

/// The firmware activities triggered by one host command as it traverses the
/// control path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FirmwareTask {
    /// Parsing the host command and allocating internal descriptors.
    CommandDecode,
    /// Logical-to-physical translation (table lookup in the WAF-abstracted
    /// mode, full mapping-table walk in real-FTL mode).
    FtlLookup,
    /// Programming the PP-DMA / host DMA descriptors for a data movement.
    DmaSetup,
    /// Handling the channel-controller interrupt and completing the command
    /// toward the host interface.
    Completion,
    /// Background garbage-collection bookkeeping charged per triggering
    /// write (only meaningful in real-FTL mode; the WAF abstraction folds
    /// this cost into the write amplification factor instead).
    GarbageCollection,
}

impl FirmwareTask {
    /// All per-command foreground tasks, in pipeline order.
    pub fn foreground() -> [FirmwareTask; 4] {
        [
            FirmwareTask::CommandDecode,
            FirmwareTask::FtlLookup,
            FirmwareTask::DmaSetup,
            FirmwareTask::Completion,
        ]
    }
}

/// Cycle budget of each firmware task on the modelled core.
///
/// The budgets are expressed in CPU cycles at the core clock (200 MHz in the
/// paper's platform), so one cycle is 5 ns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FirmwareProfile {
    /// Cycles to decode one host command.
    pub command_decode_cycles: u64,
    /// Cycles per logical-to-physical lookup.
    pub ftl_lookup_cycles: u64,
    /// Cycles to set up one DMA descriptor chain.
    pub dma_setup_cycles: u64,
    /// Cycles to complete one command back to the host.
    pub completion_cycles: u64,
    /// Cycles of garbage-collection bookkeeping per write command
    /// (real-FTL mode only).
    pub gc_cycles: u64,
    /// Average bus transactions (32-bit accesses to control registers and
    /// tables in SRAM) issued per task, used to load the AHB.
    pub bus_accesses_per_task: u32,
}

impl FirmwareProfile {
    /// Cycle budgets for the WAF-abstracted firmware: the FTL is replaced by
    /// the write-amplification model, so lookups are cheap and no GC runs on
    /// the core.
    pub fn waf_abstracted() -> Self {
        FirmwareProfile {
            command_decode_cycles: 400,
            ftl_lookup_cycles: 250,
            dma_setup_cycles: 300,
            completion_cycles: 350,
            gc_cycles: 0,
            bus_accesses_per_task: 8,
        }
    }

    /// Cycle budgets for a real page-mapped FTL executing on the core:
    /// mapping-table walks and GC bookkeeping make every task heavier.
    pub fn real_ftl() -> Self {
        FirmwareProfile {
            command_decode_cycles: 600,
            ftl_lookup_cycles: 1_200,
            dma_setup_cycles: 400,
            completion_cycles: 500,
            gc_cycles: 2_500,
            bus_accesses_per_task: 24,
        }
    }

    /// Cycle budget of one task.
    pub fn cycles_for(&self, task: FirmwareTask) -> u64 {
        match task {
            FirmwareTask::CommandDecode => self.command_decode_cycles,
            FirmwareTask::FtlLookup => self.ftl_lookup_cycles,
            FirmwareTask::DmaSetup => self.dma_setup_cycles,
            FirmwareTask::Completion => self.completion_cycles,
            FirmwareTask::GarbageCollection => self.gc_cycles,
        }
    }

    /// Total foreground cycles charged to one command (excludes GC).
    pub fn per_command_cycles(&self) -> u64 {
        FirmwareTask::foreground()
            .into_iter()
            .map(|t| self.cycles_for(t))
            .sum()
    }
}

impl Default for FirmwareProfile {
    fn default() -> Self {
        Self::waf_abstracted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_command_cycles_sums_foreground_tasks() {
        let p = FirmwareProfile::waf_abstracted();
        assert_eq!(p.per_command_cycles(), 400 + 250 + 300 + 350);
    }

    #[test]
    fn real_ftl_costs_more_than_waf_abstraction() {
        let waf = FirmwareProfile::waf_abstracted();
        let real = FirmwareProfile::real_ftl();
        assert!(real.per_command_cycles() > waf.per_command_cycles());
        assert!(real.gc_cycles > 0);
        assert_eq!(waf.gc_cycles, 0);
    }

    #[test]
    fn cycles_for_covers_all_tasks() {
        let p = FirmwareProfile::real_ftl();
        for task in [
            FirmwareTask::CommandDecode,
            FirmwareTask::FtlLookup,
            FirmwareTask::DmaSetup,
            FirmwareTask::Completion,
            FirmwareTask::GarbageCollection,
        ] {
            assert!(p.cycles_for(task) > 0);
        }
    }

    #[test]
    fn foreground_order_is_pipeline_order() {
        let f = FirmwareTask::foreground();
        assert_eq!(f[0], FirmwareTask::CommandDecode);
        assert_eq!(f[3], FirmwareTask::Completion);
    }
}
