//! The CPU execution model.

use crate::firmware::{FirmwareProfile, FirmwareTask};
use serde::{Deserialize, Serialize};
use ssdx_sim::codec::{DecodeError, Decoder, Encoder};
use ssdx_sim::{Frequency, Grant, Resource, SimTime};

/// Aggregate CPU activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuStats {
    /// Firmware tasks executed.
    pub tasks: u64,
    /// Total CPU cycles consumed.
    pub cycles: u64,
    /// Total busy time of the core.
    pub busy: SimTime,
}

/// A single-issue controller CPU executing firmware tasks sequentially.
///
/// The core is modelled as a first-come-first-served resource: firmware
/// handling for different host commands serialises on it, which is exactly
/// how the single ARM7TDMI of the modelled platform behaves and is one of
/// the bottlenecks fine-grained exploration must expose. Multi-core
/// controller configurations can be modelled by instantiating several
/// `CpuModel`s and distributing commands across them.
#[derive(Debug, Clone)]
pub struct CpuModel {
    profile: FirmwareProfile,
    clock: Frequency,
    core: Resource,
    stats: CpuStats,
    /// Per-task `(cycles, duration)` cache in [`FirmwareTask::foreground`]
    /// order, derived once at construction. Cycle-count-to-time conversion
    /// costs a 128-bit division, and the foreground sequence runs four of
    /// them per host command on the hot path.
    foreground: [(u64, SimTime); 4],
}

impl CpuModel {
    /// Creates a CPU with the paper's 200 MHz clock and the given firmware
    /// profile.
    pub fn new(profile: FirmwareProfile) -> Self {
        Self::with_clock(profile, Frequency::from_mhz(200))
    }

    /// Creates a CPU with an explicit core clock.
    pub fn with_clock(profile: FirmwareProfile, clock: Frequency) -> Self {
        let foreground = FirmwareTask::foreground().map(|task| {
            let cycles = profile.cycles_for(task);
            (cycles, clock.cycles_to_time(cycles))
        });
        CpuModel {
            profile,
            clock,
            core: Resource::new("cpu-core"),
            stats: CpuStats::default(),
            foreground,
        }
    }

    /// Firmware profile in use.
    pub fn profile(&self) -> &FirmwareProfile {
        &self.profile
    }

    /// Core clock.
    pub fn clock(&self) -> Frequency {
        self.clock
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CpuStats {
        self.stats
    }

    /// Earliest instant the core is idle.
    pub fn free_at(&self) -> SimTime {
        self.core.free_at()
    }

    /// Executes one firmware task starting no earlier than `at`, returning
    /// the service window on the core.
    pub fn execute(&mut self, at: SimTime, task: FirmwareTask) -> Grant {
        let cycles = self.profile.cycles_for(task);
        let duration = self.clock.cycles_to_time(cycles);
        let grant = self.core.reserve(at, duration);
        self.stats.tasks += 1;
        self.stats.cycles += cycles;
        self.stats.busy += duration;
        grant
    }

    /// Executes the whole foreground task sequence for one command,
    /// returning the grant covering the full sequence.
    ///
    /// Uses the per-task durations cached at construction; the reservations
    /// and statistics are the same as issuing the four
    /// [`execute`](Self::execute) calls one by one.
    pub fn execute_command_overhead(&mut self, at: SimTime) -> Grant {
        let mut first: Option<Grant> = None;
        let mut cursor = at;
        for (cycles, duration) in self.foreground {
            let g = self.core.reserve(cursor, duration);
            self.stats.tasks += 1;
            self.stats.cycles += cycles;
            self.stats.busy += duration;
            cursor = g.end;
            if first.is_none() {
                first = Some(g);
            }
        }
        let first = first.expect("foreground sequence is non-empty");
        Grant {
            start: first.start,
            end: cursor,
            wait: first.wait,
        }
    }

    /// Core utilization over a simulated horizon.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.core.utilization(horizon)
    }

    /// Number of 32-bit bus accesses one task issues (used by the caller to
    /// load the system interconnect).
    pub fn bus_accesses_per_task(&self) -> u32 {
        self.profile.bus_accesses_per_task
    }

    /// Resets dynamic state and statistics.
    pub fn reset(&mut self) {
        self.core.reset();
        self.stats = CpuStats::default();
    }

    /// Encodes the CPU's mutable state, in stable field order: the core
    /// resource, then the statistics (tasks, cycles, busy time). The
    /// firmware profile, clock, and cached foreground durations are
    /// construction parameters, not snapshot state.
    pub fn encode_state(&self, enc: &mut Encoder) {
        self.core.encode_state(enc);
        enc.put_u64(self.stats.tasks);
        enc.put_u64(self.stats.cycles);
        enc.put_time(self.stats.busy);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state) onto
    /// a CPU constructed with the same profile and clock.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    pub fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        self.core.decode_state(dec)?;
        self.stats.tasks = dec.get_u64()?;
        self.stats.cycles = dec.get_u64()?;
        self.stats.busy = dec.get_time()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_duration_matches_cycle_budget() {
        let mut cpu = CpuModel::new(FirmwareProfile::waf_abstracted());
        let g = cpu.execute(SimTime::ZERO, FirmwareTask::CommandDecode);
        // 400 cycles at 5 ns = 2 µs.
        assert_eq!(g.end - g.start, SimTime::from_us(2));
    }

    #[test]
    fn tasks_serialise_on_the_core() {
        let mut cpu = CpuModel::new(FirmwareProfile::default());
        let a = cpu.execute(SimTime::ZERO, FirmwareTask::CommandDecode);
        let b = cpu.execute(SimTime::ZERO, FirmwareTask::FtlLookup);
        assert_eq!(b.start, a.end);
    }

    #[test]
    fn command_overhead_covers_all_foreground_cycles() {
        let mut cpu = CpuModel::new(FirmwareProfile::waf_abstracted());
        let g = cpu.execute_command_overhead(SimTime::ZERO);
        let expected = cpu
            .clock()
            .cycles_to_time(FirmwareProfile::waf_abstracted().per_command_cycles());
        assert_eq!(g.end - g.start, expected);
        assert_eq!(cpu.stats().tasks, 4);
    }

    #[test]
    fn real_ftl_profile_is_slower_end_to_end() {
        let mut waf = CpuModel::new(FirmwareProfile::waf_abstracted());
        let mut real = CpuModel::new(FirmwareProfile::real_ftl());
        let gw = waf.execute_command_overhead(SimTime::ZERO);
        let gr = real.execute_command_overhead(SimTime::ZERO);
        assert!(gr.end > gw.end);
    }

    #[test]
    fn custom_clock_scales_latency() {
        let slow = CpuModel::with_clock(FirmwareProfile::default(), Frequency::from_mhz(100));
        let fast = CpuModel::with_clock(FirmwareProfile::default(), Frequency::from_mhz(400));
        let mut slow = slow;
        let mut fast = fast;
        let gs = slow.execute(SimTime::ZERO, FirmwareTask::DmaSetup);
        let gf = fast.execute(SimTime::ZERO, FirmwareTask::DmaSetup);
        assert_eq!((gs.end - gs.start).as_ps(), 4 * (gf.end - gf.start).as_ps());
    }

    #[test]
    fn stats_and_reset() {
        let mut cpu = CpuModel::new(FirmwareProfile::default());
        cpu.execute(SimTime::ZERO, FirmwareTask::Completion);
        assert_eq!(cpu.stats().tasks, 1);
        assert!(cpu.stats().cycles > 0);
        assert!(cpu.utilization(SimTime::from_ms(1)) > 0.0);
        cpu.reset();
        assert_eq!(cpu.stats().tasks, 0);
        assert_eq!(cpu.free_at(), SimTime::ZERO);
    }
}
