//! Firmware execution cost model for the SSD controller CPU.
//!
//! SSDExplorer models an ARM7TDMI core with 16 MB of SRAM and a DMA engine
//! running at 200 MHz, on which the SSD firmware (or its WAF abstraction)
//! executes. During fine-grained design space exploration the *functional*
//! behaviour of the firmware is not needed — only its cost: how many CPU
//! cycles and bus transactions each host command consumes before the data
//! path can move on. This crate models exactly that: a cycle-budgeted
//! firmware profile executed on a single-issue core that contends for the
//! AHB bus with the data-moving DMA engines.
//!
//! # Example
//!
//! ```
//! use ssdx_cpu::{CpuModel, FirmwareProfile, FirmwareTask};
//! use ssdx_sim::SimTime;
//!
//! let mut cpu = CpuModel::new(FirmwareProfile::waf_abstracted());
//! let done = cpu.execute(SimTime::ZERO, FirmwareTask::CommandDecode);
//! assert!(done.end > SimTime::ZERO);
//! ```

#![warn(rust_2018_idioms)]

pub mod firmware;
pub mod model;

pub use firmware::{FirmwareProfile, FirmwareTask};
pub use model::{CpuModel, CpuStats};
