//! BCH codec latency model.

use serde::{Deserialize, Serialize};
use ssdx_sim::SimTime;

/// Latency model of a hardware BCH codec protecting one NAND page codeword.
///
/// The model is parametric (the paper's "Parametric Time Delay" abstraction
/// domain): the codec is characterised only by its correction capability and
/// the resulting encode/decode latencies, not by a functional data path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BchCodec {
    /// Correction capability `t` in bits per codeword.
    pub t: u32,
    /// Codeword payload covered by one codec pass, in bytes.
    pub codeword_bytes: u32,
    /// Base encode latency (syndrome-free parity generation), µs per codeword.
    pub encode_base_us: f64,
    /// Additional encode latency per bit of correction capability, µs.
    pub encode_per_t_us: f64,
    /// Base decode latency (syndrome computation), µs per codeword.
    pub decode_base_us: f64,
    /// Decode latency coefficient: the key-equation solver and Chien search
    /// grow super-linearly with `t`; latency adds `decode_per_t_us * t^1.3`.
    pub decode_per_t_us: f64,
}

impl BchCodec {
    /// A codec with the default latency coefficients and correction
    /// capability `t`, protecting 2 KB codewords (two codewords per 4 KB
    /// page).
    pub fn with_t(t: u32) -> Self {
        BchCodec {
            t,
            codeword_bytes: 2048,
            encode_base_us: 4.0,
            encode_per_t_us: 0.02,
            decode_base_us: 6.0,
            decode_per_t_us: 2.2,
        }
    }

    /// Parity bytes appended per codeword (≈ `t * m / 8` with m = 15 for
    /// 2 KB codewords).
    pub fn parity_bytes(&self) -> u32 {
        (self.t * 15).div_ceil(8)
    }

    /// Encode latency for one codeword. Encoding is a systematic LFSR pass,
    /// so it barely depends on `t`.
    pub fn encode_latency(&self) -> SimTime {
        SimTime::from_ns_f64((self.encode_base_us + self.encode_per_t_us * self.t as f64) * 1_000.0)
    }

    /// Decode latency for one codeword carrying `raw_errors` raw bit errors.
    ///
    /// The dominant term grows with `t^1.3` (key-equation solver + Chien
    /// search sized for the full correction capability); a small additional
    /// term scales with the number of errors actually corrected.
    pub fn decode_latency(&self, raw_errors: f64) -> SimTime {
        let t = self.t as f64;
        let solver = self.decode_per_t_us * t.powf(1.3);
        let correction = 0.08 * raw_errors.clamp(0.0, t);
        SimTime::from_ns_f64((self.decode_base_us + solver + correction) * 1_000.0)
    }

    /// Number of codewords needed to protect a page of `page_bytes` bytes.
    pub fn codewords_per_page(&self, page_bytes: u32) -> u32 {
        page_bytes.div_ceil(self.codeword_bytes).max(1)
    }

    /// Probability that a codeword with expected `raw_errors` raw errors is
    /// uncorrectable (more than `t` errors), using a Poisson tail
    /// approximation of the binomial error count.
    pub fn uncorrectable_probability(&self, raw_errors: f64) -> f64 {
        if raw_errors <= 0.0 {
            return 0.0;
        }
        // P[X > t] with X ~ Poisson(raw_errors).
        let lambda = raw_errors;
        let mut term = (-lambda).exp();
        let mut cdf = term;
        for k in 1..=self.t {
            term *= lambda / k as f64;
            cdf += term;
        }
        (1.0 - cdf).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_latency_is_nearly_flat_in_t() {
        let weak = BchCodec::with_t(8);
        let strong = BchCodec::with_t(40);
        let delta = strong.encode_latency().as_ns_f64() - weak.encode_latency().as_ns_f64();
        // Less than 1 µs difference across the full capability range.
        assert!(delta.abs() < 1_000.0);
    }

    #[test]
    fn decode_latency_grows_superlinearly_with_t() {
        let t8 = BchCodec::with_t(8).decode_latency(0.0);
        let t16 = BchCodec::with_t(16).decode_latency(0.0);
        let t40 = BchCodec::with_t(40).decode_latency(0.0);
        assert!(t16 > t8);
        assert!(t40 > t16);
        // Super-linear: doubling t from 8 to 16 more than doubles the solver term.
        let solver8 = t8.as_ns_f64() - 6_000.0;
        let solver16 = t16.as_ns_f64() - 6_000.0;
        assert!(solver16 > 2.0 * solver8);
    }

    #[test]
    fn decode_latency_increases_with_actual_errors() {
        let c = BchCodec::with_t(40);
        assert!(c.decode_latency(30.0) > c.decode_latency(1.0));
        // But errors beyond t do not keep growing the latency (decode fails).
        assert_eq!(c.decode_latency(40.0), c.decode_latency(400.0));
    }

    #[test]
    fn parity_overhead_scales_with_t() {
        assert!(BchCodec::with_t(40).parity_bytes() > BchCodec::with_t(8).parity_bytes());
        assert_eq!(BchCodec::with_t(40).parity_bytes(), 75);
    }

    #[test]
    fn codewords_per_page() {
        let c = BchCodec::with_t(40);
        assert_eq!(c.codewords_per_page(4096), 2);
        assert_eq!(c.codewords_per_page(2048), 1);
        assert_eq!(c.codewords_per_page(100), 1);
    }

    #[test]
    fn uncorrectable_probability_behaviour() {
        let c = BchCodec::with_t(40);
        assert_eq!(c.uncorrectable_probability(0.0), 0.0);
        let low = c.uncorrectable_probability(5.0);
        let high = c.uncorrectable_probability(60.0);
        assert!(low < 1e-6);
        assert!(high > 0.9);
        assert!(low <= high);
    }
}
