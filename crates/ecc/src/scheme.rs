//! The two ECC schemes exposed to the platform: fixed BCH and adaptive BCH.

use crate::adaptive::AdaptiveTable;
use crate::bch::BchCodec;
use serde::{Deserialize, Serialize};
use ssdx_sim::SimTime;

/// An ECC scheme as instantiated inside an SSD configuration.
///
/// * [`EccScheme::FixedBch`] always operates at the worst-case correction
///   capability, paying its full decode cost from day one.
/// * [`EccScheme::AdaptiveBch`] looks up the correction capability in a
///   static table indexed by the block's program/erase count.
/// * [`EccScheme::None`] disables ECC entirely (useful for ablations and to
///   measure how much performance the corrector costs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EccScheme {
    /// No error correction (ablation only — a real MLC SSD cannot ship this).
    None,
    /// BCH with a fixed worst-case correction capability.
    FixedBch(BchCodec),
    /// BCH whose capability adapts to wear through a static table.
    AdaptiveBch {
        /// Codec template whose `t` field is replaced per access.
        codec: BchCodec,
        /// Correction table indexed by P/E cycles.
        table: AdaptiveTable,
    },
}

impl EccScheme {
    /// A fixed BCH scheme able to correct `t` bits per codeword.
    pub fn fixed_bch(t: u32) -> Self {
        EccScheme::FixedBch(BchCodec::with_t(t))
    }

    /// An adaptive BCH scheme with worst-case capability `max_t` and the
    /// default wear table for a 3 000-cycle MLC part.
    pub fn adaptive_bch(max_t: u32) -> Self {
        EccScheme::AdaptiveBch {
            codec: BchCodec::with_t(max_t),
            table: AdaptiveTable::paper_default(max_t, 3_000),
        }
    }

    /// An adaptive BCH scheme with an explicit correction table.
    pub fn adaptive_bch_with_table(max_t: u32, table: AdaptiveTable) -> Self {
        EccScheme::AdaptiveBch {
            codec: BchCodec::with_t(max_t),
            table,
        }
    }

    /// Correction capability used for a page whose block has `pe_cycles`
    /// program/erase cycles.
    pub fn t_for(&self, pe_cycles: u64) -> u32 {
        match self {
            EccScheme::None => 0,
            EccScheme::FixedBch(c) => c.t,
            EccScheme::AdaptiveBch { table, .. } => table.t_for(pe_cycles),
        }
    }

    /// Encode latency for one full page write at the given wear level,
    /// assuming the paper's 4 KB host page.
    pub fn encode_latency(&self, pe_cycles: u64) -> SimTime {
        self.encode_latency_for(4096, pe_cycles)
    }

    /// Encode latency for one page of `page_bytes` bytes at the given wear
    /// level.
    pub fn encode_latency_for(&self, page_bytes: u32, pe_cycles: u64) -> SimTime {
        self.page_latency(page_bytes, pe_cycles, |codec, _| codec.encode_latency())
    }

    /// Decode latency for one 4 KB page read at the given wear level, given
    /// the expected raw errors across the whole page.
    pub fn decode_latency_with_errors(&self, pe_cycles: u64, page_raw_errors: f64) -> SimTime {
        self.decode_latency_for(4096, pe_cycles, page_raw_errors)
    }

    /// Decode latency for one page of `page_bytes` bytes at the given wear
    /// level, given the expected raw errors across the whole page.
    pub fn decode_latency_for(
        &self,
        page_bytes: u32,
        pe_cycles: u64,
        page_raw_errors: f64,
    ) -> SimTime {
        self.page_latency(page_bytes, pe_cycles, |codec, codewords| {
            codec.decode_latency(page_raw_errors / codewords as f64)
        })
    }

    /// Decode latency for one full 4 KB page read at the given wear level,
    /// assuming the expected error count for that wear (convenience wrapper
    /// used when the caller does not track raw errors itself).
    pub fn decode_latency(&self, pe_cycles: u64) -> SimTime {
        // A coarse RBER ramp consistent with the NAND wear model defaults.
        let raw = 0.02 * pe_cycles as f64 / 100.0;
        self.decode_latency_with_errors(pe_cycles, raw)
    }

    fn page_latency<F>(&self, page_bytes: u32, pe_cycles: u64, f: F) -> SimTime
    where
        F: Fn(&BchCodec, u32) -> SimTime,
    {
        match self {
            EccScheme::None => SimTime::ZERO,
            EccScheme::FixedBch(codec) => {
                let n = codec.codewords_per_page(page_bytes);
                // Codewords of one page are processed back-to-back by the
                // same engine.
                f(codec, n) * n as u64
            }
            EccScheme::AdaptiveBch { codec, table } => {
                let mut c = *codec;
                c.t = table.t_for(pe_cycles);
                let n = c.codewords_per_page(page_bytes);
                f(&c, n) * n as u64
            }
        }
    }

    /// Probability that a page of `page_bytes` bytes carrying
    /// `page_raw_errors` expected raw bit errors fails decoding at the
    /// given wear level — i.e. at least one of its codewords draws more
    /// errors than the scheme's correction capability `t`
    /// ([`BchCodec::uncorrectable_probability`], Poisson tail). This is the
    /// escalation metric of the fault campaign: read-disturb and retention
    /// growth push `page_raw_errors` up until correction fails.
    ///
    /// [`EccScheme::None`] has no corrector, so any raw error is fatal: the
    /// result is the Poisson probability of at least one error,
    /// `1 - exp(-page_raw_errors)`.
    pub fn page_uncorrectable_probability(
        &self,
        page_bytes: u32,
        pe_cycles: u64,
        page_raw_errors: f64,
    ) -> f64 {
        fn page_failure(codec: &BchCodec, page_bytes: u32, page_raw_errors: f64) -> f64 {
            let n = codec.codewords_per_page(page_bytes);
            let per_codeword = codec.uncorrectable_probability(page_raw_errors / n as f64);
            1.0 - (1.0 - per_codeword).powi(n as i32)
        }
        match self {
            EccScheme::None => {
                if page_raw_errors <= 0.0 {
                    0.0
                } else {
                    1.0 - (-page_raw_errors).exp()
                }
            }
            EccScheme::FixedBch(codec) => page_failure(codec, page_bytes, page_raw_errors),
            EccScheme::AdaptiveBch { codec, table } => {
                let mut c = *codec;
                c.t = table.t_for(pe_cycles);
                page_failure(&c, page_bytes, page_raw_errors)
            }
        }
    }

    /// Parity bytes added per 4 KB page at the given wear level.
    pub fn parity_bytes_per_page(&self, pe_cycles: u64) -> u32 {
        match self {
            EccScheme::None => 0,
            EccScheme::FixedBch(codec) => codec.parity_bytes() * codec.codewords_per_page(4096),
            EccScheme::AdaptiveBch { codec, table } => {
                let mut c = *codec;
                c.t = table.t_for(pe_cycles);
                c.parity_bytes() * c.codewords_per_page(4096)
            }
        }
    }

    /// Human-readable scheme name (used in reports).
    pub fn name(&self) -> &'static str {
        match self {
            EccScheme::None => "no-ecc",
            EccScheme::FixedBch(_) => "fixed-bch",
            EccScheme::AdaptiveBch { .. } => "adaptive-bch",
        }
    }
}

impl Default for EccScheme {
    fn default() -> Self {
        EccScheme::fixed_bch(40)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_decodes_faster_than_fixed_early_in_life() {
        let fixed = EccScheme::fixed_bch(40);
        let adaptive = EccScheme::adaptive_bch(40);
        assert!(adaptive.decode_latency(0) < fixed.decode_latency(0));
        assert!(adaptive.decode_latency(1_000) < fixed.decode_latency(1_000));
    }

    #[test]
    fn adaptive_converges_to_fixed_at_end_of_life() {
        let fixed = EccScheme::fixed_bch(40);
        let adaptive = EccScheme::adaptive_bch(40);
        // Past rated endurance both run the 40-bit code.
        assert_eq!(adaptive.t_for(5_000), 40);
        let f = fixed.decode_latency(5_000);
        let a = adaptive.decode_latency(5_000);
        assert_eq!(a, f);
    }

    #[test]
    fn encode_latency_is_insensitive_to_scheme() {
        let fixed = EccScheme::fixed_bch(40);
        let adaptive = EccScheme::adaptive_bch(40);
        let diff = fixed.encode_latency(0).as_ns_f64() - adaptive.encode_latency(0).as_ns_f64();
        // Under 2 µs difference for a full page: writes are barely affected.
        assert!(diff.abs() < 2_000.0);
    }

    #[test]
    fn none_scheme_is_free() {
        let none = EccScheme::None;
        assert_eq!(none.encode_latency(0), SimTime::ZERO);
        assert_eq!(none.decode_latency(9_999), SimTime::ZERO);
        assert_eq!(none.parity_bytes_per_page(0), 0);
        assert_eq!(none.t_for(1_000), 0);
        assert_eq!(none.name(), "no-ecc");
    }

    #[test]
    fn parity_overhead_grows_with_wear_for_adaptive() {
        let adaptive = EccScheme::adaptive_bch(40);
        assert!(adaptive.parity_bytes_per_page(0) < adaptive.parity_bytes_per_page(3_000));
        let fixed = EccScheme::fixed_bch(40);
        assert_eq!(
            fixed.parity_bytes_per_page(0),
            fixed.parity_bytes_per_page(3_000)
        );
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(EccScheme::fixed_bch(40).name(), "fixed-bch");
        assert_eq!(EccScheme::adaptive_bch(40).name(), "adaptive-bch");
        assert_eq!(EccScheme::default().name(), "fixed-bch");
    }

    #[test]
    fn decode_latency_with_errors_grows_with_error_count() {
        let fixed = EccScheme::fixed_bch(40);
        let low = fixed.decode_latency_with_errors(0, 1.0);
        let high = fixed.decode_latency_with_errors(0, 60.0);
        assert!(high > low);
    }

    #[test]
    fn failure_probability_escalates_monotonically_with_error_growth() {
        // The fault campaign grows page_raw_errors through read-disturb and
        // retention scaling; the failure probability must escalate smoothly
        // from negligible to certain, never decreasing along the way.
        let fixed = EccScheme::fixed_bch(40);
        let loads = [0.0, 1.0, 10.0, 40.0, 100.0, 400.0, 4_000.0];
        let mut last = -1.0;
        for &errors in &loads {
            let p = fixed.page_uncorrectable_probability(4096, 0, errors);
            assert!((0.0..=1.0).contains(&p), "p = {p} at {errors} errors");
            assert!(p >= last, "non-monotone at {errors} errors: {p} < {last}");
            last = p;
        }
        assert_eq!(fixed.page_uncorrectable_probability(4096, 0, 0.0), 0.0);
        // Well within capability: failure is negligible. Far beyond the
        // total capability of all codewords: failure is certain.
        assert!(fixed.page_uncorrectable_probability(4096, 0, 4.0) < 1e-9);
        assert!(fixed.page_uncorrectable_probability(4096, 0, 4_000.0) > 0.999_999);
    }

    #[test]
    fn adaptive_escalation_tracks_wear_to_contain_failures() {
        // The adaptive table escalates `t` with wear; at end of life the
        // strengthened code must contain an error load that would sink the
        // weak early-life code.
        let adaptive = EccScheme::adaptive_bch(40);
        assert!(adaptive.t_for(0) < adaptive.t_for(3_000), "t must escalate");
        // Eight expected errors per codeword: painful for the early-life
        // code, comfortably inside the worst-case capability.
        let end_of_life_errors = 8.0 * BchCodec::with_t(40).codewords_per_page(4096) as f64;
        let weak = EccScheme::fixed_bch(adaptive.t_for(0));
        let p_weak = weak.page_uncorrectable_probability(4096, 3_000, end_of_life_errors);
        let p_adaptive = adaptive.page_uncorrectable_probability(4096, 3_000, end_of_life_errors);
        assert!(
            p_adaptive < p_weak / 1_000.0,
            "adaptive {p_adaptive} vs weak {p_weak}"
        );
    }

    #[test]
    fn no_ecc_fails_on_any_error() {
        let none = EccScheme::None;
        assert_eq!(none.page_uncorrectable_probability(4096, 0, 0.0), 0.0);
        // Poisson P[X >= 1] at one expected error.
        let p = none.page_uncorrectable_probability(4096, 0, 1.0);
        assert!((p - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
        assert!(none.page_uncorrectable_probability(4096, 0, 50.0) > 0.999_999);
    }
}
