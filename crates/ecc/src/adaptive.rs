//! The static correction table driving the adaptive BCH scheme.

use serde::{Deserialize, Serialize};

/// A static table correlating the target correction capability with memory
/// page wear-out, measured in program/erase cycles.
///
/// Every time a new page is written, the proper correction capability is
/// selected from the table based on the current P/E count of its block —
/// exactly the mechanism the paper describes for the adaptive BCH scheme.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptiveTable {
    /// `(pe_threshold, t)` entries sorted by threshold: the capability of the
    /// first entry whose threshold is `>=` the page's P/E count is used.
    entries: Vec<(u64, u32)>,
    /// Capability used beyond the last threshold (worst case).
    max_t: u32,
}

impl AdaptiveTable {
    /// Builds a table from `(pe_threshold, t)` pairs plus the worst-case
    /// capability used beyond the last threshold.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty, thresholds are not strictly increasing,
    /// or capabilities are not non-decreasing.
    pub fn new(entries: Vec<(u64, u32)>, max_t: u32) -> Self {
        assert!(
            !entries.is_empty(),
            "adaptive table needs at least one entry"
        );
        for w in entries.windows(2) {
            assert!(w[0].0 < w[1].0, "thresholds must be strictly increasing");
            assert!(w[0].1 <= w[1].1, "capabilities must be non-decreasing");
        }
        assert!(
            entries.last().map(|e| e.1 <= max_t).unwrap_or(true),
            "max_t must be at least the last table capability"
        );
        AdaptiveTable { entries, max_t }
    }

    /// The default table for a 3 000-cycle MLC part with a 40-bit worst-case
    /// code: capability steps up roughly every fifth of the rated life.
    pub fn paper_default(max_t: u32, rated_pe: u64) -> Self {
        let steps = [
            (0.20, 0.20),
            (0.40, 0.35),
            (0.60, 0.55),
            (0.80, 0.75),
            (1.00, 1.00),
        ];
        let entries = steps
            .iter()
            .map(|(life, frac)| {
                let pe = (rated_pe as f64 * life).round() as u64;
                let t = ((max_t as f64 * frac).ceil() as u32).max(4);
                (pe, t)
            })
            .collect();
        AdaptiveTable::new(entries, max_t)
    }

    /// Correction capability to use for a page whose block has seen
    /// `pe_cycles` program/erase cycles.
    pub fn t_for(&self, pe_cycles: u64) -> u32 {
        for &(threshold, t) in &self.entries {
            if pe_cycles <= threshold {
                return t;
            }
        }
        self.max_t
    }

    /// Worst-case capability of the table.
    pub fn max_t(&self) -> u32 {
        self.max_t
    }

    /// Number of entries in the table.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the table has no entries (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_table_is_monotone_in_pe() {
        let table = AdaptiveTable::paper_default(40, 3_000);
        let mut prev = 0;
        for pe in (0..=6_000).step_by(50) {
            let t = table.t_for(pe);
            assert!(t >= prev, "capability must not decrease with wear");
            assert!(t <= 40);
            prev = t;
        }
    }

    #[test]
    fn fresh_pages_use_much_weaker_code_than_worst_case() {
        let table = AdaptiveTable::paper_default(40, 3_000);
        assert!(table.t_for(0) <= 10);
        assert_eq!(table.t_for(10_000), 40);
        assert_eq!(table.max_t(), 40);
    }

    #[test]
    fn thresholds_select_correct_bin() {
        let table = AdaptiveTable::new(vec![(100, 8), (200, 16)], 40);
        assert_eq!(table.t_for(0), 8);
        assert_eq!(table.t_for(100), 8);
        assert_eq!(table.t_for(101), 16);
        assert_eq!(table.t_for(200), 16);
        assert_eq!(table.t_for(201), 40);
        assert_eq!(table.len(), 2);
        assert!(!table.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_thresholds_rejected() {
        let _ = AdaptiveTable::new(vec![(200, 8), (100, 16)], 40);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_capability_rejected() {
        let _ = AdaptiveTable::new(vec![(100, 16), (200, 8)], 40);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn empty_table_rejected() {
        let _ = AdaptiveTable::new(vec![], 40);
    }
}
