//! Error-correction (BCH) latency models.
//!
//! State-of-the-art SSD simulators usually neglect the ECC subsystem, but an
//! accurate SSD performance figure must include the latency of the encode
//! (write path) and decode (read path) phases. SSDExplorer lets the user
//! choose between a **fixed BCH** code, dimensioned for the worst-case
//! end-of-life error rate, and an **adaptive BCH** code whose correction
//! capability follows the actual wear of the page being accessed through a
//! static correction table indexed by program/erase cycles — the comparison
//! at the heart of the paper's Fig. 5.
//!
//! Latency behaviour reproduced here (from the BCH codec literature the
//! paper cites): encode latency is essentially insensitive to the correction
//! capability `t`, while decode latency grows super-linearly with `t`, so an
//! over-dimensioned fixed code pays a large read-throughput penalty for most
//! of the device lifetime.
//!
//! # Example
//!
//! ```
//! use ssdx_ecc::{BchCodec, EccScheme};
//!
//! let fixed = EccScheme::fixed_bch(40);
//! let adaptive = EccScheme::adaptive_bch(40);
//! // Early in life the adaptive code corrects fewer bits and decodes faster.
//! assert!(adaptive.decode_latency(100) < fixed.decode_latency(100));
//! ```

#![warn(rust_2018_idioms)]

pub mod adaptive;
pub mod bch;
pub mod scheme;

pub use adaptive::AdaptiveTable;
pub use bch::BchCodec;
pub use scheme::EccScheme;
