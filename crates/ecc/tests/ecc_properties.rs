//! Property-based tests of the ECC latency models: the relationships between
//! correction capability, wear, latency and reliability that the paper's
//! Fig. 5 exploits.

use proptest::prelude::*;
use ssdx_ecc::{AdaptiveTable, BchCodec, EccScheme};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn decode_is_always_slower_than_encode(t in 1u32..72) {
        let codec = BchCodec::with_t(t);
        prop_assert!(codec.decode_latency(0.0) > codec.encode_latency());
    }

    #[test]
    fn uncorrectable_probability_is_monotone_in_errors(t in 4u32..64, e1 in 0.0f64..80.0, e2 in 0.0f64..80.0) {
        let codec = BchCodec::with_t(t);
        let (low, high) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        prop_assert!(codec.uncorrectable_probability(high) + 1e-12 >= codec.uncorrectable_probability(low));
        prop_assert!((0.0..=1.0).contains(&codec.uncorrectable_probability(high)));
    }

    #[test]
    fn stronger_codes_are_more_reliable(raw_errors in 1.0f64..50.0, t in 4u32..40) {
        let weak = BchCodec::with_t(t);
        let strong = BchCodec::with_t(t + 8);
        prop_assert!(strong.uncorrectable_probability(raw_errors)
            <= weak.uncorrectable_probability(raw_errors) + 1e-12);
    }

    #[test]
    fn adaptive_scheme_latency_is_sandwiched_between_none_and_fixed(pe in 0u64..6_000) {
        let none = EccScheme::None;
        let fixed = EccScheme::fixed_bch(40);
        let adaptive = EccScheme::adaptive_bch(40);
        let d_none = none.decode_latency(pe);
        let d_adaptive = adaptive.decode_latency(pe);
        let d_fixed = fixed.decode_latency(pe);
        prop_assert!(d_none <= d_adaptive);
        prop_assert!(d_adaptive <= d_fixed);
    }

    #[test]
    fn page_latency_scales_with_page_size(pe in 0u64..6_000, half in prop::bool::ANY) {
        let scheme = EccScheme::fixed_bch(40);
        let small = if half { 2_048 } else { 4_096 };
        let large = small * 2;
        prop_assert!(scheme.decode_latency_for(large, pe, 1.0) >= scheme.decode_latency_for(small, pe, 1.0));
        prop_assert!(scheme.encode_latency_for(large, pe) >= scheme.encode_latency_for(small, pe));
    }

    #[test]
    fn custom_adaptive_tables_respect_their_thresholds(
        steps in prop::collection::vec(1u64..500, 1..6),
        base_t in 4u32..16
    ) {
        // Build strictly increasing thresholds with non-decreasing capability.
        let mut threshold = 0u64;
        let mut entries = Vec::new();
        for (i, step) in steps.iter().enumerate() {
            threshold += step;
            entries.push((threshold, base_t + 4 * i as u32));
        }
        let max_t = base_t + 4 * steps.len() as u32 + 8;
        let table = AdaptiveTable::new(entries.clone(), max_t);
        for (threshold, t) in &entries {
            prop_assert_eq!(table.t_for(*threshold), *t);
        }
        prop_assert_eq!(table.t_for(threshold + 1), max_t);
    }
}

#[test]
fn fig5_mechanism_worst_case_code_pays_its_latency_from_day_one() {
    // The crux of the paper's Fig. 5: a fixed 40-bit code decodes as slowly
    // on a fresh page as on a worn one, while the adaptive code starts cheap
    // and only converges to the fixed cost at end of life.
    let fixed = EccScheme::fixed_bch(40);
    let adaptive = EccScheme::adaptive_bch(40);
    let fresh = 0;
    let end_of_life = 3_000;

    // The fixed code's decode latency is dominated by its 40-bit solver at
    // every age; only the tiny per-corrected-bit term moves with wear.
    let fixed_fresh = fixed.decode_latency(fresh).as_ns_f64();
    let fixed_eol = fixed.decode_latency(end_of_life).as_ns_f64();
    assert!((fixed_eol - fixed_fresh) / fixed_fresh < 0.01);
    assert!(adaptive.decode_latency(fresh) < fixed.decode_latency(fresh) / 3);
    assert_eq!(
        adaptive.decode_latency(end_of_life),
        fixed.decode_latency(end_of_life)
    );

    // Encoding, by contrast, is essentially free of the capability choice.
    let encode_gap =
        fixed.encode_latency(fresh).as_ns_f64() - adaptive.encode_latency(fresh).as_ns_f64();
    assert!(encode_gap.abs() < 2_000.0);
}

#[test]
fn parity_overhead_stays_within_the_spare_area() {
    // A 2 KB codeword with t = 40 must still fit its parity in the 64-byte
    // spare area per 2 KB half-page plus the extra spare of modern parts.
    let codec = BchCodec::with_t(40);
    assert!(
        codec.parity_bytes() <= 112,
        "parity {} bytes",
        codec.parity_bytes()
    );
    let scheme = EccScheme::fixed_bch(40);
    assert!(scheme.parity_bytes_per_page(0) <= 224);
}
