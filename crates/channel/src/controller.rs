//! The channel controller proper.

use crate::config::{ChannelConfig, GangMode};
use serde::{Deserialize, Serialize};
use ssdx_nand::{NandConfig, NandDie, NandOp, PageAddr};
use ssdx_sim::codec::{DecodeError, Decoder, Encoder};
use ssdx_sim::{Resource, SimTime};
use std::fmt;

/// Errors reported by the channel controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelError {
    /// Way index out of range.
    WayOutOfRange,
    /// Die index out of range for the way.
    DieOutOfRange,
    /// The page address does not fit the die geometry.
    BadPageAddress,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::WayOutOfRange => write!(f, "way index out of range"),
            ChannelError::DieOutOfRange => write!(f, "die index out of range"),
            ChannelError::BadPageAddress => write!(f, "page address out of range"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Timing of one operation carried out by the channel controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelOutcome {
    /// When the PP-DMA movement between the AHB side and the SRAM buffer
    /// finished (write path) or started (read path).
    pub dma_done: SimTime,
    /// When the ONFI bus finished moving data/commands for this operation.
    pub bus_done: SimTime,
    /// When the NAND array operation completed and the result is available.
    pub complete_at: SimTime,
    /// Expected raw bit errors for the page at its current wear (reads).
    pub expected_raw_errors: f64,
}

/// Aggregate channel statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Page programs issued.
    pub programs: u64,
    /// Page reads issued.
    pub reads: u64,
    /// Block erases issued.
    pub erases: u64,
    /// Bytes moved over the ONFI data bus.
    pub bus_bytes: u64,
}

/// One channel controller and the NAND dies behind it.
///
/// The controller serialises data transfers on the resources implied by the
/// configured [`GangMode`], serialises SRAM-side movements on the PP-DMA
/// engine, and lets the dies' array operations proceed in parallel once
/// their data has been delivered.
#[derive(Debug, Clone)]
pub struct ChannelController {
    id: u32,
    config: ChannelConfig,
    /// Shared command/data bus (SharedBus) or command-only bus (SharedControl).
    channel_bus: Resource,
    /// Per-way data paths, used only in SharedControl mode.
    way_buses: Vec<Resource>,
    ppdma: Resource,
    dies: Vec<Vec<NandDie>>,
    stats: ChannelStats,
    /// ONFI command/address phase time, cached at construction.
    command_time: SimTime,
    /// ONFI erase-command phase time, cached at construction.
    erase_command_time: SimTime,
    /// One-entry `(bytes, (ppdma, onfi data))` transfer-time memo: within a
    /// run, almost every operation moves the same raw page size, and each
    /// recomputation costs two 128-bit divisions on the per-page hot path.
    transfer_memo: (u32, (SimTime, SimTime)),
}

impl ChannelController {
    /// Creates a channel controller with `config`, populating its dies from
    /// `nand` and the deterministic `seed`.
    pub fn new(id: u32, config: ChannelConfig, nand: NandConfig, seed: u64) -> Self {
        let dies = (0..config.ways)
            .map(|w| {
                (0..config.dies_per_way)
                    .map(|d| {
                        let die_id = w * config.dies_per_way + d;
                        NandDie::new(
                            die_id,
                            nand,
                            seed ^ ((id as u64) << 32) ^ ((die_id as u64) << 8),
                        )
                    })
                    .collect()
            })
            .collect();
        let way_buses = (0..config.ways)
            .map(|w| Resource::new(format!("chan{id}-way{w}-data")))
            .collect();
        ChannelController {
            id,
            channel_bus: Resource::new(format!("chan{id}-onfi")),
            way_buses,
            ppdma: Resource::new(format!("chan{id}-ppdma")),
            dies,
            stats: ChannelStats::default(),
            command_time: config.onfi.command_time(),
            erase_command_time: config.onfi.erase_command_time(),
            // Poisoned with a size no page operation uses (erases pass 0
            // bytes but skip the data phase entirely).
            transfer_memo: (u32::MAX, (SimTime::ZERO, SimTime::ZERO)),
            config,
        }
    }

    /// PP-DMA and ONFI data-phase times for a `bytes`-sized transfer,
    /// through the one-entry memo.
    #[inline]
    fn transfer_times(&mut self, bytes: u32) -> (SimTime, SimTime) {
        if self.transfer_memo.0 != bytes {
            self.transfer_memo = (
                bytes,
                (
                    ssdx_sim::time::transfer_time(bytes as u64, self.config.ppdma_bandwidth),
                    self.config.onfi.data_transfer_time(bytes as u64),
                ),
            );
        }
        self.transfer_memo.1
    }

    /// Channel identifier.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Configuration in use.
    pub fn config(&self) -> &ChannelConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// Immutable access to one die.
    ///
    /// # Errors
    ///
    /// Returns an error if the way or die index is out of range.
    pub fn die(&self, way: u32, die: u32) -> Result<&NandDie, ChannelError> {
        self.dies
            .get(way as usize)
            .ok_or(ChannelError::WayOutOfRange)?
            .get(die as usize)
            .ok_or(ChannelError::DieOutOfRange)
    }

    /// Mutable access to one die.
    ///
    /// # Errors
    ///
    /// Returns an error if the way or die index is out of range.
    pub fn die_mut(&mut self, way: u32, die: u32) -> Result<&mut NandDie, ChannelError> {
        self.dies
            .get_mut(way as usize)
            .ok_or(ChannelError::WayOutOfRange)?
            .get_mut(die as usize)
            .ok_or(ChannelError::DieOutOfRange)
    }

    /// Ages every die on the channel to `pe_cycles` program/erase cycles.
    pub fn age_all(&mut self, pe_cycles: u64) {
        for way in &mut self.dies {
            for die in way {
                die.age_all_blocks(pe_cycles);
            }
        }
    }

    /// Installs a degraded-device error profile (`read_disturb` extra raw
    /// errors per accumulated block read, `retention_scale` multiplier on
    /// the wear-model RBER) on every die of the channel.
    pub fn set_fault_profile(&mut self, read_disturb: f64, retention_scale: f64) {
        for way in &mut self.dies {
            for die in way {
                die.set_fault_profile(read_disturb, retention_scale);
            }
        }
    }

    /// The earliest instant at which the die `(way, die)` is ready.
    ///
    /// # Errors
    ///
    /// Returns an error if the indices are out of range.
    pub fn die_ready_at(&self, way: u32, die: u32) -> Result<SimTime, ChannelError> {
        Ok(self.die(way, die)?.ready_at())
    }

    fn data_bus_for(&mut self, way: u32) -> &mut Resource {
        match self.config.gang {
            GangMode::SharedBus => &mut self.channel_bus,
            GangMode::SharedControl => &mut self.way_buses[way as usize],
        }
    }

    /// Executes one NAND operation on die `(way, die)`.
    ///
    /// The write path is: PP-DMA moves `bytes` from the AHB side into the
    /// SRAM buffer, the ONFI port streams them to the die, then the die
    /// programs. The read path is: command to the die, die array read, data
    /// streamed back over the ONFI port, PP-DMA drains the SRAM buffer.
    /// Erase only needs the command phase.
    ///
    /// # Errors
    ///
    /// Returns an error if the indices or the page address are out of range.
    pub fn try_execute(
        &mut self,
        at: SimTime,
        way: u32,
        die: u32,
        op: NandOp,
        addr: PageAddr,
        bytes: u32,
    ) -> Result<ChannelOutcome, ChannelError> {
        // Validate indices up front.
        let _ = self.die(way, die)?;
        // Erases have no data phase and always pass `bytes == 0`; computing
        // transfer times only for the page operations keeps them from
        // clobbering the one-entry memo between GC-interleaved programs.
        let (ppdma_time, data_time) = if op.is_page_op() {
            self.transfer_times(bytes)
        } else {
            (SimTime::ZERO, SimTime::ZERO)
        };
        let command_time = self.command_time;

        let outcome = match op {
            NandOp::Program => {
                // PP-DMA into the SRAM buffer.
                let dma = self.ppdma.reserve(at, ppdma_time);
                // Command + data over the ONFI path of this way's gang.
                let command_grant = match self.config.gang {
                    GangMode::SharedBus => None,
                    GangMode::SharedControl => {
                        Some(self.channel_bus.reserve(dma.end, command_time))
                    }
                };
                let bus_start = command_grant.map(|g| g.end).unwrap_or(dma.end);
                let bus_occupancy = match self.config.gang {
                    GangMode::SharedBus => command_time + data_time,
                    GangMode::SharedControl => data_time,
                };
                let bus = self.data_bus_for(way).reserve(bus_start, bus_occupancy);
                // Array program starts once the data is in the page register.
                let die_ref = self
                    .dies
                    .get_mut(way as usize)
                    .ok_or(ChannelError::WayOutOfRange)?
                    .get_mut(die as usize)
                    .ok_or(ChannelError::DieOutOfRange)?;
                let array = die_ref
                    .try_execute(bus.end, NandOp::Program, addr)
                    .map_err(|_| ChannelError::BadPageAddress)?;
                self.stats.programs += 1;
                self.stats.bus_bytes += bytes as u64;
                ChannelOutcome {
                    dma_done: dma.end,
                    bus_done: bus.end,
                    complete_at: array.end,
                    expected_raw_errors: array.expected_raw_errors,
                }
            }
            NandOp::Read => {
                // Command to the die, then the array read.
                let cmd = self.channel_bus.reserve(at, command_time);
                let die_ref = self
                    .dies
                    .get_mut(way as usize)
                    .ok_or(ChannelError::WayOutOfRange)?
                    .get_mut(die as usize)
                    .ok_or(ChannelError::DieOutOfRange)?;
                let array = die_ref
                    .try_execute(cmd.end, NandOp::Read, addr)
                    .map_err(|_| ChannelError::BadPageAddress)?;
                // Data out over the way's data path, then PP-DMA to the AHB side.
                let bus = self.data_bus_for(way).reserve(array.end, data_time);
                let dma = self.ppdma.reserve(bus.end, ppdma_time);
                self.stats.reads += 1;
                self.stats.bus_bytes += bytes as u64;
                ChannelOutcome {
                    dma_done: dma.end,
                    bus_done: bus.end,
                    complete_at: dma.end,
                    expected_raw_errors: array.expected_raw_errors,
                }
            }
            NandOp::Erase => {
                let cmd = self.channel_bus.reserve(at, self.erase_command_time);
                let die_ref = self
                    .dies
                    .get_mut(way as usize)
                    .ok_or(ChannelError::WayOutOfRange)?
                    .get_mut(die as usize)
                    .ok_or(ChannelError::DieOutOfRange)?;
                let array = die_ref
                    .try_execute(cmd.end, NandOp::Erase, addr)
                    .map_err(|_| ChannelError::BadPageAddress)?;
                self.stats.erases += 1;
                ChannelOutcome {
                    dma_done: cmd.end,
                    bus_done: cmd.end,
                    complete_at: array.end,
                    expected_raw_errors: 0.0,
                }
            }
        };
        Ok(outcome)
    }

    /// Infallible wrapper around [`try_execute`](Self::try_execute).
    ///
    /// # Panics
    ///
    /// Panics if the indices or the page address are out of range.
    pub fn execute(
        &mut self,
        at: SimTime,
        way: u32,
        die: u32,
        op: NandOp,
        addr: PageAddr,
        bytes: u32,
    ) -> ChannelOutcome {
        self.try_execute(at, way, die, op, addr, bytes)
            // ssdx-lint::allow(no-panic-in-hot-path): the documented
            // infallible twin of try_execute (see `# Panics` above);
            // callers who cannot prove their range use try_execute.
            .expect("way/die/page address out of range")
    }

    /// ONFI data-bus utilization of the channel over a horizon (SharedBus
    /// mode reports the shared bus, SharedControl the average of the way
    /// buses).
    pub fn bus_utilization(&self, horizon: SimTime) -> f64 {
        match self.config.gang {
            GangMode::SharedBus => self.channel_bus.utilization(horizon),
            GangMode::SharedControl => {
                let sum: f64 = self.way_buses.iter().map(|b| b.utilization(horizon)).sum();
                sum / self.way_buses.len() as f64
            }
        }
    }

    /// Resets dynamic activity (busy windows and statistics), keeping wear.
    pub fn reset_activity(&mut self) {
        self.channel_bus.reset();
        for b in &mut self.way_buses {
            b.reset();
        }
        self.ppdma.reset();
        for way in &mut self.dies {
            for die in way {
                die.reset_activity();
            }
        }
        self.stats = ChannelStats::default();
    }

    /// Encodes the channel's mutable state, in stable field order: the
    /// channel bus, each per-way data bus, the PP-DMA engine, each die in
    /// way-major order (all counts construction-fixed, no length prefixes),
    /// then the statistics (programs, reads, erases, bus bytes). The
    /// identifier, configuration, cached command times and the transfer-time
    /// memo (a value-identical cache, re-primed lazily) are not snapshot
    /// state.
    pub fn encode_state(&self, enc: &mut Encoder) {
        self.channel_bus.encode_state(enc);
        for bus in &self.way_buses {
            bus.encode_state(enc);
        }
        self.ppdma.encode_state(enc);
        for way in &self.dies {
            for die in way {
                die.encode_state(enc);
            }
        }
        enc.put_u64(self.stats.programs);
        enc.put_u64(self.stats.reads);
        enc.put_u64(self.stats.erases);
        enc.put_u64(self.stats.bus_bytes);
    }

    /// Restores state captured by [`encode_state`](Self::encode_state) onto
    /// a controller constructed with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on truncated or malformed input.
    pub fn decode_state(&mut self, dec: &mut Decoder<'_>) -> Result<(), DecodeError> {
        self.channel_bus.decode_state(dec)?;
        for bus in &mut self.way_buses {
            bus.decode_state(dec)?;
        }
        self.ppdma.decode_state(dec)?;
        for way in &mut self.dies {
            for die in way {
                die.decode_state(dec)?;
            }
        }
        self.stats.programs = dec.get_u64()?;
        self.stats.reads = dec.get_u64()?;
        self.stats.erases = dec.get_u64()?;
        self.stats.bus_bytes = dec.get_u64()?;
        self.transfer_memo = (u32::MAX, (SimTime::ZERO, SimTime::ZERO));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(block: u32, page: u32) -> PageAddr {
        PageAddr {
            plane: 0,
            block,
            page,
        }
    }

    fn controller(gang: GangMode) -> ChannelController {
        ChannelController::new(
            0,
            ChannelConfig::new(2, 2).with_gang(gang),
            NandConfig::default(),
            42,
        )
    }

    #[test]
    fn program_pipeline_orders_dma_bus_array() {
        let mut c = controller(GangMode::SharedBus);
        let o = c.execute(SimTime::ZERO, 0, 0, NandOp::Program, addr(0, 0), 4096);
        assert!(o.dma_done > SimTime::ZERO);
        assert!(o.bus_done > o.dma_done);
        assert!(o.complete_at > o.bus_done + SimTime::from_us(800));
    }

    #[test]
    fn read_pipeline_orders_array_bus_dma() {
        let mut c = controller(GangMode::SharedBus);
        let o = c.execute(SimTime::ZERO, 0, 0, NandOp::Read, addr(0, 0), 4096);
        // Array read is ~60 µs, then the data moves out.
        assert!(o.bus_done > SimTime::from_us(60));
        assert!(o.complete_at >= o.bus_done);
        assert_eq!(c.stats().reads, 1);
    }

    #[test]
    fn erase_needs_only_the_command_phase() {
        let mut c = controller(GangMode::SharedBus);
        let o = c.execute(SimTime::ZERO, 1, 1, NandOp::Erase, addr(3, 0), 0);
        assert_eq!(o.dma_done, o.bus_done);
        // tBERS is at least 1 ms nominal, minus the ±5 % per-operation jitter.
        assert!(o.complete_at >= SimTime::from_us(940));
        assert_eq!(c.stats().erases, 1);
    }

    #[test]
    fn shared_bus_serialises_transfers_to_different_ways() {
        let mut c = controller(GangMode::SharedBus);
        let a = c.execute(SimTime::ZERO, 0, 0, NandOp::Program, addr(0, 0), 4096);
        let b = c.execute(SimTime::ZERO, 1, 0, NandOp::Program, addr(0, 0), 4096);
        // The second transfer's bus phase starts after the first one's.
        assert!(b.bus_done > a.bus_done);
        // But the array programs overlap (different dies).
        assert!(b.complete_at < a.complete_at + SimTime::from_ms(3));
    }

    #[test]
    fn shared_control_lets_way_data_paths_overlap() {
        let mut shared = controller(GangMode::SharedBus);
        let mut split = controller(GangMode::SharedControl);
        let a0 = shared.execute(SimTime::ZERO, 0, 0, NandOp::Program, addr(0, 0), 4096);
        let a1 = shared.execute(SimTime::ZERO, 1, 0, NandOp::Program, addr(0, 0), 4096);
        let b0 = split.execute(SimTime::ZERO, 0, 0, NandOp::Program, addr(0, 0), 4096);
        let b1 = split.execute(SimTime::ZERO, 1, 0, NandOp::Program, addr(0, 0), 4096);
        let shared_span = a1.bus_done.max(a0.bus_done);
        let split_span = b1.bus_done.max(b0.bus_done);
        assert!(split_span < shared_span, "{split_span} vs {shared_span}");
    }

    #[test]
    fn same_die_operations_serialise_on_the_array() {
        let mut c = controller(GangMode::SharedBus);
        let a = c.execute(SimTime::ZERO, 0, 0, NandOp::Program, addr(0, 0), 4096);
        let b = c.execute(SimTime::ZERO, 0, 0, NandOp::Program, addr(0, 1), 4096);
        assert!(b.complete_at >= a.complete_at + SimTime::from_us(900));
    }

    #[test]
    fn out_of_range_indices_error() {
        let mut c = controller(GangMode::SharedBus);
        assert_eq!(
            c.try_execute(SimTime::ZERO, 9, 0, NandOp::Read, addr(0, 0), 4096)
                .unwrap_err(),
            ChannelError::WayOutOfRange
        );
        assert_eq!(
            c.try_execute(SimTime::ZERO, 0, 9, NandOp::Read, addr(0, 0), 4096)
                .unwrap_err(),
            ChannelError::DieOutOfRange
        );
        let bad = PageAddr {
            plane: 7,
            block: 0,
            page: 0,
        };
        assert_eq!(
            c.try_execute(SimTime::ZERO, 0, 0, NandOp::Read, bad, 4096)
                .unwrap_err(),
            ChannelError::BadPageAddress
        );
        assert!(c.die(9, 0).is_err());
        assert!(c.die_ready_at(0, 9).is_err());
    }

    #[test]
    fn aging_propagates_to_all_dies() {
        let mut c = controller(GangMode::SharedBus);
        c.age_all(3_000);
        for way in 0..2 {
            for die in 0..2 {
                assert_eq!(c.die(way, die).unwrap().block_pe_cycles(addr(0, 0)), 3_000);
            }
        }
    }

    #[test]
    fn fault_profile_propagates_to_all_dies() {
        let mut c = controller(GangMode::SharedBus);
        c.set_fault_profile(0.5, 2.0);
        c.age_all(1_000);
        let baseline = {
            let mut plain = controller(GangMode::SharedBus);
            plain.age_all(1_000);
            plain.die(0, 0).unwrap().expected_raw_errors(addr(0, 0))
        };
        for way in 0..2 {
            for die in 0..2 {
                let got = c.die(way, die).unwrap().expected_raw_errors(addr(0, 0));
                assert_eq!(got, baseline * 2.0);
            }
        }
    }

    #[test]
    fn stats_and_reset() {
        let mut c = controller(GangMode::SharedBus);
        c.execute(SimTime::ZERO, 0, 0, NandOp::Program, addr(0, 0), 4096);
        c.execute(SimTime::ZERO, 0, 1, NandOp::Read, addr(0, 0), 4096);
        assert_eq!(c.stats().programs, 1);
        assert_eq!(c.stats().reads, 1);
        assert_eq!(c.stats().bus_bytes, 8192);
        assert!(c.bus_utilization(SimTime::from_ms(1)) > 0.0);
        c.reset_activity();
        assert_eq!(c.stats().programs, 0);
        assert_eq!(c.die_ready_at(0, 0).unwrap(), SimTime::ZERO);
    }
}
