//! Channel controller configuration.

use serde::{Deserialize, Serialize};
use ssdx_nand::OnfiBus;

/// How the ways attached to one channel share the channel resources
/// (Agrawal et al., USENIX ATC 2008).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GangMode {
    /// All ways share both the control and the data lines of the channel:
    /// cheapest wiring, but data transfers of different ways serialise.
    #[default]
    SharedBus,
    /// Ways share only the control lines; each way has its own data path, so
    /// data transfers to different ways can overlap (only the short command
    /// phase serialises).
    SharedControl,
}

/// Static configuration of one channel controller.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Number of ways (chip-enable groups) on the channel.
    pub ways: u32,
    /// Number of dies per way.
    pub dies_per_way: u32,
    /// ONFI bus timing of the channel.
    pub onfi: OnfiBus,
    /// Way interconnection scheme.
    pub gang: GangMode,
    /// Size of the controller's SRAM cache buffer, bytes.
    pub sram_buffer_bytes: u32,
    /// Push-Pull DMA engine bandwidth between the AHB side and the SRAM
    /// buffer, bytes per second.
    pub ppdma_bandwidth: u64,
}

impl ChannelConfig {
    /// Creates a configuration with `ways` ways of `dies_per_way` dies and
    /// default ONFI/PP-DMA parameters.
    ///
    /// # Panics
    ///
    /// Panics if `ways` or `dies_per_way` is zero.
    pub fn new(ways: u32, dies_per_way: u32) -> Self {
        assert!(ways > 0, "a channel needs at least one way");
        assert!(dies_per_way > 0, "a way needs at least one die");
        ChannelConfig {
            ways,
            dies_per_way,
            onfi: OnfiBus::default(),
            gang: GangMode::SharedBus,
            sram_buffer_bytes: 64 * 1024,
            ppdma_bandwidth: 800_000_000,
        }
    }

    /// Sets the gang mode.
    pub fn with_gang(mut self, gang: GangMode) -> Self {
        self.gang = gang;
        self
    }

    /// Sets the ONFI bus timing.
    pub fn with_onfi(mut self, onfi: OnfiBus) -> Self {
        self.onfi = onfi;
        self
    }

    /// Total dies attached to the channel.
    pub fn dies(&self) -> u32 {
        self.ways * self.dies_per_way
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        Self::new(4, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dies_is_product_of_ways_and_dies_per_way() {
        let c = ChannelConfig::new(8, 4);
        assert_eq!(c.dies(), 32);
    }

    #[test]
    fn builder_methods_apply() {
        let c = ChannelConfig::new(2, 2)
            .with_gang(GangMode::SharedControl)
            .with_onfi(OnfiBus::new(ssdx_nand::OnfiSpeed::Ddr400));
        assert_eq!(c.gang, GangMode::SharedControl);
        assert_eq!(c.onfi.speed, ssdx_nand::OnfiSpeed::Ddr400);
    }

    #[test]
    fn default_gang_is_shared_bus() {
        assert_eq!(GangMode::default(), GangMode::SharedBus);
        assert_eq!(ChannelConfig::default().gang, GangMode::SharedBus);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_rejected() {
        let _ = ChannelConfig::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one die")]
    fn zero_dies_rejected() {
        let _ = ChannelConfig::new(1, 0);
    }
}
