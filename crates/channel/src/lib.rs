//! Channel/way controller model.
//!
//! To perform read/write operations on the NAND array, the SSD needs a
//! controller that formats the CPU's commands into the ONFI protocol. The
//! microarchitecture modelled here follows the industry IP the paper cites:
//! an AMBA AHB slave program port, a Push-Pull DMA (PP-DMA) engine, an SRAM
//! cache buffer, an ONFI 2.x port and a command translator. One
//! [`ChannelController`] instance drives one NAND channel; the dies attached
//! to it are organised into *ways* (chip-enable groups), interconnected
//! either as a **shared bus gang** (all ways share the channel's data bus) or
//! a **shared control gang** (ways have private data paths and only share
//! command/control), the two schemes from Agrawal et al. that the paper
//! supports.
//!
//! # Example
//!
//! ```
//! use ssdx_channel::{ChannelConfig, ChannelController};
//! use ssdx_nand::{NandConfig, PageAddr, NandOp};
//! use ssdx_sim::SimTime;
//!
//! let cfg = ChannelConfig::new(2, 2); // 2 ways, 2 dies per way
//! let mut chan = ChannelController::new(0, cfg, NandConfig::default(), 7);
//! let addr = PageAddr { plane: 0, block: 0, page: 0 };
//! let done = chan.execute(SimTime::ZERO, 0, 0, NandOp::Program, addr, 4096);
//! assert!(done.complete_at > SimTime::from_us(850));
//! ```

#![warn(rust_2018_idioms)]

pub mod config;
pub mod controller;

pub use config::{ChannelConfig, GangMode};
pub use controller::{ChannelController, ChannelError, ChannelOutcome, ChannelStats};
