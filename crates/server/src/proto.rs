//! The versioned `ssdx` wire protocol: request/response/telemetry messages
//! and their binary codecs.
//!
//! Every message is one frame payload (see [`crate::frame`]): a one-byte
//! tag followed by the variant's fields, encoded with
//! [`ssdx_sim::codec`]'s LEB128-varint [`Encoder`]/[`Decoder`]. Decoding is
//! total — any byte sequence produces either a message or a
//! [`DecodeError`], never a panic — and strict: trailing bytes after a
//! well-formed message are an error. The normative byte-level
//! specification lives in `docs/PROTOCOL.md`; this module is its
//! implementation.
//!
//! The protocol splits server→client traffic into two channels carried on
//! one TCP stream (the naia `ChannelMode` split):
//!
//! * **control** ([`Response`], tags `0x41..=0x4C`) — ordered, reliable:
//!   exactly one reply per [`Request`], never dropped;
//! * **telemetry** ([`Telemetry`], tags `0x61..=0x63`) — fire-and-forget:
//!   subscribed completion records and utilization snapshots that the
//!   server may drop (oldest first) when the subscriber falls behind, in
//!   which case a [`Telemetry::Dropped`] marker reports the gap.

use ssdx_core::{
    ClassHistograms, CommandClass, CommandRecord, PerfReport, SessionSnapshot, TailSummary,
    UtilizationBreakdown,
};
use ssdx_hostif::{
    AccessPattern, BurstyWorkload, CommandSource, HostCommand, HostOp, MixedSizeWorkload,
    RmwWorkload, Workload, ZipfianWorkload,
};
use ssdx_sim::codec::{DecodeError, Decoder, Encoder};
use ssdx_sim::stats::LatencyHistogram;
use ssdx_sim::SimTime;

/// Protocol revision spoken by this build.
///
/// A connection opens with [`Request::Hello`] carrying the client's
/// version; the server answers [`Response::HelloAck`] only on an exact
/// match and [`ErrorCode::VersionMismatch`] otherwise. Any change to a
/// message layout bumps this constant.
pub const PROTOCOL_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Error codes
// ---------------------------------------------------------------------------

/// Machine-readable failure classes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The client's `Hello` version differs from [`PROTOCOL_VERSION`].
    VersionMismatch,
    /// The request frame did not decode, or arrived out of sequence
    /// (e.g. a second `Hello`, or a request before the handshake).
    MalformedRequest,
    /// The request named a session id this server does not hold.
    UnknownSession,
    /// `CreateSession` carried a config text the platform rejected.
    BadConfig,
    /// `CreateSession` carried a workload spec with invalid parameters.
    BadWorkload,
    /// The server is at its configured session capacity.
    SessionLimit,
    /// The session's simulation failed; the session has been discarded.
    /// Other sessions and the server itself are unaffected.
    SessionFailed,
    /// The server is shutting down and no longer accepts session work.
    ShuttingDown,
}

impl ErrorCode {
    /// All codes, in wire-value order.
    pub const ALL: [ErrorCode; 8] = [
        ErrorCode::VersionMismatch,
        ErrorCode::MalformedRequest,
        ErrorCode::UnknownSession,
        ErrorCode::BadConfig,
        ErrorCode::BadWorkload,
        ErrorCode::SessionLimit,
        ErrorCode::SessionFailed,
        ErrorCode::ShuttingDown,
    ];

    /// The byte this code encodes to.
    pub fn code(self) -> u8 {
        match self {
            ErrorCode::VersionMismatch => 1,
            ErrorCode::MalformedRequest => 2,
            ErrorCode::UnknownSession => 3,
            ErrorCode::BadConfig => 4,
            ErrorCode::BadWorkload => 5,
            ErrorCode::SessionLimit => 6,
            ErrorCode::SessionFailed => 7,
            ErrorCode::ShuttingDown => 8,
        }
    }

    /// Stable lowercase name (used in logs and the spec).
    pub fn label(self) -> &'static str {
        match self {
            ErrorCode::VersionMismatch => "version-mismatch",
            ErrorCode::MalformedRequest => "malformed-request",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::BadConfig => "bad-config",
            ErrorCode::BadWorkload => "bad-workload",
            ErrorCode::SessionLimit => "session-limit",
            ErrorCode::SessionFailed => "session-failed",
            ErrorCode::ShuttingDown => "shutting-down",
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<ErrorCode, DecodeError> {
        let raw = dec.get_u8()?;
        ErrorCode::ALL
            .into_iter()
            .find(|c| c.code() == raw)
            .ok_or_else(|| dec.invalid("error code"))
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

// ---------------------------------------------------------------------------
// Workload specs
// ---------------------------------------------------------------------------

/// A self-contained, wire-encodable description of a command source.
///
/// `CreateSession` carries one of these instead of an opaque command list:
/// the server re-materialises the deterministic generator locally, so a
/// few dozen bytes describe millions of commands and the same spec + seed
/// reproduces the same stream on any build (the deterministic-replay
/// contract in `docs/OPERATIONS.md`).
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// The four fixed access patterns of [`Workload`].
    Basic {
        /// Access pattern (SW/SR/RW/RR).
        pattern: AccessPattern,
        /// Payload bytes per command.
        block_size: u32,
        /// Number of commands.
        command_count: u64,
        /// Logical footprint in bytes.
        footprint_bytes: u64,
        /// RNG seed for the random patterns.
        seed: u64,
    },
    /// Skewed random traffic ([`ZipfianWorkload`]).
    Zipfian {
        /// Zipf skew, exclusive `(0, 1)`.
        theta: f64,
        /// RNG seed.
        seed: u64,
        /// Number of commands.
        command_count: u64,
        /// Payload bytes per command.
        block_size: u32,
        /// Logical footprint in bytes.
        footprint_bytes: u64,
        /// Fraction of reads, `[0, 1]`.
        read_fraction: f64,
    },
    /// On/off burst traffic ([`BurstyWorkload`]).
    Bursty {
        /// RNG seed.
        seed: u64,
        /// Number of commands.
        command_count: u64,
        /// Payload bytes per command.
        block_size: u32,
        /// Logical footprint in bytes.
        footprint_bytes: u64,
        /// Fraction of reads, `[0, 1]`.
        read_fraction: f64,
        /// Commands per burst (non-zero).
        burst_len: u64,
        /// Gap between commands inside a burst.
        inter_arrival: SimTime,
        /// Idle gap between bursts.
        idle_gap: SimTime,
    },
    /// Weighted block-size mix ([`MixedSizeWorkload`]).
    MixedSize {
        /// `(block_size, weight)` pairs; at least one non-zero weight.
        sizes: Vec<(u32, u32)>,
        /// RNG seed.
        seed: u64,
        /// Number of commands.
        command_count: u64,
        /// Logical footprint in bytes.
        footprint_bytes: u64,
        /// Fraction of reads, `[0, 1]`.
        read_fraction: f64,
    },
    /// Read-modify-write update pairs ([`RmwWorkload`]).
    Rmw {
        /// RNG seed.
        seed: u64,
        /// Number of read+write update pairs.
        updates: u64,
        /// Payload bytes per command.
        block_size: u32,
        /// Logical footprint in bytes.
        footprint_bytes: u64,
    },
}

impl WorkloadSpec {
    /// Validates the parameters and materialises the command source.
    ///
    /// Validation mirrors the generator constructors' own `assert!`
    /// invariants so that a hostile or buggy client yields a protocol
    /// error ([`ErrorCode::BadWorkload`]) instead of a server-side panic.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn build(&self) -> Result<Box<dyn CommandSource + Send + Sync>, String> {
        fn check_block(block_size: u32, footprint_bytes: u64) -> Result<(), String> {
            if block_size == 0 {
                return Err("block size must be non-zero".into());
            }
            if footprint_bytes < block_size as u64 {
                return Err(format!(
                    "footprint ({footprint_bytes} B) cannot hold one {block_size} B block"
                ));
            }
            Ok(())
        }
        match *self {
            WorkloadSpec::Basic {
                pattern,
                block_size,
                command_count,
                footprint_bytes,
                seed,
            } => {
                check_block(block_size, footprint_bytes)?;
                Ok(Box::new(
                    Workload::builder(pattern)
                        .block_size(block_size)
                        .command_count(command_count)
                        .footprint_bytes(footprint_bytes)
                        .seed(seed)
                        .build(),
                ))
            }
            WorkloadSpec::Zipfian {
                theta,
                seed,
                command_count,
                block_size,
                footprint_bytes,
                read_fraction,
            } => {
                if !(theta > 0.0 && theta < 1.0) {
                    return Err(format!("zipfian skew must be in (0, 1), got {theta}"));
                }
                check_block(block_size, footprint_bytes)?;
                Ok(Box::new(
                    ZipfianWorkload::new(theta, seed)
                        .command_count(command_count)
                        .block_size(block_size)
                        .footprint_bytes(footprint_bytes)
                        .read_fraction(read_fraction),
                ))
            }
            WorkloadSpec::Bursty {
                seed,
                command_count,
                block_size,
                footprint_bytes,
                read_fraction,
                burst_len,
                inter_arrival,
                idle_gap,
            } => {
                check_block(block_size, footprint_bytes)?;
                if burst_len == 0 {
                    return Err("burst length must be non-zero".into());
                }
                Ok(Box::new(
                    BurstyWorkload::new(seed)
                        .command_count(command_count)
                        .block_size(block_size)
                        .footprint_bytes(footprint_bytes)
                        .read_fraction(read_fraction)
                        .burst(burst_len, inter_arrival, idle_gap),
                ))
            }
            WorkloadSpec::MixedSize {
                ref sizes,
                seed,
                command_count,
                footprint_bytes,
                read_fraction,
            } => {
                if sizes.is_empty() {
                    return Err("the size mix must hold at least one size".into());
                }
                if sizes.iter().any(|&(bytes, _)| bytes == 0) {
                    return Err("block sizes must be non-zero".into());
                }
                if !sizes.iter().any(|&(_, weight)| weight > 0) {
                    return Err("at least one size needs a non-zero weight".into());
                }
                let largest = sizes
                    .iter()
                    .filter(|&&(_, w)| w > 0)
                    .map(|&(bytes, _)| bytes as u64)
                    .max()
                    .unwrap_or(1);
                if footprint_bytes < largest {
                    return Err(format!(
                        "footprint must hold the largest block size ({largest} B)"
                    ));
                }
                Ok(Box::new(
                    MixedSizeWorkload::new(sizes.iter().copied(), seed)
                        .command_count(command_count)
                        .footprint_bytes(footprint_bytes)
                        .read_fraction(read_fraction),
                ))
            }
            WorkloadSpec::Rmw {
                seed,
                updates,
                block_size,
                footprint_bytes,
            } => {
                check_block(block_size, footprint_bytes)?;
                Ok(Box::new(
                    RmwWorkload::new(seed)
                        .updates(updates)
                        .block_size(block_size)
                        .footprint_bytes(footprint_bytes),
                ))
            }
        }
    }

    fn encode(&self, enc: &mut Encoder) {
        match *self {
            WorkloadSpec::Basic {
                pattern,
                block_size,
                command_count,
                footprint_bytes,
                seed,
            } => {
                enc.put_u8(0);
                put_pattern(enc, pattern);
                enc.put_u32(block_size);
                enc.put_u64(command_count);
                enc.put_u64(footprint_bytes);
                enc.put_u64(seed);
            }
            WorkloadSpec::Zipfian {
                theta,
                seed,
                command_count,
                block_size,
                footprint_bytes,
                read_fraction,
            } => {
                enc.put_u8(1);
                enc.put_f64(theta);
                enc.put_u64(seed);
                enc.put_u64(command_count);
                enc.put_u32(block_size);
                enc.put_u64(footprint_bytes);
                enc.put_f64(read_fraction);
            }
            WorkloadSpec::Bursty {
                seed,
                command_count,
                block_size,
                footprint_bytes,
                read_fraction,
                burst_len,
                inter_arrival,
                idle_gap,
            } => {
                enc.put_u8(2);
                enc.put_u64(seed);
                enc.put_u64(command_count);
                enc.put_u32(block_size);
                enc.put_u64(footprint_bytes);
                enc.put_f64(read_fraction);
                enc.put_u64(burst_len);
                enc.put_time(inter_arrival);
                enc.put_time(idle_gap);
            }
            WorkloadSpec::MixedSize {
                ref sizes,
                seed,
                command_count,
                footprint_bytes,
                read_fraction,
            } => {
                enc.put_u8(3);
                enc.put_len(sizes.len());
                for &(bytes, weight) in sizes {
                    enc.put_u32(bytes);
                    enc.put_u32(weight);
                }
                enc.put_u64(seed);
                enc.put_u64(command_count);
                enc.put_u64(footprint_bytes);
                enc.put_f64(read_fraction);
            }
            WorkloadSpec::Rmw {
                seed,
                updates,
                block_size,
                footprint_bytes,
            } => {
                enc.put_u8(4);
                enc.put_u64(seed);
                enc.put_u64(updates);
                enc.put_u32(block_size);
                enc.put_u64(footprint_bytes);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<WorkloadSpec, DecodeError> {
        match dec.get_u8()? {
            0 => Ok(WorkloadSpec::Basic {
                pattern: get_pattern(dec)?,
                block_size: dec.get_u32()?,
                command_count: dec.get_u64()?,
                footprint_bytes: dec.get_u64()?,
                seed: dec.get_u64()?,
            }),
            1 => Ok(WorkloadSpec::Zipfian {
                theta: dec.get_f64()?,
                seed: dec.get_u64()?,
                command_count: dec.get_u64()?,
                block_size: dec.get_u32()?,
                footprint_bytes: dec.get_u64()?,
                read_fraction: dec.get_f64()?,
            }),
            2 => Ok(WorkloadSpec::Bursty {
                seed: dec.get_u64()?,
                command_count: dec.get_u64()?,
                block_size: dec.get_u32()?,
                footprint_bytes: dec.get_u64()?,
                read_fraction: dec.get_f64()?,
                burst_len: dec.get_u64()?,
                inter_arrival: dec.get_time()?,
                idle_gap: dec.get_time()?,
            }),
            3 => {
                let n = dec.get_len()?;
                let mut sizes = Vec::with_capacity(n);
                for _ in 0..n {
                    sizes.push((dec.get_u32()?, dec.get_u32()?));
                }
                Ok(WorkloadSpec::MixedSize {
                    sizes,
                    seed: dec.get_u64()?,
                    command_count: dec.get_u64()?,
                    footprint_bytes: dec.get_u64()?,
                    read_fraction: dec.get_f64()?,
                })
            }
            4 => Ok(WorkloadSpec::Rmw {
                seed: dec.get_u64()?,
                updates: dec.get_u64()?,
                block_size: dec.get_u32()?,
                footprint_bytes: dec.get_u64()?,
            }),
            _ => Err(dec.invalid("workload spec tag")),
        }
    }
}

// ---------------------------------------------------------------------------
// Requests (client → server, tags 0x01..=0x0C)
// ---------------------------------------------------------------------------

/// Client → server messages. One control [`Response`] answers each.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens the connection: carries the client's [`PROTOCOL_VERSION`].
    /// Must be the first frame; answered by [`Response::HelloAck`].
    Hello {
        /// The client's protocol version.
        version: u32,
    },
    /// Creates a session from a device config and a workload spec.
    CreateSession {
        /// Device configuration in [`ssdx_core::SsdConfig`] text form.
        config: String,
        /// The command stream to run.
        workload: WorkloadSpec,
    },
    /// Advances a session by at most `commands` completions.
    Step {
        /// Target session id.
        session: u32,
        /// Maximum completions to retire (0 is a no-op probe).
        commands: u64,
    },
    /// Advances a session until its clock reaches `deadline`.
    RunUntil {
        /// Target session id.
        session: u32,
        /// Simulated-time deadline.
        deadline: SimTime,
    },
    /// Attaches this connection's telemetry channel to a session.
    Subscribe {
        /// Target session id.
        session: u32,
        /// Emit a utilization snapshot every `sample_every` completions
        /// (0 = completions only, no utilization samples).
        sample_every: u64,
    },
    /// Detaches the session's telemetry subscriber.
    Unsubscribe {
        /// Target session id.
        session: u32,
    },
    /// Returns the session's current state as a portable snapshot image.
    CaptureSnapshot {
        /// Target session id.
        session: u32,
    },
    /// Forks the session: a new session continues from the same state
    /// while the parent stays untouched (what-if exploration).
    Fork {
        /// Parent session id.
        session: u32,
    },
    /// Runs the session to completion (on a fork — the session itself
    /// stays where it is) and returns the full performance report.
    FetchReport {
        /// Target session id.
        session: u32,
    },
    /// Like `FetchReport` but returns only the per-class tail summaries.
    FetchTails {
        /// Target session id.
        session: u32,
    },
    /// Discards a session and frees its resources.
    CloseSession {
        /// Target session id.
        session: u32,
    },
    /// Asks the server to drain in-flight work and exit.
    Shutdown,
}

impl Request {
    /// Encodes the request as one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match *self {
            Request::Hello { version } => {
                enc.put_u8(0x01);
                enc.put_u32(version);
            }
            Request::CreateSession {
                ref config,
                ref workload,
            } => {
                enc.put_u8(0x02);
                enc.put_str(config);
                workload.encode(&mut enc);
            }
            Request::Step { session, commands } => {
                enc.put_u8(0x03);
                enc.put_u32(session);
                enc.put_u64(commands);
            }
            Request::RunUntil { session, deadline } => {
                enc.put_u8(0x04);
                enc.put_u32(session);
                enc.put_time(deadline);
            }
            Request::Subscribe {
                session,
                sample_every,
            } => {
                enc.put_u8(0x05);
                enc.put_u32(session);
                enc.put_u64(sample_every);
            }
            Request::Unsubscribe { session } => {
                enc.put_u8(0x06);
                enc.put_u32(session);
            }
            Request::CaptureSnapshot { session } => {
                enc.put_u8(0x07);
                enc.put_u32(session);
            }
            Request::Fork { session } => {
                enc.put_u8(0x08);
                enc.put_u32(session);
            }
            Request::FetchReport { session } => {
                enc.put_u8(0x09);
                enc.put_u32(session);
            }
            Request::FetchTails { session } => {
                enc.put_u8(0x0A);
                enc.put_u32(session);
            }
            Request::CloseSession { session } => {
                enc.put_u8(0x0B);
                enc.put_u32(session);
            }
            Request::Shutdown => {
                enc.put_u8(0x0C);
            }
        }
        enc.finish()
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on an unknown tag, malformed fields or
    /// trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Request, DecodeError> {
        let mut dec = Decoder::new(bytes);
        let req = match dec.get_u8()? {
            0x01 => Request::Hello {
                version: dec.get_u32()?,
            },
            0x02 => Request::CreateSession {
                config: dec.get_str()?,
                workload: WorkloadSpec::decode(&mut dec)?,
            },
            0x03 => Request::Step {
                session: dec.get_u32()?,
                commands: dec.get_u64()?,
            },
            0x04 => Request::RunUntil {
                session: dec.get_u32()?,
                deadline: dec.get_time()?,
            },
            0x05 => Request::Subscribe {
                session: dec.get_u32()?,
                sample_every: dec.get_u64()?,
            },
            0x06 => Request::Unsubscribe {
                session: dec.get_u32()?,
            },
            0x07 => Request::CaptureSnapshot {
                session: dec.get_u32()?,
            },
            0x08 => Request::Fork {
                session: dec.get_u32()?,
            },
            0x09 => Request::FetchReport {
                session: dec.get_u32()?,
            },
            0x0A => Request::FetchTails {
                session: dec.get_u32()?,
            },
            0x0B => Request::CloseSession {
                session: dec.get_u32()?,
            },
            0x0C => Request::Shutdown,
            _ => return Err(dec.invalid("request tag")),
        };
        dec.expect_end()?;
        Ok(req)
    }
}

// ---------------------------------------------------------------------------
// Responses (server → client control channel, tags 0x41..=0x4C)
// ---------------------------------------------------------------------------

/// Server → client control messages: exactly one per [`Request`], in
/// request order, never dropped.
///
/// Not `PartialEq` because [`PerfReport`] is not; compare round-trips
/// through the debug format, which is the report's golden byte-identity
/// surface anyway.
#[derive(Debug, Clone)]
pub enum Response {
    /// Accepts the handshake; carries the server's [`PROTOCOL_VERSION`].
    HelloAck {
        /// The server's protocol version.
        version: u32,
    },
    /// A session was created.
    SessionCreated {
        /// Id of the new session.
        session: u32,
    },
    /// Reply to `Step`/`RunUntil`: how far the session advanced.
    Progress {
        /// The session id echoed back.
        session: u32,
        /// Completions retired by this request.
        executed: u64,
        /// The session clock after the advance.
        now: SimTime,
        /// Completions retired over the session's lifetime.
        completed: u64,
        /// Commands still waiting in the source stream.
        remaining: u64,
    },
    /// Telemetry subscription installed.
    Subscribed {
        /// The session id echoed back.
        session: u32,
    },
    /// Telemetry subscription removed.
    Unsubscribed {
        /// The session id echoed back.
        session: u32,
    },
    /// A portable snapshot image of the session's current state.
    SnapshotImage {
        /// The session id echoed back.
        session: u32,
        /// [`ssdx_core::Snapshot`] bytes (parse with `Snapshot::from_bytes`).
        image: Vec<u8>,
    },
    /// A fork was created.
    Forked {
        /// The parent session id echoed back.
        parent: u32,
        /// Id of the new forked session.
        session: u32,
    },
    /// The full performance report of the completed run.
    Report {
        /// The session id echoed back.
        session: u32,
        /// The report, field-identical to an in-process run.
        report: Box<PerfReport>,
    },
    /// Per-class tail-latency summaries of the completed run.
    Tails {
        /// The session id echoed back.
        session: u32,
        /// One summary per [`CommandClass`], in `CommandClass::ALL` order.
        tails: Vec<TailSummary>,
    },
    /// The session was closed.
    Closed {
        /// The session id echoed back.
        session: u32,
    },
    /// Acknowledges `Shutdown`; also broadcast to every connection when
    /// the server begins draining.
    ShuttingDown,
    /// The request failed; the connection stays usable.
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Encodes the response as one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match *self {
            Response::HelloAck { version } => {
                enc.put_u8(0x41);
                enc.put_u32(version);
            }
            Response::SessionCreated { session } => {
                enc.put_u8(0x42);
                enc.put_u32(session);
            }
            Response::Progress {
                session,
                executed,
                now,
                completed,
                remaining,
            } => {
                enc.put_u8(0x43);
                enc.put_u32(session);
                enc.put_u64(executed);
                enc.put_time(now);
                enc.put_u64(completed);
                enc.put_u64(remaining);
            }
            Response::Subscribed { session } => {
                enc.put_u8(0x44);
                enc.put_u32(session);
            }
            Response::Unsubscribed { session } => {
                enc.put_u8(0x45);
                enc.put_u32(session);
            }
            Response::SnapshotImage { session, ref image } => {
                enc.put_u8(0x46);
                enc.put_u32(session);
                enc.put_len(image.len());
                enc.put_raw(image);
            }
            Response::Forked { parent, session } => {
                enc.put_u8(0x47);
                enc.put_u32(parent);
                enc.put_u32(session);
            }
            Response::Report {
                session,
                ref report,
            } => {
                enc.put_u8(0x48);
                enc.put_u32(session);
                put_report(&mut enc, report);
            }
            Response::Tails { session, ref tails } => {
                enc.put_u8(0x49);
                enc.put_u32(session);
                enc.put_len(tails.len());
                for t in tails {
                    put_tail(&mut enc, t);
                }
            }
            Response::Closed { session } => {
                enc.put_u8(0x4A);
                enc.put_u32(session);
            }
            Response::ShuttingDown => {
                enc.put_u8(0x4B);
            }
            Response::Error { code, ref message } => {
                enc.put_u8(0x4C);
                enc.put_u8(code.code());
                enc.put_str(message);
            }
        }
        enc.finish()
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on an unknown tag, malformed fields or
    /// trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Response, DecodeError> {
        let mut dec = Decoder::new(bytes);
        let resp = Response::decode_body(&mut dec)?;
        dec.expect_end()?;
        Ok(resp)
    }

    fn decode_body(dec: &mut Decoder<'_>) -> Result<Response, DecodeError> {
        Ok(match dec.get_u8()? {
            0x41 => Response::HelloAck {
                version: dec.get_u32()?,
            },
            0x42 => Response::SessionCreated {
                session: dec.get_u32()?,
            },
            0x43 => Response::Progress {
                session: dec.get_u32()?,
                executed: dec.get_u64()?,
                now: dec.get_time()?,
                completed: dec.get_u64()?,
                remaining: dec.get_u64()?,
            },
            0x44 => Response::Subscribed {
                session: dec.get_u32()?,
            },
            0x45 => Response::Unsubscribed {
                session: dec.get_u32()?,
            },
            0x46 => Response::SnapshotImage {
                session: dec.get_u32()?,
                image: {
                    let n = dec.get_len()?;
                    dec.get_raw(n)?.to_vec()
                },
            },
            0x47 => Response::Forked {
                parent: dec.get_u32()?,
                session: dec.get_u32()?,
            },
            0x48 => Response::Report {
                session: dec.get_u32()?,
                report: Box::new(get_report(dec)?),
            },
            0x49 => Response::Tails {
                session: dec.get_u32()?,
                tails: {
                    let n = dec.get_len()?;
                    let mut tails = Vec::with_capacity(n.min(16));
                    for _ in 0..n {
                        tails.push(get_tail(dec)?);
                    }
                    tails
                },
            },
            0x4A => Response::Closed {
                session: dec.get_u32()?,
            },
            0x4B => Response::ShuttingDown,
            0x4C => Response::Error {
                code: ErrorCode::decode(dec)?,
                message: dec.get_str()?,
            },
            _ => return Err(dec.invalid("response tag")),
        })
    }
}

// ---------------------------------------------------------------------------
// Telemetry (server → client lossy channel, tags 0x61..=0x63)
// ---------------------------------------------------------------------------

/// Server → client telemetry messages: fire-and-forget, droppable.
#[derive(Debug, Clone, PartialEq)]
pub enum Telemetry {
    /// One retired command (mirrors [`CommandRecord`]).
    Completion {
        /// Session the completion belongs to.
        session: u32,
        /// The completion record.
        record: CommandRecord,
    },
    /// A utilization sample (mirrors [`SessionSnapshot`]), emitted every
    /// `sample_every` completions of a subscription.
    Utilization {
        /// Session the sample belongs to.
        session: u32,
        /// The sampled session state.
        snapshot: SessionSnapshot,
    },
    /// The subscriber fell behind and the server dropped telemetry
    /// (oldest first). Control replies are never dropped.
    Dropped {
        /// Session whose telemetry was shed.
        session: u32,
        /// Number of messages dropped since the last marker.
        dropped: u64,
    },
}

impl Telemetry {
    /// Encodes the telemetry message as one frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        match *self {
            Telemetry::Completion {
                session,
                ref record,
            } => {
                enc.put_u8(0x61);
                enc.put_u32(session);
                put_record(&mut enc, record);
            }
            Telemetry::Utilization {
                session,
                ref snapshot,
            } => {
                enc.put_u8(0x62);
                enc.put_u32(session);
                put_session_snapshot(&mut enc, snapshot);
            }
            Telemetry::Dropped { session, dropped } => {
                enc.put_u8(0x63);
                enc.put_u32(session);
                enc.put_u64(dropped);
            }
        }
        enc.finish()
    }

    /// Decodes one frame payload.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on an unknown tag, malformed fields or
    /// trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Telemetry, DecodeError> {
        let mut dec = Decoder::new(bytes);
        let t = Telemetry::decode_body(&mut dec)?;
        dec.expect_end()?;
        Ok(t)
    }

    fn decode_body(dec: &mut Decoder<'_>) -> Result<Telemetry, DecodeError> {
        Ok(match dec.get_u8()? {
            0x61 => Telemetry::Completion {
                session: dec.get_u32()?,
                record: get_record(dec)?,
            },
            0x62 => Telemetry::Utilization {
                session: dec.get_u32()?,
                snapshot: get_session_snapshot(dec)?,
            },
            0x63 => Telemetry::Dropped {
                session: dec.get_u32()?,
                dropped: dec.get_u64()?,
            },
            _ => return Err(dec.invalid("telemetry tag")),
        })
    }
}

/// Any server → client frame: the tag byte selects the channel.
#[derive(Debug, Clone)]
pub enum ServerMessage {
    /// An ordered control reply.
    Response(Response),
    /// A lossy telemetry message.
    Telemetry(Telemetry),
}

impl ServerMessage {
    /// Decodes one server → client frame payload, dispatching on the tag.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] on an unknown tag, malformed fields or
    /// trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<ServerMessage, DecodeError> {
        let mut dec = Decoder::new(bytes);
        match bytes.first() {
            Some(0x41..=0x4C) => {
                let r = Response::decode_body(&mut dec)?;
                dec.expect_end()?;
                Ok(ServerMessage::Response(r))
            }
            Some(0x61..=0x63) => {
                let t = Telemetry::decode_body(&mut dec)?;
                dec.expect_end()?;
                Ok(ServerMessage::Telemetry(t))
            }
            Some(_) => Err(dec.invalid("server message tag")),
            None => Err(DecodeError::UnexpectedEnd { offset: 0 }),
        }
    }
}

// ---------------------------------------------------------------------------
// Struct codecs
// ---------------------------------------------------------------------------

fn put_pattern(enc: &mut Encoder, pattern: AccessPattern) {
    enc.put_u8(match pattern {
        AccessPattern::SequentialWrite => 0,
        AccessPattern::SequentialRead => 1,
        AccessPattern::RandomWrite => 2,
        AccessPattern::RandomRead => 3,
    });
}

fn get_pattern(dec: &mut Decoder<'_>) -> Result<AccessPattern, DecodeError> {
    Ok(match dec.get_u8()? {
        0 => AccessPattern::SequentialWrite,
        1 => AccessPattern::SequentialRead,
        2 => AccessPattern::RandomWrite,
        3 => AccessPattern::RandomRead,
        _ => return Err(dec.invalid("access pattern")),
    })
}

fn put_op(enc: &mut Encoder, op: HostOp) {
    enc.put_u8(match op {
        HostOp::Read => 0,
        HostOp::Write => 1,
        HostOp::Trim => 2,
    });
}

fn get_op(dec: &mut Decoder<'_>) -> Result<HostOp, DecodeError> {
    Ok(match dec.get_u8()? {
        0 => HostOp::Read,
        1 => HostOp::Write,
        2 => HostOp::Trim,
        _ => return Err(dec.invalid("host op")),
    })
}

fn put_class(enc: &mut Encoder, class: CommandClass) {
    enc.put_u8(match class {
        CommandClass::Read => 0,
        CommandClass::Write => 1,
        CommandClass::Trim => 2,
    });
}

fn get_class(dec: &mut Decoder<'_>) -> Result<CommandClass, DecodeError> {
    Ok(match dec.get_u8()? {
        0 => CommandClass::Read,
        1 => CommandClass::Write,
        2 => CommandClass::Trim,
        _ => return Err(dec.invalid("command class")),
    })
}

fn put_utilization(enc: &mut Encoder, u: &UtilizationBreakdown) {
    enc.put_f64(u.host_link);
    enc.put_f64(u.dram);
    enc.put_f64(u.cpu);
    enc.put_f64(u.ahb);
    enc.put_f64(u.channel_bus);
    enc.put_f64(u.die);
}

fn get_utilization(dec: &mut Decoder<'_>) -> Result<UtilizationBreakdown, DecodeError> {
    Ok(UtilizationBreakdown {
        host_link: dec.get_f64()?,
        dram: dec.get_f64()?,
        cpu: dec.get_f64()?,
        ahb: dec.get_f64()?,
        channel_bus: dec.get_f64()?,
        die: dec.get_f64()?,
    })
}

fn put_record(enc: &mut Encoder, r: &CommandRecord) {
    enc.put_u64(r.index);
    enc.put_u64(r.command.id);
    put_op(enc, r.command.op);
    enc.put_u64(r.command.offset);
    enc.put_u32(r.command.bytes);
    enc.put_time(r.command.issue_at);
    enc.put_time(r.admitted_at);
    enc.put_time(r.completed_at);
}

fn get_record(dec: &mut Decoder<'_>) -> Result<CommandRecord, DecodeError> {
    Ok(CommandRecord {
        index: dec.get_u64()?,
        command: HostCommand {
            id: dec.get_u64()?,
            op: get_op(dec)?,
            offset: dec.get_u64()?,
            bytes: dec.get_u32()?,
            issue_at: dec.get_time()?,
        },
        admitted_at: dec.get_time()?,
        completed_at: dec.get_time()?,
    })
}

fn put_session_snapshot(enc: &mut Encoder, s: &SessionSnapshot) {
    enc.put_time(s.at);
    enc.put_u64(s.commands_completed);
    enc.put_u64(s.commands_remaining);
    enc.put_len(s.outstanding);
    enc.put_time(s.mean_latency);
    enc.put_u64(s.bytes);
    put_utilization(enc, &s.utilization);
}

fn get_session_snapshot(dec: &mut Decoder<'_>) -> Result<SessionSnapshot, DecodeError> {
    Ok(SessionSnapshot {
        at: dec.get_time()?,
        commands_completed: dec.get_u64()?,
        commands_remaining: dec.get_u64()?,
        outstanding: dec.get_len()?,
        mean_latency: dec.get_time()?,
        bytes: dec.get_u64()?,
        utilization: get_utilization(dec)?,
    })
}

fn put_tail(enc: &mut Encoder, t: &TailSummary) {
    put_class(enc, t.class);
    enc.put_u64(t.count);
    enc.put_time(t.mean);
    enc.put_time(t.p50);
    enc.put_time(t.p95);
    enc.put_time(t.p99);
    enc.put_time(t.p999);
    enc.put_time(t.max);
}

fn get_tail(dec: &mut Decoder<'_>) -> Result<TailSummary, DecodeError> {
    Ok(TailSummary {
        class: get_class(dec)?,
        count: dec.get_u64()?,
        mean: dec.get_time()?,
        p50: dec.get_time()?,
        p95: dec.get_time()?,
        p99: dec.get_time()?,
        p999: dec.get_time()?,
        max: dec.get_time()?,
    })
}

fn put_report(enc: &mut Encoder, r: &PerfReport) {
    enc.put_str(&r.config_name);
    enc.put_str(&r.architecture);
    enc.put_str(&r.workload);
    enc.put_str(&r.policy);
    enc.put_u64(r.commands);
    enc.put_u64(r.bytes);
    enc.put_time(r.elapsed);
    enc.put_f64(r.throughput_mbps);
    enc.put_f64(r.iops);
    enc.put_f64(r.waf);
    enc.put_u64(r.nand_page_programs);
    enc.put_u64(r.nand_page_reads);
    r.latency.encode_state(enc);
    put_utilization(enc, &r.utilization);
    r.class_latency.encode_state(enc);
}

fn get_report(dec: &mut Decoder<'_>) -> Result<PerfReport, DecodeError> {
    let config_name = dec.get_str()?;
    let architecture = dec.get_str()?;
    let workload = dec.get_str()?;
    let policy = dec.get_str()?;
    let commands = dec.get_u64()?;
    let bytes = dec.get_u64()?;
    let elapsed = dec.get_time()?;
    let throughput_mbps = dec.get_f64()?;
    let iops = dec.get_f64()?;
    let waf = dec.get_f64()?;
    let nand_page_programs = dec.get_u64()?;
    let nand_page_reads = dec.get_u64()?;
    let mut latency = LatencyHistogram::new();
    latency.decode_state(dec)?;
    let utilization = get_utilization(dec)?;
    let mut class_latency = Box::new(ClassHistograms::new());
    class_latency.decode_state(dec)?;
    Ok(PerfReport {
        config_name,
        architecture,
        workload,
        policy,
        commands,
        bytes,
        elapsed,
        throughput_mbps,
        iops,
        waf,
        nand_page_programs,
        nand_page_reads,
        latency,
        utilization,
        class_latency,
    })
}
