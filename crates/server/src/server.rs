//! The `ssdx-server` TCP frontend: accept loop, per-connection threads
//! and request dispatch.
//!
//! Thread shape: one acceptor, two threads per connection (a reader that
//! decodes requests and waits for replies, a writer that drains the
//! connection's `Outbound` queue), and a bounded `WorkerPool` that
//! runs every session operation. The reader blocks on its request's
//! reply before reading the next frame, which gives the control channel
//! its ordered, exactly-one-reply-per-request discipline by
//! construction.
//!
//! Shutdown (a `Shutdown` request or [`Server::shutdown`]) is graceful:
//! the acceptor stops admitting connections, the worker pool drains every
//! queued job, each connection is sent a final `ShuttingDown` control
//! frame, and the writers flush before the sockets close.

use crate::frame::{read_frame, write_frame};
use crate::outbound::Outbound;
use crate::pool::WorkerPool;
use crate::proto::{ErrorCode, Request, Response, PROTOCOL_VERSION};
use crate::sessions::{AdvanceMode, Failure, SessionHost};
use std::io::{self, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// A sink for server log lines (the library never prints directly).
pub type LogSink = Box<dyn Write + Send>;

/// Tunables for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to listen on. Port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub bind: String,
    /// Worker threads executing session operations.
    pub workers: usize,
    /// Maximum concurrently live sessions.
    pub max_sessions: usize,
    /// Per-connection telemetry queue capacity (messages) before the
    /// drop-oldest policy sheds load.
    pub telemetry_queue: usize,
    /// Maximum accepted frame payload size in bytes.
    pub max_frame_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bind: "127.0.0.1:7070".to_owned(),
            workers: 4,
            max_sessions: 1024,
            telemetry_queue: 256,
            max_frame_bytes: crate::frame::MAX_FRAME_BYTES,
        }
    }
}

struct ConnHandle {
    stream: TcpStream,
    outbound: Arc<Outbound>,
    reader: Option<JoinHandle<()>>,
    writer: Option<JoinHandle<()>>,
    finished: Arc<AtomicBool>,
}

struct Shared {
    cfg: ServerConfig,
    host: SessionHost,
    pool: WorkerPool,
    stopping: AtomicBool,
    conns: Mutex<Vec<ConnHandle>>,
    log: Mutex<Option<LogSink>>,
    local_addr: SocketAddr,
}

impl Shared {
    fn log(&self, line: &str) {
        let mut sink = self.log.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(sink) = sink.as_mut() {
            let _ = writeln!(sink, "ssdx-server: {line}");
            let _ = sink.flush();
        }
    }
}

/// A running simulation server.
///
/// Bind one, hand clients [`Server::local_addr`], and call
/// [`Server::wait`] to block until a `Shutdown` request (or a
/// [`Server::shutdown`] call) has fully drained it.
pub struct Server {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds the listener and starts serving in background threads.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from binding the listen address.
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.bind)?;
        let local_addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            host: SessionHost::new(cfg.max_sessions),
            pool: WorkerPool::new(workers),
            stopping: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            log: Mutex::new(None),
            local_addr,
            cfg,
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("ssdx-acceptor".to_owned())
                .spawn(move || accept_loop(&shared, &listener))?
        };
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
        })
    }

    /// The bound listen address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// Routes server log lines (connection lifecycle, protocol errors)
    /// into `sink`. Without a sink the server is silent.
    pub fn set_log(&self, sink: LogSink) {
        *self.shared.log.lock().unwrap_or_else(|e| e.into_inner()) = Some(sink);
    }

    /// Number of live sessions (for monitoring).
    pub fn session_count(&self) -> usize {
        self.shared.host.len()
    }

    /// Triggers a graceful shutdown without blocking: equivalent to a
    /// client sending `Shutdown`.
    pub fn shutdown(&self) {
        trigger_shutdown(&self.shared);
    }

    /// Blocks until the server has shut down and every thread is joined.
    ///
    /// # Errors
    ///
    /// Currently infallible; the `Result` reserves room for surfacing
    /// fatal accept-loop errors.
    pub fn wait(mut self) -> io::Result<()> {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        Ok(())
    }
}

fn trigger_shutdown(shared: &Shared) {
    if shared.stopping.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.host.drain();
    // Unblock the acceptor: it re-checks `stopping` after every accept.
    let _ = TcpStream::connect(shared.local_addr);
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    shared.log(&format!("listening on {}", shared.local_addr));
    loop {
        match listener.accept() {
            Ok((stream, peer)) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    break;
                }
                reap_finished(shared);
                match spawn_connection(shared, stream) {
                    Ok(()) => shared.log(&format!("connection from {peer}")),
                    Err(e) => shared.log(&format!("connection from {peer} failed: {e}")),
                }
            }
            Err(e) => {
                if shared.stopping.load(Ordering::SeqCst) {
                    break;
                }
                shared.log(&format!("accept error: {e}"));
            }
        }
    }
    drain(shared);
}

/// Joins connections whose reader has already exited, keeping the
/// registry bounded on long-running servers.
fn reap_finished(shared: &Shared) {
    let mut conns = shared.conns.lock().unwrap_or_else(|e| e.into_inner());
    let mut i = 0;
    while i < conns.len() {
        if conns[i].finished.load(Ordering::SeqCst) {
            let mut conn = conns.swap_remove(i);
            conn.outbound.close();
            join_conn(&mut conn);
        } else {
            i += 1;
        }
    }
}

fn join_conn(conn: &mut ConnHandle) {
    if let Some(h) = conn.reader.take() {
        let _ = h.join();
    }
    if let Some(h) = conn.writer.take() {
        let _ = h.join();
    }
}

/// The graceful-shutdown tail, run by the acceptor after its loop exits:
/// drain queued session work, notify and close every connection, join.
fn drain(shared: &Shared) {
    shared.log("shutting down: draining in-flight work");
    shared.pool.shutdown();
    let mut conns = std::mem::take(&mut *shared.conns.lock().unwrap_or_else(|e| e.into_inner()));
    for conn in &conns {
        // Broadcast the drain, then stop the inbound side. The reader —
        // which may still be delivering the reply of an in-flight
        // request — closes the outbound queue itself on exit, so control
        // replies are flushed, never dropped, even here.
        conn.outbound.send_control(Response::ShuttingDown.encode());
        let _ = conn.stream.shutdown(Shutdown::Read);
    }
    for conn in &mut conns {
        join_conn(conn);
    }
    shared.log("shutdown complete");
}

fn spawn_connection(shared: &Arc<Shared>, stream: TcpStream) -> io::Result<()> {
    let outbound = Arc::new(Outbound::new(shared.cfg.telemetry_queue));
    let finished = Arc::new(AtomicBool::new(false));
    let writer = {
        let stream = stream.try_clone()?;
        let outbound = Arc::clone(&outbound);
        std::thread::Builder::new()
            .name("ssdx-conn-writer".to_owned())
            .spawn(move || writer_loop(stream, &outbound))?
    };
    let reader = {
        let stream = stream.try_clone()?;
        let shared = Arc::clone(shared);
        let outbound = Arc::clone(&outbound);
        let finished = Arc::clone(&finished);
        std::thread::Builder::new()
            .name("ssdx-conn-reader".to_owned())
            .spawn(move || {
                reader_loop(&shared, stream, &outbound);
                outbound.close();
                finished.store(true, Ordering::SeqCst);
            })?
    };
    shared
        .conns
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(ConnHandle {
            stream,
            outbound,
            reader: Some(reader),
            writer: Some(writer),
            finished,
        });
    Ok(())
}

fn writer_loop(mut stream: TcpStream, outbound: &Outbound) {
    while let Some(frame) = outbound.next() {
        if write_frame(&mut stream, &frame).is_err() {
            break;
        }
    }
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Write);
}

fn reader_loop(shared: &Arc<Shared>, mut stream: TcpStream, outbound: &Arc<Outbound>) {
    let max_frame = shared.cfg.max_frame_bytes;
    // Handshake: the first frame must be `Hello` with a matching version.
    match next_request(&mut stream, max_frame, outbound) {
        Some(Request::Hello { version }) if version == PROTOCOL_VERSION => {
            outbound.send_control(
                Response::HelloAck {
                    version: PROTOCOL_VERSION,
                }
                .encode(),
            );
        }
        Some(Request::Hello { version }) => {
            shared.log(&format!("rejected version {version} handshake"));
            outbound.send_control(
                error_response(
                    ErrorCode::VersionMismatch,
                    format!("server speaks version {PROTOCOL_VERSION}, client sent {version}"),
                )
                .encode(),
            );
            return;
        }
        Some(_) => {
            outbound.send_control(
                error_response(
                    ErrorCode::MalformedRequest,
                    "the first frame must be Hello".to_owned(),
                )
                .encode(),
            );
            return;
        }
        None => return,
    }
    while let Some(request) = next_request(&mut stream, max_frame, outbound) {
        let stop = matches!(request, Request::Shutdown);
        let response = dispatch(shared, outbound, request);
        outbound.send_control(response.encode());
        if stop {
            trigger_shutdown(shared);
            break;
        }
    }
}

/// Reads and decodes the next request frame. A frame that decodes badly
/// (but was length-delimited correctly) earns an error reply and a retry;
/// a framing-level error desynchronises the stream, earns a best-effort
/// error reply, and closes the connection. Returns `None` when the
/// connection is done.
fn next_request(
    stream: &mut TcpStream,
    max_frame: usize,
    outbound: &Arc<Outbound>,
) -> Option<Request> {
    loop {
        match read_frame(stream, max_frame) {
            Ok(Some(payload)) => match Request::decode(&payload) {
                Ok(request) => return Some(request),
                Err(e) => {
                    outbound.send_control(
                        error_response(ErrorCode::MalformedRequest, e.to_string()).encode(),
                    );
                }
            },
            Ok(None) => return None,
            Err(e) => {
                if e.kind() == io::ErrorKind::InvalidData {
                    outbound.send_control(
                        error_response(ErrorCode::MalformedRequest, e.to_string()).encode(),
                    );
                }
                return None;
            }
        }
    }
}

fn error_response(code: ErrorCode, message: String) -> Response {
    Response::Error { code, message }
}

fn failure_response(failure: Failure) -> Response {
    Response::Error {
        code: failure.code,
        message: failure.message,
    }
}

/// Executes one request, scheduling session work onto the worker pool
/// and blocking until its reply is ready.
fn dispatch(shared: &Arc<Shared>, outbound: &Arc<Outbound>, request: Request) -> Response {
    match request {
        Request::Hello { .. } => error_response(
            ErrorCode::MalformedRequest,
            "Hello is only valid as the first frame".to_owned(),
        ),
        Request::Shutdown => Response::ShuttingDown,
        other => run_session_job(shared, outbound, other),
    }
}

fn run_session_job(shared: &Arc<Shared>, outbound: &Arc<Outbound>, request: Request) -> Response {
    if shared.stopping.load(Ordering::SeqCst) {
        return error_response(
            ErrorCode::ShuttingDown,
            "the server is shutting down".to_owned(),
        );
    }
    let (tx, rx) = mpsc::channel();
    let job_shared = Arc::clone(shared);
    let job_outbound = Arc::clone(outbound);
    let queued = shared.pool.submit(Box::new(move || {
        let response = execute(&job_shared, &job_outbound, request);
        let _ = tx.send(response);
    }));
    if !queued {
        return error_response(
            ErrorCode::ShuttingDown,
            "the server is shutting down".to_owned(),
        );
    }
    rx.recv().unwrap_or_else(|_| {
        error_response(
            ErrorCode::SessionFailed,
            "the session operation did not complete".to_owned(),
        )
    })
}

/// The worker-side request handlers: every arm is a [`SessionHost`] call
/// translated to its protocol reply.
fn execute(shared: &Shared, outbound: &Arc<Outbound>, request: Request) -> Response {
    let host = &shared.host;
    let result = match request {
        Request::CreateSession { config, workload } => host
            .create(&config, &workload)
            .map(|(session, _)| Response::SessionCreated { session }),
        Request::Step { session, commands } => host
            .advance(session, AdvanceMode::Steps(commands))
            .map(|a| progress(session, a)),
        Request::RunUntil { session, deadline } => host
            .advance(session, AdvanceMode::Until(deadline))
            .map(|a| progress(session, a)),
        Request::Subscribe {
            session,
            sample_every,
        } => host
            .subscribe(session, Arc::clone(outbound), sample_every)
            .map(|()| Response::Subscribed { session }),
        Request::Unsubscribe { session } => host
            .unsubscribe(session)
            .map(|()| Response::Unsubscribed { session }),
        Request::CaptureSnapshot { session } => host
            .capture(session)
            .map(|image| Response::SnapshotImage { session, image }),
        Request::Fork { session } => host.fork(session).map(|child| Response::Forked {
            parent: session,
            session: child,
        }),
        Request::FetchReport { session } => host.report(session).map(|report| Response::Report {
            session,
            report: Box::new(report),
        }),
        Request::FetchTails { session } => host.tails(session).map(|tails| Response::Tails {
            session,
            tails: tails.to_vec(),
        }),
        Request::CloseSession { session } => {
            host.close(session).map(|()| Response::Closed { session })
        }
        // Hello and Shutdown are handled on the connection thread.
        Request::Hello { .. } | Request::Shutdown => {
            return error_response(
                ErrorCode::MalformedRequest,
                "not a session operation".to_owned(),
            )
        }
    };
    match result {
        Ok(response) => response,
        Err(failure) => {
            shared.log(&format!(
                "request failed: {} ({})",
                failure.code, failure.message
            ));
            failure_response(failure)
        }
    }
}

fn progress(session: u32, a: crate::sessions::Advance) -> Response {
    Response::Progress {
        session,
        executed: a.executed,
        now: a.now,
        completed: a.completed,
        remaining: a.remaining,
    }
}
