//! A bounded worker pool for session jobs.
//!
//! The design follows `ssdx_core::ParallelExecutor`'s worker-pool idiom —
//! a shared job queue drained by a fixed set of named threads — adapted
//! from scoped sweep fan-out to a long-running service: jobs are
//! `'static` closures, and shutdown is *draining* (queued jobs finish
//! before the workers exit), which is what makes the server's graceful
//! shutdown drain in-flight steps instead of abandoning them.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// One unit of session work.
pub(crate) type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    jobs: VecDeque<Job>,
    closing: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    cv: Condvar,
}

fn lock(shared: &PoolShared) -> MutexGuard<'_, PoolState> {
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fixed-size pool of worker threads draining one shared job queue.
pub(crate) struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns `workers` (at least one) named worker threads.
    pub(crate) fn new(workers: usize) -> WorkerPool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                closing: false,
            }),
            cv: Condvar::new(),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ssdx-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            workers: Mutex::new(handles),
        }
    }

    /// Queues a job. Returns `false` (job not queued) once the pool is
    /// shutting down.
    pub(crate) fn submit(&self, job: Job) -> bool {
        let mut state = lock(&self.shared);
        if state.closing {
            return false;
        }
        state.jobs.push_back(job);
        drop(state);
        self.shared.cv.notify_one();
        true
    }

    /// Drains the queue and joins every worker. Jobs already queued run
    /// to completion; new submissions are refused.
    pub(crate) fn shutdown(&self) {
        lock(&self.shared).closing = true;
        self.shared.cv.notify_all();
        let handles = std::mem::take(&mut *self.workers.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    let mut state = lock(shared);
    loop {
        if let Some(job) = state.jobs.pop_front() {
            drop(state);
            // A panicking job must not take the worker (or the server)
            // down; the job's reply channel is dropped and the waiting
            // connection reports a session failure instead.
            let _ = catch_unwind(AssertUnwindSafe(job));
            state = lock(shared);
        } else if state.closing {
            return;
        } else {
            state = shared.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn shutdown_drains_queued_jobs() {
        let pool = WorkerPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let done = Arc::clone(&done);
            assert!(pool.submit(Box::new(move || {
                done.fetch_add(1, Ordering::SeqCst);
            })));
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 64);
        assert!(!pool.submit(Box::new(|| {})));
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_worker() {
        let pool = WorkerPool::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        pool.submit(Box::new(|| panic!("job failure")));
        let after = Arc::clone(&done);
        pool.submit(Box::new(move || {
            after.fetch_add(1, Ordering::SeqCst);
        }));
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }
}
