//! A blocking client for the `ssdx` wire protocol.
//!
//! [`Client`] wraps one TCP connection: the constructor performs the
//! version handshake, and each method sends one request and blocks for
//! its control reply. Telemetry frames that arrive interleaved with
//! control replies are buffered and surfaced through
//! [`Client::take_telemetry`] / [`Client::poll_telemetry`] — the client
//! never discards them, only the server's bounded queue may.

use crate::frame::{read_frame, write_frame, MAX_FRAME_BYTES};
use crate::proto::{
    ErrorCode, Request, Response, ServerMessage, Telemetry, WorkloadSpec, PROTOCOL_VERSION,
};
use ssdx_core::{PerfReport, TailSummary};
use ssdx_sim::codec::DecodeError;
use ssdx_sim::SimTime;
use std::collections::VecDeque;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Anything that can go wrong talking to a server.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server sent bytes that do not decode.
    Decode(DecodeError),
    /// The server answered with a protocol error.
    Server {
        /// Machine-readable class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The server violated the protocol (wrong reply kind, early close,
    /// version mismatch).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Decode(e) => write!(f, "undecodable server message: {e}"),
            ClientError::Server { code, message } => write!(f, "server error ({code}): {message}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Decode(e)
    }
}

/// The `Progress` reply of a `Step`/`RunUntil` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionProgress {
    /// Completions retired by this request.
    pub executed: u64,
    /// The session clock after the advance.
    pub now: SimTime,
    /// Completions retired over the session's lifetime.
    pub completed: u64,
    /// Commands still waiting in the source stream.
    pub remaining: u64,
}

/// One protocol connection to a running server.
pub struct Client {
    stream: TcpStream,
    telemetry: VecDeque<Telemetry>,
    max_frame: usize,
}

impl Client {
    /// Connects and performs the `Hello`/`HelloAck` version handshake.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or if the server speaks a different
    /// [`PROTOCOL_VERSION`].
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            stream,
            telemetry: VecDeque::new(),
            max_frame: MAX_FRAME_BYTES,
        };
        match client.request(&Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::HelloAck { version } if version == PROTOCOL_VERSION => Ok(client),
            Response::HelloAck { version } => Err(ClientError::Protocol(format!(
                "server speaks protocol version {version}, this client speaks {PROTOCOL_VERSION}"
            ))),
            other => Err(unexpected("HelloAck", &other)),
        }
    }

    /// Sends one request and blocks for its control reply, buffering any
    /// telemetry that arrives in between.
    ///
    /// # Errors
    ///
    /// Fails on transport or decode errors, or if the server closes the
    /// connection before replying. A [`Response::Error`] is returned as
    /// a normal reply, not an `Err`.
    pub fn request(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &request.encode())?;
        loop {
            let Some(payload) = read_frame(&mut self.stream, self.max_frame)? else {
                return Err(ClientError::Protocol(
                    "server closed the connection mid-request".to_owned(),
                ));
            };
            match ServerMessage::decode(&payload)? {
                ServerMessage::Telemetry(t) => self.telemetry.push_back(t),
                ServerMessage::Response(r) => return Ok(r),
            }
        }
    }

    /// Creates a session; returns its id.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; server-side rejections surface as
    /// [`ClientError::Server`].
    pub fn create_session(
        &mut self,
        config_text: &str,
        workload: &WorkloadSpec,
    ) -> Result<u32, ClientError> {
        match self.checked(&Request::CreateSession {
            config: config_text.to_owned(),
            workload: workload.clone(),
        })? {
            Response::SessionCreated { session } => Ok(session),
            other => Err(unexpected("SessionCreated", &other)),
        }
    }

    /// Advances a session by at most `commands` completions.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn step(&mut self, session: u32, commands: u64) -> Result<SessionProgress, ClientError> {
        self.expect_progress(&Request::Step { session, commands })
    }

    /// Advances a session until its clock reaches `deadline`.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn run_until(
        &mut self,
        session: u32,
        deadline: SimTime,
    ) -> Result<SessionProgress, ClientError> {
        self.expect_progress(&Request::RunUntil { session, deadline })
    }

    /// Subscribes this connection to the session's telemetry.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn subscribe(&mut self, session: u32, sample_every: u64) -> Result<(), ClientError> {
        match self.checked(&Request::Subscribe {
            session,
            sample_every,
        })? {
            Response::Subscribed { .. } => Ok(()),
            other => Err(unexpected("Subscribed", &other)),
        }
    }

    /// Removes the session's telemetry subscription.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn unsubscribe(&mut self, session: u32) -> Result<(), ClientError> {
        match self.checked(&Request::Unsubscribe { session })? {
            Response::Unsubscribed { .. } => Ok(()),
            other => Err(unexpected("Unsubscribed", &other)),
        }
    }

    /// Fetches the session's portable snapshot image (parse with
    /// [`ssdx_core::Snapshot::from_bytes`]).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn capture_snapshot(&mut self, session: u32) -> Result<Vec<u8>, ClientError> {
        match self.checked(&Request::CaptureSnapshot { session })? {
            Response::SnapshotImage { image, .. } => Ok(image),
            other => Err(unexpected("SnapshotImage", &other)),
        }
    }

    /// Forks the session; returns the new session's id.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn fork(&mut self, session: u32) -> Result<u32, ClientError> {
        match self.checked(&Request::Fork { session })? {
            Response::Forked { session, .. } => Ok(session),
            other => Err(unexpected("Forked", &other)),
        }
    }

    /// Runs the session to completion on a server-side fork and returns
    /// the full report (the session itself does not advance).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn fetch_report(&mut self, session: u32) -> Result<PerfReport, ClientError> {
        match self.checked(&Request::FetchReport { session })? {
            Response::Report { report, .. } => Ok(*report),
            other => Err(unexpected("Report", &other)),
        }
    }

    /// Like [`Client::fetch_report`], returning only the per-class tail
    /// summaries.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn fetch_tails(&mut self, session: u32) -> Result<Vec<TailSummary>, ClientError> {
        match self.checked(&Request::FetchTails { session })? {
            Response::Tails { tails, .. } => Ok(tails),
            other => Err(unexpected("Tails", &other)),
        }
    }

    /// Closes a session.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn close_session(&mut self, session: u32) -> Result<(), ClientError> {
        match self.checked(&Request::CloseSession { session })? {
            Response::Closed { .. } => Ok(()),
            other => Err(unexpected("Closed", &other)),
        }
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.checked(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }

    /// Drains the telemetry buffered so far (non-blocking; does not read
    /// from the socket).
    pub fn take_telemetry(&mut self) -> Vec<Telemetry> {
        self.telemetry.drain(..).collect()
    }

    /// Returns the next telemetry message, reading from the socket with
    /// `timeout` if none is buffered. `Ok(None)` means nothing arrived
    /// in time.
    ///
    /// # Errors
    ///
    /// Fails on transport or decode errors. A control frame arriving
    /// here (for which no request is pending) is a protocol violation,
    /// except a shutdown broadcast, which surfaces as an error of kind
    /// [`ClientError::Protocol`] too.
    pub fn poll_telemetry(&mut self, timeout: Duration) -> Result<Option<Telemetry>, ClientError> {
        if let Some(t) = self.telemetry.pop_front() {
            return Ok(Some(t));
        }
        self.stream.set_read_timeout(Some(timeout))?;
        let result = self.read_one_telemetry();
        self.stream.set_read_timeout(None)?;
        result
    }

    fn read_one_telemetry(&mut self) -> Result<Option<Telemetry>, ClientError> {
        // Peek first so a timeout cannot strand us mid-frame.
        let mut probe = [0u8; 1];
        match self.stream.peek(&mut probe) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(None)
            }
            Err(e) => return Err(e.into()),
        }
        match read_frame(&mut self.stream, self.max_frame)? {
            None => Ok(None),
            Some(payload) => match ServerMessage::decode(&payload)? {
                ServerMessage::Telemetry(t) => Ok(Some(t)),
                ServerMessage::Response(r) => Err(ClientError::Protocol(format!(
                    "unsolicited control frame {r:?}"
                ))),
            },
        }
    }

    /// Like [`Client::request`] but turns a [`Response::Error`] reply
    /// into [`ClientError::Server`].
    fn checked(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.request(request)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Ok(other),
        }
    }

    fn expect_progress(&mut self, request: &Request) -> Result<SessionProgress, ClientError> {
        match self.checked(request)? {
            Response::Progress {
                executed,
                now,
                completed,
                remaining,
                ..
            } => Ok(SessionProgress {
                executed,
                now,
                completed,
                remaining,
            }),
            other => Err(unexpected("Progress", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("expected a {wanted} reply, got {got:?}"))
}
