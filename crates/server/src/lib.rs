//! Simulation-as-a-service for SSDExplorer: a multi-session TCP server,
//! its wire protocol, a client library and a load generator.
//!
//! The in-process API ([`ssdx_core::SimSession`]) drives one simulated
//! device per borrow; this crate multiplexes *many* concurrent sessions
//! behind a versioned binary protocol so that remote clients can create,
//! step, fork and measure devices over a socket — the ROADMAP's "many
//! users" axis. The wire format reuses [`ssdx_sim::codec`]'s
//! LEB128-varint, never-panicking codec; the normative spec is
//! `docs/PROTOCOL.md` and the operator guide is `docs/OPERATIONS.md`.
//!
//! Module map:
//!
//! * [`frame`] — length-prefixed framing with a hostile-length cap;
//! * [`proto`] — `Request`/`Response`/`Telemetry` messages + codecs;
//! * [`server`] — the TCP frontend: acceptor, connection threads,
//!   bounded worker pool, graceful drain;
//! * [`client`] — a blocking protocol client;
//! * [`load`] — the load generator behind `ssdx-loadgen`.
//!
//! # Quickstart
//!
//! ```no_run
//! use ssdx_server::{Client, Server, ServerConfig, WorkloadSpec};
//! use ssdx_hostif::AccessPattern;
//!
//! let server = Server::bind(ServerConfig {
//!     bind: "127.0.0.1:0".to_owned(),
//!     ..ServerConfig::default()
//! })?;
//! let mut client = Client::connect(server.local_addr())?;
//! let config = ssdx_core::SsdConfig::builder("demo").build()?.to_text();
//! let session = client.create_session(
//!     &config,
//!     &WorkloadSpec::Basic {
//!         pattern: AccessPattern::RandomWrite,
//!         block_size: 4096,
//!         command_count: 4096,
//!         footprint_bytes: 1 << 30,
//!         seed: 42,
//!     },
//! )?;
//! let report = client.fetch_report(session)?;
//! println!("{}", report.summary_line());
//! client.shutdown_server()?;
//! server.wait()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Determinism: a session is driven by the same `SimSession` machinery
//! as an in-process run, stored between requests as a snapshot image and
//! re-forked per operation (PR 8's fork-equals-continuous equivalence).
//! The same config text + workload spec therefore produce a
//! [`ssdx_core::PerfReport`] byte-identical to `Ssd::simulate`, no
//! matter how the run is sliced into `Step`/`RunUntil`/`Fork` requests.

pub mod client;
pub mod frame;
pub mod load;
pub mod proto;
pub mod server;

mod outbound;
mod pool;
mod sessions;

pub use client::{Client, ClientError, SessionProgress};
pub use load::{LoadgenConfig, LoadgenReport};
pub use proto::{
    ErrorCode, Request, Response, ServerMessage, Telemetry, WorkloadSpec, PROTOCOL_VERSION,
};
pub use server::{LogSink, Server, ServerConfig};
