//! `ssdx-server` — the simulation service daemon.
//!
//! See `docs/OPERATIONS.md` for the operator guide.

use ssdx_server::{Server, ServerConfig};
use std::process::ExitCode;

const USAGE: &str = "\
usage: ssdx-server [options]
  --bind ADDR           listen address (default 127.0.0.1:7070; port 0 = ephemeral)
  --workers N           session worker threads (default 4)
  --max-sessions N      concurrent session cap (default 1024)
  --telemetry-queue N   per-connection telemetry queue depth (default 256)
  --quiet               suppress the log on stderr
";

fn main() -> ExitCode {
    let mut cfg = ServerConfig::default();
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        let result: Result<(), String> = match arg.as_str() {
            "--bind" => value("--bind").map(|v| cfg.bind = v),
            "--workers" => parse(value("--workers"), &mut cfg.workers),
            "--max-sessions" => parse(value("--max-sessions"), &mut cfg.max_sessions),
            "--telemetry-queue" => parse(value("--telemetry-queue"), &mut cfg.telemetry_queue),
            "--quiet" => {
                quiet = true;
                Ok(())
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown option {other}")),
        };
        if let Err(message) = result {
            eprintln!("ssdx-server: {message}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    }
    let workers = cfg.workers;
    let server = match Server::bind(cfg) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ssdx-server: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !quiet {
        server.set_log(Box::new(std::io::stderr()));
    }
    // stdout carries exactly one machine-readable line, so scripts can
    // discover an ephemeral port.
    println!("listening on {} ({} workers)", server.local_addr(), workers);
    match server.wait() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ssdx-server: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse(value: Result<String, String>, into: &mut usize) -> Result<(), String> {
    let value = value?;
    *into = value
        .parse()
        .map_err(|_| format!("not a number: {value}"))?;
    Ok(())
}
