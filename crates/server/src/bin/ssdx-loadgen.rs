//! `ssdx-loadgen` — drives many concurrent sessions against a server
//! and reports achieved throughput and client-observed latency.

use ssdx_server::LoadgenConfig;
use std::process::ExitCode;

const USAGE: &str = "\
usage: ssdx-loadgen [options]
  --addr ADDR        server address (default 127.0.0.1:7070)
  --sessions N       total concurrent sessions (default 200)
  --connections N    client connections to spread them over (default 8)
  --steps N          commands per Step request (default 16)
  --rounds N         Step rounds before fetching reports (default 2)
";

fn main() -> ExitCode {
    let mut cfg = LoadgenConfig::new("127.0.0.1:7070");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        let result: Result<(), String> = match arg.as_str() {
            "--addr" => value("--addr").map(|v| cfg.addr = v),
            "--sessions" => parse(value("--sessions")).map(|v| cfg.sessions = v),
            "--connections" => parse(value("--connections")).map(|v| cfg.connections = v),
            "--steps" => parse(value("--steps")).map(|v| cfg.step_commands = v),
            "--rounds" => parse(value("--rounds")).map(|v| cfg.rounds = v),
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown option {other}")),
        };
        if let Err(message) = result {
            eprintln!("ssdx-loadgen: {message}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    }
    match ssdx_server::load::run(&cfg) {
        Ok(report) => {
            println!("{report}");
            if report.requests == report.replies {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("ssdx-loadgen: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse<T: std::str::FromStr>(value: Result<String, String>) -> Result<T, String> {
    let value = value?;
    value.parse().map_err(|_| format!("not a number: {value}"))
}
