//! `ssdx-client` — a thin CLI speaking the `ssdx` wire protocol.
//!
//! See `docs/OPERATIONS.md` for a worked walkthrough.

use ssdx_hostif::AccessPattern;
use ssdx_server::{Client, WorkloadSpec};
use ssdx_sim::SimTime;
use std::process::ExitCode;

const USAGE: &str = "\
usage: ssdx-client [--addr ADDR] <command> [options]

commands:
  create      create a session, print its id
  run         create a session, run it to completion, print the report
  tails       create a session, print its per-class tail percentiles
  step        --session N --commands K: advance a session
  report      --session N: fetch a session's report
  fork        --session N: fork a session, print the new id
  snapshot    --session N: fetch the snapshot image, print its size
  close       --session N: close a session
  shutdown    drain and stop the server

session options (create | run | tails):
  --config FILE      device config text (default: the built-in config)
  --workload KIND    rw | sw | sr | rr | zipf | bursty | mixed | rmw (default rw)
  --commands N       command count / rmw update pairs (default 4096)
  --block BYTES      block size (default 4096)
  --footprint BYTES  logical footprint (default 1 GiB)
  --seed N           workload seed (default 42)
  --theta X          zipf skew in (0,1) (default 0.9)
  --read-frac X      read fraction in [0,1] (default 0.5)
";

struct Opts {
    addr: String,
    session: Option<u32>,
    commands: u64,
    block: u32,
    footprint: u64,
    seed: u64,
    theta: f64,
    read_frac: f64,
    workload: String,
    config: Option<String>,
}

impl Opts {
    fn spec(&self) -> Result<WorkloadSpec, String> {
        Ok(match self.workload.as_str() {
            "sw" | "sr" | "rw" | "rr" => WorkloadSpec::Basic {
                pattern: match self.workload.as_str() {
                    "sw" => AccessPattern::SequentialWrite,
                    "sr" => AccessPattern::SequentialRead,
                    "rw" => AccessPattern::RandomWrite,
                    _ => AccessPattern::RandomRead,
                },
                block_size: self.block,
                command_count: self.commands,
                footprint_bytes: self.footprint,
                seed: self.seed,
            },
            "zipf" => WorkloadSpec::Zipfian {
                theta: self.theta,
                seed: self.seed,
                command_count: self.commands,
                block_size: self.block,
                footprint_bytes: self.footprint,
                read_fraction: self.read_frac,
            },
            "bursty" => WorkloadSpec::Bursty {
                seed: self.seed,
                command_count: self.commands,
                block_size: self.block,
                footprint_bytes: self.footprint,
                read_fraction: self.read_frac,
                burst_len: 32,
                inter_arrival: SimTime::from_us(2),
                idle_gap: SimTime::from_ms(1),
            },
            "mixed" => WorkloadSpec::MixedSize {
                sizes: vec![(4096, 8), (16384, 3), (131_072, 1)],
                seed: self.seed,
                command_count: self.commands,
                footprint_bytes: self.footprint,
                read_fraction: self.read_frac,
            },
            "rmw" => WorkloadSpec::Rmw {
                seed: self.seed,
                updates: self.commands,
                block_size: self.block,
                footprint_bytes: self.footprint,
            },
            other => return Err(format!("unknown workload kind {other}")),
        })
    }

    fn config_text(&self) -> Result<String, String> {
        match &self.config {
            Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}")),
            None => Ok(ssdx_core::SsdConfig::builder("ssdx-client")
                .build()
                .map_err(|e| e.to_string())?
                .to_text()),
        }
    }

    fn session(&self) -> Result<u32, String> {
        self.session.ok_or_else(|| "--session is required".into())
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("ssdx-client: {message}");
            if message.contains("usage") {
                return ExitCode::from(2);
            }
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let mut opts = Opts {
        addr: "127.0.0.1:7070".to_owned(),
        session: None,
        commands: 4096,
        block: 4096,
        footprint: 1 << 30,
        seed: 42,
        theta: 0.9,
        read_frac: 0.5,
        workload: "rw".to_owned(),
        config: None,
    };
    let mut command = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{arg} needs a value"));
        match arg.as_str() {
            "--addr" => opts.addr = value()?,
            "--session" => opts.session = Some(parse(&value()?)?),
            "--commands" => opts.commands = parse(&value()?)?,
            "--block" => opts.block = parse(&value()?)?,
            "--footprint" => opts.footprint = parse(&value()?)?,
            "--seed" => opts.seed = parse(&value()?)?,
            "--theta" => opts.theta = parse(&value()?)?,
            "--read-frac" => opts.read_frac = parse(&value()?)?,
            "--workload" => opts.workload = value()?,
            "--config" => opts.config = Some(value()?),
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            name if !name.starts_with('-') && command.is_none() => command = Some(arg),
            other => return Err(format!("unknown option {other}\n{USAGE}")),
        }
    }
    let Some(command) = command else {
        return Err(format!("no command given\n{USAGE}"));
    };
    let mut client = Client::connect(&opts.addr).map_err(|e| e.to_string())?;
    let fail = |e: ssdx_server::ClientError| e.to_string();
    match command.as_str() {
        "create" => {
            let id = client
                .create_session(&opts.config_text()?, &opts.spec()?)
                .map_err(fail)?;
            println!("session {id}");
        }
        "run" => {
            let id = client
                .create_session(&opts.config_text()?, &opts.spec()?)
                .map_err(fail)?;
            let report = client.fetch_report(id).map_err(fail)?;
            client.close_session(id).map_err(fail)?;
            println!("{report}");
            println!("{}", report.summary_line());
        }
        "tails" => {
            let id = client
                .create_session(&opts.config_text()?, &opts.spec()?)
                .map_err(fail)?;
            let tails = client.fetch_tails(id).map_err(fail)?;
            client.close_session(id).map_err(fail)?;
            println!(
                "class  count      mean        p50        p95        p99      p99.9        max"
            );
            for t in tails {
                println!(
                    "{:<5} {:>6} {:>9.1}us {:>9.1}us {:>9.1}us {:>9.1}us {:>9.1}us {:>9.1}us",
                    t.class.label(),
                    t.count,
                    t.mean.as_us_f64(),
                    t.p50.as_us_f64(),
                    t.p95.as_us_f64(),
                    t.p99.as_us_f64(),
                    t.p999.as_us_f64(),
                    t.max.as_us_f64(),
                );
            }
        }
        "step" => {
            let progress = client.step(opts.session()?, opts.commands).map_err(fail)?;
            println!(
                "executed {} | completed {} | remaining {} | now {:.1} us",
                progress.executed,
                progress.completed,
                progress.remaining,
                progress.now.as_us_f64(),
            );
        }
        "report" => {
            let report = client.fetch_report(opts.session()?).map_err(fail)?;
            println!("{report}");
            println!("{}", report.summary_line());
        }
        "fork" => {
            let parent = opts.session()?;
            let child = client.fork(parent).map_err(fail)?;
            println!("session {child} (forked from {parent})");
        }
        "snapshot" => {
            let image = client.capture_snapshot(opts.session()?).map_err(fail)?;
            println!("snapshot: {} bytes", image.len());
        }
        "close" => {
            client.close_session(opts.session()?).map_err(fail)?;
            println!("closed");
        }
        "shutdown" => {
            client.shutdown_server().map_err(fail)?;
            println!("server shutting down");
        }
        other => return Err(format!("unknown command {other}\n{USAGE}")),
    }
    Ok(())
}

fn parse<T: std::str::FromStr>(value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("not a valid number: {value}"))
}
