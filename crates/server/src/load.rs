//! The load generator: the first measurement of the "many users" axis.
//!
//! Drives N sessions over M connections against one server and reports
//! achieved sessions/s, commands/s and *client-observed* request
//! latencies (p50/p99/max — wall-clock on purpose: this file measures
//! the service, not the simulation, and is the one library module
//! exempted from the no-wall-clock determinism rule). All connections
//! create their sessions first and rendezvous on a barrier, so the
//! configured session count is genuinely concurrent before any stepping
//! begins; the report's `requests`/`replies` pair then certifies zero
//! control-message loss.

use crate::client::{Client, ClientError};
use crate::proto::WorkloadSpec;
use std::sync::Barrier;
use std::time::Instant;

/// What [`run`] should drive.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address, e.g. `127.0.0.1:7070`.
    pub addr: String,
    /// Total sessions, split across the connections.
    pub sessions: usize,
    /// Concurrent client connections.
    pub connections: usize,
    /// Completions per `Step` request.
    pub step_commands: u64,
    /// `Step` rounds issued to every session before its report is
    /// fetched (the fetch itself drives the remaining commands).
    pub rounds: usize,
    /// Device config text for every session (`SsdConfig::to_text`).
    pub config_text: String,
    /// Workload spec for every session (seeds are offset per session so
    /// streams differ).
    pub spec: WorkloadSpec,
}

impl LoadgenConfig {
    /// A small-topology, 200-session default aimed at `addr`.
    pub fn new(addr: impl Into<String>) -> LoadgenConfig {
        let config_text = ssdx_core::SsdConfig::builder("loadgen")
            .topology(2, 2, 1)
            .seed(1)
            .build()
            .expect("the default loadgen config is valid")
            .to_text();
        LoadgenConfig {
            addr: addr.into(),
            sessions: 200,
            connections: 8,
            step_commands: 16,
            rounds: 2,
            config_text,
            spec: WorkloadSpec::Zipfian {
                theta: 0.9,
                seed: 1,
                command_count: 64,
                block_size: 4096,
                footprint_bytes: 1 << 24,
                read_fraction: 0.5,
            },
        }
    }
}

/// What the run achieved.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Sessions created (all concurrently live at the barrier).
    pub sessions: usize,
    /// Connections used.
    pub connections: usize,
    /// Simulated commands retired across all sessions.
    pub commands: u64,
    /// Control requests sent.
    pub requests: u64,
    /// Control replies received. Equal to `requests` means zero control
    /// loss.
    pub replies: u64,
    /// Wall-clock seconds for the whole run.
    pub elapsed_secs: f64,
    /// Sessions completed per wall-clock second.
    pub sessions_per_sec: f64,
    /// Simulated commands retired per wall-clock second.
    pub commands_per_sec: f64,
    /// Median client-observed request latency, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile client-observed request latency, milliseconds.
    pub p99_ms: f64,
    /// Worst client-observed request latency, milliseconds.
    pub max_ms: f64,
}

impl std::fmt::Display for LoadgenReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} sessions over {} connections in {:.2} s",
            self.sessions, self.connections, self.elapsed_secs
        )?;
        writeln!(
            f,
            "  {:.1} sessions/s | {:.0} commands/s ({} commands)",
            self.sessions_per_sec, self.commands_per_sec, self.commands
        )?;
        writeln!(
            f,
            "  request latency p50 {:.2} ms | p99 {:.2} ms | max {:.2} ms",
            self.p50_ms, self.p99_ms, self.max_ms
        )?;
        write!(
            f,
            "  control: {} requests, {} replies ({})",
            self.requests,
            self.replies,
            if self.requests == self.replies {
                "zero loss"
            } else {
                "LOSS DETECTED"
            }
        )
    }
}

/// Per-connection tally, merged after the join.
struct ConnTally {
    commands: u64,
    requests: u64,
    replies: u64,
    latencies: Vec<f64>,
}

/// Drives the configured fleet and measures it.
///
/// # Errors
///
/// Returns the first [`ClientError`] any connection hits (including
/// server-side protocol errors — the load generator expects a clean
/// server).
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, ClientError> {
    let connections = cfg.connections.max(1);
    let barrier = Barrier::new(connections);
    let started = Instant::now();
    let tallies: Vec<Result<ConnTally, ClientError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|conn_index| {
                let barrier = &barrier;
                scope.spawn(move || drive_connection(cfg, conn_index, connections, barrier))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection thread"))
            .collect()
    });
    let elapsed_secs = started.elapsed().as_secs_f64();
    let mut commands = 0u64;
    let mut requests = 0u64;
    let mut replies = 0u64;
    let mut latencies = Vec::new();
    for tally in tallies {
        let tally = tally?;
        commands += tally.commands;
        requests += tally.requests;
        replies += tally.replies;
        latencies.extend(tally.latencies);
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    let quantile = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[idx] * 1e3
    };
    Ok(LoadgenReport {
        sessions: cfg.sessions,
        connections,
        commands,
        requests,
        replies,
        elapsed_secs,
        sessions_per_sec: cfg.sessions as f64 / elapsed_secs.max(1e-9),
        commands_per_sec: commands as f64 / elapsed_secs.max(1e-9),
        p50_ms: quantile(0.50),
        p99_ms: quantile(0.99),
        max_ms: latencies.last().copied().unwrap_or(0.0) * 1e3,
    })
}

/// Offsets the spec's seed so every session runs a distinct stream.
fn reseeded(spec: &WorkloadSpec, offset: u64) -> WorkloadSpec {
    let mut spec = spec.clone();
    match &mut spec {
        WorkloadSpec::Basic { seed, .. }
        | WorkloadSpec::Zipfian { seed, .. }
        | WorkloadSpec::Bursty { seed, .. }
        | WorkloadSpec::MixedSize { seed, .. }
        | WorkloadSpec::Rmw { seed, .. } => *seed = seed.wrapping_add(offset),
    }
    spec
}

fn drive_connection(
    cfg: &LoadgenConfig,
    conn_index: usize,
    connections: usize,
    barrier: &Barrier,
) -> Result<ConnTally, ClientError> {
    let mut tally = ConnTally {
        commands: 0,
        requests: 0,
        replies: 0,
        latencies: Vec::new(),
    };
    let mut client = Client::connect(&cfg.addr)?;
    // Handshake = one request/reply pair.
    tally.requests += 1;
    tally.replies += 1;
    // This connection's share of the session fleet.
    let share: Vec<usize> = (0..cfg.sessions)
        .skip(conn_index)
        .step_by(connections)
        .collect();
    let mut ids = Vec::with_capacity(share.len());
    for &session_index in &share {
        let spec = reseeded(&cfg.spec, session_index as u64);
        let started = Instant::now();
        tally.requests += 1;
        let id = client.create_session(&cfg.config_text, &spec)?;
        tally.replies += 1;
        tally.latencies.push(started.elapsed().as_secs_f64());
        ids.push(id);
    }
    // Every session of the whole fleet exists before anything steps.
    barrier.wait();
    for _ in 0..cfg.rounds {
        for &id in &ids {
            let started = Instant::now();
            tally.requests += 1;
            client.step(id, cfg.step_commands)?;
            tally.replies += 1;
            tally.latencies.push(started.elapsed().as_secs_f64());
        }
    }
    for &id in &ids {
        let started = Instant::now();
        tally.requests += 1;
        let report = client.fetch_report(id)?;
        tally.replies += 1;
        tally.latencies.push(started.elapsed().as_secs_f64());
        tally.commands += report.commands;
    }
    for &id in &ids {
        tally.requests += 1;
        client.close_session(id)?;
        tally.replies += 1;
    }
    Ok(tally)
}
