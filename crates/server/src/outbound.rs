//! Per-connection outbound queues: the two-channel send side.
//!
//! Each connection owns one [`Outbound`], drained by a dedicated writer
//! thread. Control replies are queued without bound (the request/reply
//! discipline means at most a handful are ever pending) and are **never
//! dropped**. Telemetry is bounded: when a subscriber cannot keep up, the
//! oldest queued telemetry message is shed and a
//! [`Telemetry::Dropped`](crate::proto::Telemetry::Dropped) marker is
//! emitted at the next drain so the client can observe the gap. This is
//! the documented backpressure policy of `docs/PROTOCOL.md` §Channels.

use crate::proto::Telemetry;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

struct OutState {
    control: VecDeque<Vec<u8>>,
    telemetry: VecDeque<Vec<u8>>,
    /// Telemetry messages shed since the last `Dropped` marker.
    dropped: u64,
    /// Session whose telemetry was shed most recently.
    dropped_session: u32,
    closed: bool,
}

/// The send half of one connection: ordered control + lossy telemetry.
pub(crate) struct Outbound {
    state: Mutex<OutState>,
    cv: Condvar,
    telemetry_cap: usize,
}

impl Outbound {
    /// Creates a queue pair whose telemetry side holds at most
    /// `telemetry_cap` messages (at least one).
    pub(crate) fn new(telemetry_cap: usize) -> Outbound {
        Outbound {
            state: Mutex::new(OutState {
                control: VecDeque::new(),
                telemetry: VecDeque::new(),
                dropped: 0,
                dropped_session: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            telemetry_cap: telemetry_cap.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, OutState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Queues a control reply. Control is unbounded and never dropped.
    pub(crate) fn send_control(&self, frame: Vec<u8>) {
        let mut state = self.lock();
        if state.closed {
            return;
        }
        state.control.push_back(frame);
        drop(state);
        self.cv.notify_one();
    }

    /// Queues a telemetry message, shedding the oldest one (and counting
    /// it toward the next `Dropped` marker) if the queue is full.
    pub(crate) fn send_telemetry(&self, session: u32, frame: Vec<u8>) {
        let mut state = self.lock();
        if state.closed {
            return;
        }
        if state.telemetry.len() >= self.telemetry_cap {
            state.telemetry.pop_front();
            state.dropped += 1;
            state.dropped_session = session;
        }
        state.telemetry.push_back(frame);
        drop(state);
        self.cv.notify_one();
    }

    /// Marks the connection closed: senders become no-ops and the writer
    /// drains what is queued, then stops.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    /// Blocks for the next frame to write. Control drains first, then a
    /// pending `Dropped` marker, then telemetry. Returns `None` once the
    /// queue is closed and fully drained.
    pub(crate) fn next(&self) -> Option<Vec<u8>> {
        let mut state = self.lock();
        loop {
            if let Some(frame) = state.control.pop_front() {
                return Some(frame);
            }
            if state.dropped > 0 {
                let marker = Telemetry::Dropped {
                    session: state.dropped_session,
                    dropped: state.dropped,
                }
                .encode();
                state.dropped = 0;
                return Some(marker);
            }
            if let Some(frame) = state.telemetry.pop_front() {
                return Some(frame);
            }
            if state.closed {
                return None;
            }
            state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_precedes_telemetry_and_is_never_shed() {
        let q = Outbound::new(2);
        q.send_telemetry(7, vec![1]);
        q.send_control(vec![2]);
        assert_eq!(q.next(), Some(vec![2]));
        assert_eq!(q.next(), Some(vec![1]));
    }

    #[test]
    fn overflow_sheds_oldest_and_emits_one_marker() {
        let q = Outbound::new(2);
        q.send_telemetry(3, vec![1]);
        q.send_telemetry(3, vec![2]);
        q.send_telemetry(3, vec![3]);
        q.send_telemetry(3, vec![4]);
        // Two messages were shed; the marker reports both, then the two
        // surviving (newest) messages follow.
        let marker = q.next().unwrap();
        match Telemetry::decode(&marker).unwrap() {
            Telemetry::Dropped { session, dropped } => {
                assert_eq!(session, 3);
                assert_eq!(dropped, 2);
            }
            other => panic!("expected a Dropped marker, got {other:?}"),
        }
        assert_eq!(q.next(), Some(vec![3]));
        assert_eq!(q.next(), Some(vec![4]));
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Outbound::new(4);
        q.send_control(vec![9]);
        q.close();
        assert_eq!(q.next(), Some(vec![9]));
        assert_eq!(q.next(), None);
        // Sends after close are no-ops.
        q.send_control(vec![1]);
        assert_eq!(q.next(), None);
    }
}
