//! Length-prefixed framing over a byte stream.
//!
//! A frame is a LEB128 varint payload length followed by that many payload
//! bytes (the message encodings of [`crate::proto`]). The varint is read
//! byte-at-a-time so a reader never trusts a length it has not bounded:
//! a declared length above the configured cap fails *before* any payload
//! allocation, which is what keeps a hostile 100 MB length prefix from
//! costing more than ten bytes of reading.
//!
//! End-of-stream is only legal between frames: EOF on the first length
//! byte yields `Ok(None)` (clean close), EOF anywhere later is an error
//! (mid-frame disconnect).

use std::io::{self, Read, Write};

/// Default cap on a frame's payload length, in bytes.
///
/// Large enough for any snapshot image or report the platform produces
/// today (small-config images are tens of KiB), small enough that a
/// hostile length prefix cannot balloon server memory.
pub const MAX_FRAME_BYTES: usize = 8 * 1024 * 1024;

/// Writes one frame (varint length + payload) to `w`.
///
/// # Errors
///
/// Propagates any I/O error from the underlying writer.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let mut prefix = [0u8; 10];
    let mut len = payload.len() as u64;
    let mut n = 0;
    loop {
        let byte = (len & 0x7f) as u8;
        len >>= 7;
        if len == 0 {
            prefix[n] = byte;
            n += 1;
            break;
        }
        prefix[n] = byte | 0x80;
        n += 1;
    }
    w.write_all(&prefix[..n])?;
    w.write_all(payload)
}

/// Reads one frame payload from `r`, enforcing `max_len`.
///
/// Returns `Ok(None)` on a clean end-of-stream (EOF before the first
/// length byte).
///
/// # Errors
///
/// * [`io::ErrorKind::InvalidData`] — the length varint is overlong, or
///   declares a payload larger than `max_len`;
/// * [`io::ErrorKind::UnexpectedEof`] — the stream ended mid-frame;
/// * any other I/O error from the underlying reader.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> io::Result<Option<Vec<u8>>> {
    let mut len: u64 = 0;
    let mut shift = 0u32;
    let mut first = true;
    loop {
        let mut byte = [0u8; 1];
        match r.read_exact(&mut byte) {
            Ok(()) => {}
            Err(e) if first && e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        first = false;
        let b = byte[0];
        if shift >= 63 && b > 1 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame length varint overflows u64",
            ));
        }
        len |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            break;
        }
        shift += 7;
        if shift > 63 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame length varint is overlong",
            ));
        }
    }
    if len > max_len as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} B exceeds the {max_len} B cap"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trips_payloads_of_every_size_class() {
        for len in [0usize, 1, 127, 128, 300, 70_000] {
            let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut buf = Vec::new();
            write_frame(&mut buf, &payload).unwrap();
            let mut cur = Cursor::new(buf);
            assert_eq!(
                read_frame(&mut cur, MAX_FRAME_BYTES).unwrap().unwrap(),
                payload
            );
            assert!(read_frame(&mut cur, MAX_FRAME_BYTES).unwrap().is_none());
        }
    }

    #[test]
    fn clean_eof_between_frames_is_none() {
        let mut cur = Cursor::new(Vec::new());
        assert!(read_frame(&mut cur, MAX_FRAME_BYTES).unwrap().is_none());
    }

    #[test]
    fn eof_inside_length_or_payload_is_an_error() {
        // Length varint cut off after a continuation byte.
        let mut cur = Cursor::new(vec![0x80]);
        assert_eq!(
            read_frame(&mut cur, MAX_FRAME_BYTES).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
        // Payload shorter than declared.
        let mut cur = Cursor::new(vec![5, 1, 2]);
        assert_eq!(
            read_frame(&mut cur, MAX_FRAME_BYTES).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn oversized_declared_length_fails_before_allocation() {
        // 100 MB declared against a 1 KiB cap.
        let mut buf = Vec::new();
        write_frame(&mut buf, &[]).unwrap();
        buf.clear();
        let mut len = 100_000_000u64;
        while len >= 0x80 {
            buf.push((len & 0x7f) as u8 | 0x80);
            len >>= 7;
        }
        buf.push(len as u8);
        let mut cur = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cur, 1024).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn overlong_length_varint_is_rejected() {
        let mut cur = Cursor::new(vec![0x80u8; 11]);
        assert_eq!(
            read_frame(&mut cur, MAX_FRAME_BYTES).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
    }
}
