//! The session table: server-side lifecycle and isolation of simulated
//! devices.
//!
//! Every session is one [`SessionEntry`]: an owned [`Ssd`] platform, its
//! rebuilt [`CommandSource`] and the latest captured [`Snapshot`] image.
//! Operations never hold a live `SimSession` across requests — each
//! request *forks* a session from the stored image, runs, and re-captures
//! (PR 8's fork-equals-continuous equivalence makes this byte-identical
//! to having kept the session open). That idiom buys the two service
//! invariants for free:
//!
//! * **observation is pure** — `FetchReport`/`FetchTails` fork, run to
//!   completion and *discard*, so the stored image is untouched and the
//!   same query repeats byte-identically;
//! * **failure is contained** — every simulation runs under
//!   `catch_unwind`; a panicking session is discarded and reported as
//!   [`ErrorCode::SessionFailed`], and the server keeps serving.
//!
//! Concurrency: the table lock is held only to check a session out or
//! in. While an operation runs, the slot is marked busy and other
//! requests for the *same* session wait on a condvar; different sessions
//! proceed in parallel on the worker pool.

use crate::outbound::Outbound;
use crate::proto::{ErrorCode, Telemetry, WorkloadSpec};
use ssdx_core::{PerfReport, SimSession, Snapshot, Ssd, SsdConfig, TailSummary};
use ssdx_hostif::CommandSource;
use ssdx_sim::SimTime;
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// A failed session operation: the protocol error to send back.
#[derive(Debug, Clone)]
pub(crate) struct Failure {
    /// Machine-readable class.
    pub(crate) code: ErrorCode,
    /// Human-readable detail.
    pub(crate) message: String,
}

impl Failure {
    fn new(code: ErrorCode, message: impl Into<String>) -> Failure {
        Failure {
            code,
            message: message.into(),
        }
    }

    fn unknown_session(id: u32) -> Failure {
        Failure::new(ErrorCode::UnknownSession, format!("no session {id}"))
    }
}

/// How far [`SessionHost::advance`] should drive a session.
#[derive(Debug, Clone, Copy)]
pub(crate) enum AdvanceMode {
    /// Retire at most this many completions.
    Steps(u64),
    /// Run until the session clock reaches the deadline.
    Until(SimTime),
}

/// What an advance accomplished (the `Progress` reply fields).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Advance {
    pub(crate) executed: u64,
    pub(crate) now: SimTime,
    pub(crate) completed: u64,
    pub(crate) remaining: u64,
}

/// A telemetry subscription: where to send, and how often to sample
/// utilization.
struct Subscriber {
    outbound: Arc<Outbound>,
    sample_every: u64,
}

/// One hosted session.
struct SessionEntry {
    config: SsdConfig,
    spec: WorkloadSpec,
    ssd: Ssd,
    source: Box<dyn CommandSource + Send + Sync>,
    image: Snapshot,
    subscriber: Option<Subscriber>,
}

enum Slot {
    /// Checked out by an in-flight operation; waiters queue on the
    /// table condvar.
    Busy,
    Ready(Box<SessionEntry>),
}

struct TableState {
    next_id: u32,
    slots: BTreeMap<u32, Slot>,
    draining: bool,
}

/// The shared session table.
pub(crate) struct SessionHost {
    state: Mutex<TableState>,
    cv: Condvar,
    max_sessions: usize,
}

impl SessionHost {
    /// Creates an empty table admitting at most `max_sessions` sessions.
    pub(crate) fn new(max_sessions: usize) -> SessionHost {
        SessionHost {
            state: Mutex::new(TableState {
                next_id: 1,
                slots: BTreeMap::new(),
                draining: false,
            }),
            cv: Condvar::new(),
            max_sessions: max_sessions.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, TableState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Number of live sessions.
    pub(crate) fn len(&self) -> usize {
        self.lock().slots.len()
    }

    /// Stops admitting new sessions (graceful shutdown). In-flight and
    /// queued operations on existing sessions still complete.
    pub(crate) fn drain(&self) {
        self.lock().draining = true;
    }

    /// Creates a session; returns its id and the command count.
    pub(crate) fn create(
        &self,
        config_text: &str,
        spec: &WorkloadSpec,
    ) -> Result<(u32, u64), Failure> {
        if self.lock().draining {
            return Err(Failure::new(
                ErrorCode::ShuttingDown,
                "the server is shutting down",
            ));
        }
        let config = SsdConfig::from_text(config_text)
            .map_err(|e| Failure::new(ErrorCode::BadConfig, e.to_string()))?;
        let source = spec
            .build()
            .map_err(|e| Failure::new(ErrorCode::BadWorkload, e))?;
        let entry = guard_simulation(AssertUnwindSafe(|| {
            let mut ssd = Ssd::try_new(config.clone())
                .map_err(|e| Failure::new(ErrorCode::BadConfig, e.to_string()))?;
            let image = ssd.session(source.as_ref()).capture();
            Ok((ssd, image))
        }))?;
        let (ssd, image) = entry?;
        let remaining = source.commands().len() as u64;
        let id = self.insert(Box::new(SessionEntry {
            config,
            spec: spec.clone(),
            ssd,
            source,
            image,
            subscriber: None,
        }))?;
        Ok((id, remaining))
    }

    /// Advances a session, emitting telemetry to its subscriber.
    pub(crate) fn advance(&self, id: u32, mode: AdvanceMode) -> Result<Advance, Failure> {
        self.with_entry(id, |entry| {
            let sample_every = entry.subscriber.as_ref().map_or(0, |s| s.sample_every);
            let subscribed = entry.subscriber.is_some();
            let mut records = Vec::new();
            let mut samples = Vec::new();
            let mut session = SimSession::fork(&mut entry.ssd, entry.source.as_ref(), &entry.image)
                .map_err(|e| {
                    Failure::new(ErrorCode::SessionFailed, format!("stored image: {e}"))
                })?;
            let mut executed = 0u64;
            loop {
                match mode {
                    AdvanceMode::Steps(n) => {
                        if executed >= n {
                            break;
                        }
                    }
                    AdvanceMode::Until(deadline) => {
                        if session.is_done() || session.now() >= deadline {
                            break;
                        }
                    }
                }
                let Some(record) = session.step() else { break };
                executed += 1;
                if subscribed {
                    if sample_every > 0 && session.completed() % sample_every == 0 {
                        samples.push(session.snapshot());
                    }
                    records.push(record);
                }
            }
            let advance = Advance {
                executed,
                now: session.now(),
                completed: session.completed(),
                remaining: session.remaining(),
            };
            entry.image = session.capture();
            drop(session);
            if let Some(sub) = &entry.subscriber {
                for record in records {
                    sub.outbound.send_telemetry(
                        id,
                        Telemetry::Completion {
                            session: id,
                            record,
                        }
                        .encode(),
                    );
                }
                for snapshot in samples {
                    sub.outbound.send_telemetry(
                        id,
                        Telemetry::Utilization {
                            session: id,
                            snapshot,
                        }
                        .encode(),
                    );
                }
            }
            Ok(advance)
        })
    }

    /// Installs (or replaces) the session's telemetry subscriber.
    pub(crate) fn subscribe(
        &self,
        id: u32,
        outbound: Arc<Outbound>,
        sample_every: u64,
    ) -> Result<(), Failure> {
        self.with_entry(id, |entry| {
            entry.subscriber = Some(Subscriber {
                outbound,
                sample_every,
            });
            Ok(())
        })
    }

    /// Removes the session's telemetry subscriber, if any.
    pub(crate) fn unsubscribe(&self, id: u32) -> Result<(), Failure> {
        self.with_entry(id, |entry| {
            entry.subscriber = None;
            Ok(())
        })
    }

    /// Returns the session's current snapshot image bytes.
    pub(crate) fn capture(&self, id: u32) -> Result<Vec<u8>, Failure> {
        self.with_entry(id, |entry| Ok(entry.image.to_bytes().to_vec()))
    }

    /// Forks a session: the new session starts from the parent's current
    /// image; the parent is untouched. Returns the new id.
    pub(crate) fn fork(&self, id: u32) -> Result<u32, Failure> {
        let child = self.with_entry(id, |entry| {
            let source = entry
                .spec
                .build()
                .map_err(|e| Failure::new(ErrorCode::BadWorkload, e))?;
            let ssd = Ssd::try_new(entry.config.clone())
                .map_err(|e| Failure::new(ErrorCode::BadConfig, e.to_string()))?;
            Ok(Box::new(SessionEntry {
                config: entry.config.clone(),
                spec: entry.spec.clone(),
                ssd,
                source,
                image: entry.image.clone(),
                subscriber: None,
            }))
        })?;
        self.insert(child)
    }

    /// Runs the session to completion *on a fork* and returns the full
    /// report. The stored session does not move: fetching twice, or
    /// stepping further and fetching again, behaves exactly like the
    /// equivalent in-process run.
    pub(crate) fn report(&self, id: u32) -> Result<PerfReport, Failure> {
        self.with_entry(id, |entry| {
            let session = SimSession::fork(&mut entry.ssd, entry.source.as_ref(), &entry.image)
                .map_err(|e| {
                    Failure::new(ErrorCode::SessionFailed, format!("stored image: {e}"))
                })?;
            Ok(session.finish())
        })
    }

    /// Per-class tail summaries of the completed run (see
    /// [`report`](Self::report) for the purity contract).
    pub(crate) fn tails(&self, id: u32) -> Result<[TailSummary; 3], Failure> {
        self.report(id).map(|r| r.tails())
    }

    /// Closes a session, discarding its state.
    pub(crate) fn close(&self, id: u32) -> Result<(), Failure> {
        // Wait for any in-flight operation, then remove the busy marker.
        let entry = self.checkout(id)?;
        drop(entry);
        self.lock().slots.remove(&id);
        self.cv.notify_all();
        Ok(())
    }

    fn insert(&self, entry: Box<SessionEntry>) -> Result<u32, Failure> {
        let mut state = self.lock();
        if state.slots.len() >= self.max_sessions {
            return Err(Failure::new(
                ErrorCode::SessionLimit,
                format!("session limit ({}) reached", self.max_sessions),
            ));
        }
        let id = state.next_id;
        state.next_id += 1;
        state.slots.insert(id, Slot::Ready(entry));
        Ok(id)
    }

    fn checkout(&self, id: u32) -> Result<Box<SessionEntry>, Failure> {
        let mut state = self.lock();
        loop {
            let Some(slot) = state.slots.get_mut(&id) else {
                return Err(Failure::unknown_session(id));
            };
            match std::mem::replace(slot, Slot::Busy) {
                Slot::Ready(entry) => return Ok(entry),
                Slot::Busy => {
                    state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    fn checkin(&self, id: u32, entry: Box<SessionEntry>) {
        self.lock().slots.insert(id, Slot::Ready(entry));
        self.cv.notify_all();
    }

    /// Checks the session out, runs `f` under a panic guard, checks it
    /// back in — or discards it if `f` panicked, reporting
    /// [`ErrorCode::SessionFailed`].
    fn with_entry<R>(
        &self,
        id: u32,
        f: impl FnOnce(&mut SessionEntry) -> Result<R, Failure>,
    ) -> Result<R, Failure> {
        let mut entry = self.checkout(id)?;
        match guard_simulation(AssertUnwindSafe(|| f(&mut entry))) {
            Ok(result) => {
                self.checkin(id, entry);
                result
            }
            Err(failure) => {
                // The entry's state is suspect after a panic: discard it.
                drop(entry);
                self.lock().slots.remove(&id);
                self.cv.notify_all();
                Err(failure)
            }
        }
    }
}

/// Runs `f` under `catch_unwind`, translating a panic into a
/// [`ErrorCode::SessionFailed`] failure carrying the panic message.
fn guard_simulation<R>(f: impl FnOnce() -> R) -> Result<R, Failure> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "session panicked".to_owned()
        };
        Failure::new(
            ErrorCode::SessionFailed,
            format!("session failed: {message}"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdx_hostif::AccessPattern;
    use ssdx_hostif::HostCommand;
    use std::borrow::Cow;

    fn small_config_text() -> String {
        SsdConfig::builder("host-test")
            .topology(2, 2, 1)
            .seed(7)
            .build()
            .unwrap()
            .to_text()
    }

    fn small_spec() -> WorkloadSpec {
        WorkloadSpec::Basic {
            pattern: AccessPattern::RandomWrite,
            block_size: 4096,
            command_count: 64,
            footprint_bytes: 1 << 20,
            seed: 11,
        }
    }

    #[test]
    fn create_step_report_close() {
        let host = SessionHost::new(8);
        let (id, remaining) = host.create(&small_config_text(), &small_spec()).unwrap();
        assert_eq!(remaining, 64);
        let adv = host.advance(id, AdvanceMode::Steps(10)).unwrap();
        assert_eq!(adv.executed, 10);
        assert_eq!(adv.completed, 10);
        assert_eq!(adv.remaining, 54);
        let report = host.report(id).unwrap();
        assert_eq!(report.commands, 64);
        // Observation is pure: fetching again is byte-identical and the
        // session has not moved.
        let again = host.report(id).unwrap();
        assert_eq!(format!("{report:?}"), format!("{again:?}"));
        let adv = host.advance(id, AdvanceMode::Steps(0)).unwrap();
        assert_eq!(adv.completed, 10);
        host.close(id).unwrap();
        assert_eq!(host.close(id).unwrap_err().code, ErrorCode::UnknownSession);
    }

    #[test]
    fn bad_config_and_bad_workload_are_protocol_errors() {
        let host = SessionHost::new(8);
        let err = host.create("channels = 0\n", &small_spec()).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadConfig);
        let bad = WorkloadSpec::Zipfian {
            theta: 1.5,
            seed: 1,
            command_count: 16,
            block_size: 4096,
            footprint_bytes: 1 << 20,
            read_fraction: 0.5,
        };
        let err = host.create(&small_config_text(), &bad).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadWorkload);
    }

    #[test]
    fn fault_config_rides_in_the_config_text() {
        // Fault injection needs no wire change: the degraded-device keys
        // travel inside the CreateSession config text, and two sessions
        // created from the same faulty text stay byte-deterministic.
        let text = ssdx_core::SsdConfig::builder("degraded")
            .topology(2, 2, 1)
            .ftl_mode(ssdx_core::FtlMode::PageMapped)
            .seed(7)
            .faults(ssdx_core::FaultConfig {
                read_disturb_per_read: 0.05,
                retention_scale: 2.0,
                retire_pe_limit: 3,
                power_loss_at: 24,
            })
            .build()
            .unwrap()
            .to_text();
        for key in [
            "read_disturb",
            "retention_scale",
            "retire_pe_limit",
            "power_loss_at",
        ] {
            assert!(text.contains(key), "config text must carry `{key}`");
        }
        let host = SessionHost::new(8);
        let (a, _) = host.create(&text, &small_spec()).unwrap();
        let (b, _) = host.create(&text, &small_spec()).unwrap();
        host.advance(a, AdvanceMode::Steps(64)).unwrap();
        host.advance(b, AdvanceMode::Steps(64)).unwrap();
        let ra = host.report(a).unwrap();
        let rb = host.report(b).unwrap();
        assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
    }

    #[test]
    fn session_limit_is_enforced() {
        let host = SessionHost::new(1);
        host.create(&small_config_text(), &small_spec()).unwrap();
        let err = host
            .create(&small_config_text(), &small_spec())
            .unwrap_err();
        assert_eq!(err.code, ErrorCode::SessionLimit);
    }

    #[test]
    fn fork_matches_continuous_run() {
        let host = SessionHost::new(8);
        let (a, _) = host.create(&small_config_text(), &small_spec()).unwrap();
        host.advance(a, AdvanceMode::Steps(20)).unwrap();
        let b = host.fork(a).unwrap();
        let ra = host.report(a).unwrap();
        let rb = host.report(b).unwrap();
        assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
    }

    /// A source whose commands() panics after construction — the hostile
    /// case `WorkloadSpec` validation cannot reach.
    #[derive(Debug)]
    struct PanickingSource;
    impl CommandSource for PanickingSource {
        fn label(&self) -> String {
            "panic".to_owned()
        }
        fn commands(&self) -> Cow<'_, [HostCommand]> {
            panic!("injected source failure")
        }
    }

    #[test]
    fn a_panicking_session_is_discarded_not_fatal() {
        let host = SessionHost::new(8);
        let (id, _) = host.create(&small_config_text(), &small_spec()).unwrap();
        // Swap in a panicking source via the entry mutation path.
        let mut entry = host.checkout(id).unwrap();
        entry.source = Box::new(PanickingSource);
        host.checkin(id, entry);
        let err = host.advance(id, AdvanceMode::Steps(1)).unwrap_err();
        assert_eq!(err.code, ErrorCode::SessionFailed);
        assert!(err.message.contains("injected source failure"));
        // The broken session is gone; the host still serves new ones.
        assert_eq!(
            host.advance(id, AdvanceMode::Steps(1)).unwrap_err().code,
            ErrorCode::UnknownSession
        );
        let (id2, _) = host.create(&small_config_text(), &small_spec()).unwrap();
        host.advance(id2, AdvanceMode::Steps(1)).unwrap();
    }
}
