//! End-to-end tests over a real loopback socket: an ephemeral-port
//! server, the client library, and the acceptance criteria — remote
//! reports byte-identical to in-process runs, fork equivalence,
//! telemetry streaming, and the ≥200-concurrent-session load target
//! with zero control-message loss.

use ssdx_hostif::AccessPattern;
use ssdx_server::{
    Client, ClientError, ErrorCode, LoadgenConfig, Server, ServerConfig, Telemetry, WorkloadSpec,
};
use ssdx_sim::SimTime;
use std::time::Duration;

fn ephemeral_server() -> Server {
    Server::bind(ServerConfig {
        bind: "127.0.0.1:0".to_owned(),
        workers: 4,
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral loopback port")
}

fn test_config_text() -> String {
    ssdx_core::SsdConfig::builder("loopback")
        .topology(2, 2, 1)
        .seed(3)
        .build()
        .expect("valid test config")
        .to_text()
}

fn test_spec() -> WorkloadSpec {
    WorkloadSpec::Basic {
        pattern: AccessPattern::RandomWrite,
        block_size: 4096,
        command_count: 256,
        footprint_bytes: 1 << 24,
        seed: 21,
    }
}

/// The same config + spec run entirely in-process, for byte-identity
/// comparisons against server-side runs.
fn in_process_report() -> ssdx_core::PerfReport {
    let config = ssdx_core::SsdConfig::from_text(&test_config_text()).expect("round-trip config");
    let source = test_spec().build().expect("valid test spec");
    let mut ssd = ssdx_core::Ssd::try_new(config).expect("valid test device");
    ssd.simulate(source.as_ref())
}

#[test]
fn remote_report_is_byte_identical_to_in_process() {
    let server = ephemeral_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let session = client
        .create_session(&test_config_text(), &test_spec())
        .expect("create");
    let remote = client.fetch_report(session).expect("fetch report");
    assert_eq!(
        format!("{remote:?}"),
        format!("{:?}", in_process_report()),
        "remote report must be byte-identical to the in-process run"
    );
    client.close_session(session).expect("close");
    client.shutdown_server().expect("shutdown");
    server.wait().expect("clean exit");
}

#[test]
fn slicing_a_run_into_steps_does_not_change_the_report() {
    let server = ephemeral_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let session = client
        .create_session(&test_config_text(), &test_spec())
        .expect("create");
    // Advance in ragged slices: counted steps, then a deadline, then
    // more steps — the report must not care.
    let p = client.step(session, 17).expect("step");
    assert_eq!(p.completed, 17);
    let p = client
        .run_until(session, p.now + SimTime::from_us(50))
        .expect("run_until");
    assert!(p.completed >= 17);
    client.step(session, 3).expect("step");
    let remote = client.fetch_report(session).expect("fetch report");
    assert_eq!(
        format!("{remote:?}"),
        format!("{:?}", in_process_report()),
        "stepping must not perturb the final report"
    );
    client.shutdown_server().expect("shutdown");
    server.wait().expect("clean exit");
}

#[test]
fn a_fork_reports_identically_to_its_parent() {
    let server = ephemeral_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let parent = client
        .create_session(&test_config_text(), &test_spec())
        .expect("create");
    client.step(parent, 40).expect("advance the parent first");
    let child = client.fork(parent).expect("fork");
    assert_ne!(parent, child);
    let parent_report = client.fetch_report(parent).expect("parent report");
    let child_report = client.fetch_report(child).expect("child report");
    assert_eq!(
        format!("{parent_report:?}"),
        format!("{child_report:?}"),
        "a fork must finish exactly like its parent"
    );
    client.shutdown_server().expect("shutdown");
    server.wait().expect("clean exit");
}

#[test]
fn captured_snapshots_parse_as_snapshot_images() {
    let server = ephemeral_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let session = client
        .create_session(&test_config_text(), &test_spec())
        .expect("create");
    client.step(session, 10).expect("step");
    let image = client.capture_snapshot(session).expect("capture");
    let snapshot = ssdx_core::Snapshot::from_bytes(&image).expect("the image is a valid snapshot");
    assert_eq!(snapshot.version(), ssdx_core::SNAPSHOT_VERSION);
    client.shutdown_server().expect("shutdown");
    server.wait().expect("clean exit");
}

#[test]
fn subscribed_telemetry_streams_completions_and_utilization() {
    let server = ephemeral_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let session = client
        .create_session(&test_config_text(), &test_spec())
        .expect("create");
    client.subscribe(session, 8).expect("subscribe");
    let progress = client.step(session, 32).expect("step");
    assert_eq!(progress.executed, 32);
    // Collect everything already in flight, then poll for the rest.
    let mut completions = Vec::new();
    let mut utilization = 0usize;
    for t in client.take_telemetry() {
        client_push(t, session, &mut completions, &mut utilization);
    }
    while let Some(t) = client
        .poll_telemetry(Duration::from_millis(200))
        .expect("poll telemetry")
    {
        client_push(t, session, &mut completions, &mut utilization);
        if completions.len() >= 32 && utilization >= 4 {
            break;
        }
    }
    assert_eq!(completions.len(), 32, "one completion event per command");
    assert_eq!(
        completions,
        (0..32).collect::<Vec<u64>>(),
        "completion indices arrive in order"
    );
    assert_eq!(
        utilization, 4,
        "a utilization sample every 8 completions over 32 commands"
    );
    client.unsubscribe(session).expect("unsubscribe");
    client.step(session, 8).expect("step");
    assert!(
        client.take_telemetry().is_empty(),
        "no telemetry after unsubscribe"
    );
    client.shutdown_server().expect("shutdown");
    server.wait().expect("clean exit");
}

fn client_push(t: Telemetry, session: u32, completions: &mut Vec<u64>, utilization: &mut usize) {
    match t {
        Telemetry::Completion { session: s, record } => {
            assert_eq!(s, session);
            completions.push(record.index);
        }
        Telemetry::Utilization { session: s, .. } => {
            assert_eq!(s, session);
            *utilization += 1;
        }
        Telemetry::Dropped { .. } => {}
    }
}

#[test]
fn server_side_errors_are_replies_not_disconnects() {
    let server = ephemeral_server();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // Unknown session.
    match client.step(999, 1) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("expected an unknown-session error, got {other:?}"),
    }
    // Bad config text.
    match client.create_session("channels = 0\n", &test_spec()) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadConfig),
        other => panic!("expected a bad-config error, got {other:?}"),
    }
    // Bad workload parameters.
    let bad = WorkloadSpec::Zipfian {
        theta: 1.5,
        seed: 1,
        command_count: 16,
        block_size: 4096,
        footprint_bytes: 1 << 20,
        read_fraction: 0.5,
    };
    match client.create_session(&test_config_text(), &bad) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::BadWorkload),
        other => panic!("expected a bad-workload error, got {other:?}"),
    }
    // The connection survived all three rejections.
    let session = client
        .create_session(&test_config_text(), &test_spec())
        .expect("the connection still works");
    client.close_session(session).expect("close");
    client.shutdown_server().expect("shutdown");
    server.wait().expect("clean exit");
}

#[test]
fn loadgen_sustains_two_hundred_concurrent_sessions_with_zero_loss() {
    let server = ephemeral_server();
    let mut cfg = LoadgenConfig::new(server.local_addr().to_string());
    cfg.sessions = 200;
    cfg.connections = 8;
    cfg.rounds = 1;
    let report = ssdx_server::load::run(&cfg).expect("the load run succeeds");
    assert_eq!(report.sessions, 200);
    assert_eq!(
        report.requests, report.replies,
        "zero control-message loss under load"
    );
    assert!(report.commands > 0, "the fleet simulated real commands");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.shutdown_server().expect("shutdown");
    server.wait().expect("clean exit");
}

#[test]
fn shutdown_drains_other_connections_with_a_broadcast() {
    let server = ephemeral_server();
    let mut bystander = Client::connect(server.local_addr()).expect("connect bystander");
    let session = bystander
        .create_session(&test_config_text(), &test_spec())
        .expect("create");
    bystander.step(session, 5).expect("step");
    let mut closer = Client::connect(server.local_addr()).expect("connect closer");
    closer.shutdown_server().expect("shutdown");
    server.wait().expect("clean exit");
    // The bystander's next request cannot be served, but the broadcast
    // and socket close must surface as a clean error, not a hang.
    if let Ok(progress) = bystander.step(session, 1) {
        panic!("stepped a drained server: {progress:?}");
    }
}
