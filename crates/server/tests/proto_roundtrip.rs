//! Wire-protocol codec contracts: every message round-trips, and no
//! byte stream — truncated, corrupted, or arbitrary — can make a
//! decoder panic.

use proptest::prelude::*;
use ssdx_hostif::AccessPattern;
use ssdx_server::proto::{ErrorCode, Request, Response, ServerMessage, Telemetry, WorkloadSpec};
use ssdx_server::PROTOCOL_VERSION;
use ssdx_sim::SimTime;

/// One of every request variant, with non-trivial field values.
fn all_requests() -> Vec<Request> {
    vec![
        Request::Hello {
            version: PROTOCOL_VERSION,
        },
        Request::CreateSession {
            config: "channels = 4\n".to_owned(),
            workload: WorkloadSpec::Basic {
                pattern: AccessPattern::RandomRead,
                block_size: 8192,
                command_count: 1000,
                footprint_bytes: 1 << 28,
                seed: 7,
            },
        },
        Request::CreateSession {
            config: String::new(),
            workload: WorkloadSpec::Zipfian {
                theta: 0.85,
                seed: 11,
                command_count: 64,
                block_size: 4096,
                footprint_bytes: 1 << 24,
                read_fraction: 0.25,
            },
        },
        Request::CreateSession {
            config: "x".to_owned(),
            workload: WorkloadSpec::Bursty {
                seed: 3,
                command_count: 256,
                block_size: 512,
                footprint_bytes: 1 << 20,
                read_fraction: 1.0,
                burst_len: 16,
                inter_arrival: SimTime::from_us(5),
                idle_gap: SimTime::from_ms(2),
            },
        },
        Request::CreateSession {
            config: "y".to_owned(),
            workload: WorkloadSpec::MixedSize {
                sizes: vec![(4096, 4), (65536, 1)],
                seed: 9,
                command_count: 128,
                footprint_bytes: 1 << 22,
                read_fraction: 0.0,
            },
        },
        Request::CreateSession {
            config: "z".to_owned(),
            workload: WorkloadSpec::Rmw {
                seed: 13,
                updates: 32,
                block_size: 4096,
                footprint_bytes: 1 << 21,
            },
        },
        Request::Step {
            session: 42,
            commands: u64::MAX,
        },
        Request::RunUntil {
            session: 1,
            deadline: SimTime::from_ms(100),
        },
        Request::Subscribe {
            session: 2,
            sample_every: 128,
        },
        Request::Unsubscribe { session: 2 },
        Request::CaptureSnapshot { session: 3 },
        Request::Fork { session: 4 },
        Request::FetchReport { session: 5 },
        Request::FetchTails { session: 6 },
        Request::CloseSession { session: u32::MAX },
        Request::Shutdown,
    ]
}

/// A real report from a tiny run, so the report codec sees live
/// histograms rather than zeroed ones.
fn tiny_report() -> ssdx_core::PerfReport {
    let config = ssdx_core::SsdConfig::builder("proto-roundtrip")
        .topology(1, 1, 1)
        .seed(5)
        .build()
        .expect("valid test config");
    let workload = ssdx_hostif::Workload::builder(AccessPattern::RandomWrite)
        .command_count(64)
        .footprint_bytes(1 << 22)
        .seed(5)
        .build();
    let mut ssd = ssdx_core::Ssd::try_new(config).expect("valid test device");
    ssd.simulate(&workload)
}

/// One of every response variant.
fn all_responses() -> Vec<Response> {
    let report = tiny_report();
    vec![
        Response::HelloAck {
            version: PROTOCOL_VERSION,
        },
        Response::SessionCreated { session: 17 },
        Response::Progress {
            session: 17,
            executed: 64,
            now: SimTime::from_us(321),
            completed: 64,
            remaining: 0,
        },
        Response::Subscribed { session: 17 },
        Response::Unsubscribed { session: 17 },
        Response::SnapshotImage {
            session: 17,
            image: vec![0xDE, 0xAD, 0xBE, 0xEF],
        },
        Response::Forked {
            parent: 17,
            session: 18,
        },
        Response::Tails {
            session: 17,
            tails: report.tails().to_vec(),
        },
        Response::Report {
            session: 17,
            report: Box::new(report),
        },
        Response::Closed { session: 17 },
        Response::ShuttingDown,
        Response::Error {
            code: ErrorCode::BadWorkload,
            message: "theta out of range".to_owned(),
        },
    ]
}

/// One of every telemetry variant.
fn all_telemetry() -> Vec<Telemetry> {
    let config = ssdx_core::SsdConfig::builder("proto-telemetry")
        .topology(1, 1, 1)
        .build()
        .expect("valid test config");
    let workload = ssdx_hostif::Workload::builder(AccessPattern::SequentialWrite)
        .command_count(4)
        .seed(1)
        .build();
    let mut ssd = ssdx_core::Ssd::try_new(config).expect("valid test device");
    let mut session = ssd.session(&workload);
    let record = session.step().expect("the tiny run has completions");
    let snapshot = session.snapshot();
    vec![
        Telemetry::Completion { session: 9, record },
        Telemetry::Utilization {
            session: 9,
            snapshot,
        },
        Telemetry::Dropped {
            session: 9,
            dropped: 1234,
        },
    ]
}

#[test]
fn every_request_round_trips() {
    for request in all_requests() {
        let bytes = request.encode();
        let back = Request::decode(&bytes).expect("round trip decodes");
        assert_eq!(back, request, "request round trip");
    }
}

#[test]
fn every_response_round_trips() {
    for response in all_responses() {
        let bytes = response.encode();
        let back = Response::decode(&bytes).expect("round trip decodes");
        // `PerfReport` has no `PartialEq`; its debug format is the
        // golden byte-identity surface, so compare through it.
        assert_eq!(format!("{back:?}"), format!("{response:?}"));
        // The channel dispatcher must agree on the tag.
        match ServerMessage::decode(&bytes).expect("dispatch decodes") {
            ServerMessage::Response(r) => {
                assert_eq!(format!("{r:?}"), format!("{response:?}"));
            }
            ServerMessage::Telemetry(t) => panic!("response decoded as telemetry: {t:?}"),
        }
    }
}

#[test]
fn every_telemetry_round_trips() {
    for telemetry in all_telemetry() {
        let bytes = telemetry.encode();
        let back = Telemetry::decode(&bytes).expect("round trip decodes");
        assert_eq!(back, telemetry, "telemetry round trip");
        match ServerMessage::decode(&bytes).expect("dispatch decodes") {
            ServerMessage::Telemetry(t) => assert_eq!(t, telemetry),
            ServerMessage::Response(r) => panic!("telemetry decoded as response: {r:?}"),
        }
    }
}

#[test]
fn every_strict_prefix_of_a_valid_encoding_errors() {
    let mut encodings: Vec<Vec<u8>> = Vec::new();
    encodings.extend(all_requests().iter().map(Request::encode));
    encodings.extend(all_responses().iter().map(Response::encode));
    encodings.extend(all_telemetry().iter().map(Telemetry::encode));
    for bytes in &encodings {
        for cut in 0..bytes.len() {
            let prefix = &bytes[..cut];
            assert!(
                Request::decode(prefix).is_err() || Response::decode(prefix).is_err(),
                "a strict prefix decoded under both decoders"
            );
            // The dispatcher must reject every strict prefix of its own
            // valid encodings (trailing bytes are caught by expect_end).
            assert!(
                ServerMessage::decode(prefix).is_err(),
                "a strict prefix of len {cut} (of {}) decoded",
                bytes.len()
            );
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    for request in all_requests() {
        let mut bytes = request.encode();
        bytes.push(0x00);
        assert!(
            Request::decode(&bytes).is_err(),
            "trailing byte accepted for {request:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary bytes never panic any decoder — they decode or they
    /// return an error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
        let _ = Telemetry::decode(&bytes);
        let _ = ServerMessage::decode(&bytes);
    }

    /// Single-bit corruption of a valid frame never panics a decoder.
    #[test]
    fn bit_flips_never_panic(
        which in 0usize..16,
        byte_pos in 0usize..4096,
        bit in 0u8..8,
    ) {
        let requests = all_requests();
        let mut bytes = requests[which % requests.len()].encode();
        let idx = byte_pos % bytes.len();
        bytes[idx] ^= 1 << bit;
        let _ = Request::decode(&bytes);
        let _ = ServerMessage::decode(&bytes);
    }
}
