//! Hostile-peer tests: raw TCP streams sending frames the protocol
//! forbids. The server must fail each bad connection cleanly — an error
//! reply or a close — and keep serving well-behaved clients.

use ssdx_server::frame::{read_frame, write_frame, MAX_FRAME_BYTES};
use ssdx_server::proto::{Request, Response, ServerMessage};
use ssdx_server::{Client, ErrorCode, Server, ServerConfig, PROTOCOL_VERSION};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn ephemeral_server() -> Server {
    Server::bind(ServerConfig {
        bind: "127.0.0.1:0".to_owned(),
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral loopback port")
}

fn raw_connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("raw connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("set timeout");
    stream
}

/// Performs the handshake on a raw stream so later frames reach the
/// request dispatcher.
fn shake(stream: &mut TcpStream) {
    write_frame(
        stream,
        &Request::Hello {
            version: PROTOCOL_VERSION,
        }
        .encode(),
    )
    .expect("send hello");
    let payload = read_frame(stream, MAX_FRAME_BYTES)
        .expect("read ack")
        .expect("ack frame");
    match ServerMessage::decode(&payload).expect("decode ack") {
        ServerMessage::Response(Response::HelloAck { version }) => {
            assert_eq!(version, PROTOCOL_VERSION);
        }
        other => panic!("expected HelloAck, got {other:?}"),
    }
}

fn read_response(stream: &mut TcpStream) -> Option<Response> {
    let payload = read_frame(stream, MAX_FRAME_BYTES).ok()??;
    match ServerMessage::decode(&payload).expect("server frames always decode") {
        ServerMessage::Response(r) => Some(r),
        ServerMessage::Telemetry(t) => panic!("unexpected telemetry {t:?}"),
    }
}

/// The server is still healthy: a fresh well-behaved client can run a
/// session end to end.
fn assert_still_serving(server: &Server) {
    let mut client = Client::connect(server.local_addr()).expect("healthy connect");
    let config = ssdx_core::SsdConfig::builder("healthy")
        .topology(1, 1, 1)
        .build()
        .expect("valid config")
        .to_text();
    let spec = ssdx_server::WorkloadSpec::Basic {
        pattern: ssdx_hostif::AccessPattern::SequentialWrite,
        block_size: 4096,
        command_count: 16,
        footprint_bytes: 1 << 20,
        seed: 1,
    };
    let session = client.create_session(&config, &spec).expect("create");
    let report = client.fetch_report(session).expect("report");
    assert_eq!(report.commands, 16);
    client.close_session(session).expect("close");
}

#[test]
fn an_oversized_frame_closes_that_connection_only() {
    let server = ephemeral_server();
    let mut evil = raw_connect(&server);
    shake(&mut evil);
    // Declare a frame bigger than the server's cap, then stop. The
    // length prefix alone must get the connection closed — the server
    // never allocates for it.
    let declared = (MAX_FRAME_BYTES as u64 + 1).to_le_bytes();
    let mut prefix = Vec::new();
    let mut value = u64::from_le_bytes(declared);
    while value >= 0x80 {
        prefix.push((value as u8) | 0x80);
        value >>= 7;
    }
    prefix.push(value as u8);
    evil.write_all(&prefix).expect("send hostile length");
    evil.flush().expect("flush");
    // The server replies with a final error frame or just closes; either
    // way the stream ends rather than hanging.
    let mut sink = Vec::new();
    let _ = evil.read_to_end(&mut sink);
    assert_still_serving(&server);
    shutdown(server);
}

#[test]
fn an_unknown_request_tag_gets_an_error_reply_and_the_connection_lives() {
    let server = ephemeral_server();
    let mut peer = raw_connect(&server);
    shake(&mut peer);
    // 0xEE is no request tag. The frame itself is well-formed, so the
    // server must answer with MalformedRequest and keep reading.
    write_frame(&mut peer, &[0xEE, 1, 2, 3]).expect("send unknown tag");
    match read_response(&mut peer).expect("an error reply") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::MalformedRequest),
        other => panic!("expected an error reply, got {other:?}"),
    }
    // Same connection, now a valid request: it must still be served.
    write_frame(&mut peer, &Request::CloseSession { session: 7 }.encode())
        .expect("send a valid request");
    match read_response(&mut peer).expect("a reply") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("expected unknown-session, got {other:?}"),
    }
    assert_still_serving(&server);
    shutdown(server);
}

#[test]
fn a_mid_frame_disconnect_is_cleaned_up() {
    let server = ephemeral_server();
    for _ in 0..3 {
        let mut peer = raw_connect(&server);
        shake(&mut peer);
        // Declare 100 bytes, send 3, vanish.
        peer.write_all(&[100, 0xAA, 0xBB, 0xCC])
            .expect("partial frame");
        drop(peer);
    }
    assert_still_serving(&server);
    shutdown(server);
}

#[test]
fn garbage_before_the_handshake_is_rejected() {
    let server = ephemeral_server();
    let mut peer = raw_connect(&server);
    // A syntactically valid frame whose payload is not a Hello.
    write_frame(&mut peer, &[0xFF, 0x00, 0x13, 0x37]).expect("send garbage");
    match read_response(&mut peer) {
        Some(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::MalformedRequest),
        Some(other) => panic!("expected an error reply, got {other:?}"),
        // An immediate close is also acceptable.
        None => {}
    }
    assert_still_serving(&server);
    shutdown(server);
}

#[test]
fn a_version_mismatch_is_refused_at_the_door() {
    let server = ephemeral_server();
    let mut peer = raw_connect(&server);
    write_frame(
        &mut peer,
        &Request::Hello {
            version: PROTOCOL_VERSION + 1,
        }
        .encode(),
    )
    .expect("send wrong version");
    match read_response(&mut peer).expect("a refusal reply") {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::VersionMismatch);
            assert!(
                message.contains(&PROTOCOL_VERSION.to_string()),
                "the refusal names the supported version: {message}"
            );
        }
        other => panic!("expected a version-mismatch error, got {other:?}"),
    }
    // The server closes after refusing.
    let mut sink = Vec::new();
    let _ = peer.read_to_end(&mut sink);
    assert!(sink.is_empty(), "nothing after the refusal");
    assert_still_serving(&server);
    shutdown(server);
}

#[test]
fn a_request_before_hello_is_refused() {
    let server = ephemeral_server();
    let mut peer = raw_connect(&server);
    write_frame(&mut peer, &Request::Shutdown.encode()).expect("send early request");
    match read_response(&mut peer).expect("a refusal reply") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::MalformedRequest),
        other => panic!("expected a refusal, got {other:?}"),
    }
    assert_still_serving(&server);
    shutdown(server);
}

fn shutdown(server: Server) {
    let mut client = Client::connect(server.local_addr()).expect("connect for shutdown");
    client.shutdown_server().expect("shutdown");
    server.wait().expect("clean exit");
}
