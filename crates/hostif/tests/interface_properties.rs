//! Property-based tests of the host-interface models, the workload
//! generators and the trace player.

use proptest::prelude::*;
use ssdx_hostif::{
    AccessPattern, HostInterface, HostOp, NvmeInterface, PcieGen, SataInterface, TracePlayer,
    Workload,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn effective_bandwidth_never_exceeds_ideal(bytes in 512u32..1_000_000) {
        let interfaces: Vec<Box<dyn HostInterface>> = vec![
            Box::new(SataInterface::sata2()),
            Box::new(SataInterface::sata3()),
            Box::new(NvmeInterface::gen2_x8()),
            Box::new(NvmeInterface::gen3_x4()),
        ];
        for iface in &interfaces {
            let effective = iface.effective_bandwidth(bytes);
            prop_assert!(effective <= iface.ideal_bandwidth() as f64 * 1.001,
                "{}: {effective} exceeds ideal", iface.name());
            prop_assert!(effective > 0.0);
        }
    }

    #[test]
    fn bigger_payloads_amortise_protocol_overhead(small in 512u32..4_096, factor in 2u32..32) {
        let sata = SataInterface::sata2();
        let large = small.saturating_mul(factor);
        prop_assert!(sata.effective_bandwidth(large) >= sata.effective_bandwidth(small) * 0.999);
    }

    #[test]
    fn pcie_bandwidth_scales_with_lane_count(lanes in 1u32..16) {
        let one = NvmeInterface::new(PcieGen::Gen2, 1).ideal_bandwidth() as f64;
        let many = NvmeInterface::new(PcieGen::Gen2, lanes).ideal_bandwidth() as f64;
        prop_assert!((many / one - lanes as f64).abs() < 0.02 * lanes as f64);
    }

    #[test]
    fn sequential_workloads_cover_contiguous_ranges(
        count in 1u64..500,
        block in prop::sample::select(vec![512u32, 4_096, 8_192, 65_536])
    ) {
        let workload = Workload::builder(AccessPattern::SequentialWrite)
            .command_count(count)
            .block_size(block)
            .footprint_bytes(1 << 32)
            .build();
        let commands = workload.commands();
        prop_assert_eq!(commands.len() as u64, count);
        for (i, c) in commands.iter().enumerate() {
            prop_assert_eq!(c.offset, i as u64 * block as u64);
            prop_assert_eq!(c.bytes, block);
            prop_assert_eq!(c.op, HostOp::Write);
        }
    }

    #[test]
    fn random_workloads_are_reproducible_and_aligned(seed in any::<u64>(), count in 1u64..400) {
        let build = || Workload::builder(AccessPattern::RandomRead)
            .command_count(count)
            .seed(seed)
            .build()
            .commands();
        let first = build();
        let second = build();
        prop_assert_eq!(&first, &second);
        for c in &first {
            prop_assert_eq!(c.offset % 4096, 0);
            prop_assert_eq!(c.op, HostOp::Read);
        }
    }

    #[test]
    fn trace_round_trip_is_lossless(commands in prop::collection::vec(
        (0u64..1_000_000, 0u8..3, 0u64..(1 << 30), 1u32..1_000_000), 0..100
    )) {
        let mut text = String::from("# generated\n");
        for (time, op, offset, bytes) in &commands {
            let op = match op { 0 => "read", 1 => "write", _ => "trim" };
            text.push_str(&format!("{time} {op} {offset} {bytes}\n"));
        }
        let parsed = TracePlayer::parse(&text).expect("generated trace parses");
        prop_assert_eq!(parsed.len(), commands.len());
        let reparsed = TracePlayer::parse(&parsed.to_text()).expect("serialised trace parses");
        prop_assert_eq!(parsed, reparsed);
    }
}

#[test]
fn queue_depth_is_the_protocol_differentiator() {
    // The observation the whole Fig. 3 / Fig. 4 comparison rests on.
    let sata = SataInterface::sata2();
    let nvme = NvmeInterface::gen2_x8();
    assert_eq!(sata.queue_depth(), 32);
    assert_eq!(nvme.queue_depth(), 65_536);
    assert!(nvme.command_overhead() < sata.command_overhead());
}

#[test]
fn all_four_patterns_generate_the_requested_volume() {
    for pattern in AccessPattern::all() {
        let workload = Workload::builder(pattern).command_count(100).build();
        assert_eq!(workload.total_bytes(), 100 * 4096);
        assert_eq!(workload.commands().len(), 100);
    }
}
