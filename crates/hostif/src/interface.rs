//! The common host-interface abstraction.

use serde::{Deserialize, Serialize};
use ssdx_sim::SimTime;

/// Which concrete host interface a configuration instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostInterfaceKind {
    /// Serial ATA II (3 Gb/s) with Native Command Queuing.
    Sata2,
    /// Serial ATA III (6 Gb/s) with Native Command Queuing.
    Sata3,
    /// NVM Express over PCI Express.
    NvmePcie,
}

/// Timing behaviour every host interface model must expose.
///
/// The SSD model is interface-agnostic: it only needs the link occupancy of
/// a transfer, the per-command protocol overhead, and the command-window
/// depth that bounds how many commands may be outstanding inside the device.
///
/// The trait requires `Send + Sync` so a boxed interface — and therefore the
/// whole platform holding it — can be constructed and driven on a worker
/// thread of a parallel sweep executor. Interface models are timing
/// calculators over plain data, so the bound costs implementors nothing.
pub trait HostInterface: Send + Sync {
    /// Which interface this is.
    fn kind(&self) -> HostInterfaceKind;

    /// Ideal payload bandwidth of the link, bytes per second, after encoding
    /// overhead but before protocol overhead ("SATA ideal" / "PCIE ideal" in
    /// the paper's figures).
    fn ideal_bandwidth(&self) -> u64;

    /// Maximum number of commands the protocol allows to be outstanding
    /// (NCQ window for SATA, submission-queue depth for NVMe).
    fn queue_depth(&self) -> u32;

    /// Fixed protocol overhead paid by each command (FIS exchanges,
    /// doorbells, completion handshakes), independent of payload size.
    fn command_overhead(&self) -> SimTime;

    /// Link occupancy of a data payload of `bytes` bytes (excluding the
    /// per-command overhead).
    fn data_transfer_time(&self, bytes: u32) -> SimTime;

    /// Total link occupancy of one command with a `bytes` payload.
    fn transfer_time(&self, bytes: u32) -> SimTime {
        self.command_overhead() + self.data_transfer_time(bytes)
    }

    /// Effective bandwidth achievable with back-to-back commands of `bytes`
    /// payload (what the paper calls the interface's real, as opposed to
    /// ideal, contribution).
    fn effective_bandwidth(&self, bytes: u32) -> f64 {
        let t = self.transfer_time(bytes);
        if t.is_zero() {
            return 0.0;
        }
        bytes as f64 / t.as_secs_f64()
    }

    /// Human-readable name for reports.
    fn name(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;

    impl HostInterface for Dummy {
        fn kind(&self) -> HostInterfaceKind {
            HostInterfaceKind::Sata2
        }
        fn ideal_bandwidth(&self) -> u64 {
            100_000_000
        }
        fn queue_depth(&self) -> u32 {
            4
        }
        fn command_overhead(&self) -> SimTime {
            SimTime::from_us(10)
        }
        fn data_transfer_time(&self, bytes: u32) -> SimTime {
            ssdx_sim::time::transfer_time(bytes as u64, self.ideal_bandwidth())
        }
        fn name(&self) -> String {
            "dummy".to_string()
        }
    }

    #[test]
    fn default_methods_compose_overhead_and_payload() {
        let d = Dummy;
        let t = d.transfer_time(1_000_000);
        assert_eq!(t, SimTime::from_us(10) + SimTime::from_ms(10));
        // Effective bandwidth is below ideal because of the fixed overhead.
        assert!(d.effective_bandwidth(1_000_000) < d.ideal_bandwidth() as f64);
        assert!(d.effective_bandwidth(1_000_000) > 0.9 * d.ideal_bandwidth() as f64);
    }

    #[test]
    fn small_transfers_are_overhead_dominated() {
        let d = Dummy;
        // 512 B takes ~5 µs on the link but pays 10 µs of fixed overhead.
        let eff = d.effective_bandwidth(512);
        assert!(eff < 0.5 * d.ideal_bandwidth() as f64);
    }
}
