//! Generative workloads: skewed, bursty, mixed-size and read-modify-write
//! command sources.
//!
//! The IOZone-style [`Workload`](crate::Workload) generators cover the
//! paper's validation matrix, but real fleets are judged on tail latency
//! under far messier traffic. This module adds four [`CommandSource`]
//! generators modelling the access shapes production storage actually
//! sees:
//!
//! * [`ZipfianWorkload`] — hot-spot addressing with YCSB-style zipfian
//!   skew (a handful of blocks take most of the traffic);
//! * [`BurstyWorkload`] — on/off arrivals: dense bursts separated by idle
//!   gaps, so queues repeatedly fill and drain;
//! * [`MixedSizeWorkload`] — per-command block sizes drawn from a weighted
//!   distribution (metadata-sized 4 KB next to large streaming I/O);
//! * [`RmwWorkload`] — read-modify-write pairs, the classic database-page
//!   update pattern.
//!
//! # Determinism
//!
//! Every generator draws exclusively from a [`SimRng`] seeded by its own
//! `seed` parameter: the same parameters always materialise the same
//! command stream, byte for byte, on any thread (the platform-wide
//! contract documented on `ssdx_core::Explorer`). Materialisation is pure —
//! calling [`CommandSource::commands`] twice yields identical streams.

use crate::command::{HostCommand, HostOp};
use crate::source::CommandSource;
use ssdx_sim::rng::SimRng;
use ssdx_sim::SimTime;
use std::borrow::Cow;

/// Scatters zipfian ranks across the block space so the hottest blocks are
/// not all clustered at offset zero (rank 0 would otherwise always be the
/// first block). Deterministic splitmix-style hash.
#[inline]
fn scramble(rank: u64, blocks: u64) -> u64 {
    let mut z = rank.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) % blocks
}

/// Number of whole blocks the footprint holds, asserting the invariant the
/// generators document: no command ever crosses the footprint end. The
/// individual builder setters also check it, but only against the values
/// set so far — validating at materialisation catches every setter order
/// (e.g. `block_size` grown after `footprint_bytes` was checked).
#[inline]
fn checked_blocks(footprint_bytes: u64, block_size: u32) -> u64 {
    assert!(
        footprint_bytes >= block_size as u64,
        "footprint ({footprint_bytes} B) cannot hold one {block_size} B block"
    );
    footprint_bytes / block_size as u64
}

/// Draws the command op for a read/write mix.
#[inline]
fn mixed_op(rng: &mut SimRng, read_fraction: f64) -> HostOp {
    if rng.chance(read_fraction) {
        HostOp::Read
    } else {
        HostOp::Write
    }
}

/// A zipfian-skewed workload: block popularity follows a zipf(θ)
/// distribution over the footprint, so a small set of hot blocks receives
/// most of the traffic — the YCSB access shape behind most key-value-store
/// benchmarking.
///
/// Ranks are drawn with the standard YCSB quick-zipfian method (Gray et
/// al.) and scrambled across the footprint with a deterministic hash so the
/// hot set is scattered rather than packed at offset zero. Skew `theta`
/// must lie in `(0, 1)`; `0.99` is the YCSB default (very hot), lower
/// values flatten toward uniform.
///
/// # Determinism
///
/// Same `(theta, seed, command_count, block_size, footprint_bytes,
/// read_fraction)` → identical stream; see the
/// [module contract](self#determinism).
///
/// # Example
///
/// ```
/// use ssdx_hostif::{CommandSource, ZipfianWorkload};
///
/// let zipf = ZipfianWorkload::new(0.99, 42)
///     .command_count(512)
///     .footprint_bytes(64 << 20)
///     .read_fraction(1.0); // read-only
/// let commands = zipf.commands();
/// assert_eq!(commands.len(), 512);
/// // The hottest block dominates: it must appear far more often than the
/// // uniform expectation (512 commands over 16 384 blocks).
/// let mut counts = std::collections::BTreeMap::new();
/// for c in commands.iter() {
///     *counts.entry(c.offset).or_insert(0u32) += 1;
/// }
/// assert!(counts.values().copied().max().unwrap() >= 20);
/// // Same parameters, same stream.
/// assert_eq!(zipf.commands(), ZipfianWorkload::new(0.99, 42)
///     .command_count(512)
///     .footprint_bytes(64 << 20)
///     .read_fraction(1.0)
///     .commands());
/// ```
#[derive(Debug, Clone)]
pub struct ZipfianWorkload {
    theta: f64,
    seed: u64,
    command_count: u64,
    block_size: u32,
    footprint_bytes: u64,
    read_fraction: f64,
    label: Option<String>,
    /// zeta(blocks, θ), an O(blocks) pass of `powf` calls over parameters
    /// that are fixed at materialisation time. Computed lazily on the
    /// first [`commands`](CommandSource::commands) call and reused across
    /// re-materialisations (sweeps materialise the same source once per
    /// point); the setters that change the block count reset it. Derived
    /// state — excluded from the manual `PartialEq`.
    zetan: std::sync::OnceLock<f64>,
}

/// Equality over the generator's parameters; the lazily cached zeta value
/// is derived state and deliberately not compared.
impl PartialEq for ZipfianWorkload {
    fn eq(&self, other: &Self) -> bool {
        self.theta == other.theta
            && self.seed == other.seed
            && self.command_count == other.command_count
            && self.block_size == other.block_size
            && self.footprint_bytes == other.footprint_bytes
            && self.read_fraction == other.read_fraction
            && self.label == other.label
    }
}

impl ZipfianWorkload {
    /// Creates a zipfian workload with skew `theta` (must be in `(0, 1)`;
    /// YCSB uses `0.99`) and the given RNG seed. Defaults: 4 096 commands,
    /// 4 KB blocks, 1 GiB footprint, 50 % reads.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is not within `(0.0, 1.0)` exclusive.
    pub fn new(theta: f64, seed: u64) -> Self {
        assert!(
            theta > 0.0 && theta < 1.0,
            "zipfian skew must be in (0, 1), got {theta}"
        );
        ZipfianWorkload {
            theta,
            seed,
            command_count: 4096,
            block_size: 4096,
            footprint_bytes: 1 << 30,
            read_fraction: 0.5,
            label: None,
            zetan: std::sync::OnceLock::new(),
        }
    }

    /// Sets the number of commands to generate.
    pub fn command_count(mut self, count: u64) -> Self {
        self.command_count = count;
        self
    }

    /// Sets the per-command payload size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn block_size(mut self, bytes: u32) -> Self {
        assert!(bytes > 0, "block size must be non-zero");
        self.block_size = bytes;
        self.zetan = std::sync::OnceLock::new();
        self
    }

    /// Sets the logical footprint in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is smaller than one block.
    pub fn footprint_bytes(mut self, bytes: u64) -> Self {
        assert!(
            bytes >= self.block_size as u64,
            "footprint must hold at least one block"
        );
        self.footprint_bytes = bytes;
        self.zetan = std::sync::OnceLock::new();
        self
    }

    /// Sets the fraction of commands that are reads (clamped to `[0, 1]`).
    pub fn read_fraction(mut self, fraction: f64) -> Self {
        self.read_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Overrides the report label (default `zipf-<θ>`), so several
    /// parameter choices of the same generator stay distinguishable as
    /// points of a `workload` sweep axis.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }
}

impl CommandSource for ZipfianWorkload {
    fn label(&self) -> String {
        self.label
            .clone()
            .unwrap_or_else(|| format!("zipf-{:.2}", self.theta))
    }

    fn commands(&self) -> Cow<'_, [HostCommand]> {
        let blocks = checked_blocks(self.footprint_bytes, self.block_size);
        // YCSB quick-zipfian constants (Gray et al.); zeta(n, θ) — the one
        // O(n) pass — is computed on first use and cached across
        // materialisations (OnceLock: safe under parallel sweeps sharing
        // the source by reference, and the init is a pure function of the
        // parameters, so any racing initialiser computes the same value).
        let zetan = *self.zetan.get_or_init(|| {
            (1..=blocks)
                .map(|i| 1.0 / (i as f64).powf(self.theta))
                .sum()
        });
        let zeta2 = 1.0 + 0.5f64.powf(self.theta);
        let alpha = 1.0 / (1.0 - self.theta);
        let eta = (1.0 - (2.0 / blocks as f64).powf(1.0 - self.theta)) / (1.0 - zeta2 / zetan);
        let mut rng = SimRng::new(self.seed);
        Cow::Owned(
            (0..self.command_count)
                .map(|i| {
                    let u = rng.next_f64();
                    let uz = u * zetan;
                    let rank = if uz < 1.0 {
                        0
                    } else if uz < zeta2 {
                        1
                    } else {
                        ((blocks as f64 * (eta * u - eta + 1.0).powf(alpha)) as u64).min(blocks - 1)
                    };
                    let op = mixed_op(&mut rng, self.read_fraction);
                    HostCommand {
                        id: i,
                        op,
                        offset: scramble(rank, blocks) * self.block_size as u64,
                        bytes: self.block_size,
                        issue_at: SimTime::ZERO,
                    }
                })
                .collect(),
        )
    }

    /// Zipfian draws are almost never contiguous, so the write traffic is
    /// fully random for the WAF abstraction (streams without writes report
    /// `0.0`, matching the estimator's convention).
    fn random_write_fraction(&self) -> f64 {
        if self.read_fraction >= 1.0 {
            0.0
        } else {
            1.0
        }
    }
}

/// A bursty on/off workload: commands arrive in dense bursts separated by
/// idle gaps, so the device's queues repeatedly fill, drain and refill —
/// the arrival shape that separates tail latency from mean latency.
///
/// Addressing is uniformly random over the footprint; within a burst
/// commands arrive `inter_arrival` apart, and at each burst boundary the
/// gap before the next command is `idle_gap` **instead of** `inter_arrival`
/// (the off period replaces the in-burst spacing, it is not added on top).
///
/// # Determinism
///
/// Same parameters and seed → identical stream (see the
/// [module contract](self#determinism)); the issue timestamps are part of
/// the stream.
///
/// # Example
///
/// ```
/// use ssdx_hostif::{BurstyWorkload, CommandSource};
/// use ssdx_sim::SimTime;
///
/// let bursty = BurstyWorkload::new(7)
///     .command_count(64)
///     .burst(16, SimTime::from_us(1), SimTime::from_ms(2));
/// let commands = bursty.commands();
/// assert_eq!(commands.len(), 64);
/// // Command 16 opens the second burst: 15 in-burst gaps, then the idle
/// // gap replaces the 16th inter-arrival gap.
/// let expected = SimTime::from_us(15) + SimTime::from_ms(2);
/// assert_eq!(commands[16].issue_at, expected);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BurstyWorkload {
    seed: u64,
    command_count: u64,
    block_size: u32,
    footprint_bytes: u64,
    read_fraction: f64,
    burst_len: u64,
    inter_arrival: SimTime,
    idle_gap: SimTime,
    label: Option<String>,
}

impl BurstyWorkload {
    /// Creates a bursty workload with the given RNG seed. Defaults: 4 096
    /// commands, 4 KB blocks, 1 GiB footprint, 50 % reads, bursts of 32
    /// commands arriving 2 µs apart with 1 ms idle gaps.
    pub fn new(seed: u64) -> Self {
        BurstyWorkload {
            seed,
            command_count: 4096,
            block_size: 4096,
            footprint_bytes: 1 << 30,
            read_fraction: 0.5,
            burst_len: 32,
            inter_arrival: SimTime::from_us(2),
            idle_gap: SimTime::from_ms(1),
            label: None,
        }
    }

    /// Overrides the report label (default `bursty`), so several burst
    /// shapes of the same generator stay distinguishable as points of a
    /// `workload` sweep axis.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Sets the number of commands to generate.
    pub fn command_count(mut self, count: u64) -> Self {
        self.command_count = count;
        self
    }

    /// Sets the per-command payload size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn block_size(mut self, bytes: u32) -> Self {
        assert!(bytes > 0, "block size must be non-zero");
        self.block_size = bytes;
        self
    }

    /// Sets the logical footprint in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is smaller than one block.
    pub fn footprint_bytes(mut self, bytes: u64) -> Self {
        assert!(
            bytes >= self.block_size as u64,
            "footprint must hold at least one block"
        );
        self.footprint_bytes = bytes;
        self
    }

    /// Sets the fraction of commands that are reads (clamped to `[0, 1]`).
    pub fn read_fraction(mut self, fraction: f64) -> Self {
        self.read_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the burst shape: `len` commands arriving `inter_arrival` apart;
    /// the gap before each new burst is `idle_gap`, which replaces (is not
    /// added to) the in-burst spacing.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn burst(mut self, len: u64, inter_arrival: SimTime, idle_gap: SimTime) -> Self {
        assert!(len > 0, "burst length must be non-zero");
        self.burst_len = len;
        self.inter_arrival = inter_arrival;
        self.idle_gap = idle_gap;
        self
    }
}

impl CommandSource for BurstyWorkload {
    fn label(&self) -> String {
        self.label.clone().unwrap_or_else(|| "bursty".to_string())
    }

    fn commands(&self) -> Cow<'_, [HostCommand]> {
        let blocks = checked_blocks(self.footprint_bytes, self.block_size);
        let mut rng = SimRng::new(self.seed);
        let mut at = SimTime::ZERO;
        Cow::Owned(
            (0..self.command_count)
                .map(|i| {
                    if i > 0 {
                        at += if i % self.burst_len == 0 {
                            self.idle_gap
                        } else {
                            self.inter_arrival
                        };
                    }
                    let block = rng.uniform_u64(0, blocks - 1);
                    let op = mixed_op(&mut rng, self.read_fraction);
                    HostCommand {
                        id: i,
                        op,
                        offset: block * self.block_size as u64,
                        bytes: self.block_size,
                        issue_at: at,
                    }
                })
                .collect(),
        )
    }

    /// Uniformly random addressing: write traffic is fully random (`0.0`
    /// when the mix has no writes, matching the estimator's convention).
    fn random_write_fraction(&self) -> f64 {
        if self.read_fraction >= 1.0 {
            0.0
        } else {
            1.0
        }
    }
}

/// A workload whose per-command block size is drawn from a weighted
/// distribution — small metadata updates interleaved with large streaming
/// transfers, the size mix real filesystems emit.
///
/// Offsets are uniformly random over the footprint, aligned to the largest
/// size in the mix so no command crosses the footprint end.
///
/// # Determinism
///
/// Same parameters and seed → identical stream (see the
/// [module contract](self#determinism)).
///
/// # Example
///
/// ```
/// use ssdx_hostif::{CommandSource, MixedSizeWorkload};
///
/// // 4 KB three times as likely as 64 KB.
/// let mixed = MixedSizeWorkload::new([(4096, 3), (64 << 10, 1)], 11)
///     .command_count(400)
///     .read_fraction(0.0); // write-only
/// let commands = mixed.commands();
/// let small = commands.iter().filter(|c| c.bytes == 4096).count();
/// let large = commands.iter().filter(|c| c.bytes == 64 << 10).count();
/// assert_eq!(small + large, 400);
/// assert!(small > 2 * large, "small {small} vs large {large}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MixedSizeWorkload {
    sizes: Vec<(u32, u32)>,
    seed: u64,
    command_count: u64,
    footprint_bytes: u64,
    read_fraction: f64,
    label: Option<String>,
}

impl MixedSizeWorkload {
    /// Creates a mixed-size workload drawing each command's payload from
    /// `sizes`, a list of `(bytes, weight)` pairs. Defaults: 4 096
    /// commands, 1 GiB footprint, 50 % reads.
    ///
    /// # Panics
    ///
    /// Panics if `sizes` is empty, any size is zero, or every weight is
    /// zero.
    pub fn new(sizes: impl IntoIterator<Item = (u32, u32)>, seed: u64) -> Self {
        let sizes: Vec<(u32, u32)> = sizes.into_iter().collect();
        assert!(
            !sizes.is_empty(),
            "the size mix must hold at least one size"
        );
        assert!(
            sizes.iter().all(|&(bytes, _)| bytes > 0),
            "block sizes must be non-zero"
        );
        assert!(
            sizes.iter().any(|&(_, weight)| weight > 0),
            "at least one size needs a non-zero weight"
        );
        // Zero-weight entries can never be drawn; dropping them here keeps
        // them from coarsening the offset alignment (and the footprint
        // requirement), which follows the *largest* retained size.
        let sizes: Vec<(u32, u32)> = sizes.into_iter().filter(|&(_, w)| w > 0).collect();
        MixedSizeWorkload {
            sizes,
            seed,
            command_count: 4096,
            footprint_bytes: 1 << 30,
            read_fraction: 0.5,
            label: None,
        }
    }

    /// Overrides the report label (default `mixed`), so several size mixes
    /// of the same generator stay distinguishable as points of a
    /// `workload` sweep axis.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Sets the number of commands to generate.
    pub fn command_count(mut self, count: u64) -> Self {
        self.command_count = count;
        self
    }

    /// Sets the logical footprint in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` cannot hold the largest size in the mix.
    pub fn footprint_bytes(mut self, bytes: u64) -> Self {
        let largest = self.largest_size() as u64;
        assert!(
            bytes >= largest,
            "footprint must hold the largest block size ({largest} B)"
        );
        self.footprint_bytes = bytes;
        self
    }

    /// Sets the fraction of commands that are reads (clamped to `[0, 1]`).
    pub fn read_fraction(mut self, fraction: f64) -> Self {
        self.read_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    fn largest_size(&self) -> u32 {
        self.sizes
            .iter()
            .map(|&(bytes, _)| bytes)
            .max()
            .expect("the size mix is non-empty")
    }
}

impl CommandSource for MixedSizeWorkload {
    fn label(&self) -> String {
        self.label.clone().unwrap_or_else(|| "mixed".to_string())
    }

    fn commands(&self) -> Cow<'_, [HostCommand]> {
        let total_weight: u64 = self.sizes.iter().map(|&(_, w)| w as u64).sum();
        // Align offsets to the largest size so every command fits inside
        // the footprint regardless of its drawn size.
        let slots = checked_blocks(self.footprint_bytes, self.largest_size());
        let align = self.largest_size() as u64;
        let mut rng = SimRng::new(self.seed);
        Cow::Owned(
            (0..self.command_count)
                .map(|i| {
                    let mut pick = rng.uniform_u64(0, total_weight - 1);
                    let mut bytes = self.largest_size();
                    for &(size, weight) in &self.sizes {
                        if pick < weight as u64 {
                            bytes = size;
                            break;
                        }
                        pick -= weight as u64;
                    }
                    let slot = rng.uniform_u64(0, slots - 1);
                    let op = mixed_op(&mut rng, self.read_fraction);
                    HostCommand {
                        id: i,
                        op,
                        offset: slot * align,
                        bytes,
                        issue_at: SimTime::ZERO,
                    }
                })
                .collect(),
        )
    }

    /// Uniformly random addressing: write traffic is fully random (`0.0`
    /// when the mix has no writes, matching the estimator's convention).
    fn random_write_fraction(&self) -> f64 {
        if self.read_fraction >= 1.0 {
            0.0
        } else {
            1.0
        }
    }
}

/// A read-modify-write workload: every logical update reads a block and
/// then writes it back to the same offset — the database-page and
/// erasure-coded-stripe update pattern, which couples read tail latency
/// into write completion.
///
/// Each update targets a uniformly random block; the stream interleaves
/// `read(b0), write(b0), read(b1), write(b1), …`.
///
/// # Determinism
///
/// Same parameters and seed → identical stream (see the
/// [module contract](self#determinism)).
///
/// # Example
///
/// ```
/// use ssdx_hostif::{CommandSource, HostOp, RmwWorkload};
///
/// let rmw = RmwWorkload::new(3).updates(100);
/// let commands = rmw.commands();
/// assert_eq!(commands.len(), 200, "one read + one write per update");
/// for pair in commands.chunks(2) {
///     assert_eq!(pair[0].op, HostOp::Read);
///     assert_eq!(pair[1].op, HostOp::Write);
///     assert_eq!(pair[0].offset, pair[1].offset, "write-back hits the read offset");
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RmwWorkload {
    seed: u64,
    updates: u64,
    block_size: u32,
    footprint_bytes: u64,
    label: Option<String>,
}

impl RmwWorkload {
    /// Creates a read-modify-write workload with the given RNG seed.
    /// Defaults: 2 048 updates (4 096 commands), 4 KB blocks, 1 GiB
    /// footprint.
    pub fn new(seed: u64) -> Self {
        RmwWorkload {
            seed,
            updates: 2048,
            block_size: 4096,
            footprint_bytes: 1 << 30,
            label: None,
        }
    }

    /// Overrides the report label (default `rmw`), so several parameter
    /// choices of the same generator stay distinguishable as points of a
    /// `workload` sweep axis.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Sets the number of read+write update pairs to generate.
    pub fn updates(mut self, updates: u64) -> Self {
        self.updates = updates;
        self
    }

    /// Sets the per-command payload size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn block_size(mut self, bytes: u32) -> Self {
        assert!(bytes > 0, "block size must be non-zero");
        self.block_size = bytes;
        self
    }

    /// Sets the logical footprint in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is smaller than one block.
    pub fn footprint_bytes(mut self, bytes: u64) -> Self {
        assert!(
            bytes >= self.block_size as u64,
            "footprint must hold at least one block"
        );
        self.footprint_bytes = bytes;
        self
    }
}

impl CommandSource for RmwWorkload {
    fn label(&self) -> String {
        self.label.clone().unwrap_or_else(|| "rmw".to_string())
    }

    fn commands(&self) -> Cow<'_, [HostCommand]> {
        let blocks = checked_blocks(self.footprint_bytes, self.block_size);
        let mut rng = SimRng::new(self.seed);
        let mut commands = Vec::with_capacity((self.updates * 2) as usize);
        for u in 0..self.updates {
            let offset = rng.uniform_u64(0, blocks - 1) * self.block_size as u64;
            for (slot, op) in [HostOp::Read, HostOp::Write].into_iter().enumerate() {
                commands.push(HostCommand {
                    id: u * 2 + slot as u64,
                    op,
                    offset,
                    bytes: self.block_size,
                    issue_at: SimTime::ZERO,
                });
            }
        }
        Cow::Owned(commands)
    }

    /// Updates land on uniformly random blocks, so the write-back traffic
    /// is fully random.
    fn random_write_fraction(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            1.0
        }
    }
}

/// The canonical probe workload for degraded-device campaigns: a read-heavy
/// (85 %) zipfian stream over a small, hot footprint.
///
/// Read-dominance makes the stream maximally sensitive to the fault axes a
/// campaign sweeps — repeated reads of the hot set accumulate read-disturb,
/// and every read pays the adaptive ECC's error-dependent decode latency —
/// while the write minority still drives garbage collection, so block
/// retirement and mid-GC power loss stay observable. The small footprint
/// keeps mapping tables (and therefore recovery replay) cheap enough for
/// wide sweeps.
///
/// Like every generative source, the stream is a pure function of `seed`.
pub fn degraded_probe(seed: u64) -> ZipfianWorkload {
    ZipfianWorkload::new(0.99, seed)
        .read_fraction(0.85)
        .footprint_bytes(64 << 20)
        .command_count(2_048)
        .with_label("degraded-probe")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipfian_is_deterministic_and_skewed() {
        let make = || {
            ZipfianWorkload::new(0.99, 99)
                .command_count(2_000)
                .footprint_bytes(64 << 20)
                .read_fraction(0.0)
        };
        let a = make().commands().into_owned();
        let b = make().commands().into_owned();
        assert_eq!(a, b, "same parameters must materialise the same stream");

        // Skew: the most popular block takes far more than the uniform
        // share (2 000 / 16 384 blocks ≈ 0.12 expected per block).
        let mut counts = std::collections::BTreeMap::new();
        for c in &a {
            *counts.entry(c.offset).or_insert(0u32) += 1;
        }
        let hottest = counts.values().copied().max().unwrap();
        assert!(hottest > 100, "hottest block hit {hottest} times");
        // All offsets stay aligned and inside the footprint.
        for c in &a {
            assert_eq!(c.offset % 4096, 0);
            assert!(c.offset + c.bytes as u64 <= 64 << 20);
            assert_eq!(c.op, HostOp::Write);
        }
    }

    #[test]
    fn zipfian_seeds_and_skews_diverge() {
        let base = ZipfianWorkload::new(0.99, 1).command_count(256);
        let reseeded = ZipfianWorkload::new(0.99, 2).command_count(256);
        assert_ne!(
            base.commands().into_owned(),
            reseeded.commands().into_owned()
        );
        let flatter = ZipfianWorkload::new(0.50, 1).command_count(256);
        assert_ne!(
            base.commands().into_owned(),
            flatter.commands().into_owned()
        );
        assert_eq!(base.label(), "zipf-0.99");
        assert_eq!(flatter.label(), "zipf-0.50");
    }

    #[test]
    #[should_panic(expected = "zipfian skew")]
    fn zipfian_rejects_theta_one() {
        let _ = ZipfianWorkload::new(1.0, 0);
    }

    #[test]
    fn bursty_timestamps_follow_the_on_off_shape() {
        let w = BurstyWorkload::new(5).command_count(70).burst(
            32,
            SimTime::from_us(2),
            SimTime::from_ms(1),
        );
        let commands = w.commands();
        assert_eq!(commands.len(), 70);
        // In-burst spacing.
        assert_eq!(
            commands[1].issue_at - commands[0].issue_at,
            SimTime::from_us(2)
        );
        // Burst boundary inserts the idle gap.
        assert_eq!(
            commands[32].issue_at - commands[31].issue_at,
            SimTime::from_ms(1)
        );
        // Timestamps never run backwards.
        for pair in commands.windows(2) {
            assert!(pair[1].issue_at >= pair[0].issue_at);
        }
        assert_eq!(w.label(), "bursty");
        // Determinism.
        assert_eq!(
            commands.into_owned(),
            BurstyWorkload::new(5)
                .command_count(70)
                .burst(32, SimTime::from_us(2), SimTime::from_ms(1))
                .commands()
                .into_owned()
        );
    }

    #[test]
    fn mixed_sizes_respect_weights_and_footprint() {
        let w = MixedSizeWorkload::new([(4096, 9), (128 << 10, 1)], 8)
            .command_count(3_000)
            .footprint_bytes(32 << 20);
        let commands = w.commands();
        let small = commands.iter().filter(|c| c.bytes == 4096).count();
        let large = commands.iter().filter(|c| c.bytes == 128 << 10).count();
        assert_eq!(small + large, 3_000);
        // 9:1 weighting with generous slack.
        assert!(small > 2_400, "small {small}");
        assert!(large > 100, "large {large}");
        for c in commands.iter() {
            assert!(c.offset + c.bytes as u64 <= 32 << 20);
            assert_eq!(c.offset % (128 << 10), 0, "aligned to the largest size");
        }
        assert_eq!(w.label(), "mixed");
    }

    #[test]
    fn zero_weight_sizes_are_dropped_from_the_mix() {
        // A weight-0 entry can never be drawn, so it must not coarsen the
        // offset alignment or the footprint requirement: the stream is
        // identical to the mix without the dead entry.
        let with_dead = MixedSizeWorkload::new([(4096, 1), (1 << 20, 0)], 2)
            .command_count(100)
            .footprint_bytes(64 << 10);
        let without = MixedSizeWorkload::new([(4096, 1)], 2)
            .command_count(100)
            .footprint_bytes(64 << 10);
        assert_eq!(with_dead.commands(), without.commands());
        for c in with_dead.commands().iter() {
            assert_eq!(c.bytes, 4096);
            assert_eq!(c.offset % 4096, 0, "aligned to the largest live size");
        }
    }

    #[test]
    #[should_panic(expected = "size mix")]
    fn mixed_rejects_an_empty_mix() {
        let _ = MixedSizeWorkload::new(std::iter::empty(), 0);
    }

    #[test]
    fn rmw_pairs_reads_with_write_backs() {
        let w = RmwWorkload::new(13).updates(500).footprint_bytes(16 << 20);
        let commands = w.commands();
        assert_eq!(commands.len(), 1_000);
        for (i, pair) in commands.chunks(2).enumerate() {
            assert_eq!(pair[0].id, 2 * i as u64);
            assert_eq!(pair[1].id, 2 * i as u64 + 1);
            assert_eq!(pair[0].op, HostOp::Read);
            assert_eq!(pair[1].op, HostOp::Write);
            assert_eq!(pair[0].offset, pair[1].offset);
        }
        assert_eq!(w.random_write_fraction(), 1.0);
        assert_eq!(RmwWorkload::new(13).updates(0).random_write_fraction(), 0.0);
    }

    #[test]
    fn read_only_mixes_report_no_write_randomness() {
        assert_eq!(
            ZipfianWorkload::new(0.9, 0)
                .read_fraction(1.0)
                .random_write_fraction(),
            0.0
        );
        assert_eq!(
            BurstyWorkload::new(0)
                .read_fraction(2.0)
                .random_write_fraction(),
            0.0,
            "fractions clamp to [0, 1]"
        );
        assert_eq!(
            MixedSizeWorkload::new([(4096, 1)], 0)
                .read_fraction(0.5)
                .random_write_fraction(),
            1.0
        );
    }

    #[test]
    fn label_overrides_keep_parameter_sweeps_distinguishable() {
        // Without an override the three fixed-label generators would all
        // report the same workload coordinate; with_label disambiguates.
        let short = BurstyWorkload::new(1)
            .burst(16, SimTime::from_us(1), SimTime::from_ms(1))
            .with_label("bursty-16");
        let long = BurstyWorkload::new(1)
            .burst(256, SimTime::from_us(1), SimTime::from_ms(1))
            .with_label("bursty-256");
        assert_eq!(short.label(), "bursty-16");
        assert_eq!(long.label(), "bursty-256");
        assert_eq!(
            MixedSizeWorkload::new([(4096, 1)], 0)
                .with_label("mixed-4k")
                .label(),
            "mixed-4k"
        );
        assert_eq!(RmwWorkload::new(0).with_label("rmw-8k").label(), "rmw-8k");
        assert_eq!(
            ZipfianWorkload::new(0.9, 0).with_label("hotset").label(),
            "hotset"
        );
    }

    #[test]
    fn zeta_cache_tracks_parameter_changes() {
        // The cached zeta must follow footprint/block-size changes, or the
        // skew would silently be computed for the wrong block count.
        let narrow = ZipfianWorkload::new(0.99, 3)
            .command_count(512)
            .footprint_bytes(1 << 20);
        let wide = ZipfianWorkload::new(0.99, 3)
            .command_count(512)
            .footprint_bytes(64 << 20);
        assert_ne!(narrow.commands().into_owned(), wide.commands().into_owned());
        // Rebuilding with the same parameters reproduces the same stream
        // (cache is a pure function of the parameters).
        let again = ZipfianWorkload::new(0.99, 3)
            .command_count(512)
            .footprint_bytes(1 << 20);
        assert_eq!(narrow.commands(), again.commands());
        assert_eq!(narrow, again);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn materialisation_rejects_setter_orders_that_break_the_footprint() {
        // footprint_bytes was checked against the old 4 KB block size; the
        // later block_size call grows past it. The per-setter asserts
        // cannot see this — materialisation must.
        let w = ZipfianWorkload::new(0.9, 0)
            .footprint_bytes(8192)
            .block_size(64 << 10);
        let _ = w.commands();
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn materialisation_rejects_mixes_larger_than_the_default_footprint() {
        // 2 GiB blocks never fit the default 1 GiB footprint, and no setter
        // ran to catch it.
        let w = MixedSizeWorkload::new([(2 << 30, 1)], 0);
        let _ = w.commands();
    }

    #[test]
    fn degraded_probe_is_read_heavy_and_deterministic() {
        let probe = degraded_probe(7);
        assert_eq!(probe.commands(), degraded_probe(7).commands());
        assert_eq!(probe.label(), "degraded-probe");
        let commands = probe.commands();
        assert_eq!(commands.len(), 2_048);
        let reads = commands.iter().filter(|c| c.op == HostOp::Read).count();
        let fraction = reads as f64 / commands.len() as f64;
        assert!((0.80..0.90).contains(&fraction), "read fraction {fraction}");
    }

    #[test]
    fn generative_sources_are_thread_safe() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ZipfianWorkload>();
        assert_send_sync::<BurstyWorkload>();
        assert_send_sync::<MixedSizeWorkload>();
        assert_send_sync::<RmwWorkload>();
    }
}
