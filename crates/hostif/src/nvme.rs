//! PCI Express / NVM Express host interface model.

use crate::interface::{HostInterface, HostInterfaceKind};
use serde::{Deserialize, Serialize};
use ssdx_sim::SimTime;

/// PCI Express generations supported by the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PcieGen {
    /// Gen 1: 2.5 GT/s per lane, 8b/10b encoding.
    Gen1,
    /// Gen 2: 5.0 GT/s per lane, 8b/10b encoding.
    Gen2,
    /// Gen 3: 8.0 GT/s per lane, 128b/130b encoding.
    Gen3,
}

impl PcieGen {
    /// Raw line rate of one lane in transfers per second.
    pub fn line_rate_per_lane(self) -> u64 {
        match self {
            PcieGen::Gen1 => 2_500_000_000,
            PcieGen::Gen2 => 5_000_000_000,
            PcieGen::Gen3 => 8_000_000_000,
        }
    }

    /// Encoding efficiency (payload bits per line bit).
    pub fn encoding_efficiency(self) -> f64 {
        match self {
            PcieGen::Gen1 | PcieGen::Gen2 => 0.8,
            PcieGen::Gen3 => 128.0 / 130.0,
        }
    }
}

/// An NVMe controller attached through a PCI Express link.
///
/// NVMe reduces per-command packetization latency dramatically compared to
/// SATA (doorbell write + DMA of a 64-byte submission entry instead of FIS
/// exchanges) and supports up to 64 K entries per queue, which is what lets
/// highly parallel SSD configurations expose their internal bandwidth even
/// without a DRAM write cache (the paper's Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NvmeInterface {
    /// PCIe generation of the link.
    pub gen: PcieGen,
    /// Number of lanes (x1, x4, x8, x16).
    pub lanes: u32,
    /// Fraction of raw link bandwidth available to payload after TLP
    /// headers and flow control (0–1).
    pub protocol_efficiency: f64,
    /// Fixed per-command overhead (doorbell, submission/completion entry
    /// DMA, interrupt), nanoseconds.
    pub command_overhead_ns: u64,
    /// Submission queue depth (NVMe allows up to 65 536).
    pub queue_depth: u32,
}

impl NvmeInterface {
    /// The PCIe Gen2 x8 + NVMe configuration explored in the paper's Fig. 4.
    pub fn gen2_x8() -> Self {
        NvmeInterface {
            gen: PcieGen::Gen2,
            lanes: 8,
            protocol_efficiency: 0.85,
            command_overhead_ns: 1_200,
            queue_depth: 65_536,
        }
    }

    /// A Gen3 x4 link, typical of early enterprise NVMe drives.
    pub fn gen3_x4() -> Self {
        NvmeInterface {
            gen: PcieGen::Gen3,
            lanes: 4,
            protocol_efficiency: 0.85,
            command_overhead_ns: 1_000,
            queue_depth: 65_536,
        }
    }

    /// A custom link configuration.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    pub fn new(gen: PcieGen, lanes: u32) -> Self {
        assert!(lanes > 0, "a PCIe link needs at least one lane");
        NvmeInterface {
            gen,
            lanes,
            ..Self::gen2_x8()
        }
    }

    /// Restricts the submission queue depth (clamped to 1..=65 536).
    pub fn with_queue_depth(mut self, depth: u32) -> Self {
        self.queue_depth = depth.clamp(1, 65_536);
        self
    }
}

impl Default for NvmeInterface {
    fn default() -> Self {
        Self::gen2_x8()
    }
}

impl HostInterface for NvmeInterface {
    fn kind(&self) -> HostInterfaceKind {
        HostInterfaceKind::NvmePcie
    }

    fn ideal_bandwidth(&self) -> u64 {
        let raw_bits = self.gen.line_rate_per_lane() as f64 * self.lanes as f64;
        let payload_bits = raw_bits * self.gen.encoding_efficiency() * self.protocol_efficiency;
        (payload_bits / 8.0) as u64
    }

    fn queue_depth(&self) -> u32 {
        self.queue_depth
    }

    fn command_overhead(&self) -> SimTime {
        SimTime::from_ns(self.command_overhead_ns)
    }

    fn data_transfer_time(&self, bytes: u32) -> SimTime {
        ssdx_sim::time::transfer_time(bytes as u64, self.ideal_bandwidth())
    }

    fn name(&self) -> String {
        let gen = match self.gen {
            PcieGen::Gen1 => 1,
            PcieGen::Gen2 => 2,
            PcieGen::Gen3 => 3,
        };
        format!("PCIe Gen{} x{} + NVMe", gen, self.lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sata::SataInterface;

    #[test]
    fn gen2_x8_bandwidth_is_multiple_gigabytes() {
        let n = NvmeInterface::gen2_x8();
        let bw = n.ideal_bandwidth();
        // 5 GT/s * 8 lanes * 0.8 * 0.85 / 8 = 3.4 GB/s.
        assert!((3_000_000_000..3_800_000_000).contains(&bw), "bw = {bw}");
    }

    #[test]
    fn nvme_outruns_sata_by_an_order_of_magnitude() {
        let n = NvmeInterface::gen2_x8();
        let s = SataInterface::sata2();
        assert!(n.ideal_bandwidth() > 10 * s.ideal_bandwidth());
        assert!(n.command_overhead() < s.command_overhead());
        assert!(n.queue_depth() > 1000 * s.queue_depth());
    }

    #[test]
    fn lane_count_scales_bandwidth_linearly() {
        let x1 = NvmeInterface::new(PcieGen::Gen2, 1).ideal_bandwidth();
        let x8 = NvmeInterface::new(PcieGen::Gen2, 8).ideal_bandwidth();
        assert!((x8 as f64 / x1 as f64 - 8.0).abs() < 0.01);
    }

    #[test]
    fn gen3_uses_more_efficient_encoding() {
        assert!(PcieGen::Gen3.encoding_efficiency() > PcieGen::Gen2.encoding_efficiency());
        let g2 = NvmeInterface::new(PcieGen::Gen2, 4).ideal_bandwidth();
        let g3 = NvmeInterface::new(PcieGen::Gen3, 4).ideal_bandwidth();
        assert!(g3 > g2);
    }

    #[test]
    fn queue_depth_clamping() {
        assert_eq!(NvmeInterface::gen2_x8().queue_depth(), 65_536);
        assert_eq!(
            NvmeInterface::gen2_x8().with_queue_depth(0).queue_depth(),
            1
        );
        assert_eq!(
            NvmeInterface::gen2_x8()
                .with_queue_depth(1_000_000)
                .queue_depth(),
            65_536
        );
    }

    #[test]
    fn name_mentions_gen_and_lanes() {
        assert_eq!(NvmeInterface::gen2_x8().name(), "PCIe Gen2 x8 + NVMe");
        assert_eq!(NvmeInterface::gen3_x4().name(), "PCIe Gen3 x4 + NVMe");
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_rejected() {
        let _ = NvmeInterface::new(PcieGen::Gen2, 0);
    }
}
