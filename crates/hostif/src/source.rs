//! Pluggable command sources: the single entry point the platform consumes.
//!
//! Everything the simulated SSD executes — synthetic workloads, parsed
//! traces, hand-built command lists, closure generators — implements one
//! trait, [`CommandSource`]. The platform asks a source for three things:
//! a label for reports, the materialised command stream, and an estimate of
//! how random its write traffic is (which drives the WAF-based FTL
//! abstraction). New drivers and sweep engines therefore compose with any
//! source without knowing its concrete type.
//!
//! # Example
//!
//! ```
//! use ssdx_hostif::{source_fn, CommandSource, HostCommand, HostOp};
//! use ssdx_sim::SimTime;
//!
//! // A closure-backed source: 64 interleaved 4 KB writes.
//! let source = source_fn("interleaved", 64, |i| HostCommand {
//!     id: i,
//!     op: HostOp::Write,
//!     offset: (i % 2) * (1 << 20) + (i / 2) * 4096,
//!     bytes: 4096,
//!     issue_at: SimTime::ZERO,
//! });
//! assert_eq!(source.commands().len(), 64);
//! assert!(source.random_write_fraction() > 0.9, "alternating streams look random");
//! ```

use crate::command::{HostCommand, HostOp};
use crate::trace::TracePlayer;
use crate::workload::Workload;
use std::borrow::Cow;

/// Estimates how random a write stream is: the fraction of write→write
/// transitions whose offset is not contiguous with the end of the previous
/// write.
///
/// The first write of the stream only establishes the baseline — it is
/// counted in neither the numerator nor the denominator, so the denominator
/// is exactly `writes - 1` (the number of transitions). Streams with fewer
/// than two writes have no transitions and report `0.0`. The result is in
/// `[0, 1]` and feeds the WAF abstraction's workload mix.
pub fn estimate_random_write_fraction(commands: &[HostCommand]) -> f64 {
    let mut transitions = 0u64;
    let mut non_contiguous = 0u64;
    let mut expected_next: Option<u64> = None;
    for c in commands.iter().filter(|c| c.op == HostOp::Write) {
        if let Some(next) = expected_next {
            transitions += 1;
            if c.offset != next {
                non_contiguous += 1;
            }
        }
        expected_next = Some(c.offset + c.bytes as u64);
    }
    if transitions == 0 {
        0.0
    } else {
        non_contiguous as f64 / transitions as f64
    }
}

/// A source of host commands, the generic input of the simulation platform.
///
/// Implemented by [`Workload`] (synthetic generators), [`TracePlayer`]
/// (trace replay), [`CommandStream`] (explicit command lists) and
/// [`FnSource`] (closure generators); users can implement it for their own
/// drivers. The trait is object safe, so heterogeneous collections of
/// sources (`Vec<Box<dyn CommandSource>>`) work too.
///
/// # Thread safety
///
/// The trait deliberately does not require `Send`/`Sync`: a single-threaded
/// driver may wrap a `RefCell` or an open file handle. Parallel sweep
/// executors instead take `S: CommandSource + Sync` at the call site,
/// because one source is shared **by reference** across worker threads and
/// materialised once per sweep point. All sources shipped here are
/// `Send + Sync` plain data (closure generators are as thread-safe as the
/// closure they wrap), which the test suite pins at compile time; a
/// stateful source that cannot be `Sync` can always pre-materialise into a
/// [`CommandStream`].
pub trait CommandSource {
    /// Short label used in performance reports (e.g. "SW", "trace").
    fn label(&self) -> String;

    /// Materialises the command stream, in issue order.
    ///
    /// Sources that already own a command list return it borrowed;
    /// generators build it on demand. Callers should materialise once per
    /// run and reuse the result.
    fn commands(&self) -> Cow<'_, [HostCommand]>;

    /// Estimated randomness of the write traffic, `0.0` (sequential) to
    /// `1.0` (uniform random), which drives the WAF-based FTL abstraction.
    ///
    /// The default estimates it from the materialised stream via
    /// [`estimate_random_write_fraction`]; sources that know their own
    /// statistics (like [`Workload`]) override it.
    fn random_write_fraction(&self) -> f64 {
        estimate_random_write_fraction(&self.commands())
    }
}

impl<S: CommandSource + ?Sized> CommandSource for &S {
    fn label(&self) -> String {
        (**self).label()
    }

    fn commands(&self) -> Cow<'_, [HostCommand]> {
        (**self).commands()
    }

    fn random_write_fraction(&self) -> f64 {
        (**self).random_write_fraction()
    }
}

impl CommandSource for Workload {
    fn label(&self) -> String {
        self.pattern.label().to_string()
    }

    fn commands(&self) -> Cow<'_, [HostCommand]> {
        Cow::Owned(Workload::commands(self))
    }

    /// Synthetic workloads know their own statistics: the random patterns
    /// are uniformly random (`1.0`), the sequential ones perfectly
    /// contiguous (`0.0`). Read-only random patterns also report `1.0`, as
    /// the paper's experiments treat pattern randomness — not just write
    /// randomness — as the FTL-state proxy.
    fn random_write_fraction(&self) -> f64 {
        if self.pattern.is_random() {
            1.0
        } else {
            0.0
        }
    }
}

impl CommandSource for TracePlayer {
    fn label(&self) -> String {
        "trace".to_string()
    }

    fn commands(&self) -> Cow<'_, [HostCommand]> {
        Cow::Borrowed(TracePlayer::commands(self))
    }
}

/// An explicit command list with a label, usable anywhere a
/// [`CommandSource`] is expected.
///
/// The write-randomness estimate defaults to
/// [`estimate_random_write_fraction`] over the stream and can be pinned with
/// [`with_random_write_fraction`](Self::with_random_write_fraction) when the
/// caller knows better.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandStream {
    label: String,
    commands: Vec<HostCommand>,
    random_write_fraction: Option<f64>,
}

impl CommandStream {
    /// Wraps a command list under the given report label.
    pub fn new(label: impl Into<String>, commands: Vec<HostCommand>) -> Self {
        CommandStream {
            label: label.into(),
            commands,
            random_write_fraction: None,
        }
    }

    /// Pins the write-randomness estimate instead of deriving it from the
    /// stream (clamped to `[0, 1]`).
    pub fn with_random_write_fraction(mut self, fraction: f64) -> Self {
        self.random_write_fraction = Some(fraction.clamp(0.0, 1.0));
        self
    }

    /// Number of commands in the stream.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// `true` if the stream holds no commands.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }
}

impl CommandSource for CommandStream {
    fn label(&self) -> String {
        self.label.clone()
    }

    fn commands(&self) -> Cow<'_, [HostCommand]> {
        Cow::Borrowed(&self.commands)
    }

    fn random_write_fraction(&self) -> f64 {
        self.random_write_fraction
            .unwrap_or_else(|| estimate_random_write_fraction(&self.commands))
    }
}

impl FromIterator<HostCommand> for CommandStream {
    fn from_iter<I: IntoIterator<Item = HostCommand>>(iter: I) -> Self {
        CommandStream::new("stream", iter.into_iter().collect())
    }
}

/// A closure-backed command source: the generator is invoked once per
/// command index each time the stream is materialised. Build one with
/// [`source_fn`].
///
/// Unless a write-randomness estimate is pinned with
/// [`with_random_write_fraction`](Self::with_random_write_fraction), the
/// default [`CommandSource::random_write_fraction`] materialises the stream
/// a second time to estimate it.
#[derive(Debug, Clone)]
pub struct FnSource<F> {
    label: String,
    count: u64,
    generate: F,
    random_write_fraction: Option<f64>,
}

impl<F> FnSource<F>
where
    F: Fn(u64) -> HostCommand,
{
    /// Creates a source that generates `count` commands by calling
    /// `generate(0..count)`.
    pub fn new(label: impl Into<String>, count: u64, generate: F) -> Self {
        FnSource {
            label: label.into(),
            count,
            generate,
            random_write_fraction: None,
        }
    }

    /// Pins the write-randomness estimate (clamped to `[0, 1]`), which also
    /// spares the extra stream materialisation the default estimator needs.
    pub fn with_random_write_fraction(mut self, fraction: f64) -> Self {
        self.random_write_fraction = Some(fraction.clamp(0.0, 1.0));
        self
    }
}

impl<F> CommandSource for FnSource<F>
where
    F: Fn(u64) -> HostCommand,
{
    fn label(&self) -> String {
        self.label.clone()
    }

    fn commands(&self) -> Cow<'_, [HostCommand]> {
        Cow::Owned((0..self.count).map(&self.generate).collect())
    }

    fn random_write_fraction(&self) -> f64 {
        self.random_write_fraction
            .unwrap_or_else(|| estimate_random_write_fraction(&self.commands()))
    }
}

/// Convenience constructor for [`FnSource`]: a command source backed by a
/// closure from command index to [`HostCommand`].
pub fn source_fn<F>(label: impl Into<String>, count: u64, generate: F) -> FnSource<F>
where
    F: Fn(u64) -> HostCommand,
{
    FnSource::new(label, count, generate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::AccessPattern;
    use ssdx_sim::SimTime;

    fn write(id: u64, offset: u64) -> HostCommand {
        HostCommand {
            id,
            op: HostOp::Write,
            offset,
            bytes: 4096,
            issue_at: SimTime::ZERO,
        }
    }

    #[test]
    fn estimator_reports_zero_for_sequential_streams() {
        let cmds: Vec<HostCommand> = (0..10).map(|i| write(i, i * 4096)).collect();
        assert_eq!(estimate_random_write_fraction(&cmds), 0.0);
    }

    #[test]
    fn estimator_reports_one_for_fully_scattered_streams() {
        let cmds: Vec<HostCommand> = (0..10).map(|i| write(i, i * (1 << 20))).collect();
        assert_eq!(estimate_random_write_fraction(&cmds), 1.0);
    }

    #[test]
    fn estimator_denominator_is_transitions_not_writes() {
        // Three writes, two transitions, one of them non-contiguous: the
        // fraction must be 1/2, not 1/3 (the first write only sets the
        // baseline).
        let cmds = vec![write(0, 0), write(1, 4096), write(2, 1 << 20)];
        assert_eq!(estimate_random_write_fraction(&cmds), 0.5);
    }

    #[test]
    fn estimator_handles_streams_without_transitions() {
        assert_eq!(estimate_random_write_fraction(&[]), 0.0);
        assert_eq!(estimate_random_write_fraction(&[write(0, 777)]), 0.0);
        // Reads never count.
        let read = HostCommand {
            id: 1,
            op: HostOp::Read,
            offset: 0,
            bytes: 4096,
            issue_at: SimTime::ZERO,
        };
        assert_eq!(estimate_random_write_fraction(&[read, read]), 0.0);
    }

    #[test]
    fn workload_source_matches_its_pattern() {
        let sw = Workload::builder(AccessPattern::SequentialWrite)
            .command_count(16)
            .build();
        assert_eq!(CommandSource::label(&sw), "SW");
        assert_eq!(sw.random_write_fraction(), 0.0);
        assert_eq!(CommandSource::commands(&sw).len(), 16);

        let rr = Workload::builder(AccessPattern::RandomRead)
            .command_count(4)
            .build();
        assert_eq!(rr.random_write_fraction(), 1.0);
    }

    #[test]
    fn trace_source_estimates_from_the_stream() {
        let trace = TracePlayer::parse("0 write 0 4096\n1 write 4096 4096\n").unwrap();
        assert_eq!(CommandSource::label(&trace), "trace");
        assert_eq!(trace.random_write_fraction(), 0.0);
        assert_eq!(CommandSource::commands(&trace).len(), 2);
    }

    #[test]
    fn command_stream_overrides_and_clamps_the_fraction() {
        let stream = CommandStream::new("mine", vec![write(0, 0), write(1, 4096)]);
        assert_eq!(stream.random_write_fraction(), 0.0);
        assert_eq!(stream.len(), 2);
        assert!(!stream.is_empty());
        let pinned = stream.with_random_write_fraction(7.0);
        assert_eq!(pinned.random_write_fraction(), 1.0);
        assert_eq!(pinned.label(), "mine");
    }

    #[test]
    fn fn_source_generates_on_demand() {
        let src = source_fn("gen", 8, |i| write(i, i * 8192));
        let cmds = src.commands();
        assert_eq!(cmds.len(), 8);
        assert_eq!(cmds[3].offset, 3 * 8192);
        // Every page is 8 KB apart, so no write is contiguous.
        assert_eq!(src.random_write_fraction(), 1.0);
    }

    #[test]
    fn fn_source_can_pin_its_fraction_and_skip_the_estimator() {
        use std::cell::Cell;
        let calls = Cell::new(0u32);
        let src = source_fn("gen", 4, |i| {
            calls.set(calls.get() + 1);
            write(i, i * 8192)
        })
        .with_random_write_fraction(2.0);
        assert_eq!(
            src.random_write_fraction(),
            1.0,
            "pinned values are clamped"
        );
        assert_eq!(
            calls.get(),
            0,
            "a pinned fraction must not materialise the stream"
        );
        let _ = src.commands();
        assert_eq!(calls.get(), 4);
    }

    #[test]
    fn references_and_boxes_are_sources_too() {
        let w = Workload::builder(AccessPattern::SequentialWrite)
            .command_count(4)
            .build();
        fn takes_source(s: impl CommandSource) -> usize {
            s.commands().len()
        }
        // A reference is a CommandSource too, so the workload survives the
        // call and can still be boxed afterwards.
        let by_ref: &Workload = &w;
        assert_eq!(takes_source(by_ref), 4);
        let boxed: Box<dyn CommandSource> = Box::new(w);
        assert_eq!(boxed.commands().len(), 4);
        assert_eq!(boxed.label(), "SW");
    }

    #[test]
    fn shipped_sources_are_thread_safe() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Workload>();
        assert_send_sync::<TracePlayer>();
        assert_send_sync::<CommandStream>();
        assert_send_sync::<HostCommand>();
        // Closure sources inherit the closure's thread safety.
        fn fn_source_is_send_sync<F: Fn(u64) -> HostCommand + Send + Sync>(
            s: FnSource<F>,
        ) -> impl Send + Sync {
            s
        }
        let _ = fn_source_is_send_sync(source_fn("t", 1, |i| write(i, 0)));
    }

    #[test]
    fn command_stream_collects_from_iterator() {
        let stream: CommandStream = (0..5).map(|i| write(i, i * 4096)).collect();
        assert_eq!(stream.len(), 5);
        assert_eq!(stream.label(), "stream");
    }
}
