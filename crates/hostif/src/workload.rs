//! Synthetic workload generation (IOZone-like sequential/random read/write).

use crate::command::{HostCommand, HostOp};
use serde::{Deserialize, Serialize};
use ssdx_sim::rng::SimRng;
use ssdx_sim::SimTime;

/// The four IOZone-style access patterns used throughout the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Sequential write (SW).
    SequentialWrite,
    /// Sequential read (SR).
    SequentialRead,
    /// Random write (RW).
    RandomWrite,
    /// Random read (RR).
    RandomRead,
}

impl AccessPattern {
    /// Host operation of this pattern.
    pub fn op(self) -> HostOp {
        match self {
            AccessPattern::SequentialWrite | AccessPattern::RandomWrite => HostOp::Write,
            AccessPattern::SequentialRead | AccessPattern::RandomRead => HostOp::Read,
        }
    }

    /// `true` for the random variants.
    pub fn is_random(self) -> bool {
        matches!(self, AccessPattern::RandomWrite | AccessPattern::RandomRead)
    }

    /// Short label used in reports ("SW", "SR", "RW", "RR").
    pub fn label(self) -> &'static str {
        match self {
            AccessPattern::SequentialWrite => "SW",
            AccessPattern::SequentialRead => "SR",
            AccessPattern::RandomWrite => "RW",
            AccessPattern::RandomRead => "RR",
        }
    }

    /// All four patterns in the order of the paper's Fig. 2.
    pub fn all() -> [AccessPattern; 4] {
        [
            AccessPattern::SequentialWrite,
            AccessPattern::SequentialRead,
            AccessPattern::RandomWrite,
            AccessPattern::RandomRead,
        ]
    }
}

/// A fully specified synthetic workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Workload {
    /// Access pattern.
    pub pattern: AccessPattern,
    /// Payload of every host command, bytes (the paper uses 4 KB).
    pub block_size: u32,
    /// Number of commands to generate.
    pub command_count: u64,
    /// Size of the logical address space touched, bytes.
    pub footprint_bytes: u64,
    /// RNG seed for the random variants.
    pub seed: u64,
}

impl Workload {
    /// Starts building a workload with the given pattern.
    pub fn builder(pattern: AccessPattern) -> WorkloadBuilder {
        WorkloadBuilder::new(pattern)
    }

    /// Generates the command stream.
    ///
    /// All commands are made available at time zero (closed-loop benchmark
    /// behaviour, like IOZone saturating the queue); the SSD's own queue
    /// depth decides how many are actually admitted at once.
    pub fn commands(&self) -> Vec<HostCommand> {
        let mut rng = SimRng::new(self.seed);
        let blocks_in_footprint = (self.footprint_bytes / self.block_size as u64).max(1);
        (0..self.command_count)
            .map(|i| {
                let block_index = if self.pattern.is_random() {
                    rng.uniform_u64(0, blocks_in_footprint - 1)
                } else {
                    i % blocks_in_footprint
                };
                HostCommand {
                    id: i,
                    op: self.pattern.op(),
                    offset: block_index * self.block_size as u64,
                    bytes: self.block_size,
                    issue_at: SimTime::ZERO,
                }
            })
            .collect()
    }

    /// Total payload bytes the workload moves.
    pub fn total_bytes(&self) -> u64 {
        self.command_count * self.block_size as u64
    }
}

/// Builder for [`Workload`].
#[derive(Debug, Clone)]
pub struct WorkloadBuilder {
    pattern: AccessPattern,
    block_size: u32,
    command_count: u64,
    footprint_bytes: u64,
    seed: u64,
}

impl WorkloadBuilder {
    /// Creates a builder with the paper's defaults: 4 KB blocks, 4 096
    /// commands, a 1 GiB footprint and a fixed seed.
    pub fn new(pattern: AccessPattern) -> Self {
        WorkloadBuilder {
            pattern,
            block_size: 4096,
            command_count: 4096,
            footprint_bytes: 1 << 30,
            seed: 0xC0FFEE,
        }
    }

    /// Sets the per-command payload size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn block_size(mut self, block_size: u32) -> Self {
        assert!(block_size > 0, "block size must be non-zero");
        self.block_size = block_size;
        self
    }

    /// Sets the number of commands to generate.
    pub fn command_count(mut self, count: u64) -> Self {
        self.command_count = count;
        self
    }

    /// Sets the logical footprint in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn footprint_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "footprint must be non-zero");
        self.footprint_bytes = bytes;
        self
    }

    /// Sets the RNG seed used by the random patterns.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Finalises the workload.
    pub fn build(self) -> Workload {
        Workload {
            pattern: self.pattern,
            block_size: self.block_size,
            command_count: self.command_count,
            footprint_bytes: self.footprint_bytes,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_properties() {
        assert_eq!(AccessPattern::SequentialWrite.op(), HostOp::Write);
        assert_eq!(AccessPattern::RandomRead.op(), HostOp::Read);
        assert!(AccessPattern::RandomWrite.is_random());
        assert!(!AccessPattern::SequentialRead.is_random());
        assert_eq!(AccessPattern::SequentialWrite.label(), "SW");
        assert_eq!(AccessPattern::all().len(), 4);
    }

    #[test]
    fn sequential_commands_have_increasing_contiguous_offsets() {
        let w = Workload::builder(AccessPattern::SequentialWrite)
            .command_count(100)
            .build();
        let cmds = w.commands();
        assert_eq!(cmds.len(), 100);
        for pair in cmds.windows(2) {
            assert_eq!(pair[1].offset, pair[0].offset + 4096);
        }
    }

    #[test]
    fn sequential_wraps_at_footprint_boundary() {
        let w = Workload::builder(AccessPattern::SequentialWrite)
            .command_count(10)
            .footprint_bytes(4096 * 4)
            .build();
        let cmds = w.commands();
        assert_eq!(cmds[4].offset, 0);
        assert_eq!(cmds[9].offset, 4096);
    }

    #[test]
    fn random_commands_stay_inside_footprint_and_are_aligned() {
        let w = Workload::builder(AccessPattern::RandomWrite)
            .command_count(2_000)
            .footprint_bytes(1 << 24)
            .build();
        for c in w.commands() {
            assert!(c.offset + c.bytes as u64 <= 1 << 24);
            assert_eq!(c.offset % 4096, 0);
        }
    }

    #[test]
    fn random_commands_spread_over_the_footprint() {
        let w = Workload::builder(AccessPattern::RandomRead)
            .command_count(4_000)
            .footprint_bytes(1 << 26)
            .build();
        let unique: std::collections::BTreeSet<u64> =
            w.commands().iter().map(|c| c.offset).collect();
        assert!(unique.len() > 3_000, "unique offsets = {}", unique.len());
    }

    #[test]
    fn same_seed_reproduces_the_same_stream() {
        let a = Workload::builder(AccessPattern::RandomWrite)
            .seed(5)
            .build();
        let b = Workload::builder(AccessPattern::RandomWrite)
            .seed(5)
            .build();
        assert_eq!(a.commands(), b.commands());
        let c = Workload::builder(AccessPattern::RandomWrite)
            .seed(6)
            .build();
        assert_ne!(a.commands(), c.commands());
    }

    #[test]
    fn total_bytes() {
        let w = Workload::builder(AccessPattern::SequentialRead)
            .command_count(1000)
            .block_size(8192)
            .build();
        assert_eq!(w.total_bytes(), 8_192_000);
    }

    #[test]
    #[should_panic(expected = "block size")]
    fn zero_block_size_rejected() {
        let _ = Workload::builder(AccessPattern::SequentialWrite).block_size(0);
    }

    #[test]
    #[should_panic(expected = "footprint")]
    fn zero_footprint_rejected() {
        let _ = Workload::builder(AccessPattern::SequentialWrite).footprint_bytes(0);
    }
}
