//! Host commands as seen at the device interface.

use serde::{Deserialize, Serialize};
use ssdx_sim::SimTime;
use std::fmt;

/// Direction of a host command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HostOp {
    /// Host reads data from the SSD.
    Read,
    /// Host writes data to the SSD.
    Write,
    /// Host discards a logical range (TRIM/Deallocate).
    Trim,
}

impl HostOp {
    /// `true` if the command carries data toward the NAND array.
    pub fn is_write(self) -> bool {
        matches!(self, HostOp::Write)
    }

    /// `true` if the command moves data from the NAND array to the host.
    pub fn is_read(self) -> bool {
        matches!(self, HostOp::Read)
    }
}

impl fmt::Display for HostOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostOp::Read => write!(f, "read"),
            HostOp::Write => write!(f, "write"),
            HostOp::Trim => write!(f, "trim"),
        }
    }
}

/// One command issued by the host to the SSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostCommand {
    /// Monotonically increasing command identifier.
    pub id: u64,
    /// Direction.
    pub op: HostOp,
    /// Logical byte address of the first byte touched.
    pub offset: u64,
    /// Payload size in bytes.
    pub bytes: u32,
    /// Earliest instant at which the host makes the command available.
    pub issue_at: SimTime,
}

impl HostCommand {
    /// Logical page number of the first page touched, for `page_bytes`-sized
    /// pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is zero.
    pub fn first_page(&self, page_bytes: u32) -> u64 {
        assert!(page_bytes > 0, "page size must be non-zero");
        self.offset / page_bytes as u64
    }

    /// Number of pages spanned by the command, for `page_bytes`-sized pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is zero.
    pub fn page_count(&self, page_bytes: u32) -> u32 {
        assert!(page_bytes > 0, "page size must be non-zero");
        if self.bytes == 0 {
            return 0;
        }
        let first = self.offset / page_bytes as u64;
        let last = (self.offset + self.bytes as u64 - 1) / page_bytes as u64;
        (last - first + 1) as u32
    }
}

impl fmt::Display for HostCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cmd #{} {} {} B @ 0x{:x}",
            self.id, self.op, self.bytes, self.offset
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd(offset: u64, bytes: u32) -> HostCommand {
        HostCommand {
            id: 1,
            op: HostOp::Write,
            offset,
            bytes,
            issue_at: SimTime::ZERO,
        }
    }

    #[test]
    fn op_classification() {
        assert!(HostOp::Write.is_write());
        assert!(!HostOp::Write.is_read());
        assert!(HostOp::Read.is_read());
        assert!(!HostOp::Trim.is_read());
        assert_eq!(HostOp::Trim.to_string(), "trim");
    }

    #[test]
    fn aligned_command_spans_exact_pages() {
        let c = cmd(8192, 8192);
        assert_eq!(c.first_page(4096), 2);
        assert_eq!(c.page_count(4096), 2);
    }

    #[test]
    fn unaligned_command_spans_extra_page() {
        let c = cmd(4095, 4096);
        assert_eq!(c.first_page(4096), 0);
        assert_eq!(c.page_count(4096), 2);
    }

    #[test]
    fn zero_byte_command_spans_no_pages() {
        let c = cmd(0, 0);
        assert_eq!(c.page_count(4096), 0);
    }

    #[test]
    fn display_is_informative() {
        let c = cmd(0x1000, 4096);
        assert_eq!(c.to_string(), "cmd #1 write 4096 B @ 0x1000");
    }

    #[test]
    #[should_panic(expected = "page size")]
    fn zero_page_size_panics() {
        let _ = cmd(0, 1).page_count(0);
    }
}
