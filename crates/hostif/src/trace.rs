//! Command/data trace player.
//!
//! Both host interface models include a trace player which parses a file
//! containing the operations to be performed and triggers them during
//! simulation. The trace format is a plain text file with one command per
//! line:
//!
//! ```text
//! # time_us  op     offset_bytes  size_bytes
//! 0          write  0             4096
//! 120        read   8192          4096
//! 250        trim   0             65536
//! ```
//!
//! Lines starting with `#` and blank lines are ignored.

use crate::command::{HostCommand, HostOp};
use ssdx_sim::SimTime;
use std::fmt;

/// Error produced while parsing a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.reason
        )
    }
}

impl std::error::Error for ParseTraceError {}

/// A parsed trace ready to be replayed against the SSD model.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TracePlayer {
    commands: Vec<HostCommand>,
}

impl TracePlayer {
    /// Creates an empty trace.
    pub fn new() -> Self {
        TracePlayer::default()
    }

    /// Parses a trace from its textual representation.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] describing the first malformed line.
    pub fn parse(text: &str) -> Result<Self, ParseTraceError> {
        let mut commands = Vec::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 4 {
                return Err(ParseTraceError {
                    line: line_no,
                    reason: format!("expected 4 fields, found {}", fields.len()),
                });
            }
            let time_us: u64 = fields[0].parse().map_err(|_| ParseTraceError {
                line: line_no,
                reason: format!("invalid timestamp `{}`", fields[0]),
            })?;
            let op = match fields[1].to_ascii_lowercase().as_str() {
                "read" | "r" => HostOp::Read,
                "write" | "w" => HostOp::Write,
                "trim" | "t" | "discard" => HostOp::Trim,
                other => {
                    return Err(ParseTraceError {
                        line: line_no,
                        reason: format!("unknown operation `{other}`"),
                    })
                }
            };
            let offset: u64 = fields[2].parse().map_err(|_| ParseTraceError {
                line: line_no,
                reason: format!("invalid offset `{}`", fields[2]),
            })?;
            let bytes: u32 = fields[3].parse().map_err(|_| ParseTraceError {
                line: line_no,
                reason: format!("invalid size `{}`", fields[3]),
            })?;
            commands.push(HostCommand {
                id: commands.len() as u64,
                op,
                offset,
                bytes,
                issue_at: SimTime::from_us(time_us),
            });
        }
        Ok(TracePlayer { commands })
    }

    /// The parsed commands, in file order.
    pub fn commands(&self) -> &[HostCommand] {
        &self.commands
    }

    /// Number of commands in the trace.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// `true` if the trace holds no commands.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// Total payload bytes moved by read and write commands.
    pub fn total_bytes(&self) -> u64 {
        self.commands
            .iter()
            .filter(|c| c.op != HostOp::Trim)
            .map(|c| c.bytes as u64)
            .sum()
    }

    /// Serialises the trace back to its textual format.
    pub fn to_text(&self) -> String {
        let mut out = String::from("# time_us op offset_bytes size_bytes\n");
        for c in &self.commands {
            let op = match c.op {
                HostOp::Read => "read",
                HostOp::Write => "write",
                HostOp::Trim => "trim",
            };
            out.push_str(&format!(
                "{} {} {} {}\n",
                c.issue_at.as_us(),
                op,
                c.offset,
                c.bytes
            ));
        }
        out
    }
}

impl FromIterator<HostCommand> for TracePlayer {
    fn from_iter<I: IntoIterator<Item = HostCommand>>(iter: I) -> Self {
        TracePlayer {
            commands: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a comment
0 write 0 4096

120 read 8192 4096
250 trim 0 65536
";

    #[test]
    fn parses_valid_trace() {
        let t = TracePlayer::parse(SAMPLE).unwrap();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.commands()[0].op, HostOp::Write);
        assert_eq!(t.commands()[1].issue_at, SimTime::from_us(120));
        assert_eq!(t.commands()[2].op, HostOp::Trim);
        assert_eq!(t.total_bytes(), 8192);
    }

    #[test]
    fn round_trips_through_text() {
        let t = TracePlayer::parse(SAMPLE).unwrap();
        let again = TracePlayer::parse(&t.to_text()).unwrap();
        assert_eq!(t, again);
    }

    #[test]
    fn short_op_names_accepted() {
        let t = TracePlayer::parse("0 w 0 512\n1 r 0 512\n2 t 0 512\n").unwrap();
        assert_eq!(t.commands()[0].op, HostOp::Write);
        assert_eq!(t.commands()[1].op, HostOp::Read);
        assert_eq!(t.commands()[2].op, HostOp::Trim);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let err = TracePlayer::parse("0 write 0 4096\n5 flush 0 0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("flush"));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_wrong_field_count_and_bad_numbers() {
        assert!(TracePlayer::parse("0 write 0\n").is_err());
        assert!(TracePlayer::parse("x write 0 4096\n").is_err());
        assert!(TracePlayer::parse("0 write y 4096\n").is_err());
        assert!(TracePlayer::parse("0 write 0 z\n").is_err());
    }

    #[test]
    fn empty_trace_is_ok() {
        let t = TracePlayer::parse("# nothing\n").unwrap();
        assert!(t.is_empty());
        assert_eq!(t.total_bytes(), 0);
        assert_eq!(TracePlayer::new(), t);
    }

    #[test]
    fn collects_from_iterator() {
        let cmds = vec![HostCommand {
            id: 0,
            op: HostOp::Read,
            offset: 0,
            bytes: 4096,
            issue_at: SimTime::ZERO,
        }];
        let t: TracePlayer = cmds.clone().into_iter().collect();
        assert_eq!(t.commands(), &cmds[..]);
    }
}
