//! Host interface models and workload generation.
//!
//! The host interface is where an SSD's performance is ultimately delivered
//! and, as the paper shows, where it can be silently throttled: the SATA
//! protocol manages at most 32 outstanding commands (Native Command
//! Queuing), so a no-cache SSD cannot expose its internal parallelism, while
//! the NVMe protocol over PCI Express handles up to 64 K commands and
//! unlocks it. This crate models both interfaces at the timing level —
//! link rate, encoding overhead, packetization/FIS latency and queue depth —
//! plus the command/data trace player, the IOZone-like synthetic workload
//! generators used by every experiment in the paper, and the generative
//! suite ([`generative`]: zipfian-skewed, bursty, mixed block sizes,
//! read-modify-write) behind the platform's tail-latency studies.
//!
//! # Example
//!
//! ```
//! use ssdx_hostif::{HostInterface, SataInterface, NvmeInterface};
//!
//! let sata = SataInterface::sata2();
//! let nvme = NvmeInterface::gen2_x8();
//! assert!(nvme.ideal_bandwidth() > 3 * sata.ideal_bandwidth());
//! assert!(nvme.queue_depth() > sata.queue_depth());
//! ```

#![warn(rust_2018_idioms)]

pub mod command;
pub mod generative;
pub mod interface;
pub mod nvme;
pub mod sata;
pub mod source;
pub mod trace;
pub mod workload;

pub use command::{HostCommand, HostOp};
pub use generative::{
    degraded_probe, BurstyWorkload, MixedSizeWorkload, RmwWorkload, ZipfianWorkload,
};
pub use interface::{HostInterface, HostInterfaceKind};
pub use nvme::{NvmeInterface, PcieGen};
pub use sata::SataInterface;
pub use source::{
    estimate_random_write_fraction, source_fn, CommandSource, CommandStream, FnSource,
};
pub use trace::{ParseTraceError, TracePlayer};
pub use workload::{AccessPattern, Workload, WorkloadBuilder};
