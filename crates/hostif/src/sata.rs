//! Serial ATA host interface model.

use crate::interface::{HostInterface, HostInterfaceKind};
use serde::{Deserialize, Serialize};
use ssdx_sim::SimTime;

/// A SATA host interface with Native Command Queuing.
///
/// All protocol layers are reduced to their timing behaviour: the link moves
/// payload at the 8b/10b-decoded line rate degraded by framing efficiency,
/// and every command additionally pays a fixed FIS exchange overhead
/// (command FIS, DMA setup/activate FIS, status FIS). The NCQ window — at
/// most 32 outstanding commands — is the protocol property responsible for
/// the performance flattening of no-cache SSDs in the paper's Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SataInterface {
    /// Line rate in bits per second (3 Gb/s for SATA II, 6 Gb/s for SATA III).
    pub line_rate_bps: u64,
    /// Framing/flow-control efficiency after 8b/10b decoding (0–1).
    pub framing_efficiency: f64,
    /// Fixed FIS exchange overhead per command, nanoseconds.
    pub fis_overhead_ns: u64,
    /// NCQ queue depth (the standard allows at most 32).
    pub ncq_depth: u32,
    /// `true` for SATA III timing, `false` for SATA II.
    gen3: bool,
}

impl SataInterface {
    /// SATA II: 3 Gb/s line rate, 32-deep NCQ.
    pub fn sata2() -> Self {
        SataInterface {
            line_rate_bps: 3_000_000_000,
            framing_efficiency: 0.93,
            fis_overhead_ns: 5_000,
            ncq_depth: 32,
            gen3: false,
        }
    }

    /// SATA III: 6 Gb/s line rate, 32-deep NCQ.
    pub fn sata3() -> Self {
        SataInterface {
            line_rate_bps: 6_000_000_000,
            framing_efficiency: 0.93,
            fis_overhead_ns: 4_000,
            ncq_depth: 32,
            gen3: true,
        }
    }

    /// Restricts the NCQ window (clamped to 1..=32), e.g. to model a host
    /// driver that does not enable full queuing.
    pub fn with_queue_depth(mut self, depth: u32) -> Self {
        self.ncq_depth = depth.clamp(1, 32);
        self
    }
}

impl Default for SataInterface {
    fn default() -> Self {
        Self::sata2()
    }
}

impl HostInterface for SataInterface {
    fn kind(&self) -> HostInterfaceKind {
        if self.gen3 {
            HostInterfaceKind::Sata3
        } else {
            HostInterfaceKind::Sata2
        }
    }

    fn ideal_bandwidth(&self) -> u64 {
        // 8b/10b: 10 line bits per payload byte, then framing efficiency.
        ((self.line_rate_bps / 10) as f64 * self.framing_efficiency) as u64
    }

    fn queue_depth(&self) -> u32 {
        self.ncq_depth
    }

    fn command_overhead(&self) -> SimTime {
        SimTime::from_ns(self.fis_overhead_ns)
    }

    fn data_transfer_time(&self, bytes: u32) -> SimTime {
        ssdx_sim::time::transfer_time(bytes as u64, self.ideal_bandwidth())
    }

    fn name(&self) -> String {
        if self.gen3 {
            "SATA III (6 Gb/s)".to_string()
        } else {
            "SATA II (3 Gb/s)".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sata2_ideal_bandwidth_is_about_280_mbps() {
        let s = SataInterface::sata2();
        let bw = s.ideal_bandwidth();
        assert!((270_000_000..=290_000_000).contains(&bw), "bw = {bw}");
    }

    #[test]
    fn sata3_doubles_the_line_rate() {
        let s2 = SataInterface::sata2();
        let s3 = SataInterface::sata3();
        assert!(s3.ideal_bandwidth() > 19 * s2.ideal_bandwidth() / 10);
        assert_eq!(s3.kind(), HostInterfaceKind::Sata3);
        assert_eq!(s2.kind(), HostInterfaceKind::Sata2);
    }

    #[test]
    fn ncq_window_is_bounded_at_32() {
        assert_eq!(SataInterface::sata2().queue_depth(), 32);
        assert_eq!(
            SataInterface::sata2().with_queue_depth(64).queue_depth(),
            32
        );
        assert_eq!(SataInterface::sata2().with_queue_depth(0).queue_depth(), 1);
        assert_eq!(SataInterface::sata2().with_queue_depth(8).queue_depth(), 8);
    }

    #[test]
    fn four_kb_transfer_time_is_tens_of_microseconds() {
        let s = SataInterface::sata2();
        let t = s.transfer_time(4096);
        assert!(
            t >= SimTime::from_us(15) && t <= SimTime::from_us(25),
            "t = {t}"
        );
    }

    #[test]
    fn effective_bandwidth_for_4kb_is_well_below_ideal() {
        let s = SataInterface::sata2();
        let eff = s.effective_bandwidth(4096);
        assert!(eff < 0.85 * s.ideal_bandwidth() as f64);
        assert!(eff > 0.4 * s.ideal_bandwidth() as f64);
    }

    #[test]
    fn names_mention_generation() {
        assert!(SataInterface::sata2().name().contains("3 Gb/s"));
        assert!(SataInterface::sata3().name().contains("6 Gb/s"));
    }
}
