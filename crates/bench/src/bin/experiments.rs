//! Regenerates every table and figure of the SSDExplorer paper's evaluation.
//!
//! Run with `cargo run --release -p ssdx-bench --bin experiments -- [all|fig2|fig3|fig4|fig5|fig6|speedup|tables]`.
//! Results are printed as aligned text tables; EXPERIMENTS.md records the
//! values measured on the reference machine next to the paper's own numbers.

use ssdx_core::configs::{fig5_config, ocz_vertex_like, table2_configs, table3_configs};
use ssdx_core::{
    explorer, speed, CachePolicy, HostInterfaceConfig, ParallelExecutor, Ssd, SsdConfig,
};
use ssdx_ecc::EccScheme;
use ssdx_hostif::{AccessPattern, Workload};

/// Paper-reported throughput of the OCZ Vertex 120 GB (values read from
/// Fig. 2 of the paper; the figure is plotted, not tabulated, so these are
/// approximations used as the validation reference).
const OCZ_REFERENCE_MBPS: [(AccessPattern, f64); 4] = [
    (AccessPattern::SequentialWrite, 160.0),
    (AccessPattern::SequentialRead, 200.0),
    (AccessPattern::RandomWrite, 22.0),
    (AccessPattern::RandomRead, 145.0),
];

fn fig2_commands() -> u64 {
    // 1 GiB of 4 KB commands: large enough that the 64 MB write cache of the
    // modelled drive is a small fraction of the run and the reported
    // throughput reflects the steady state, as a real IOZone run would.
    262_144
}

fn sweep_commands() -> u64 {
    24_576
}

fn sweep_workload() -> Workload {
    Workload::builder(AccessPattern::SequentialWrite)
        .command_count(sweep_commands())
        .build()
}

/// Shrinks the per-buffer cache so that the sweep workload is much larger
/// than the aggregate write cache and the reported throughput reflects the
/// steady state rather than the cache-fill transient.
fn steady_state(mut cfg: SsdConfig) -> SsdConfig {
    cfg.dram_buffer_capacity = 128 * 1024;
    cfg
}

fn fig2_validation() {
    println!("==============================================================");
    println!("Fig. 2 — validation against the OCZ Vertex 120 GB (SATA II)");
    println!("==============================================================");
    let config = ocz_vertex_like();
    println!("configuration: {} ({})\n", config.name, config.architecture_label());
    println!(
        "{:<18} {:>14} {:>14} {:>8}",
        "workload", "SSDExplorer", "OCZ Vertex", "error"
    );
    let mut ssd = Ssd::new(config);
    for (pattern, reference) in OCZ_REFERENCE_MBPS {
        let workload = Workload::builder(pattern)
            .command_count(fig2_commands())
            .footprint_bytes(8 << 30)
            .build();
        let report = ssd.simulate(&workload);
        let error = (report.throughput_mbps - reference).abs() / reference * 100.0;
        println!(
            "{:<18} {:>9.1} MB/s {:>9.1} MB/s {:>7.1}%",
            format!("{} ({})", pattern.label(), report.policy),
            report.throughput_mbps,
            reference,
            error
        );
    }
    println!();
}

fn print_table2() {
    println!("==============================================================");
    println!("Table II — SSD configurations for the design-point search");
    println!("==============================================================");
    for c in table2_configs() {
        println!("{:<5} {}", c.name, c.architecture_label());
    }
    println!();
}

fn print_table3() {
    println!("==============================================================");
    println!("Table III — SSD configurations for the simulation-speed study");
    println!("==============================================================");
    for c in table3_configs() {
        println!("{:<5} {}", c.name, c.architecture_label());
    }
    println!();
}

fn fig3_sata_sweep() {
    println!("==============================================================");
    println!("Fig. 3 — Sequential Write, SATA II host interface");
    println!("==============================================================");
    let configs: Vec<SsdConfig> = table2_configs().into_iter().map(steady_state).collect();
    let sweep =
        explorer::host_interface_study(HostInterfaceConfig::Sata2, &configs, &sweep_workload())
            .expect("table configurations validate");
    print!("{}", sweep.to_table());
    if let Some(best) = sweep.optimal_design_point(0.95) {
        println!(
            "optimal design point (cache policy): {} ({} dies)",
            best.config_name, best.total_dies
        );
    }
    let no_cache_best = sweep
        .points
        .iter()
        .min_by_key(|p| p.total_dies)
        .map(|p| p.config_name.clone())
        .unwrap_or_default();
    println!(
        "no-cache policy: throughput flattens across all configurations, so the search falls on {no_cache_best}\n"
    );
}

fn fig4_pcie_sweep() {
    println!("==============================================================");
    println!("Fig. 4 — Sequential Write, PCIe Gen2 x8 + NVMe host interface");
    println!("==============================================================");
    let configs: Vec<SsdConfig> = table2_configs().into_iter().map(steady_state).collect();
    let sweep = explorer::host_interface_study(
        HostInterfaceConfig::nvme_gen2_x8(),
        &configs,
        &sweep_workload(),
    )
    .expect("table configurations validate");
    print!("{}", sweep.to_table());
    let saturating = sweep.saturating_points(0.95);
    println!(
        "configurations saturating the PCIe interface: {}",
        if saturating.is_empty() {
            "none (the host interface is no longer the bottleneck)".to_string()
        } else {
            saturating
                .iter()
                .map(|p| p.config_name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        }
    );
    // With NVMe the no-cache columns track the cached ones and the host
    // interface stops being the bottleneck, so the search is driven by the
    // hardware cost: report the Pareto front of throughput vs controller
    // resources (channels + DRAM buffers).
    let front = sweep.pareto_front();
    println!("performance/cost Pareto front (throughput vs channels+buffers):");
    for p in &front {
        println!(
            "  {:<4} {:>7.1} MB/s with {:>2} channels, {:>2} buffers, {:>4} dies",
            p.config_name, p.ssd_cache_mbps, p.channels, p.dram_buffers, p.total_dies
        );
    }
    println!();
}

fn fig5_wearout() {
    println!("==============================================================");
    println!("Fig. 5 — throughput vs normalized rated endurance (4-CHN/2-WAY/4-DIE)");
    println!("==============================================================");
    let endurance: Vec<f64> = (0..=5).map(|i| i as f64 * 0.2).collect();
    let base = fig5_config(EccScheme::fixed_bch(40));
    let fixed = explorer::wearout_study(&base, EccScheme::fixed_bch(40), &endurance, 8_192)
        .expect("fig5 configuration validates");
    let adaptive = explorer::wearout_study(&base, EccScheme::adaptive_bch(40), &endurance, 8_192)
        .expect("fig5 configuration validates");
    println!(
        "{:>10} {:>16} {:>16} {:>17} {:>17}",
        "endurance", "fixed BCH read", "adapt BCH read", "fixed BCH write", "adapt BCH write"
    );
    for (f, a) in fixed.iter().zip(&adaptive) {
        println!(
            "{:>10.1} {:>11.1} MB/s {:>11.1} MB/s {:>12.1} MB/s {:>12.1} MB/s",
            f.normalized_endurance, f.read_mbps, a.read_mbps, f.write_mbps, a.write_mbps
        );
    }
    println!();
}

fn fig6_simulation_speed() {
    println!("==============================================================");
    println!("Fig. 6 — simulation speed (KCPS) across the Table III configurations");
    println!("==============================================================");
    let workload = Workload::builder(AccessPattern::SequentialWrite)
        .command_count(8_192)
        .build();
    let configs: Vec<SsdConfig> = table3_configs().into_iter().map(steady_state).collect();
    let points = speed::measure_kcps_sweep(&configs, &workload);
    println!(
        "{:<6} {:<34} {:>10} {:>12} {:>12}",
        "config", "architecture", "KCPS", "wall (s)", "MB/s"
    );
    for p in &points {
        println!(
            "{:<6} {:<34} {:>10.1} {:>12.3} {:>12.1}",
            p.config_name, p.architecture, p.kcps, p.wall_seconds, p.throughput_mbps
        );
    }
    println!();
}

fn parallel_speedup() {
    println!("==============================================================");
    println!("Parallel sweep speedup — sequential Explorer vs ParallelExecutor");
    println!("==============================================================");
    let machine = ParallelExecutor::new().threads();
    println!(
        "8-point sweep (channels x cache x seed), {} commands per point; \
         this machine exposes {machine} hardware thread(s)\n",
        sweep_commands() / 4
    );
    ssdx_bench::print_speedup_series(sweep_commands() / 4);
    println!(
        "\n(every row is verified byte-identical to the sequential sweep; \
         wall-clock speedup requires the hardware threads to exist)\n"
    );
}

fn cache_policy_note() {
    // Small sanity print showing the two DRAM-buffer policies side by side on
    // the default platform, mirroring the discussion in Section IV-A.
    let workload = sweep_workload();
    for policy in [CachePolicy::WriteCache, CachePolicy::NoCache] {
        let mut cfg = steady_state(table2_configs().remove(5));
        cfg.cache_policy = policy;
        let report = Ssd::new(cfg).simulate(&workload);
        println!("{}", report.summary_line());
    }
    println!();
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "fig2" => fig2_validation(),
        "fig3" => fig3_sata_sweep(),
        "fig4" => fig4_pcie_sweep(),
        "fig5" => fig5_wearout(),
        "fig6" => fig6_simulation_speed(),
        "speedup" => parallel_speedup(),
        "tables" => {
            print_table2();
            print_table3();
        }
        "policies" => cache_policy_note(),
        _ => {
            print_table2();
            fig2_validation();
            fig3_sata_sweep();
            fig4_pcie_sweep();
            fig5_wearout();
            print_table3();
            fig6_simulation_speed();
            parallel_speedup();
        }
    }
}
